//! Document generation micro-benchmarks (the Fig. 6 corpus).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use xmldb::gen::{gen_auction, gen_bib, AuctionConfig, BibConfig};
use xmldb::serializer::serialize_pretty;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("doc_gen");
    for &books in &[100usize, 1000] {
        group.bench_with_input(BenchmarkId::new("bib", books), &books, |b, &n| {
            b.iter(|| {
                gen_bib(&BibConfig {
                    books: n,
                    authors_per_book: 2,
                    ..BibConfig::default()
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("auction", books), &books, |b, &n| {
            b.iter(|| {
                gen_auction(&AuctionConfig {
                    bids: n,
                    ..AuctionConfig::default()
                })
            })
        });
    }
    group.finish();
}

fn bench_serialization(c: &mut Criterion) {
    let doc = gen_bib(&BibConfig {
        books: 1000,
        authors_per_book: 2,
        ..BibConfig::default()
    });
    c.bench_function("serialize_pretty/bib-1000", |b| {
        b.iter(|| serialize_pretty(&doc))
    });
}

criterion_group!(benches, bench_generation, bench_serialization);
criterion_main!(benches);
