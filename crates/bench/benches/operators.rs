//! Operator micro-benchmarks: the ablations DESIGN.md calls out — hash
//! vs. nested-loop matching, hash vs. definitional grouping — isolating
//! the physical choices behind the §5 speedups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nal::expr::builder::*;
use nal::{CmpOp, Expr, GroupFn, Scalar, Sym, Tuple, Value};
use xmldb::Catalog;

fn int_rel(attr: &str, n: usize, modulo: i64) -> Expr {
    Expr::Literal(
        (0..n)
            .map(|i| Tuple::singleton(Sym::new(attr), Value::Int(i as i64 % modulo)))
            .collect(),
    )
}

fn pair_rel(a: &str, b: &str, n: usize, modulo: i64) -> Expr {
    Expr::Literal(
        (0..n)
            .map(|i| {
                Tuple::from_pairs(vec![
                    (Sym::new(a), Value::Int(i as i64 % modulo)),
                    (Sym::new(b), Value::Int(i as i64)),
                ])
            })
            .collect(),
    )
}

/// Hash semijoin vs. the definitional nested loop on the same inputs.
fn join_ablation(c: &mut Criterion) {
    let cat = Catalog::new();
    let mut group = c.benchmark_group("semijoin_ablation");
    group.sample_size(10);
    for &n in &[200usize, 1000] {
        let l = int_rel("a", n, 64);
        let r = pair_rel("b", "y", n, 64);
        let equi = l
            .clone()
            .semijoin(r.clone(), Scalar::attr_cmp(CmpOp::Eq, "a", "b"));
        let hash_plan = engine::compile(&equi);
        group.bench_with_input(BenchmarkId::new("hash", n), &hash_plan, |bch, plan| {
            bch.iter(|| engine::run_compiled(plan, &cat).expect("runs"))
        });
        // Forcing the loop operator: a non-hashable predicate of equal
        // selectivity (equality spelled as a conjunction of inequalities).
        let loopy = l.clone().semijoin(
            r.clone(),
            Scalar::attr_cmp(CmpOp::Le, "a", "b").and(Scalar::attr_cmp(CmpOp::Ge, "a", "b")),
        );
        let loop_plan = engine::compile(&loopy);
        group.bench_with_input(BenchmarkId::new("loop", n), &loop_plan, |bch, plan| {
            bch.iter(|| engine::run_compiled(plan, &cat).expect("runs"))
        });
    }
    group.finish();
}

/// Hash grouping vs. the θ-grouping fallback (same keys, θ = '=' both
/// semantically).
fn grouping_ablation(c: &mut Criterion) {
    let cat = Catalog::new();
    let mut group = c.benchmark_group("grouping_ablation");
    group.sample_size(10);
    for &n in &[200usize, 1000] {
        let input = pair_rel("b", "y", n, 32);
        let hash = input
            .clone()
            .group_unary("g", &["b"], CmpOp::Eq, GroupFn::count());
        let hash_plan = engine::compile(&hash);
        group.bench_with_input(BenchmarkId::new("hash", n), &hash_plan, |bch, plan| {
            bch.iter(|| engine::run_compiled(plan, &cat).expect("runs"))
        });
        // θ-grouping with Le (superset work of Eq) as the definitional
        // reference point.
        let theta = input
            .clone()
            .group_unary("g", &["b"], CmpOp::Le, GroupFn::count());
        let theta_plan = engine::compile(&theta);
        group.bench_with_input(BenchmarkId::new("theta", n), &theta_plan, |bch, plan| {
            bch.iter(|| engine::run_compiled(plan, &cat).expect("runs"))
        });
    }
    group.finish();
}

/// Ξ with a materialized group attribute vs. the fused group-detecting Ξ
/// (the §5.1 "group Ξ" gain).
fn xi_fusion_ablation(c: &mut Criterion) {
    let cat = Catalog::new();
    let n = 2000usize;
    let input = pair_rel("b", "y", n, 64);
    let grouped = input
        .clone()
        .group_unary("t", &["b"], CmpOp::Eq, GroupFn::project_items("y"))
        .xi(xi_cmds(&["<g>", "$b", ":", "$t", "</g>"]));
    let fused = input.xi_group(
        &["b"],
        xi_cmds(&["<g>", "$b", ":"]),
        xi_cmds(&["$y"]),
        xi_cmds(&["</g>"]),
    );
    let mut group = c.benchmark_group("xi_fusion");
    group.sample_size(10);
    let gp = engine::compile(&grouped);
    let fp = engine::compile(&fused);
    group.bench_function("materialized", |b| {
        b.iter(|| engine::run_compiled(&gp, &cat).expect("runs"))
    });
    group.bench_function("fused", |b| {
        b.iter(|| engine::run_compiled(&fp, &cat).expect("runs"))
    });
    group.finish();
}

/// Materializing vs. streaming executor on a quantifier-shaped workload:
/// a selective semijoin where the streaming path's short-circuit and
/// pipelining should show up directly.
fn executor_ablation(c: &mut Criterion) {
    let cat = Catalog::new();
    let mut group = c.benchmark_group("executor_ablation");
    group.sample_size(10);
    for &n in &[1000usize, 5000] {
        let l = int_rel("a", n, 64);
        let r = pair_rel("b", "y", n, 64);
        let semi = l.semijoin(r, Scalar::attr_cmp(CmpOp::Eq, "a", "b"));
        let plan = engine::compile(&semi);
        group.bench_with_input(BenchmarkId::new("materialized", n), &plan, |bch, plan| {
            bch.iter(|| engine::run_compiled(plan, &cat).expect("runs"))
        });
        group.bench_with_input(BenchmarkId::new("streaming", n), &plan, |bch, plan| {
            bch.iter(|| engine::run_streaming_compiled(plan, &cat).expect("runs"))
        });
    }
    group.finish();
}

/// Scan- vs index-backed quantifier joins on the paper's document
/// workloads: the same semi/anti join plan compiled with `compile` (hash
/// join over a full build-side scan) and with `compile_indexed` (value-
/// index probes, no build side at all).
fn index_ablation(c: &mut Criterion) {
    use ordered_unnesting::workloads::{Q3_EXISTENTIAL, Q5_UNIVERSAL};
    let mut group = c.benchmark_group("index_ablation");
    group.sample_size(10);
    for &n in &[500usize, 2000] {
        let catalog = xmldb::gen::standard_catalog(n, 2, 42);
        for w in [&Q3_EXISTENTIAL, &Q5_UNIVERSAL] {
            let nested = xquery::compile(w.query, &catalog).expect("compiles");
            for p in unnest::enumerate_plans(&nested, &catalog) {
                if !p.label.contains("semijoin") {
                    continue;
                }
                let scan_plan = engine::compile(&p.expr);
                let index_plan = engine::compile_indexed(&p.expr, &catalog);
                group.bench_with_input(
                    BenchmarkId::new(format!("{}-scan", w.id), n),
                    &scan_plan,
                    |bch, plan| {
                        bch.iter(|| engine::run_streaming_compiled(plan, &catalog).expect("runs"))
                    },
                );
                group.bench_with_input(
                    BenchmarkId::new(format!("{}-indexed", w.id), n),
                    &index_plan,
                    |bch, plan| {
                        bch.iter(|| engine::run_streaming_compiled(plan, &catalog).expect("runs"))
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    join_ablation,
    grouping_ablation,
    xi_fusion_ablation,
    executor_ablation,
    index_ablation
);
criterion_main!(benches);
