//! Criterion benches, one group per table of §5.
//!
//! Each group benchmarks every plan alternative of a paper query at a
//! Criterion-friendly scale (the full 100/1 000/10 000 sweeps live in the
//! `harness` binary; nested plans are quadratic and would blow Criterion's
//! budgets at 10 000).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench_harness::plans_for;
use ordered_unnesting::workloads::{
    Workload, Q1_GROUPING, Q2_AGGREGATION, Q3_EXISTENTIAL, Q4_EXISTS, Q5_UNIVERSAL, Q6_HAVING,
};
use xmldb::gen::standard_catalog;

const SCALE: usize = 200;
const SEED: u64 = 42;

fn bench_workload(c: &mut Criterion, group_name: &str, w: &Workload) {
    let catalog = standard_catalog(SCALE, 2, SEED);
    let plans = plans_for(w, &catalog);
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for (label, expr) in &plans {
        let plan = engine::compile(expr);
        group.bench_with_input(BenchmarkId::from_parameter(label), &plan, |b, plan| {
            b.iter(|| engine::run_compiled(plan, &catalog).expect("plan runs"))
        });
    }
    group.finish();
}

fn q1_grouping(c: &mut Criterion) {
    bench_workload(c, "q1_grouping", &Q1_GROUPING);
}

fn q2_aggregation(c: &mut Criterion) {
    bench_workload(c, "q2_aggregation", &Q2_AGGREGATION);
}

fn q3_existential(c: &mut Criterion) {
    bench_workload(c, "q3_existential", &Q3_EXISTENTIAL);
}

fn q4_exists(c: &mut Criterion) {
    bench_workload(c, "q4_exists", &Q4_EXISTS);
}

fn q5_universal(c: &mut Criterion) {
    bench_workload(c, "q5_universal", &Q5_UNIVERSAL);
}

fn q6_having(c: &mut Criterion) {
    bench_workload(c, "q6_having", &Q6_HAVING);
}

/// The §5.1 group-size knob: grouping plan across authors-per-book.
fn q1_group_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("q1_group_size");
    group.sample_size(10);
    for &fanout in &[2usize, 5, 10] {
        let catalog = standard_catalog(SCALE, fanout, SEED);
        let plans = plans_for(&Q1_GROUPING, &catalog);
        for (label, expr) in &plans {
            if label == "nested" {
                continue; // quadratic; covered by the harness
            }
            let plan = engine::compile(expr);
            group.bench_with_input(BenchmarkId::new(label.clone(), fanout), &plan, |b, plan| {
                b.iter(|| engine::run_compiled(plan, &catalog).expect("runs"))
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    q1_grouping,
    q2_aggregation,
    q3_existential,
    q4_exists,
    q5_universal,
    q6_having,
    q1_group_size_sweep
);
criterion_main!(benches);
