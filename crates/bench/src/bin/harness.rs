//! `harness` — regenerates every table and figure of the paper's
//! evaluation (§5) with this repository's implementations.
//!
//! ```sh
//! cargo run --release -p bench-harness --bin harness -- [--experiment all]
//!     [--scales 100,1000,10000] [--nested-cap 1000] [--seed 42]
//!     [--executor materialized|streaming] [--indexes on|off]
//!     [--json results.json] [--smoke]
//! ```
//!
//! Experiments: `fig6`, `grouping` (§5.1), `dblp` (§5.1), `aggregation`
//! (§5.2), `existential1` (§5.3), `existential2` (§5.4), `universal`
//! (§5.5), `having` (§5.6), `costmodel`, `index` (scan- vs index-backed
//! quantifier joins, incl. the composite-key and variable-depth
//! workloads), `range` (loop- vs range-probe inequality quantifier
//! joins), `composite` (the focused multi-key/deep-ancestor cut), or
//! `all`. Every `--json` cell records the cost model's `predicted_cost`
//! next to the measured time, so `BENCH_*.json` trajectories can
//! calibrate the probe constants against reality.
//!
//! `--indexes on` compiles every measured plan through
//! `engine::compile_indexed`, so document-rooted path scans and
//! semi/anti joins run on the `xmldb::index` access paths. `--json`
//! writes every measured *plan* cell as a JSON array (machine-readable
//! `BENCH_*.json` trajectories; `fig6` reports document sizes, not plan
//! runs, so it has no cells). `--smoke` is the CI configuration: tiny
//! scales, every experiment, seconds not minutes.
//!
//! Nested plans are measured up to `--nested-cap` records and
//! extrapolated quadratically above it (marked `est.`), because their
//! per-tuple document re-scan makes full 10 000-record runs take minutes
//! — the very effect the paper measures. Pass `--nested-cap 10000` for
//! fully measured tables.

use std::collections::BTreeMap;

use bench_harness::{
    extrapolate_nested, fmt_secs, measure_plan_cfg, plans_for, Executor, Measurement, Report,
    RunConfig,
};
use ordered_unnesting::workloads::{
    Q10_DEEP, Q1_DBLP, Q1_GROUPING, Q2_AGGREGATION, Q3_EXISTENTIAL, Q4_EXISTS, Q5_UNIVERSAL,
    Q6_HAVING, Q9_COMPOSITE,
};
use xmldb::gen::{
    gen_auction, gen_bib, gen_dblp, gen_prices, gen_reviews, standard_catalog, AuctionConfig,
    BibConfig, DblpConfig, PricesConfig, ReviewsConfig,
};
use xmldb::serializer::document_size_bytes;
use xmldb::Catalog;

struct Args {
    experiment: String,
    scales: Vec<usize>,
    nested_cap: usize,
    seed: u64,
    executor: Executor,
    indexes: bool,
    json: Option<String>,
}

impl Args {
    fn cfg(&self) -> RunConfig {
        RunConfig::new(self.executor, self.indexes)
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: "all".to_string(),
        scales: vec![100, 1000, 10000],
        nested_cap: 1000,
        seed: 42,
        executor: Executor::Materialized,
        indexes: false,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_default();
        match flag.as_str() {
            "--experiment" | "-e" => args.experiment = value(),
            "--scales" => {
                args.scales = value()
                    .split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .collect();
            }
            "--nested-cap" => args.nested_cap = value().parse().unwrap_or(1000),
            "--executor" => {
                let v = value();
                args.executor = Executor::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown executor `{v}` (use materialized|streaming)");
                    std::process::exit(2);
                });
            }
            "--indexes" => {
                args.indexes = match value().as_str() {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    v => {
                        eprintln!("unknown --indexes value `{v}` (use on|off)");
                        std::process::exit(2);
                    }
                };
            }
            "--json" => args.json = Some(value()),
            "--smoke" => {
                // CI configuration: everything, tiny, fast.
                args.scales = vec![50];
                args.nested_cap = 50;
                args.experiment = "all".to_string();
            }
            "--seed" => args.seed = value().parse().unwrap_or(42),
            "--help" | "-h" => {
                println!("see module docs: cargo doc -p bench-harness");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let run_all = args.experiment == "all";
    let mut report = Report::new();
    println!("ordered-unnesting harness — reproducing the §5 evaluation");
    println!(
        "scales {:?}, nested plans measured up to {} (extrapolated beyond, marked est.), \
         seed {}, executor {}, indexes {}\n",
        args.scales,
        args.nested_cap,
        args.seed,
        args.executor.label(),
        args.cfg().indexes_label()
    );
    if run_all || args.experiment == "fig6" {
        fig6(&args);
    }
    if run_all || args.experiment == "grouping" {
        grouping(&args, &mut report);
    }
    if run_all || args.experiment == "aggregation" {
        simple_table(
            &args,
            &mut report,
            &Q2_AGGREGATION,
            "Query 1.1.9.10 (Aggregation) — §5.2",
            "books",
        );
    }
    if run_all || args.experiment == "existential1" {
        simple_table(
            &args,
            &mut report,
            &Q3_EXISTENTIAL,
            "Query 1.1.9.5 (Existential Quantification I) — §5.3",
            "books/reviews",
        );
    }
    if run_all || args.experiment == "existential2" {
        simple_table(
            &args,
            &mut report,
            &Q4_EXISTS,
            "Existential Quantification II (exists()) — §5.4",
            "books",
        );
    }
    if run_all || args.experiment == "universal" {
        simple_table(
            &args,
            &mut report,
            &Q5_UNIVERSAL,
            "Universal Quantification — §5.5",
            "books",
        );
    }
    if run_all || args.experiment == "having" {
        simple_table(
            &args,
            &mut report,
            &Q6_HAVING,
            "Query 1.4.4.14 (Aggregation in the Where Clause) — §5.6",
            "bids",
        );
    }
    if run_all || args.experiment == "dblp" {
        dblp(&args, &mut report);
    }
    if run_all || args.experiment == "costmodel" {
        costmodel(&args, &mut report);
    }
    if run_all || args.experiment == "index" {
        index_ablation(&args, &mut report);
    }
    if run_all || args.experiment == "range" {
        range_ablation(&args, &mut report);
    }
    if run_all || args.experiment == "composite" {
        composite_ablation(&args, &mut report);
    }
    if let Some(path) = &args.json {
        report
            .write(path)
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {} result rows to {path}", report.len());
    }
}

// ---------------------------------------------------------------------
// Access-path ablations: scan- vs index-backed quantifier joins
// ---------------------------------------------------------------------

/// The `executor_ablation`-style comparison for access paths: run each
/// workload's quantifier-join plans with `--indexes off` and `on`
/// (streaming executor — its probe counters make the work visible),
/// byte-compare the outputs (CI fails on any divergence), and assert
/// the indexed run examines strictly fewer tuples while actually
/// probing the index. The examined count includes the build side's
/// production, which the index joins skip entirely.
///
/// `index_ablation` covers the equality workloads (hash-join scan
/// form); `range_ablation` covers the inequality workloads, whose scan
/// form is the definitional nested loop the `IndexRangeJoin` replaces.
fn index_ablation(args: &Args, report: &mut Report) {
    access_path_ablation(
        args,
        report,
        "Index ablation: scan vs index-backed quantifier joins",
        &[
            &Q3_EXISTENTIAL,
            &Q4_EXISTS,
            &Q5_UNIVERSAL,
            &Q9_COMPOSITE,
            &Q10_DEEP,
        ],
        "index",
    );
}

/// The focused composite/deep cut of the index ablation: the two-key
/// (`IndexCompositeSemiJoin`) and variable-depth-ancestor workloads that
/// the multi-key and descendant-above-key conversions unlock — run
/// separately in CI so a regression in either conversion fails a named
/// step.
fn composite_ablation(args: &Args, report: &mut Report) {
    access_path_ablation(
        args,
        report,
        "Composite ablation: multi-key + variable-depth quantifier joins",
        &[&Q9_COMPOSITE, &Q10_DEEP],
        "composite",
    );
}

fn range_ablation(args: &Args, report: &mut Report) {
    let range: Vec<&ordered_unnesting::workloads::Workload> =
        ordered_unnesting::workloads::RANGE.iter().collect();
    access_path_ablation(
        args,
        report,
        "Range ablation: loop vs range-probe inequality quantifier joins",
        &range,
        "range",
    );
}

fn access_path_ablation(
    args: &Args,
    report: &mut Report,
    title: &str,
    workloads: &[&ordered_unnesting::workloads::Workload],
    prefix: &str,
) {
    println!("== {title} ==\n");
    println!(
        "{:<16} {:<14} {:>7} {:>12} {:>12} {:>10} {:>10} {:>9}",
        "workload", "plan", "scale", "scan", "indexed", "examined", "examined", "lookups"
    );
    println!(
        "{:<16} {:<14} {:>7} {:>12} {:>12} {:>10} {:>10} {:>9}",
        "", "", "", "(time)", "(time)", "(scan)", "(indexed)", "(indexed)"
    );
    for w in workloads {
        for &scale in &args.scales {
            let catalog = standard_catalog(scale, 2, args.seed);
            for (label, expr) in plans_for(w, &catalog) {
                if !label.contains("semijoin") {
                    continue;
                }
                let scan_cfg = RunConfig::new(Executor::Streaming, false);
                let index_cfg = RunConfig::new(Executor::Streaming, true);
                // One untimed warm-up per configuration: the indexed run
                // builds its path/value indexes here (the eager-build
                // strategy — the paper's experiments likewise measure
                // against a warm database cache). The warm-up results
                // double as the byte-identical-output check.
                let scan_warm = scan_cfg.run(&expr, &catalog).expect("scan plan runs");
                let index_warm = index_cfg.run(&expr, &catalog).expect("indexed plan runs");
                assert_eq!(
                    scan_warm.output, index_warm.output,
                    "[{}] ablation Ξ outputs diverge byte-wise",
                    w.id
                );
                assert_eq!(
                    scan_warm.rows, index_warm.rows,
                    "[{}] ablation rows diverge",
                    w.id
                );
                let scan = measure_plan_cfg(&label, &expr, &catalog, scan_cfg);
                let indexed = measure_plan_cfg(&label, &expr, &catalog, index_cfg);
                assert!(
                    indexed.tuples_examined() < scan.tuples_examined(),
                    "[{}] index-backed join must examine strictly fewer tuples \
                     ({} vs {})",
                    w.id,
                    indexed.tuples_examined(),
                    scan.tuples_examined()
                );
                assert!(
                    indexed.index_lookups > 0,
                    "[{}] the indexed plan must actually probe the index",
                    w.id
                );
                println!(
                    "{:<16} {:<14} {:>7} {:>12} {:>12} {:>10} {:>10} {:>9}",
                    w.id,
                    label,
                    scale,
                    fmt_secs(scan.elapsed, false),
                    fmt_secs(indexed.elapsed, false),
                    scan.tuples_examined(),
                    indexed.tuples_examined(),
                    indexed.index_lookups
                );
                let knobs = [("scale", scale as i64)];
                report.record(&format!("{prefix}:{}", w.id), scan_cfg, &knobs, &scan);
                report.record(&format!("{prefix}:{}", w.id), index_cfg, &knobs, &indexed);
            }
        }
    }
    println!();
}

// ---------------------------------------------------------------------
// Cost-model validation: estimates vs. measured times
// ---------------------------------------------------------------------

fn costmodel(args: &Args, report: &mut Report) {
    println!("== Cost model: estimated cost vs. measured time (scale 1000) ==\n");
    let scale = 1000.min(args.nested_cap);
    let catalog = standard_catalog(scale, 2, args.seed);
    for w in [&Q1_GROUPING, &Q3_EXISTENTIAL, &Q5_UNIVERSAL, &Q6_HAVING] {
        println!("{} ({})", w.id, w.paper_ref);
        let nested = xquery::compile(w.query, &catalog).expect("compiles");
        let plans = unnest::enumerate_plans(&nested, &catalog);
        let ranked = unnest::rank_plans_with(plans, &catalog, args.indexes);
        for (p, est) in &ranked {
            let m = measure_plan_cfg(&p.label, &p.expr, &catalog, args.cfg());
            report.record(
                &format!("costmodel:{}", w.id),
                args.cfg(),
                &[("scale", scale as i64), ("estimated_cost", est.cost as i64)],
                &m,
            );
            println!(
                "  {:<14} est {:>14.0}   measured {:>12}",
                p.label,
                est.cost,
                fmt_secs(m.elapsed, false)
            );
        }
        let cheapest = &ranked[0].0.label;
        println!("  → model picks `{cheapest}`\n");
    }
}

// ---------------------------------------------------------------------
// Fig. 6: input document sizes
// ---------------------------------------------------------------------

fn human(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2} MB", bytes as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1} KB", bytes as f64 / 1024.0)
    }
}

fn fig6(args: &Args) {
    println!("== Fig. 6: size of the input documents ==\n");
    println!("Use case XMP");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "size", "bib(2)", "bib(5)", "bib(10)", "prices", "reviews"
    );
    for &n in &args.scales {
        let mut row = format!("{n:<8}");
        for apb in [2usize, 5, 10] {
            let d = gen_bib(&BibConfig {
                books: n,
                authors_per_book: apb,
                seed: args.seed,
                ..BibConfig::default()
            });
            row.push_str(&format!(" {:>10}", human(document_size_bytes(&d))));
        }
        let p = gen_prices(&PricesConfig {
            entries: n,
            seed: args.seed,
            ..Default::default()
        });
        let r = gen_reviews(&ReviewsConfig {
            entries: n,
            seed: args.seed,
            ..Default::default()
        });
        row.push_str(&format!(
            " {:>12} {:>12}",
            human(document_size_bytes(&p)),
            human(document_size_bytes(&r))
        ));
        println!("{row}");
    }
    println!("\nUse case R");
    println!(
        "{:<8} {:>12} {:>12} {:>12}",
        "size", "bids", "items", "users"
    );
    for &n in &args.scales {
        let docs = gen_auction(&AuctionConfig {
            bids: n,
            seed: args.seed,
            ..Default::default()
        });
        println!(
            "{n:<8} {:>12} {:>12} {:>12}",
            human(document_size_bytes(&docs.bids)),
            human(document_size_bytes(&docs.items)),
            human(document_size_bytes(&docs.users))
        );
    }
    println!();
}

// ---------------------------------------------------------------------
// §5.1 grouping: plans × authors-per-book × scale
// ---------------------------------------------------------------------

fn grouping(args: &Args, report: &mut Report) {
    println!("== Query 1.1.9.4 (Grouping) — §5.1 ==\n");
    // plan -> fanout -> scale -> measurement
    let mut table: BTreeMap<String, BTreeMap<usize, BTreeMap<usize, Measurement>>> =
        BTreeMap::new();
    let mut plan_order: Vec<String> = Vec::new();
    for &fanout in &[2usize, 5, 10] {
        for &scale in &args.scales {
            let mut catalog = Catalog::new();
            catalog.register(gen_bib(&BibConfig {
                books: scale,
                authors_per_book: fanout,
                seed: args.seed,
                ..BibConfig::default()
            }));
            for (label, expr) in plans_for(&Q1_GROUPING, &catalog) {
                if !plan_order.contains(&label) {
                    plan_order.push(label.clone());
                }
                let m = if label == "nested" && scale > args.nested_cap {
                    estimate_from_smaller(&table, &label, fanout, scale)
                } else {
                    measure_plan_cfg(&label, &expr, &catalog, args.cfg())
                };
                report.record(
                    "grouping",
                    args.cfg(),
                    &[("scale", scale as i64), ("fanout", fanout as i64)],
                    &m,
                );
                table
                    .entry(label)
                    .or_default()
                    .entry(fanout)
                    .or_default()
                    .insert(scale, m);
            }
        }
    }
    print_grouping_table(&plan_order, &table, &args.scales);
}

fn estimate_from_smaller(
    table: &BTreeMap<String, BTreeMap<usize, BTreeMap<usize, Measurement>>>,
    label: &str,
    fanout: usize,
    scale: usize,
) -> Measurement {
    let base = table
        .get(label)
        .and_then(|t| t.get(&fanout))
        .and_then(|m| m.iter().next_back())
        .map(|(s, m)| (*s, m.elapsed));
    let (s_small, t_small) = base.unwrap_or((1, std::time::Duration::from_millis(1)));
    Measurement::estimated(label, extrapolate_nested(t_small, s_small, scale))
}

fn print_grouping_table(
    plan_order: &[String],
    table: &BTreeMap<String, BTreeMap<usize, BTreeMap<usize, Measurement>>>,
    scales: &[usize],
) {
    print!("{:<12} {:>4}", "Plan", "apb");
    for s in scales {
        print!(" {:>16}", s);
    }
    println!();
    for label in plan_order {
        let Some(by_fanout) = table.get(label) else {
            continue;
        };
        for (fanout, by_scale) in by_fanout {
            print!("{label:<12} {fanout:>4}");
            for s in scales {
                match by_scale.get(s) {
                    Some(m) => print!(" {:>16}", fmt_secs(m.elapsed, m.estimated)),
                    None => print!(" {:>16}", "-"),
                }
            }
            println!();
        }
    }
    println!();
}

// ---------------------------------------------------------------------
// Single-knob tables (§5.2–§5.6)
// ---------------------------------------------------------------------

fn simple_table(
    args: &Args,
    report: &mut Report,
    workload: &ordered_unnesting::workloads::Workload,
    title: &str,
    scale_label: &str,
) {
    println!("== {title} ==\n");
    let mut rows: BTreeMap<String, Vec<(usize, Measurement)>> = BTreeMap::new();
    let mut plan_order: Vec<String> = Vec::new();
    for &scale in &args.scales {
        let catalog = standard_catalog(scale, 2, args.seed);
        for (label, expr) in plans_for(workload, &catalog) {
            if !plan_order.contains(&label) {
                plan_order.push(label.clone());
            }
            let m = if label == "nested" && scale > args.nested_cap {
                let prior = rows.get(&label).and_then(|v| v.last().cloned());
                match prior {
                    Some((s_small, prev)) => Measurement::estimated(
                        &label,
                        extrapolate_nested(prev.elapsed, s_small, scale),
                    ),
                    None => measure_plan_cfg(&label, &expr, &catalog, args.cfg()),
                }
            } else {
                measure_plan_cfg(&label, &expr, &catalog, args.cfg())
            };
            report.record(workload.id, args.cfg(), &[("scale", scale as i64)], &m);
            rows.entry(label).or_default().push((scale, m));
        }
    }
    print!("{:<14}", "Plan");
    for s in &args.scales {
        print!(" {:>20}", format!("{s} {scale_label}"));
    }
    println!();
    for label in &plan_order {
        let Some(cells) = rows.get(label) else {
            continue;
        };
        print!("{label:<14}");
        for (_, m) in cells {
            print!(" {:>20}", fmt_secs(m.elapsed, m.estimated));
        }
        println!();
    }
    println!();
}

// ---------------------------------------------------------------------
// §5.1 DBLP anecdote
// ---------------------------------------------------------------------

fn dblp(args: &Args, report: &mut Report) {
    println!("== §5.1 DBLP anecdote (dblp-like document, authors without books) ==\n");
    let publications = 20_000usize.min(args.nested_cap.max(1) * 20);
    let mut catalog = Catalog::new();
    catalog.register(gen_dblp(&DblpConfig {
        publications,
        seed: args.seed,
        ..DblpConfig::default()
    }));
    let plans = plans_for(&Q1_DBLP, &catalog);
    let labels: Vec<&str> = plans.iter().map(|(l, _)| l.as_str()).collect();
    println!("document: {publications} publications (10% books)");
    println!("plans offered: {labels:?}");
    assert!(
        !labels.contains(&"grouping"),
        "Eqv. 5 must be refused on the dblp-like DTD"
    );
    // Outer join: measured. Nested: measured on a 1/20 sample, then
    // extrapolated — the paper's 182h42m figure was likewise beyond
    // patience on the full document.
    for (label, expr) in &plans {
        if label == "nested" {
            let sample = (publications / 20).max(1);
            let mut small = Catalog::new();
            small.register(gen_dblp(&DblpConfig {
                publications: sample,
                seed: args.seed,
                ..DblpConfig::default()
            }));
            let nested_small = xquery::compile(Q1_DBLP.query, &small).expect("compiles");
            let m = measure_plan_cfg("nested", &nested_small, &small, args.cfg());
            let est = extrapolate_nested(m.elapsed, sample, publications);
            report.record(
                "dblp",
                args.cfg(),
                &[("publications", publications as i64)],
                &Measurement::estimated("nested", est),
            );
            println!(
                "{label:<12} {:>16}   (measured {} at {} publications)",
                fmt_secs(est, true),
                fmt_secs(m.elapsed, false),
                sample
            );
        } else {
            let m = measure_plan_cfg(label, expr, &catalog, args.cfg());
            report.record(
                "dblp",
                args.cfg(),
                &[("publications", publications as i64)],
                &m,
            );
            println!(
                "{label:<12} {:>16}   ({} document scans)",
                fmt_secs(m.elapsed, false),
                m.doc_scans
            );
        }
    }
    println!();
}
