//! `harness` — regenerates every table and figure of the paper's
//! evaluation (§5) with this repository's implementations.
//!
//! ```sh
//! cargo run --release -p bench-harness --bin harness -- [--experiment all]
//!     [--scales 100,1000,10000] [--nested-cap 1000] [--seed 42]
//!     [--executor materialized|streaming] [--indexes on|off]
//!     [--json results.json] [--smoke]
//! ```
//!
//! Experiments: `fig6`, `grouping` (§5.1), `dblp` (§5.1), `aggregation`
//! (§5.2), `existential1` (§5.3), `existential2` (§5.4), `universal`
//! (§5.5), `having` (§5.6), `costmodel`, `index` (scan- vs index-backed
//! quantifier joins, incl. the composite-key and variable-depth
//! workloads), `range` (loop- vs range-probe inequality quantifier
//! joins), `composite` (the focused multi-key/deep-ancestor cut),
//! `update` (interleaved insert/query workload: posting-list delta
//! maintenance vs rebuild-from-scratch), `service` (the query-service
//! plan cache: cold vs warm latency per workload, then sustained mixed
//! query/update throughput), `observability` (EXPLAIN ANALYZE over
//! every workload on both executors: per-operator
//! `(predicted_cost, measured_us, rows)` calibration pairs),
//! `calibration` (grid-fit the cost model's guessed constants —
//! index-probe weight and untraceable-path fan-out — against measured
//! plan times, then check the fitted model's plan ranking
//! rank-correlates with the measured ranking on Q1–Q10), `concurrency`
//! (lock-free snapshot reads: reader count × writer churn rate sweep
//! over streamed queries, asserting throughput scales with readers and
//! every streamed result is byte-identical to a serial replay of its
//! `updates_seen` state), `parallel` (morsel-driven intra-query
//! parallelism: the same compiled quantifier plan run at a worker
//! ladder, byte-compared against the serial stream, with the ≥1.5×
//! speedup-at-4-workers floor asserted on machines with ≥4 cores at
//! scale ≥200), `fuzz` (the differential fuzz oracle as a throughput
//! cell: seeded random corpus/query/update cases through the full
//! scan/indexed × materializing/streaming × parallel-degree ×
//! maintenance-mode matrix; any disagreement fails the harness with a
//! shrunk reproducer — budget via `XQD_FUZZ_SEED`/`XQD_FUZZ_CASES`),
//! or `all`.
//! Every `--json` cell records the cost model's `predicted_cost` next
//! to the measured time — and, per operator, the traced companion
//! run's `operators` array — so `BENCH_*.json` trajectories can
//! calibrate the probe constants against reality.
//!
//! `--indexes on` compiles every measured plan through
//! `engine::compile_indexed`, so document-rooted path scans and
//! semi/anti joins run on the `xmldb::index` access paths. `--json`
//! writes every measured *plan* cell as a JSON array (machine-readable
//! `BENCH_*.json` trajectories; `fig6` reports document sizes, not plan
//! runs, so it has no cells). `--smoke` is the CI configuration: tiny
//! scales, every experiment, seconds not minutes.
//!
//! Nested plans are measured up to `--nested-cap` records and
//! extrapolated quadratically above it (marked `est.`), because their
//! per-tuple document re-scan makes full 10 000-record runs take minutes
//! — the very effect the paper measures. Pass `--nested-cap 10000` for
//! fully measured tables.

use std::collections::BTreeMap;

use bench_harness::{
    extrapolate_nested, fmt_secs, measure_plan_cfg, plans_for, Executor, Measurement, Report,
    RunConfig,
};
use ordered_unnesting::workloads::{
    self, Q10_DEEP, Q1_DBLP, Q1_GROUPING, Q2_AGGREGATION, Q3_EXISTENTIAL, Q4_EXISTS, Q5_UNIVERSAL,
    Q6_HAVING, Q9_COMPOSITE,
};
use xmldb::gen::{
    gen_auction, gen_bib, gen_dblp, gen_prices, gen_reviews, standard_catalog, AuctionConfig,
    BibConfig, DblpConfig, PricesConfig, ReviewsConfig,
};
use xmldb::serializer::document_size_bytes;
use xmldb::Catalog;

struct Args {
    experiment: String,
    scales: Vec<usize>,
    nested_cap: usize,
    seed: u64,
    executor: Executor,
    indexes: bool,
    json: Option<String>,
}

impl Args {
    fn cfg(&self) -> RunConfig {
        RunConfig::new(self.executor, self.indexes)
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: "all".to_string(),
        scales: vec![100, 1000, 10000],
        nested_cap: 1000,
        seed: 42,
        executor: Executor::Materialized,
        indexes: false,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_default();
        match flag.as_str() {
            "--experiment" | "-e" => args.experiment = value(),
            "--scales" => {
                args.scales = value()
                    .split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .collect();
            }
            "--nested-cap" => args.nested_cap = value().parse().unwrap_or(1000),
            "--executor" => {
                let v = value();
                args.executor = Executor::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown executor `{v}` (use materialized|streaming)");
                    std::process::exit(2);
                });
            }
            "--indexes" => {
                args.indexes = match value().as_str() {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    v => {
                        eprintln!("unknown --indexes value `{v}` (use on|off)");
                        std::process::exit(2);
                    }
                };
            }
            "--json" => args.json = Some(value()),
            "--smoke" => {
                // CI configuration: everything, tiny, fast.
                args.scales = vec![50];
                args.nested_cap = 50;
                args.experiment = "all".to_string();
            }
            "--seed" => args.seed = value().parse().unwrap_or(42),
            "--help" | "-h" => {
                println!("see module docs: cargo doc -p bench-harness");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let run_all = args.experiment == "all";
    let mut report = Report::new();
    println!("ordered-unnesting harness — reproducing the §5 evaluation");
    println!(
        "scales {:?}, nested plans measured up to {} (extrapolated beyond, marked est.), \
         seed {}, executor {}, indexes {}\n",
        args.scales,
        args.nested_cap,
        args.seed,
        args.executor.label(),
        args.cfg().indexes_label()
    );
    if run_all || args.experiment == "fig6" {
        fig6(&args);
    }
    if run_all || args.experiment == "grouping" {
        grouping(&args, &mut report);
    }
    if run_all || args.experiment == "aggregation" {
        simple_table(
            &args,
            &mut report,
            &Q2_AGGREGATION,
            "Query 1.1.9.10 (Aggregation) — §5.2",
            "books",
        );
    }
    if run_all || args.experiment == "existential1" {
        simple_table(
            &args,
            &mut report,
            &Q3_EXISTENTIAL,
            "Query 1.1.9.5 (Existential Quantification I) — §5.3",
            "books/reviews",
        );
    }
    if run_all || args.experiment == "existential2" {
        simple_table(
            &args,
            &mut report,
            &Q4_EXISTS,
            "Existential Quantification II (exists()) — §5.4",
            "books",
        );
    }
    if run_all || args.experiment == "universal" {
        simple_table(
            &args,
            &mut report,
            &Q5_UNIVERSAL,
            "Universal Quantification — §5.5",
            "books",
        );
    }
    if run_all || args.experiment == "having" {
        simple_table(
            &args,
            &mut report,
            &Q6_HAVING,
            "Query 1.4.4.14 (Aggregation in the Where Clause) — §5.6",
            "bids",
        );
    }
    if run_all || args.experiment == "dblp" {
        dblp(&args, &mut report);
    }
    if run_all || args.experiment == "costmodel" {
        costmodel(&args, &mut report);
    }
    if run_all || args.experiment == "index" {
        index_ablation(&args, &mut report);
    }
    if run_all || args.experiment == "range" {
        range_ablation(&args, &mut report);
    }
    if run_all || args.experiment == "composite" {
        composite_ablation(&args, &mut report);
    }
    if run_all || args.experiment == "update" {
        update_ablation(&args, &mut report);
    }
    if run_all || args.experiment == "service" {
        service_ablation(&args, &mut report);
    }
    if run_all || args.experiment == "observability" {
        observability(&args, &mut report);
    }
    if run_all || args.experiment == "calibration" {
        calibration(&args, &mut report);
    }
    if run_all || args.experiment == "concurrency" {
        concurrency(&args, &mut report);
    }
    if run_all || args.experiment == "parallel" {
        parallel_ablation(&args, &mut report);
    }
    if run_all || args.experiment == "fuzz" {
        fuzz_oracle(&args, &mut report);
    }
    if let Some(path) = &args.json {
        report
            .write(path)
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {} result rows to {path}", report.len());
    }
}

// ---------------------------------------------------------------------
// Access-path ablations: scan- vs index-backed quantifier joins
// ---------------------------------------------------------------------

/// The `executor_ablation`-style comparison for access paths: run each
/// workload's quantifier-join plans with `--indexes off` and `on`
/// (streaming executor — its probe counters make the work visible),
/// byte-compare the outputs (CI fails on any divergence), and assert
/// the indexed run examines strictly fewer tuples while actually
/// probing the index. The examined count includes the build side's
/// production, which the index joins skip entirely.
///
/// `index_ablation` covers the equality workloads (hash-join scan
/// form); `range_ablation` covers the inequality workloads, whose scan
/// form is the definitional nested loop the `IndexRangeJoin` replaces.
fn index_ablation(args: &Args, report: &mut Report) {
    access_path_ablation(
        args,
        report,
        "Index ablation: scan vs index-backed quantifier joins",
        &[
            &Q3_EXISTENTIAL,
            &Q4_EXISTS,
            &Q5_UNIVERSAL,
            &Q9_COMPOSITE,
            &Q10_DEEP,
        ],
        "index",
    );
}

/// The focused composite/deep cut of the index ablation: the two-key
/// (`IndexCompositeSemiJoin`) and variable-depth-ancestor workloads that
/// the multi-key and descendant-above-key conversions unlock — run
/// separately in CI so a regression in either conversion fails a named
/// step.
fn composite_ablation(args: &Args, report: &mut Report) {
    access_path_ablation(
        args,
        report,
        "Composite ablation: multi-key + variable-depth quantifier joins",
        &[&Q9_COMPOSITE, &Q10_DEEP],
        "composite",
    );
}

fn range_ablation(args: &Args, report: &mut Report) {
    let range: Vec<&ordered_unnesting::workloads::Workload> =
        ordered_unnesting::workloads::RANGE.iter().collect();
    access_path_ablation(
        args,
        report,
        "Range ablation: loop vs range-probe inequality quantifier joins",
        &range,
        "range",
    );
}

fn access_path_ablation(
    args: &Args,
    report: &mut Report,
    title: &str,
    workloads: &[&ordered_unnesting::workloads::Workload],
    prefix: &str,
) {
    println!("== {title} ==\n");
    println!(
        "{:<16} {:<14} {:>7} {:>12} {:>12} {:>10} {:>10} {:>9}",
        "workload", "plan", "scale", "scan", "indexed", "examined", "examined", "lookups"
    );
    println!(
        "{:<16} {:<14} {:>7} {:>12} {:>12} {:>10} {:>10} {:>9}",
        "", "", "", "(time)", "(time)", "(scan)", "(indexed)", "(indexed)"
    );
    for w in workloads {
        for &scale in &args.scales {
            let catalog = standard_catalog(scale, 2, args.seed);
            for (label, expr) in plans_for(w, &catalog) {
                if !label.contains("semijoin") {
                    continue;
                }
                let scan_cfg = RunConfig::new(Executor::Streaming, false);
                let index_cfg = RunConfig::new(Executor::Streaming, true);
                // One untimed warm-up per configuration: the indexed run
                // builds its path/value indexes here (the eager-build
                // strategy — the paper's experiments likewise measure
                // against a warm database cache). The warm-up results
                // double as the byte-identical-output check.
                let scan_warm = scan_cfg.run(&expr, &catalog).expect("scan plan runs");
                let index_warm = index_cfg.run(&expr, &catalog).expect("indexed plan runs");
                assert_eq!(
                    scan_warm.output, index_warm.output,
                    "[{}] ablation Ξ outputs diverge byte-wise",
                    w.id
                );
                assert_eq!(
                    scan_warm.rows, index_warm.rows,
                    "[{}] ablation rows diverge",
                    w.id
                );
                let scan = measure_plan_cfg(&label, &expr, &catalog, scan_cfg);
                let indexed = measure_plan_cfg(&label, &expr, &catalog, index_cfg);
                assert!(
                    indexed.tuples_examined() < scan.tuples_examined(),
                    "[{}] index-backed join must examine strictly fewer tuples \
                     ({} vs {})",
                    w.id,
                    indexed.tuples_examined(),
                    scan.tuples_examined()
                );
                assert!(
                    indexed.index_lookups > 0,
                    "[{}] the indexed plan must actually probe the index",
                    w.id
                );
                println!(
                    "{:<16} {:<14} {:>7} {:>12} {:>12} {:>10} {:>10} {:>9}",
                    w.id,
                    label,
                    scale,
                    fmt_secs(scan.elapsed, false),
                    fmt_secs(indexed.elapsed, false),
                    scan.tuples_examined(),
                    indexed.tuples_examined(),
                    indexed.index_lookups
                );
                let knobs = [("scale", scale as i64)];
                report.record(&format!("{prefix}:{}", w.id), scan_cfg, &knobs, &scan);
                report.record(&format!("{prefix}:{}", w.id), index_cfg, &knobs, &indexed);
            }
        }
    }
    println!();
}

/// Differential fuzz oracle as a benchmark cell: generate seeded
/// random (corpus, query, update script) cases and push each through
/// the full execution matrix — scan vs indexed × materializing vs
/// streaming × parallel degrees {1, 2, 8} × pre/post updates under
/// both maintenance modes, plus plan equivalence and cost-model
/// convertibility. The cell reports oracle *throughput* (cases/s);
/// any disagreement fails the harness with the shrunk reproducer
/// snippet. Seed and budget honor `XQD_FUZZ_SEED` / `XQD_FUZZ_CASES`.
fn fuzz_oracle(args: &Args, report: &mut Report) {
    use std::time::Instant;

    println!("== Differential fuzzing: oracle throughput ==\n");
    let seed = fuzz::env_seed(fuzz::DEFAULT_SEED.wrapping_add(args.seed));
    let cases = fuzz::env_cases(100);
    let t0 = Instant::now();
    match fuzz::run_fuzz(seed, cases, &fuzz::GenConfig::default()) {
        Ok(rep) => {
            let elapsed = t0.elapsed();
            let mut m = Measurement::estimated(format!("oracle seed={seed}"), elapsed);
            m.estimated = false;
            m.output_len = rep.cases;
            report.record(
                "fuzz",
                RunConfig::new(Executor::Streaming, true),
                &[
                    ("cases", rep.cases as i64),
                    ("with_updates", rep.with_updates as i64),
                ],
                &m,
            );
            println!("{:>8} {:>13} {:>10}", "cases", "with-updates", "cases/s");
            println!(
                "{:>8} {:>13} {:>10.1}\n",
                rep.cases,
                rep.with_updates,
                rep.cases as f64 / elapsed.as_secs_f64()
            );
        }
        Err(failure) => panic!("differential fuzz oracle failed:\n{failure}"),
    }
}

/// Morsel-driven parallelism ablation: the quantifier workloads'
/// semijoin plans, rewritten once through `engine::apply_parallel` and
/// run at a worker ladder. Every parallel stream is byte-compared
/// against the serial run (the k-way merge's order guarantee is a CI
/// gate, not a hope), and on machines with ≥4 cores the 4-worker run
/// must beat 1 worker by ≥1.5× at scale ≥200 — the floor below which
/// the morsel scheduler would not be paying for its fan-out.
fn parallel_ablation(args: &Args, report: &mut Report) {
    use std::time::{Duration, Instant};

    println!("== Parallel ablation: morsel-driven workers over quantifier plans ==\n");
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let ladder = [1usize, 2, 4, 8];
    println!(
        "{:<16} {:<14} {:>7} {:>5} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "workload", "plan", "scale", "par?", "w=1", "w=2", "w=4", "w=8", "x4"
    );
    let wl: Vec<&workloads::Workload> = workloads::RANGE
        .iter()
        .chain(workloads::COMPOSITE.iter())
        .collect();
    for w in wl {
        for &scale in &args.scales {
            let catalog = standard_catalog(scale, 2, args.seed);
            for (label, expr) in plans_for(w, &catalog) {
                if !label.contains("semijoin") {
                    continue;
                }
                let cfg = RunConfig::new(Executor::Streaming, args.indexes);
                let serial_plan = cfg.compile(&expr, &catalog);
                let par_plan = engine::apply_parallel(&serial_plan);
                let wrapped = par_plan.explain().contains("Parallel");
                // Untimed warm-up doubles as the byte-identity reference
                // (and builds the indexes when `--indexes on`).
                let reference = engine::run_streaming_compiled(&serial_plan, &catalog)
                    .unwrap_or_else(|e| panic!("[{}] serial plan runs: {e}", w.id));
                let mut by_workers: Vec<(usize, Duration)> = Vec::new();
                for &workers in &ladder {
                    // Best-of-3: documents are memory-resident, so the
                    // minimum is the stable figure. Worker-summed
                    // metrics are identical across repeats by
                    // construction, so any repeat's counters serve.
                    let mut best: Option<Duration> = None;
                    let mut last = None;
                    for _ in 0..3 {
                        let start = Instant::now();
                        let r = engine::run_streaming_parallel(&par_plan, &catalog, workers)
                            .unwrap_or_else(|e| {
                                panic!("[{}] parallel run at {workers} workers: {e}", w.id)
                            });
                        let elapsed = start.elapsed();
                        assert_eq!(
                            r.output, reference.output,
                            "[{}] parallel Ξ output diverges at {workers} workers",
                            w.id
                        );
                        if best.is_none_or(|b| elapsed < b) {
                            best = Some(elapsed);
                        }
                        last = Some(r);
                    }
                    let (elapsed, r) = (best.unwrap(), last.unwrap());
                    report.record(
                        &format!("parallel:{}", w.id),
                        cfg,
                        &[("scale", scale as i64), ("workers", workers as i64)],
                        &Measurement {
                            plan: label.clone(),
                            elapsed,
                            doc_scans: r.metrics.doc_scans,
                            output_len: r.output.len(),
                            estimated: false,
                            tuples_produced: r.metrics.tuples_produced,
                            probe_tuples: r.metrics.probe_tuples,
                            index_lookups: r.metrics.index_lookups,
                            index_hits: r.metrics.index_hits,
                            predicted_cost: None,
                            operators: Vec::new(),
                        },
                    );
                    by_workers.push((workers, elapsed));
                }
                let time_at = |n: usize| {
                    by_workers
                        .iter()
                        .find(|(wk, _)| *wk == n)
                        .map(|(_, t)| *t)
                        .unwrap()
                };
                let speedup4 = time_at(1).as_secs_f64() / time_at(4).as_secs_f64().max(1e-9);
                println!(
                    "{:<16} {:<14} {:>7} {:>5} {:>12} {:>12} {:>12} {:>12} {:>7.2}x",
                    w.id,
                    label,
                    scale,
                    if wrapped { "yes" } else { "no" },
                    fmt_secs(time_at(1), false),
                    fmt_secs(time_at(2), false),
                    fmt_secs(time_at(4), false),
                    fmt_secs(time_at(8), false),
                    speedup4
                );
                if wrapped && !args.indexes && hw >= 4 && scale >= 200 {
                    assert!(
                        speedup4 >= 1.5,
                        "[{}] 4-worker speedup {speedup4:.2}x is below the 1.5x floor \
                         at scale {scale} on a {hw}-core machine",
                        w.id
                    );
                }
            }
        }
    }
    println!();
}

// ---------------------------------------------------------------------
// Update ablation: delta maintenance vs rebuild-from-scratch
// ---------------------------------------------------------------------

/// Interleaved insert/query workload over a mutable store: per round,
/// one catalog-level update to `bib.xml` (duplicate a book / delete a
/// book / retitle one) followed by the quantifier workloads (Q3
/// semijoin, Q5 anti-semijoin) run scan- and index-backed, with the
/// outputs byte-compared (CI fails on any post-update divergence).
///
/// The whole phase runs twice — once with posting-list **delta**
/// maintenance (the default) and once in **rebuild** mode (every update
/// drops the document's indexes; the next query pays full builds) — and
/// asserts the maintained-postings figure of the delta run stays
/// strictly below the rebuild run's built-postings figure. That is the
/// incremental-maintenance claim in one number: a delta touches the
/// postings of the touched subtree, a rebuild touches them all.
fn update_ablation(args: &Args, report: &mut Report) {
    use xmldb::MaintenanceMode;
    println!("== Update ablation: incremental index maintenance vs rebuild ==\n");
    println!(
        "{:<8} {:>9} {:>8} {:>14} {:>14} {:>12}",
        "mode", "scale", "updates", "postings", "query time", "update time"
    );
    let rounds = 9usize;
    for &scale in &args.scales {
        let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
        for mode in [MaintenanceMode::Delta, MaintenanceMode::Rebuild] {
            let mode_label = match mode {
                MaintenanceMode::Delta => "delta",
                MaintenanceMode::Rebuild => "rebuild",
            };
            let mut catalog = standard_catalog(scale, 2, args.seed);
            catalog.set_index_maintenance(mode);
            let plans: Vec<(String, nal::Expr)> = [&Q3_EXISTENTIAL, &Q5_UNIVERSAL]
                .iter()
                .flat_map(|w| plans_for(w, &catalog))
                .filter(|(label, _)| label.contains("semijoin"))
                .collect();
            let scan_cfg = RunConfig::new(Executor::Streaming, false);
            let index_cfg = RunConfig::new(Executor::Streaming, true);
            // Warm every index the plans probe, then count from zero:
            // the measured postings are pure maintenance traffic.
            for (_, expr) in &plans {
                index_cfg.run(expr, &catalog).expect("warm-up");
            }
            catalog.indexes().reset_maintenance_stats();
            let id = catalog.by_uri("bib.xml").expect("bib registered");
            let mut update_time = std::time::Duration::ZERO;
            let mut query_time = std::time::Duration::ZERO;
            for round in 0..rounds {
                let t0 = std::time::Instant::now();
                apply_update(&mut catalog, id, round);
                update_time += t0.elapsed();
                for (label, expr) in &plans {
                    let t1 = std::time::Instant::now();
                    let indexed = index_cfg.run(expr, &catalog).expect("indexed plan runs");
                    query_time += t1.elapsed();
                    let scan = scan_cfg.run(expr, &catalog).expect("scan plan runs");
                    assert_eq!(
                        scan.output, indexed.output,
                        "[update/{mode_label}] round {round}, plan {label}: \
                         post-update indexed output diverges from scan"
                    );
                }
            }
            let stats = catalog.index_maintenance_stats();
            let postings = stats.postings_total();
            totals.insert(mode_label, postings);
            println!(
                "{:<8} {:>9} {:>8} {:>14} {:>14} {:>12}",
                mode_label,
                scale,
                rounds,
                postings,
                fmt_secs(query_time, false),
                fmt_secs(update_time, false)
            );
            // The probe-metric fields stay zero: this experiment's
            // figures are the maintenance counters, recorded as
            // dedicated knobs below (repurposing e.g. `index_lookups`
            // would corrupt cross-experiment JSON consumers).
            let m = Measurement {
                plan: mode_label.to_string(),
                elapsed: query_time + update_time,
                doc_scans: 0,
                output_len: 0,
                estimated: false,
                tuples_produced: 0,
                probe_tuples: 0,
                index_lookups: 0,
                index_hits: 0,
                predicted_cost: None,
                operators: Vec::new(),
            };
            report.record(
                "update",
                RunConfig::new(Executor::Streaming, true),
                &[
                    ("scale", scale as i64),
                    ("updates", rounds as i64),
                    ("delta_updates", stats.delta_updates as i64),
                    ("postings", postings as i64),
                    ("postings_built", stats.postings_built as i64),
                    ("postings_maintained", stats.postings_maintained as i64),
                ],
                &m,
            );
        }
        let (delta, rebuild) = (totals["delta"], totals["rebuild"]);
        assert!(
            delta < rebuild,
            "delta maintenance must touch strictly fewer postings than \
             rebuild-from-scratch ({delta} vs {rebuild} at scale {scale})"
        );
        println!(
            "  → delta touches {delta} postings vs {rebuild} rebuilt ({:.1}× cheaper)\n",
            rebuild as f64 / delta.max(1) as f64
        );
    }
}

/// One deterministic update per round, cycling through the three kinds.
fn apply_update(catalog: &mut Catalog, id: xmldb::DocId, round: usize) {
    let doc = catalog.doc(id).as_ref().clone();
    let root = doc.root_element().expect("bib root");
    let books: Vec<xmldb::NodeId> = doc.children(root).collect();
    let n = books.len();
    assert!(n >= 3, "update ablation needs at least 3 books");
    match round % 3 {
        0 => {
            // Duplicate one book in front of another.
            let src = books[round % n];
            let before = books[(round + n / 2) % n];
            catalog
                .insert_subtree(id, root, Some(before), &doc, src)
                .expect("insert");
        }
        1 => {
            catalog
                .delete_subtree(id, books[(round + 1) % n])
                .expect("delete");
        }
        _ => {
            let book = books[round % n];
            let title = doc.children(book).next().expect("title child");
            if let Some(text) = doc.children(title).next() {
                catalog
                    .replace_text(id, text, &format!("Retitled {round}"))
                    .expect("replace_text");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Query-service ablation: cold vs warm planning, sustained mixed load
// ---------------------------------------------------------------------

/// The plan-cache claim in numbers. Phase 1 runs every workload cold
/// (full parse → normalize → unnest → compile) and then warm (cache
/// hit) through one `QueryService`, measuring *end-to-end* latency —
/// the `QueryOutcome::elapsed` field only times execution, and the
/// whole point is the frontend work the warm path skips. The harness
/// asserts the best warm run beats the cold run strictly, that every
/// warm run is an actual cache hit, and that outputs stay
/// byte-identical. Phase 2 hammers the same service with several
/// reader threads and an interleaved updater and reports sustained
/// throughput (every query still checked against the cold output of
/// the catalog state its `updates_seen` stamp names — here just for
/// the zero-update prefix, the full replay matrix lives in
/// `crates/service/tests/concurrent.rs`).
fn service_ablation(args: &Args, report: &mut Report) {
    use service::{CacheOutcome, ExecMode, QueryService, ServiceConfig, UpdateOp};
    use std::sync::Arc;
    use std::time::Instant;

    const WARM_ROUNDS: usize = 5;
    println!("== Service ablation: plan-cache cold vs warm, mixed load ==\n");
    let all: Vec<&workloads::Workload> = workloads::ALL
        .iter()
        .chain(workloads::RANGE.iter())
        .chain(workloads::COMPOSITE.iter())
        .collect();
    let cfg = RunConfig::new(Executor::Streaming, true);
    for &scale in &args.scales {
        println!(
            "{:<16} {:>9} {:>12} {:>12} {:>9}",
            "workload", "scale", "cold", "warm(best)", "speedup"
        );
        let svc = Arc::new(QueryService::with_catalog(
            standard_catalog(scale, 2, args.seed),
            ServiceConfig {
                cache_capacity: 64,
                use_indexes: true,
                exec: ExecMode::Streaming,
                slow_query_us: None,
                ..ServiceConfig::default()
            },
        ));
        for w in &all {
            let t0 = Instant::now();
            let cold = svc.query(w.query).expect("cold run");
            let cold_latency = t0.elapsed();
            assert_eq!(cold.cache, CacheOutcome::Miss, "[service] {} cold", w.id);
            let mut warm_best = std::time::Duration::MAX;
            for round in 0..WARM_ROUNDS {
                let t1 = Instant::now();
                let warm = svc.query(w.query).expect("warm run");
                let latency = t1.elapsed();
                assert_eq!(
                    warm.cache,
                    CacheOutcome::Hit,
                    "[service] {} warm round {round}",
                    w.id
                );
                assert_eq!(
                    warm.output, cold.output,
                    "[service] {} warm round {round}: output diverges from cold",
                    w.id
                );
                warm_best = warm_best.min(latency);
            }
            assert!(
                warm_best < cold_latency,
                "[service] {}: warm-path latency must beat cold planning \
                 ({warm_best:?} vs {cold_latency:?} at scale {scale})",
                w.id
            );
            println!(
                "{:<16} {:>9} {:>12} {:>12} {:>8.1}×",
                w.id,
                scale,
                fmt_secs(cold_latency, false),
                fmt_secs(warm_best, false),
                cold_latency.as_secs_f64() / warm_best.as_secs_f64().max(1e-9)
            );
            for (phase, latency) in [("cold", cold_latency), ("warm", warm_best)] {
                let m = Measurement {
                    plan: format!("{}/{phase}", w.id),
                    elapsed: latency,
                    doc_scans: 0,
                    output_len: cold.output.len(),
                    estimated: false,
                    tuples_produced: 0,
                    probe_tuples: 0,
                    index_lookups: 0,
                    index_hits: 0,
                    predicted_cost: None,
                    operators: Vec::new(),
                };
                report.record("service", cfg, &[("scale", scale as i64)], &m);
            }
        }

        // Phase 2: sustained mixed load on the warmed service.
        let readers = 3usize;
        let rounds = 3usize;
        let t0 = Instant::now();
        let threads: Vec<_> = (0..readers)
            .map(|r| {
                let svc = Arc::clone(&svc);
                let queries: Vec<&'static str> = all.iter().map(|w| w.query).collect();
                std::thread::spawn(move || {
                    for round in 0..rounds {
                        for i in 0..queries.len() {
                            let q = queries[(i + r + round) % queries.len()];
                            svc.query(q).expect("mixed-load query");
                        }
                    }
                })
            })
            .collect();
        let updates = 6usize;
        for k in 0..updates {
            svc.update(&UpdateOp::InsertXml {
                uri: "bib.xml".to_string(),
                parent: "/bib".to_string(),
                xml: format!(
                    "<book year=\"19{:02}\"><title>Service Bench {k}</title>\
                     <author><last>Bench</last><first>B{k}</first></author>\
                     <publisher>harness</publisher><price>{k}.25</price></book>",
                    70 + k
                ),
            })
            .expect("mixed-load update");
        }
        for t in threads {
            t.join().expect("reader thread");
        }
        let wall = t0.elapsed();
        let served = (readers * rounds * all.len()) as u64;
        let qps = served as f64 / wall.as_secs_f64().max(1e-9);
        let stats = svc.stats();
        println!(
            "\n  mixed load: {served} queries + {updates} updates over {} \
             ({qps:.0} q/s; {} hits, {} revalidations, {} misses)\n",
            fmt_secs(wall, false),
            stats.cache.hits,
            stats.cache.revalidations,
            stats.cache.misses
        );
        let m = Measurement {
            plan: "mixed-load".to_string(),
            elapsed: wall,
            doc_scans: 0,
            output_len: 0,
            estimated: false,
            tuples_produced: stats.rows_streamed,
            probe_tuples: 0,
            index_lookups: 0,
            index_hits: 0,
            predicted_cost: None,
            operators: Vec::new(),
        };
        report.record(
            "service",
            cfg,
            &[
                ("scale", scale as i64),
                ("readers", readers as i64),
                ("queries", served as i64),
                ("updates", updates as i64),
                ("qps", qps as i64),
                ("cache_hits", stats.cache.hits as i64),
                ("cache_revalidations", stats.cache.revalidations as i64),
                ("cache_invalidations", stats.cache.invalidations as i64),
            ],
            &m,
        );
    }
}

// ---------------------------------------------------------------------
// Concurrency ablation: lock-free snapshot reads under a churning writer
// ---------------------------------------------------------------------

/// The same deterministic update cycle the service stress tests replay
/// (`crates/service/tests/concurrent.rs`): given the round number, the
/// whole update history `0..k` is reproducible on a fresh store.
fn concurrency_update_op(k: usize) -> service::UpdateOp {
    use service::UpdateOp;
    match k % 3 {
        0 => UpdateOp::InsertXml {
            uri: "bib.xml".to_string(),
            parent: "/bib".to_string(),
            xml: format!(
                "<book year=\"19{:02}\"><title>Churn Volume {k}</title>\
                 <author><last>Writer</last><first>W{k}</first></author>\
                 <publisher>pub{k}</publisher><price>{k}.50</price></book>",
                60 + k
            ),
        },
        1 => UpdateOp::DeleteFirst {
            uri: "bib.xml".to_string(),
            path: "/bib/book".to_string(),
        },
        _ => UpdateOp::ReplaceText {
            uri: "reviews.xml".to_string(),
            path: "/reviews/entry/title".to_string(),
            text: format!("Rewritten Review {k}"),
        },
    }
}

/// The snapshot-isolation claim in numbers: N reader threads stream
/// Q1–Q10 through one `QueryService` while a writer churns the catalog
/// at a swept rate. Because every query pins one immutable snapshot and
/// readers take no lock, (a) sustained queries/sec must **scale with
/// the reader count** (asserted whenever the host has ≥ 2 cores), and
/// (b) every streamed result must be **byte-identical to a serial
/// replay** of the deterministic update prefix its `updates_seen` stamp
/// names — a divergence would mean a reader observed a torn snapshot.
/// After the run every superseded version must have been reclaimed
/// (`live_snapshots == 1`).
fn concurrency(args: &Args, report: &mut Report) {
    use service::{ExecMode, QueryService, ServiceConfig};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Instant;

    println!("== Concurrency ablation: snapshot reads under a churning writer ==\n");
    let scale = args.scales.first().copied().unwrap_or(100);
    let all: Vec<&workloads::Workload> = workloads::ALL
        .iter()
        .chain(workloads::RANGE.iter())
        .chain(workloads::COMPOSITE.iter())
        .collect();
    let queries: Vec<&'static str> = all.iter().map(|w| w.query).collect();
    let rounds = 2usize;
    let max_updates = 300usize;
    let svc_config = ServiceConfig {
        cache_capacity: 64,
        use_indexes: true,
        exec: ExecMode::Streaming,
        slow_query_us: None,
        ..ServiceConfig::default()
    };
    let fresh = || QueryService::with_catalog(standard_catalog(scale, 2, args.seed), svc_config);
    let cfg = RunConfig::new(Executor::Streaming, true);
    let par = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "{:>8} {:>13} {:>8} {:>8} {:>9} {:>8}",
        "readers", "interval(µs)", "queries", "updates", "qps", "states"
    );
    for &interval_us in &[1_000u64, 4_000] {
        let mut qps_by_readers: Vec<(usize, f64)> = Vec::new();
        for &readers in &[1usize, 2, 4] {
            let svc = Arc::new(fresh());
            // Readers record (query index, updates_seen, output) triples
            // for the replay check below.
            let captured = Arc::new(Mutex::new(Vec::<(usize, u64, String)>::new()));
            let stop = Arc::new(AtomicBool::new(false));
            let t0 = Instant::now();
            let reader_threads: Vec<_> = (0..readers)
                .map(|r| {
                    let svc = Arc::clone(&svc);
                    let captured = Arc::clone(&captured);
                    let queries = queries.clone();
                    std::thread::spawn(move || {
                        for round in 0..rounds {
                            for i in 0..queries.len() {
                                let qi = (i + r + round) % queries.len();
                                let mut out = String::new();
                                let outcome = svc
                                    .query_streamed(queries[qi], &mut |item| {
                                        out.push_str(item);
                                        true
                                    })
                                    .expect("streamed query under churn");
                                assert_eq!(
                                    outcome.output, out,
                                    "[concurrency] streamed items diverge from the outcome"
                                );
                                captured.lock().expect("capture lock").push((
                                    qi,
                                    outcome.updates_seen,
                                    out,
                                ));
                            }
                        }
                    })
                })
                .collect();
            // The churning writer: the deterministic op cycle at the
            // swept rate, capped so the replay below stays bounded.
            let writer = {
                let svc = Arc::clone(&svc);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut k = 0usize;
                    while !stop.load(Ordering::SeqCst) && k < max_updates {
                        svc.update(&concurrency_update_op(k))
                            .expect("writer update");
                        k += 1;
                        std::thread::sleep(std::time::Duration::from_micros(interval_us));
                    }
                    k
                })
            };
            for t in reader_threads {
                t.join().expect("reader thread");
            }
            let wall = t0.elapsed();
            stop.store(true, Ordering::SeqCst);
            let updates = writer.join().expect("writer thread");
            let served = readers * rounds * queries.len();
            let qps = served as f64 / wall.as_secs_f64().max(1e-9);
            // No torn snapshots: replay the deterministic update prefix
            // serially on a fresh service and every captured output must
            // reproduce byte-for-byte at its `updates_seen` state.
            let captured = Arc::try_unwrap(captured)
                .expect("readers joined")
                .into_inner()
                .expect("capture lock");
            let mut states: Vec<u64> = captured.iter().map(|&(_, s, _)| s).collect();
            states.sort_unstable();
            states.dedup();
            let replay = fresh();
            let mut applied = 0usize;
            for &state in &states {
                while (applied as u64) < state {
                    replay
                        .update(&concurrency_update_op(applied))
                        .expect("replay update");
                    applied += 1;
                }
                for (qi, seen, out) in captured.iter().filter(|&&(_, s, _)| s == state) {
                    let got = replay.query(queries[*qi]).expect("replay query");
                    assert_eq!(
                        &got.output, out,
                        "[concurrency] torn snapshot: query {qi} captured at update \
                         state {seen} diverges from its serial replay"
                    );
                }
            }
            // Superseded versions are reclaimed once no stream pins them.
            let live = svc.stats().live_snapshots;
            assert_eq!(
                live, 1,
                "[concurrency] {updates} published versions must leave exactly \
                 the current snapshot alive, found {live}"
            );
            println!(
                "{readers:>8} {interval_us:>13} {served:>8} {updates:>8} {qps:>9.0} {:>8}",
                states.len()
            );
            qps_by_readers.push((readers, qps));
            let m = Measurement {
                plan: format!("readers-{readers}"),
                elapsed: wall,
                doc_scans: 0,
                output_len: 0,
                estimated: false,
                tuples_produced: 0,
                probe_tuples: 0,
                index_lookups: 0,
                index_hits: 0,
                predicted_cost: None,
                operators: Vec::new(),
            };
            report.record(
                "concurrency",
                cfg,
                &[
                    ("scale", scale as i64),
                    ("readers", readers as i64),
                    ("update_interval_us", interval_us as i64),
                    ("queries", served as i64),
                    ("updates", updates as i64),
                    ("qps", qps as i64),
                    ("distinct_states", states.len() as i64),
                ],
                &m,
            );
        }
        let solo = qps_by_readers
            .iter()
            .find(|(r, _)| *r == 1)
            .map(|&(_, q)| q)
            .expect("solo config measured");
        let (best_readers, best) =
            qps_by_readers
                .iter()
                .filter(|(r, _)| *r > 1)
                .fold(
                    (1, 0.0f64),
                    |acc, &(r, q)| if q > acc.1 { (r, q) } else { acc },
                );
        if par >= 2 {
            assert!(
                best > solo,
                "[concurrency] lock-free snapshot reads must scale with readers \
                 under a churning writer: best {best:.0} q/s ({best_readers} readers) \
                 vs {solo:.0} q/s solo at interval {interval_us}µs on {par} cores"
            );
        }
        println!(
            "  → interval {interval_us}µs: {solo:.0} q/s solo → {best:.0} q/s \
             with {best_readers} readers ({:.2}×)\n",
            best / solo.max(1e-9)
        );
    }
}

// ---------------------------------------------------------------------
// Calibration: fit the cost model's guessed constants to measured times
// ---------------------------------------------------------------------

/// Competition ranks (average over ties) of `xs`, ascending.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation of two samples (`None` when either side
/// has fewer than two points or is entirely tied).
fn spearman(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() < 2 {
        return None;
    }
    let (ra, rb) = (ranks(a), ranks(b));
    let n = a.len() as f64;
    let (ma, mb) = (ra.iter().sum::<f64>() / n, rb.iter().sum::<f64>() / n);
    let cov: f64 = ra.iter().zip(&rb).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = ra.iter().map(|x| (x - ma) * (x - ma)).sum();
    let vb: f64 = rb.iter().map(|y| (y - mb) * (y - mb)).sum();
    if va == 0.0 || vb == 0.0 {
        return None;
    }
    Some(cov / (va * vb).sqrt())
}

/// Fit the model's two guessed constants ([`unnest::Calibration`]) from
/// `(predicted_cost, measured_us)` pairs, then validate the fit: grid
/// search `probe_weight × fanout_prior` minimizing log-space squared
/// error with a **per-workload intercept** (the abstract-cost-unit ↔ µs
/// scale factor is workload-specific; only relative order matters for
/// plan choice), and assert the fitted model's per-workload plan
/// ranking rank-correlates with the measured ranking across Q1–Q10.
fn calibration(args: &Args, report: &mut Report) {
    println!("== Calibration: fitting probe weight and fan-out prior ==\n");
    let scale = args
        .scales
        .first()
        .copied()
        .unwrap_or(100)
        .min(args.nested_cap);
    let catalog = standard_catalog(scale, 2, args.seed);
    let cfg = RunConfig::new(Executor::Streaming, true);
    let all: Vec<&workloads::Workload> = workloads::ALL
        .iter()
        .chain(workloads::RANGE.iter())
        .chain(workloads::COMPOSITE.iter())
        .collect();
    // Measure every plan of every workload (best of three — the fit
    // target), keeping the logical expressions for re-pricing under
    // candidate calibrations.
    struct Cell {
        expr: nal::Expr,
        measured_us: f64,
        m: Measurement,
    }
    let mut groups: Vec<(&str, Vec<Cell>)> = Vec::new();
    for w in &all {
        let mut cells = Vec::new();
        for (label, expr) in plans_for(w, &catalog) {
            let mut best: Option<Measurement> = None;
            for _ in 0..3 {
                let m = measure_plan_cfg(&label, &expr, &catalog, cfg);
                if best.as_ref().is_none_or(|b| m.elapsed < b.elapsed) {
                    best = Some(m);
                }
            }
            let m = best.expect("three runs");
            let measured_us = (m.elapsed.as_secs_f64() * 1e6).max(1.0);
            cells.push(Cell {
                expr,
                measured_us,
                m,
            });
        }
        groups.push((w.id, cells));
    }
    let price = |cal: unnest::Calibration, expr: &nal::Expr| {
        unnest::CostModel::with_calibration(&catalog, true, cal)
            .estimate(expr)
            .cost
            .max(1.0)
    };
    let mut fitted = unnest::Calibration::default();
    let mut best_err = f64::INFINITY;
    for &probe_weight in &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        for &fanout_prior in &[1.0, 2.0, 4.0, 8.0] {
            let cal = unnest::Calibration {
                probe_weight,
                fanout_prior,
            };
            let mut err = 0.0;
            for (_, cells) in &groups {
                let logs: Vec<(f64, f64)> = cells
                    .iter()
                    .map(|c| (price(cal, &c.expr).ln(), c.measured_us.ln()))
                    .collect();
                let intercept =
                    logs.iter().map(|(p, m)| p - m).sum::<f64>() / logs.len().max(1) as f64;
                err += logs
                    .iter()
                    .map(|(p, m)| {
                        let r = p - m - intercept;
                        r * r
                    })
                    .sum::<f64>();
            }
            if err < best_err {
                best_err = err;
                fitted = cal;
            }
        }
    }
    println!(
        "fitted at scale {scale}: probe_weight {}, fanout_prior {} \
         (log-space residual {best_err:.2})\n",
        fitted.probe_weight, fitted.fanout_prior
    );
    // Validation: the fitted model's plan ranking must rank-correlate
    // with the measured ranking, workload by workload.
    println!("{:<16} {:>6} {:>10}", "workload", "plans", "spearman ρ");
    let mut rhos: Vec<f64> = Vec::new();
    for (id, cells) in &groups {
        let predicted: Vec<f64> = cells.iter().map(|c| price(fitted, &c.expr)).collect();
        let measured: Vec<f64> = cells.iter().map(|c| c.measured_us).collect();
        let rho = spearman(&predicted, &measured);
        match rho {
            Some(r) => {
                rhos.push(r);
                println!("{id:<16} {:>6} {r:>10.2}", cells.len());
            }
            None => println!("{id:<16} {:>6} {:>10}", cells.len(), "tied"),
        }
        for c in cells {
            report.record(
                &format!("calibration:{id}"),
                cfg,
                &[
                    ("scale", scale as i64),
                    ("calibrated_cost", price(fitted, &c.expr) as i64),
                    ("probe_weight_milli", (fitted.probe_weight * 1000.0) as i64),
                    ("fanout_prior_milli", (fitted.fanout_prior * 1000.0) as i64),
                    (
                        "spearman_milli",
                        rho.map(|r| (r * 1000.0) as i64).unwrap_or(i64::MIN),
                    ),
                ],
                &c.m,
            );
        }
    }
    let mean = rhos.iter().sum::<f64>() / rhos.len().max(1) as f64;
    assert!(
        !rhos.is_empty(),
        "[calibration] at least one workload must offer rankable plans"
    );
    assert!(
        mean >= 0.3,
        "[calibration] the fitted model's plan ranking must rank-correlate \
         with the measured ranking (mean Spearman ρ {mean:.2} over {} \
         workloads at scale {scale})",
        rhos.len()
    );
    println!("\n  → mean ρ {mean:.2} over {} workloads\n", rhos.len());
}

// ---------------------------------------------------------------------
// Observability: EXPLAIN ANALYZE calibration pairs for every workload
// ---------------------------------------------------------------------

/// Run every workload (Q1–Q10: the equality, range and composite sets)
/// on **both** executors with per-operator tracing and print predicted
/// cost vs measured time for the root operator; the full per-operator
/// `(predicted_cost, measured_us, rows)` pairs land in the `--json`
/// cells' `operators` arrays (`bench-observability.json` in CI). Every
/// operator of every plan must come back priced and measured — a node
/// the cost walk cannot price or the tracer never attributes fails the
/// run here, not downstream in calibration.
fn observability(args: &Args, report: &mut Report) {
    println!("== Observability: EXPLAIN ANALYZE over all workloads, both executors ==\n");
    let all: Vec<&workloads::Workload> = workloads::ALL
        .iter()
        .chain(workloads::RANGE.iter())
        .chain(workloads::COMPOSITE.iter())
        .collect();
    let scale = args.scales.first().copied().unwrap_or(100);
    let catalog = standard_catalog(scale, 2, args.seed);
    println!(
        "{:<16} {:<14} {:<13} {:>5} {:>14} {:>12}",
        "workload", "plan", "executor", "ops", "root cost", "root time"
    );
    for w in &all {
        for executor in [Executor::Materialized, Executor::Streaming] {
            let cfg = RunConfig::new(executor, args.indexes);
            for (label, expr) in plans_for(w, &catalog) {
                if label == "nested" && scale > args.nested_cap {
                    continue;
                }
                let m = measure_plan_cfg(&label, &expr, &catalog, cfg);
                assert!(
                    !m.operators.is_empty(),
                    "[observability] {} `{label}` on {} produced no operator rows",
                    w.id,
                    executor.label()
                );
                for o in &m.operators {
                    assert!(
                        o.predicted_cost.is_some(),
                        "[observability] {} `{label}`: operator {} unpriced",
                        w.id,
                        o.op
                    );
                    assert!(
                        o.calls > 0,
                        "[observability] {} `{label}`: operator {} never entered",
                        w.id,
                        o.op
                    );
                }
                let root = &m.operators[0];
                println!(
                    "{:<16} {:<14} {:<13} {:>5} {:>14.1} {:>12}",
                    w.id,
                    label,
                    executor.label(),
                    m.operators.len(),
                    root.predicted_cost.unwrap_or(f64::NAN),
                    fmt_secs(std::time::Duration::from_micros(root.measured_us), false)
                );
                report.record(
                    &format!("observability:{}", w.id),
                    cfg,
                    &[("scale", scale as i64)],
                    &m,
                );
            }
        }
    }
    println!();
}

// ---------------------------------------------------------------------
// Cost-model validation: estimates vs. measured times
// ---------------------------------------------------------------------

fn costmodel(args: &Args, report: &mut Report) {
    println!("== Cost model: estimated cost vs. measured time (scale 1000) ==\n");
    let scale = 1000.min(args.nested_cap);
    let catalog = standard_catalog(scale, 2, args.seed);
    for w in [&Q1_GROUPING, &Q3_EXISTENTIAL, &Q5_UNIVERSAL, &Q6_HAVING] {
        println!("{} ({})", w.id, w.paper_ref);
        let nested = xquery::compile(w.query, &catalog).expect("compiles");
        let plans = unnest::enumerate_plans(&nested, &catalog);
        let ranked = unnest::rank_plans_with(plans, &catalog, args.indexes);
        for (p, est) in &ranked {
            let m = measure_plan_cfg(&p.label, &p.expr, &catalog, args.cfg());
            report.record(
                &format!("costmodel:{}", w.id),
                args.cfg(),
                &[("scale", scale as i64), ("estimated_cost", est.cost as i64)],
                &m,
            );
            println!(
                "  {:<14} est {:>14.0}   measured {:>12}",
                p.label,
                est.cost,
                fmt_secs(m.elapsed, false)
            );
        }
        let cheapest = &ranked[0].0.label;
        println!("  → model picks `{cheapest}`\n");
    }
}

// ---------------------------------------------------------------------
// Fig. 6: input document sizes
// ---------------------------------------------------------------------

fn human(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2} MB", bytes as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1} KB", bytes as f64 / 1024.0)
    }
}

fn fig6(args: &Args) {
    println!("== Fig. 6: size of the input documents ==\n");
    println!("Use case XMP");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "size", "bib(2)", "bib(5)", "bib(10)", "prices", "reviews"
    );
    for &n in &args.scales {
        let mut row = format!("{n:<8}");
        for apb in [2usize, 5, 10] {
            let d = gen_bib(&BibConfig {
                books: n,
                authors_per_book: apb,
                seed: args.seed,
                ..BibConfig::default()
            });
            row.push_str(&format!(" {:>10}", human(document_size_bytes(&d))));
        }
        let p = gen_prices(&PricesConfig {
            entries: n,
            seed: args.seed,
            ..Default::default()
        });
        let r = gen_reviews(&ReviewsConfig {
            entries: n,
            seed: args.seed,
            ..Default::default()
        });
        row.push_str(&format!(
            " {:>12} {:>12}",
            human(document_size_bytes(&p)),
            human(document_size_bytes(&r))
        ));
        println!("{row}");
    }
    println!("\nUse case R");
    println!(
        "{:<8} {:>12} {:>12} {:>12}",
        "size", "bids", "items", "users"
    );
    for &n in &args.scales {
        let docs = gen_auction(&AuctionConfig {
            bids: n,
            seed: args.seed,
            ..Default::default()
        });
        println!(
            "{n:<8} {:>12} {:>12} {:>12}",
            human(document_size_bytes(&docs.bids)),
            human(document_size_bytes(&docs.items)),
            human(document_size_bytes(&docs.users))
        );
    }
    println!();
}

// ---------------------------------------------------------------------
// §5.1 grouping: plans × authors-per-book × scale
// ---------------------------------------------------------------------

fn grouping(args: &Args, report: &mut Report) {
    println!("== Query 1.1.9.4 (Grouping) — §5.1 ==\n");
    // plan -> fanout -> scale -> measurement
    let mut table: BTreeMap<String, BTreeMap<usize, BTreeMap<usize, Measurement>>> =
        BTreeMap::new();
    let mut plan_order: Vec<String> = Vec::new();
    for &fanout in &[2usize, 5, 10] {
        for &scale in &args.scales {
            let mut catalog = Catalog::new();
            catalog.register(gen_bib(&BibConfig {
                books: scale,
                authors_per_book: fanout,
                seed: args.seed,
                ..BibConfig::default()
            }));
            for (label, expr) in plans_for(&Q1_GROUPING, &catalog) {
                if !plan_order.contains(&label) {
                    plan_order.push(label.clone());
                }
                let m = if label == "nested" && scale > args.nested_cap {
                    estimate_from_smaller(&table, &label, fanout, scale)
                } else {
                    measure_plan_cfg(&label, &expr, &catalog, args.cfg())
                };
                report.record(
                    "grouping",
                    args.cfg(),
                    &[("scale", scale as i64), ("fanout", fanout as i64)],
                    &m,
                );
                table
                    .entry(label)
                    .or_default()
                    .entry(fanout)
                    .or_default()
                    .insert(scale, m);
            }
        }
    }
    print_grouping_table(&plan_order, &table, &args.scales);
}

fn estimate_from_smaller(
    table: &BTreeMap<String, BTreeMap<usize, BTreeMap<usize, Measurement>>>,
    label: &str,
    fanout: usize,
    scale: usize,
) -> Measurement {
    let base = table
        .get(label)
        .and_then(|t| t.get(&fanout))
        .and_then(|m| m.iter().next_back())
        .map(|(s, m)| (*s, m.elapsed));
    let (s_small, t_small) = base.unwrap_or((1, std::time::Duration::from_millis(1)));
    Measurement::estimated(label, extrapolate_nested(t_small, s_small, scale))
}

fn print_grouping_table(
    plan_order: &[String],
    table: &BTreeMap<String, BTreeMap<usize, BTreeMap<usize, Measurement>>>,
    scales: &[usize],
) {
    print!("{:<12} {:>4}", "Plan", "apb");
    for s in scales {
        print!(" {:>16}", s);
    }
    println!();
    for label in plan_order {
        let Some(by_fanout) = table.get(label) else {
            continue;
        };
        for (fanout, by_scale) in by_fanout {
            print!("{label:<12} {fanout:>4}");
            for s in scales {
                match by_scale.get(s) {
                    Some(m) => print!(" {:>16}", fmt_secs(m.elapsed, m.estimated)),
                    None => print!(" {:>16}", "-"),
                }
            }
            println!();
        }
    }
    println!();
}

// ---------------------------------------------------------------------
// Single-knob tables (§5.2–§5.6)
// ---------------------------------------------------------------------

fn simple_table(
    args: &Args,
    report: &mut Report,
    workload: &ordered_unnesting::workloads::Workload,
    title: &str,
    scale_label: &str,
) {
    println!("== {title} ==\n");
    let mut rows: BTreeMap<String, Vec<(usize, Measurement)>> = BTreeMap::new();
    let mut plan_order: Vec<String> = Vec::new();
    for &scale in &args.scales {
        let catalog = standard_catalog(scale, 2, args.seed);
        for (label, expr) in plans_for(workload, &catalog) {
            if !plan_order.contains(&label) {
                plan_order.push(label.clone());
            }
            let m = if label == "nested" && scale > args.nested_cap {
                let prior = rows.get(&label).and_then(|v| v.last().cloned());
                match prior {
                    Some((s_small, prev)) => Measurement::estimated(
                        &label,
                        extrapolate_nested(prev.elapsed, s_small, scale),
                    ),
                    None => measure_plan_cfg(&label, &expr, &catalog, args.cfg()),
                }
            } else {
                measure_plan_cfg(&label, &expr, &catalog, args.cfg())
            };
            report.record(workload.id, args.cfg(), &[("scale", scale as i64)], &m);
            rows.entry(label).or_default().push((scale, m));
        }
    }
    print!("{:<14}", "Plan");
    for s in &args.scales {
        print!(" {:>20}", format!("{s} {scale_label}"));
    }
    println!();
    for label in &plan_order {
        let Some(cells) = rows.get(label) else {
            continue;
        };
        print!("{label:<14}");
        for (_, m) in cells {
            print!(" {:>20}", fmt_secs(m.elapsed, m.estimated));
        }
        println!();
    }
    println!();
}

// ---------------------------------------------------------------------
// §5.1 DBLP anecdote
// ---------------------------------------------------------------------

fn dblp(args: &Args, report: &mut Report) {
    println!("== §5.1 DBLP anecdote (dblp-like document, authors without books) ==\n");
    let publications = 20_000usize.min(args.nested_cap.max(1) * 20);
    let mut catalog = Catalog::new();
    catalog.register(gen_dblp(&DblpConfig {
        publications,
        seed: args.seed,
        ..DblpConfig::default()
    }));
    let plans = plans_for(&Q1_DBLP, &catalog);
    let labels: Vec<&str> = plans.iter().map(|(l, _)| l.as_str()).collect();
    println!("document: {publications} publications (10% books)");
    println!("plans offered: {labels:?}");
    assert!(
        !labels.contains(&"grouping"),
        "Eqv. 5 must be refused on the dblp-like DTD"
    );
    // Outer join: measured. Nested: measured on a 1/20 sample, then
    // extrapolated — the paper's 182h42m figure was likewise beyond
    // patience on the full document.
    for (label, expr) in &plans {
        if label == "nested" {
            let sample = (publications / 20).max(1);
            let mut small = Catalog::new();
            small.register(gen_dblp(&DblpConfig {
                publications: sample,
                seed: args.seed,
                ..DblpConfig::default()
            }));
            let nested_small = xquery::compile(Q1_DBLP.query, &small).expect("compiles");
            let m = measure_plan_cfg("nested", &nested_small, &small, args.cfg());
            let est = extrapolate_nested(m.elapsed, sample, publications);
            report.record(
                "dblp",
                args.cfg(),
                &[("publications", publications as i64)],
                &Measurement::estimated("nested", est),
            );
            println!(
                "{label:<12} {:>16}   (measured {} at {} publications)",
                fmt_secs(est, true),
                fmt_secs(m.elapsed, false),
                sample
            );
        } else {
            let m = measure_plan_cfg(label, expr, &catalog, args.cfg());
            report.record(
                "dblp",
                args.cfg(),
                &[("publications", publications as i64)],
                &m,
            );
            println!(
                "{label:<12} {:>16}   ({} document scans)",
                fmt_secs(m.elapsed, false),
                m.doc_scans
            );
        }
    }
    println!();
}
