//! Shared measurement helpers for the benchmark harness and the Criterion
//! benches: compile a workload into its plan alternatives and time them.

use std::time::{Duration, Instant};

use nal::Expr;
use ordered_unnesting::workloads::Workload;
use xmldb::Catalog;

/// Which physical executor a measurement runs on. Both stay measured:
/// the harness selects one via `--executor`, and the Criterion benches
/// compare them head-to-head.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Executor {
    /// `engine::run` — every operator materializes its full output.
    Materialized,
    /// `engine::run_streaming` — pipelined cursors with short-circuiting
    /// semi/anti joins.
    Streaming,
}

impl Executor {
    pub fn parse(s: &str) -> Option<Executor> {
        match s {
            "materialized" | "mat" => Some(Executor::Materialized),
            "streaming" | "stream" => Some(Executor::Streaming),
            _ => None,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Executor::Materialized => "materialized",
            Executor::Streaming => "streaming",
        }
    }

    /// Run an expression on this executor.
    pub fn run(self, expr: &Expr, catalog: &Catalog) -> nal::EvalResult<engine::QueryResult> {
        match self {
            Executor::Materialized => engine::run(expr, catalog),
            Executor::Streaming => engine::run_streaming(expr, catalog),
        }
    }
}

/// One measured (plan, scale) cell.
#[derive(Clone, Debug)]
pub struct Measurement {
    pub plan: String,
    pub elapsed: Duration,
    pub doc_scans: u64,
    pub output_len: usize,
    /// `true` when the cell was extrapolated instead of measured (nested
    /// plans beyond the time cap).
    pub estimated: bool,
}

/// Compile a workload and enumerate its plan alternatives.
pub fn plans_for(w: &Workload, catalog: &Catalog) -> Vec<(String, Expr)> {
    let nested = xquery::compile(w.query, catalog)
        .unwrap_or_else(|e| panic!("[{}] compile failed: {e}", w.id));
    unnest::enumerate_plans(&nested, catalog)
        .into_iter()
        .map(|p| (p.label, p.expr))
        .collect()
}

/// Execute one plan and record its cost. The first execution result is
/// used (documents are memory-resident, so runs are stable; the Criterion
/// benches provide statistical rigor at smaller scales).
pub fn measure_plan(label: &str, expr: &Expr, catalog: &Catalog) -> Measurement {
    measure_plan_with(label, expr, catalog, Executor::Materialized)
}

/// [`measure_plan`] on an explicitly selected executor.
pub fn measure_plan_with(
    label: &str,
    expr: &Expr,
    catalog: &Catalog,
    executor: Executor,
) -> Measurement {
    let start = Instant::now();
    let result = executor
        .run(expr, catalog)
        .unwrap_or_else(|e| panic!("plan `{label}` failed on {}: {e}", executor.label()));
    Measurement {
        plan: label.to_string(),
        elapsed: start.elapsed(),
        doc_scans: result.metrics.doc_scans,
        output_len: result.output.len(),
        estimated: false,
    }
}

/// Quadratic extrapolation for nested cells beyond the measurement cap:
/// nested plans re-scan the document per outer tuple, so their cost grows
/// ~quadratically in the scale. `t_small` was measured at `s_small`.
pub fn extrapolate_nested(t_small: Duration, s_small: usize, s_target: usize) -> Duration {
    let ratio = (s_target as f64 / s_small.max(1) as f64).powi(2);
    Duration::from_secs_f64(t_small.as_secs_f64() * ratio)
}

/// Render a duration the way the paper's tables do (`0.15 s`, `7.04 s`,
/// `788 s`).
pub fn fmt_secs(d: Duration, estimated: bool) -> String {
    let s = d.as_secs_f64();
    let text = if s >= 100.0 {
        format!("{s:.0} s")
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 0.001 {
        format!("{:.1} ms", s * 1e3)
    } else {
        format!("{:.0} µs", s * 1e6)
    };
    if estimated {
        format!("{text} (est.)")
    } else {
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ordered_unnesting::workloads::Q6_HAVING;
    use xmldb::gen::standard_catalog;

    #[test]
    fn measure_produces_consistent_outputs() {
        let catalog = standard_catalog(60, 2, 5);
        let plans = plans_for(&Q6_HAVING, &catalog);
        assert!(plans.len() >= 2);
        let ms: Vec<Measurement> = plans
            .iter()
            .map(|(l, e)| measure_plan(l, e, &catalog))
            .collect();
        let first = ms[0].output_len;
        assert!(ms.iter().all(|m| m.output_len == first));
    }

    #[test]
    fn extrapolation_is_quadratic() {
        let t = extrapolate_nested(Duration::from_secs(1), 100, 1000);
        assert_eq!(t, Duration::from_secs(100));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_secs(Duration::from_millis(150), false), "150.0 ms");
        assert_eq!(fmt_secs(Duration::from_secs(7), false), "7.00 s");
        assert_eq!(fmt_secs(Duration::from_secs(788), false), "788 s");
        assert_eq!(fmt_secs(Duration::from_secs(788), true), "788 s (est.)");
    }
}
