//! Shared measurement helpers for the benchmark harness and the Criterion
//! benches: compile a workload into its plan alternatives and time them.

use std::time::{Duration, Instant};

use nal::Expr;
use ordered_unnesting::workloads::Workload;
use xmldb::Catalog;

/// Which physical executor a measurement runs on. Both stay measured:
/// the harness selects one via `--executor`, and the Criterion benches
/// compare them head-to-head.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Executor {
    /// `engine::run` — every operator materializes its full output.
    Materialized,
    /// `engine::run_streaming` — pipelined cursors with short-circuiting
    /// semi/anti joins.
    Streaming,
}

impl Executor {
    pub fn parse(s: &str) -> Option<Executor> {
        match s {
            "materialized" | "mat" => Some(Executor::Materialized),
            "streaming" | "stream" => Some(Executor::Streaming),
            _ => None,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Executor::Materialized => "materialized",
            Executor::Streaming => "streaming",
        }
    }

    /// Run an expression on this executor (scan-based access paths).
    pub fn run(self, expr: &Expr, catalog: &Catalog) -> nal::EvalResult<engine::QueryResult> {
        RunConfig {
            executor: self,
            indexes: false,
        }
        .run(expr, catalog)
    }
}

/// Full measurement configuration: which executor, and whether plans are
/// compiled with index-backed access paths (`--indexes on`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunConfig {
    pub executor: Executor,
    pub indexes: bool,
}

impl RunConfig {
    pub fn new(executor: Executor, indexes: bool) -> RunConfig {
        RunConfig { executor, indexes }
    }

    pub fn indexes_label(self) -> &'static str {
        if self.indexes {
            "on"
        } else {
            "off"
        }
    }

    /// Compile (with or without the index rewrite) and run.
    pub fn run(self, expr: &Expr, catalog: &Catalog) -> nal::EvalResult<engine::QueryResult> {
        let plan = self.compile(expr, catalog);
        match self.executor {
            Executor::Materialized => engine::run_compiled(&plan, catalog),
            Executor::Streaming => engine::run_streaming_compiled(&plan, catalog),
        }
    }

    /// Compile under this configuration's index mode.
    pub fn compile(self, expr: &Expr, catalog: &Catalog) -> engine::PhysPlan {
        if self.indexes {
            engine::compile_indexed(expr, catalog)
        } else {
            engine::compile(expr)
        }
    }

    /// Run an already-compiled plan with per-operator tracing
    /// ([`engine::run_traced`] / [`engine::run_streaming_traced`]).
    pub fn run_traced(
        self,
        plan: &engine::PhysPlan,
        catalog: &Catalog,
    ) -> nal::EvalResult<(engine::QueryResult, nal::obs::ExecTrace)> {
        match self.executor {
            Executor::Materialized => engine::run_traced(plan, catalog),
            Executor::Streaming => engine::run_streaming_traced(plan, catalog),
        }
    }
}

/// One operator row of an EXPLAIN ANALYZE'd measurement: the predicted
/// cost next to the measured figures for the same plan node — the
/// per-operator calibration pair every `--json` cell carries.
#[derive(Clone, Debug)]
pub struct OpCell {
    /// Operator display name.
    pub op: String,
    /// Tree depth (root = 0).
    pub depth: usize,
    /// Output rows the operator produced.
    pub rows: u64,
    /// Times the operator was entered.
    pub calls: u64,
    /// Inclusive measured wall time, microseconds.
    pub measured_us: u64,
    /// Index probes issued in this operator's subtree.
    pub index_lookups: u64,
    /// Index probes that found at least one node.
    pub index_hits: u64,
    /// The cost model's inclusive prediction for this node.
    pub predicted_cost: Option<f64>,
}

/// One measured (plan, scale) cell.
#[derive(Clone, Debug)]
pub struct Measurement {
    pub plan: String,
    pub elapsed: Duration,
    pub doc_scans: u64,
    pub output_len: usize,
    /// `true` when the cell was extrapolated instead of measured (nested
    /// plans beyond the time cap).
    pub estimated: bool,
    pub tuples_produced: u64,
    pub probe_tuples: u64,
    pub index_lookups: u64,
    pub index_hits: u64,
    /// The cost model's prediction for this plan under the measured
    /// configuration's index mode (`CostModel::with_indexes`), recorded
    /// next to the measured time in every `--json` row so the
    /// `BENCH_*.json` trajectories can fit the probe constants against
    /// reality (the cost-model calibration hook). `None` for
    /// extrapolated cells.
    pub predicted_cost: Option<f64>,
    /// Per-operator `(predicted_cost, measured)` pairs from a traced
    /// companion run of the same plan (empty for extrapolated cells).
    pub operators: Vec<OpCell>,
}

impl Measurement {
    /// An extrapolated (not measured) cell.
    pub fn estimated(plan: impl Into<String>, elapsed: Duration) -> Measurement {
        Measurement {
            plan: plan.into(),
            elapsed,
            doc_scans: 0,
            output_len: 0,
            estimated: true,
            tuples_produced: 0,
            probe_tuples: 0,
            index_lookups: 0,
            index_hits: 0,
            predicted_cost: None,
            operators: Vec::new(),
        }
    }

    /// Total tuples the plan *examined*: probed join candidates plus
    /// every tuple produced by any operator. Index-backed quantifier
    /// joins never execute their build side, which is exactly what this
    /// number exposes in the `index` ablation.
    pub fn tuples_examined(&self) -> u64 {
        self.probe_tuples + self.tuples_produced
    }
}

/// Compile a workload and enumerate its plan alternatives.
pub fn plans_for(w: &Workload, catalog: &Catalog) -> Vec<(String, Expr)> {
    let nested = xquery::compile(w.query, catalog)
        .unwrap_or_else(|e| panic!("[{}] compile failed: {e}", w.id));
    unnest::enumerate_plans(&nested, catalog)
        .into_iter()
        .map(|p| (p.label, p.expr))
        .collect()
}

/// Execute one plan and record its cost. The first execution result is
/// used (documents are memory-resident, so runs are stable; the Criterion
/// benches provide statistical rigor at smaller scales).
pub fn measure_plan(label: &str, expr: &Expr, catalog: &Catalog) -> Measurement {
    measure_plan_with(label, expr, catalog, Executor::Materialized)
}

/// [`measure_plan`] on an explicitly selected executor.
pub fn measure_plan_with(
    label: &str,
    expr: &Expr,
    catalog: &Catalog,
    executor: Executor,
) -> Measurement {
    measure_plan_cfg(label, expr, catalog, RunConfig::new(executor, false))
}

/// [`measure_plan`] under a full [`RunConfig`] (executor + index mode).
pub fn measure_plan_cfg(
    label: &str,
    expr: &Expr,
    catalog: &Catalog,
    cfg: RunConfig,
) -> Measurement {
    // Predict before measuring: the model's estimate under the matching
    // index mode rides along in every JSON row (calibration hook).
    let predicted = unnest::CostModel::with_indexes(catalog, cfg.indexes)
        .estimate(expr)
        .cost;
    let start = Instant::now();
    let result = cfg.run(expr, catalog).unwrap_or_else(|e| {
        panic!(
            "plan `{label}` failed on {} (indexes {}): {e}",
            cfg.executor.label(),
            cfg.indexes_label()
        )
    });
    let elapsed = start.elapsed();
    // A second, traced companion run yields the per-operator figures
    // (EXPLAIN ANALYZE). Kept out of the timed run above so the
    // per-operator clock reads never perturb the headline time.
    let plan = cfg.compile(expr, catalog);
    let operators = match cfg.run_traced(&plan, catalog) {
        Ok((_, trace)) => {
            let mut rep = engine::ExplainReport::from_trace(&plan, &trace);
            rep.annotate_costs(&unnest::plan_cost_map(&plan, catalog, cfg.indexes));
            rep.nodes
                .into_iter()
                .map(|n| OpCell {
                    op: n.op,
                    depth: n.depth,
                    rows: n.rows,
                    calls: n.calls,
                    measured_us: n.elapsed_us,
                    index_lookups: n.index_lookups,
                    index_hits: n.index_hits,
                    predicted_cost: n.predicted_cost,
                })
                .collect()
        }
        Err(_) => Vec::new(),
    };
    Measurement {
        plan: label.to_string(),
        elapsed,
        doc_scans: result.metrics.doc_scans,
        output_len: result.output.len(),
        estimated: false,
        tuples_produced: result.metrics.tuples_produced,
        probe_tuples: result.metrics.probe_tuples,
        index_lookups: result.metrics.index_lookups,
        index_hits: result.metrics.index_hits,
        predicted_cost: Some(predicted),
        operators,
    }
}

// ---------------------------------------------------------------------
// Machine-readable results (`--json <path>`)
// ---------------------------------------------------------------------

/// A collected run report, written as a JSON array so per-PR
/// `BENCH_*.json` trajectories can be recorded and diffed. Hand-rolled
/// emitter — the container has no serde.
#[derive(Default)]
pub struct Report {
    rows: Vec<String>,
}

impl Report {
    pub fn new() -> Report {
        Report::default()
    }

    /// Record one measurement cell with its experimental coordinates.
    /// `knobs` carries experiment-specific dimensions (scale, fanout…).
    pub fn record(
        &mut self,
        experiment: &str,
        cfg: RunConfig,
        knobs: &[(&str, i64)],
        m: &Measurement,
    ) {
        let mut fields = vec![
            ("experiment".to_string(), json_str(experiment)),
            ("plan".to_string(), json_str(&m.plan)),
            ("executor".to_string(), json_str(cfg.executor.label())),
            ("indexes".to_string(), json_str(cfg.indexes_label())),
            (
                "elapsed_secs".to_string(),
                format!("{}", m.elapsed.as_secs_f64()),
            ),
            ("estimated".to_string(), m.estimated.to_string()),
            ("doc_scans".to_string(), m.doc_scans.to_string()),
            ("output_len".to_string(), m.output_len.to_string()),
            ("tuples_produced".to_string(), m.tuples_produced.to_string()),
            ("probe_tuples".to_string(), m.probe_tuples.to_string()),
            (
                "tuples_examined".to_string(),
                m.tuples_examined().to_string(),
            ),
            ("index_lookups".to_string(), m.index_lookups.to_string()),
            ("index_hits".to_string(), m.index_hits.to_string()),
            (
                "predicted_cost".to_string(),
                match m.predicted_cost {
                    Some(c) if c.is_finite() => format!("{c}"),
                    _ => "null".to_string(),
                },
            ),
        ];
        let ops: Vec<String> = m
            .operators
            .iter()
            .map(|o| {
                format!(
                    "{{\"op\": {}, \"depth\": {}, \"rows\": {}, \"calls\": {}, \
                     \"measured_us\": {}, \"index_lookups\": {}, \"index_hits\": {}, \
                     \"predicted_cost\": {}}}",
                    json_str(&o.op),
                    o.depth,
                    o.rows,
                    o.calls,
                    o.measured_us,
                    o.index_lookups,
                    o.index_hits,
                    match o.predicted_cost {
                        Some(c) if c.is_finite() => format!("{c}"),
                        _ => "null".to_string(),
                    }
                )
            })
            .collect();
        fields.push(("operators".to_string(), format!("[{}]", ops.join(", "))));
        for (k, v) in knobs {
            fields.push(((*k).to_string(), v.to_string()));
        }
        let body: Vec<String> = fields
            .into_iter()
            .map(|(k, v)| format!("{}: {v}", json_str(&k)))
            .collect();
        self.rows.push(format!("{{{}}}", body.join(", ")));
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the whole report as a JSON array.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("  ");
            out.push_str(row);
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out.push('\n');
        out
    }

    /// Write the report to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// JSON string literal with the escapes the emitted field values need.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Quadratic extrapolation for nested cells beyond the measurement cap:
/// nested plans re-scan the document per outer tuple, so their cost grows
/// ~quadratically in the scale. `t_small` was measured at `s_small`.
pub fn extrapolate_nested(t_small: Duration, s_small: usize, s_target: usize) -> Duration {
    let ratio = (s_target as f64 / s_small.max(1) as f64).powi(2);
    Duration::from_secs_f64(t_small.as_secs_f64() * ratio)
}

/// Render a duration the way the paper's tables do (`0.15 s`, `7.04 s`,
/// `788 s`).
pub fn fmt_secs(d: Duration, estimated: bool) -> String {
    let s = d.as_secs_f64();
    let text = if s >= 100.0 {
        format!("{s:.0} s")
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 0.001 {
        format!("{:.1} ms", s * 1e3)
    } else {
        format!("{:.0} µs", s * 1e6)
    };
    if estimated {
        format!("{text} (est.)")
    } else {
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ordered_unnesting::workloads::Q6_HAVING;
    use xmldb::gen::standard_catalog;

    #[test]
    fn measure_produces_consistent_outputs() {
        let catalog = standard_catalog(60, 2, 5);
        let plans = plans_for(&Q6_HAVING, &catalog);
        assert!(plans.len() >= 2);
        let ms: Vec<Measurement> = plans
            .iter()
            .map(|(l, e)| measure_plan(l, e, &catalog))
            .collect();
        let first = ms[0].output_len;
        assert!(ms.iter().all(|m| m.output_len == first));
    }

    #[test]
    fn extrapolation_is_quadratic() {
        let t = extrapolate_nested(Duration::from_secs(1), 100, 1000);
        assert_eq!(t, Duration::from_secs(100));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_secs(Duration::from_millis(150), false), "150.0 ms");
        assert_eq!(fmt_secs(Duration::from_secs(7), false), "7.00 s");
        assert_eq!(fmt_secs(Duration::from_secs(788), false), "788 s");
        assert_eq!(fmt_secs(Duration::from_secs(788), true), "788 s (est.)");
    }

    #[test]
    fn indexed_runs_match_scan_runs_and_probe_less() {
        let catalog = standard_catalog(60, 2, 5);
        let w = &ordered_unnesting::workloads::Q3_EXISTENTIAL;
        let plans = plans_for(w, &catalog);
        let (label, expr) = plans
            .iter()
            .find(|(l, _)| l == "semijoin")
            .expect("semijoin plan");
        let scan = measure_plan_cfg(
            label,
            expr,
            &catalog,
            RunConfig::new(Executor::Streaming, false),
        );
        let indexed = measure_plan_cfg(
            label,
            expr,
            &catalog,
            RunConfig::new(Executor::Streaming, true),
        );
        assert_eq!(scan.output_len, indexed.output_len);
        assert!(indexed.index_lookups > 0);
        // Every measured cell carries per-operator calibration pairs,
        // each node priced by the physical cost walk.
        for m in [&scan, &indexed] {
            assert!(!m.operators.is_empty());
            assert!(m.operators.iter().all(|o| o.predicted_cost.is_some()));
            let root = m.operators[0].measured_us;
            assert!(m.operators.iter().all(|o| o.measured_us <= root));
        }
        assert!(
            indexed.tuples_examined() < scan.tuples_examined(),
            "indexed {} vs scan {}",
            indexed.tuples_examined(),
            scan.tuples_examined()
        );
    }

    #[test]
    fn report_renders_valid_json_shape() {
        let mut r = Report::new();
        let m = Measurement::estimated("outer \"join\"", Duration::from_millis(5));
        r.record(
            "grouping",
            RunConfig::new(Executor::Materialized, true),
            &[("scale", 100)],
            &m,
        );
        let json = r.to_json();
        assert!(json.starts_with("[\n"), "{json}");
        assert!(json.contains("\"experiment\": \"grouping\""), "{json}");
        assert!(json.contains("\"operators\": []"), "{json}");
        assert!(json.contains("\"plan\": \"outer \\\"join\\\"\""), "{json}");
        assert!(json.contains("\"indexes\": \"on\""), "{json}");
        assert!(json.contains("\"scale\": 100"), "{json}");
        assert_eq!(r.len(), 1);
    }
}
