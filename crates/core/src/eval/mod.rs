//! The reference evaluator — an executable form of the §2 operator
//! definitions.
//!
//! Every operator is implemented exactly as its recursive definition
//! states, with nested algebraic expressions in subscripts re-evaluated
//! per tuple (the "nested loop evaluation strategy" of §2 whose removal is
//! the goal of the paper). This evaluator serves three roles:
//!
//! 1. **Specification**: the ground truth that the physical engine (crate
//!    `engine`) is differential-tested against,
//! 2. **Proof harness**: the property tests of crate `unnest` check
//!    Eqv. 1–9 by evaluating both sides here (Appendix A, executable), and
//! 3. **Baseline**: the "nested" plans of §5's experiments are evaluated
//!    with precisely this strategy.

pub mod scalar;
pub mod xi;

pub use scalar::eval_scalar;

use std::fmt;

use xmldb::Catalog;

use crate::expr::{attrs, Expr, ProjOp};
use crate::scalar::Scalar;
use crate::sequence::Seq;
use crate::sym::Sym;
use crate::tuple::Tuple;
use crate::value::{cmp_atomic, CmpOp, Value};

/// Evaluation error (unbound attribute, type mismatch, unknown document…).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Human-readable description.
    pub message: String,
}

impl EvalError {
    /// An error with the given message.
    pub fn new(message: impl Into<String>) -> EvalError {
        EvalError {
            message: message.into(),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

impl From<String> for EvalError {
    fn from(message: String) -> EvalError {
        EvalError { message }
    }
}

/// Result alias for evaluation.
pub type EvalResult<T> = Result<T, EvalError>;

/// Counters exposing the paper's cost arguments (…"the nested plan needs
/// to scan the document |author|+1 times", §5.1).
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct Metrics {
    /// Full-document descendant traversals (`//`) from a document root.
    pub doc_scans: u64,
    /// Nodes visited during path evaluation.
    pub nodes_visited: u64,
    /// Tuples produced across all operators.
    pub tuples_produced: u64,
    /// Evaluations of nested algebra expressions inside scalars (one per
    /// outer tuple in a nested plan; zero in a fully unnested plan).
    pub nested_evals: u64,
    /// Tuples produced per physical operator. Populated by the streaming
    /// executor's metered cursors; the materializing executor and the
    /// reference evaluator leave it empty. Keys are operator display
    /// names (`"HashSemiJoin"`, `"Select"`, …).
    pub op_tuples: std::collections::BTreeMap<&'static str, u64>,
    /// Right-side candidate tuples examined by join probes in the
    /// streaming executor. Short-circuiting semi/anti joins stop probing
    /// at the deciding match, so this stays below the nested-loop bound
    /// |left| × |right| — the observable form of the §5.3–§5.5 argument.
    pub probe_tuples: u64,
    /// Access-path index probes: one per path-index resolution
    /// (`IndexScan`) and one per value-index key probe (`IndexSemiJoin` /
    /// `IndexAntiJoin` left tuple).
    pub index_lookups: u64,
    /// Index probes that found at least one node. `index_lookups -
    /// index_hits` is the number of probes answered without touching a
    /// single document node — work a scan-based plan cannot skip.
    pub index_hits: u64,
}

impl Metrics {
    /// Record `n` tuples produced by operator `op`.
    pub fn bump_op(&mut self, op: &'static str, n: u64) {
        *self.op_tuples.entry(op).or_insert(0) += n;
    }

    /// Tuples produced by operator `op` (0 if it never ran).
    pub fn op_count(&self, op: &str) -> u64 {
        self.op_tuples.get(op).copied().unwrap_or(0)
    }

    /// Fold another context's counters into this one. Parallel execution
    /// gives each worker a private `Metrics` and merges them back when
    /// the pool joins, so worker counter sums stay equal to what a
    /// serial run of the same plan would have recorded.
    pub fn merge(&mut self, other: &Metrics) {
        self.doc_scans += other.doc_scans;
        self.nodes_visited += other.nodes_visited;
        self.tuples_produced += other.tuples_produced;
        self.nested_evals += other.nested_evals;
        self.probe_tuples += other.probe_tuples;
        self.index_lookups += other.index_lookups;
        self.index_hits += other.index_hits;
        for (op, n) in &other.op_tuples {
            self.bump_op(op, *n);
        }
    }
}

/// Evaluation context: the document catalog, the Ξ output stream, and
/// metrics.
pub struct EvalCtx<'a> {
    /// The document catalog queries resolve URIs against.
    pub catalog: &'a Catalog,
    /// Result constructed by Ξ operators (§2: "the result is constructed
    /// as a string on some output stream").
    pub out: String,
    /// Collected counters.
    pub metrics: Metrics,
    /// Optional per-operator execution trace. `None` (the default) keeps
    /// the executors' hot paths untimed; a traced run
    /// ([`EvalCtx::enable_trace`]) makes both executors record per-node
    /// wall time, rows, and probe deltas here. Kept *outside*
    /// [`Metrics`] so the executor counter-parity invariants never
    /// compare timing.
    pub trace: Option<crate::obs::ExecTrace>,
    /// Requested degree of intra-query parallelism. `1` (the default)
    /// keeps every operator on the calling thread; values above 1 let
    /// parallel-aware operators fan morsels out to that many workers.
    /// Kept on the context, not the plan, so cached plans stay
    /// degree-independent.
    pub parallel: usize,
}

impl<'a> EvalCtx<'a> {
    /// A fresh context over `catalog` (empty output, zero metrics).
    pub fn new(catalog: &'a Catalog) -> EvalCtx<'a> {
        EvalCtx {
            catalog,
            out: String::new(),
            metrics: Metrics::default(),
            trace: None,
            parallel: 1,
        }
    }

    /// Turn on per-operator tracing for this context.
    pub fn enable_trace(&mut self) {
        self.trace = Some(crate::obs::ExecTrace::new());
    }

    /// Take the recorded execution trace (if tracing was enabled).
    pub fn take_trace(&mut self) -> Option<crate::obs::ExecTrace> {
        self.trace.take()
    }

    /// Take the Ξ output accumulated so far.
    pub fn take_output(&mut self) -> String {
        std::mem::take(&mut self.out)
    }
}

/// Evaluate a whole query (empty environment).
pub fn eval_query(e: &Expr, ctx: &mut EvalCtx<'_>) -> EvalResult<Seq> {
    eval(e, &Tuple::empty(), ctx)
}

/// Evaluate `e` under the environment `env` (outer variable bindings —
/// non-empty exactly when evaluating a nested expression).
pub fn eval(e: &Expr, env: &Tuple, ctx: &mut EvalCtx<'_>) -> EvalResult<Seq> {
    let result = match e {
        // □ — the singleton sequence of the empty tuple.
        Expr::Singleton => vec![Tuple::empty()],

        Expr::Literal(rows) => rows.clone(),

        Expr::AttrRel(a) => match env.get(*a) {
            Some(Value::Tuples(ts)) => ts.as_ref().clone(),
            Some(Value::Null) | None => {
                return Err(EvalError::new(format!(
                    "rel({a}): attribute not bound to a nested relation (env {env})"
                )))
            }
            Some(other) => {
                return Err(EvalError::new(format!(
                    "rel({a}): attribute is not tuple-valued: {other}"
                )))
            }
        },

        Expr::Select { input, pred } => {
            let seq = eval(input, env, ctx)?;
            let mut out = Vec::with_capacity(seq.len());
            for t in seq {
                if scalar::truthy(pred, &env.concat(&t), ctx)? {
                    out.push(t);
                }
            }
            out
        }

        Expr::Project { input, op } => {
            let seq = eval(input, env, ctx)?;
            project_seq(&seq, op, ctx)
        }

        Expr::Map { input, attr, value } => {
            let seq = eval(input, env, ctx)?;
            let mut out = Vec::with_capacity(seq.len());
            for t in seq {
                let v = eval_scalar(value, &env.concat(&t), ctx)?;
                out.push(t.extend(*attr, v));
            }
            out
        }

        Expr::Cross { left, right } => {
            let l = eval(left, env, ctx)?;
            let r = eval(right, env, ctx)?;
            let mut out = Vec::with_capacity(l.len() * r.len());
            for lt in &l {
                for rt in &r {
                    out.push(lt.concat(rt));
                }
            }
            out
        }

        // e1 ⋈_p e2 = σ_p(e1 × e2)
        Expr::Join { left, right, pred } => {
            let l = eval(left, env, ctx)?;
            let r = eval(right, env, ctx)?;
            let mut out = Vec::new();
            for lt in &l {
                for rt in &r {
                    let joined = lt.concat(rt);
                    if scalar::truthy(pred, &env.concat(&joined), ctx)? {
                        out.push(joined);
                    }
                }
            }
            out
        }

        Expr::SemiJoin { left, right, pred } => {
            let l = eval(left, env, ctx)?;
            let r = eval(right, env, ctx)?;
            let mut out = Vec::new();
            for lt in l {
                if exists_match(&lt, &r, pred, env, ctx)? {
                    out.push(lt);
                }
            }
            out
        }

        Expr::AntiJoin { left, right, pred } => {
            let l = eval(left, env, ctx)?;
            let r = eval(right, env, ctx)?;
            let mut out = Vec::new();
            for lt in l {
                if !exists_match(&lt, &r, pred, env, ctx)? {
                    out.push(lt);
                }
            }
            out
        }

        Expr::OuterJoin {
            left,
            right,
            pred,
            g,
            default,
        } => {
            let l = eval(left, env, ctx)?;
            let r = eval(right, env, ctx)?;
            // ⊥ pads all right attributes except g.
            let pad_attrs: Vec<Sym> = attrs::attrs(right).into_iter().filter(|a| a != g).collect();
            let mut out = Vec::new();
            for lt in &l {
                let mut matched = false;
                for rt in &r {
                    let joined = lt.concat(rt);
                    if scalar::truthy(pred, &env.concat(&joined), ctx)? {
                        out.push(joined);
                        matched = true;
                    }
                }
                if !matched {
                    out.push(
                        lt.concat(&Tuple::bottom(&pad_attrs))
                            .extend(*g, default.clone()),
                    );
                }
            }
            out
        }

        // Γ_{g;θA;f}(e) = Π_{A:A'}(Π^D_{A':A}(Π_A(e)) Γ_{g;A'θA;f} e)
        Expr::GroupUnary {
            input,
            g,
            by,
            theta,
            f,
        } => {
            let seq = eval(input, env, ctx)?;
            let keys = distinct_by_key(&seq, by, ctx.catalog);
            let mut out = Vec::with_capacity(keys.len());
            for key in keys {
                let mut group = Vec::new();
                for t in &seq {
                    if tuple_key_matches(&key, by, t, by, *theta, ctx.catalog) {
                        group.push(t.clone());
                    }
                }
                let v = apply_groupfn(f, &group, env, ctx)?;
                out.push(key.extend(*g, v));
            }
            out
        }

        // e1 Γ_{g;A1θA2;f} e2 — the left operand determines the groups.
        Expr::GroupBinary {
            left,
            right,
            g,
            left_on,
            theta,
            right_on,
            f,
        } => {
            let l = eval(left, env, ctx)?;
            let r = eval(right, env, ctx)?;
            let mut out = Vec::with_capacity(l.len());
            for lt in l {
                let mut group = Vec::new();
                for rt in &r {
                    if tuple_key_matches(&lt, left_on, rt, right_on, *theta, ctx.catalog) {
                        group.push(rt.clone());
                    }
                }
                let v = apply_groupfn(f, &group, env, ctx)?;
                out.push(lt.extend(*g, v));
            }
            out
        }

        Expr::Unnest {
            input,
            attr,
            distinct,
            preserve_empty,
        } => {
            let seq = eval(input, env, ctx)?;
            let inner_attrs = attrs::nested_attrs(input, *attr).unwrap_or_default();
            let mut out = Vec::new();
            for t in seq {
                let nested = match t.get(*attr) {
                    Some(Value::Tuples(ts)) => ts.as_ref().clone(),
                    Some(Value::Null) | None => Vec::new(),
                    Some(other) => {
                        return Err(EvalError::new(format!(
                            "μ[{attr}]: attribute is not tuple-valued: {other}"
                        )))
                    }
                };
                let nested = if *distinct {
                    dedup_by_value(&nested, ctx.catalog)
                } else {
                    nested
                };
                let rest = t.without(&[*attr]);
                if nested.is_empty() {
                    if *preserve_empty {
                        out.push(rest.concat(&Tuple::bottom(&inner_attrs)));
                    }
                } else {
                    for inner in nested {
                        out.push(rest.concat(&inner));
                    }
                }
            }
            out
        }

        // Υ_{a:e2}(e1) = μ_g(χ_{g:e2[a]}(e1))
        Expr::UnnestMap { input, attr, value } => {
            let seq = eval(input, env, ctx)?;
            let mut out = Vec::new();
            for t in seq {
                let v = eval_scalar(value, &env.concat(&t), ctx)?;
                for item in v.as_item_seq() {
                    out.push(t.extend(*attr, item));
                }
            }
            out
        }

        Expr::XiSimple { input, cmds } => {
            let seq = eval(input, env, ctx)?;
            for t in &seq {
                xi::run_cmds(cmds, &env.concat(t), ctx)?;
            }
            seq
        }

        // s1 Ξ^{s3}_{A;s2}(e) = Ξ_{(s1;Ξ_{s2};s3)}(Γ_{g;=A;id}(e))
        Expr::XiGroup {
            input,
            by,
            head,
            body,
            tail,
        } => {
            let seq = eval(input, env, ctx)?;
            let keys = distinct_by_key(&seq, by, ctx.catalog);
            let mut out = Vec::with_capacity(keys.len());
            for key in keys {
                let group: Vec<&Tuple> = seq
                    .iter()
                    .filter(|t| tuple_key_matches(&key, by, t, by, CmpOp::Eq, ctx.catalog))
                    .collect();
                let key_env = env.concat(&key);
                xi::run_cmds(head, &key_env, ctx)?;
                for t in &group {
                    xi::run_cmds(body, &env.concat(t), ctx)?;
                }
                xi::run_cmds(tail, &key_env, ctx)?;
                out.push(key);
            }
            out
        }
    };
    ctx.metrics.tuples_produced += result.len() as u64;
    Ok(result)
}

/// Apply a projection operator to a sequence.
fn project_seq(seq: &[Tuple], op: &ProjOp, ctx: &EvalCtx<'_>) -> Seq {
    match op {
        ProjOp::Cols(cols) => seq.iter().map(|t| t.project(cols)).collect(),
        ProjOp::Drop(cols) => seq.iter().map(|t| t.without(cols)).collect(),
        ProjOp::Rename(pairs) => seq.iter().map(|t| t.rename(pairs)).collect(),
        ProjOp::DistinctCols(cols) => {
            let projected: Seq = seq
                .iter()
                .map(|t| atomize_tuple(&t.project(cols), ctx.catalog))
                .collect();
            dedup_by_value(&projected, ctx.catalog)
        }
        ProjOp::DistinctRename(pairs) => {
            let old: Vec<Sym> = pairs.iter().map(|(_, o)| *o).collect();
            let projected: Seq = seq
                .iter()
                .map(|t| atomize_tuple(&t.project(&old).rename(pairs), ctx.catalog))
                .collect();
            dedup_by_value(&projected, ctx.catalog)
        }
    }
}

/// Duplicate elimination by *atomized* value (nodes dedup by string
/// value, matching `distinct-values`), keeping the first occurrence.
pub fn dedup_by_value(seq: &[Tuple], catalog: &Catalog) -> Seq {
    let keyed: Vec<(Vec<Value>, &Tuple)> = seq
        .iter()
        .map(|t| (t.values().map(|v| v.atomize(catalog)).collect(), t))
        .collect();
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(seq.len());
    for (key, t) in keyed {
        if seen.insert(key) {
            out.push(t.clone());
        }
    }
    out
}

/// Replace every attribute value by its atomization. `Π^D` projections
/// and Γ group keys emit atomized values — exactly what
/// `distinct-values` returns — so that plans rewritten by Eqv. 3/5/8/9
/// (whose keys come from the inner expression's *nodes*) print the same
/// strings as the nested plans (whose variables hold atomized values).
pub fn atomize_tuple(t: &Tuple, catalog: &Catalog) -> Tuple {
    Tuple::from_pairs(t.iter().map(|(a, v)| (a, v.atomize(catalog))).collect())
}

/// First-occurrence distinct projections of `seq` onto `by`, with
/// atomized key values — the `Π^D_{A':A}(Π_A(e))` inside the Γ definition.
fn distinct_by_key(seq: &[Tuple], by: &[Sym], catalog: &Catalog) -> Seq {
    let projected: Seq = seq
        .iter()
        .map(|t| atomize_tuple(&t.project(by), catalog))
        .collect();
    dedup_by_value(&projected, catalog)
}

/// Pairwise `x.A1[i] θ y.A2[i]` for all i.
fn tuple_key_matches(
    x: &Tuple,
    left_on: &[Sym],
    y: &Tuple,
    right_on: &[Sym],
    theta: CmpOp,
    catalog: &Catalog,
) -> bool {
    debug_assert_eq!(left_on.len(), right_on.len());
    left_on
        .iter()
        .zip(right_on)
        .all(|(a1, a2)| match (x.get(*a1), y.get(*a2)) {
            (Some(l), Some(r)) => cmp_atomic(theta, l, r, catalog),
            _ => false,
        })
}

fn exists_match(
    lt: &Tuple,
    right: &[Tuple],
    pred: &Scalar,
    env: &Tuple,
    ctx: &mut EvalCtx<'_>,
) -> EvalResult<bool> {
    for rt in right {
        if scalar::truthy(pred, &env.concat(&lt.concat(rt)), ctx)? {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Apply a group function including its filter stage (which needs the
/// scalar evaluator, hence lives here rather than in `GroupFn`).
pub fn apply_groupfn(
    f: &crate::scalar::GroupFn,
    group: &[Tuple],
    env: &Tuple,
    ctx: &mut EvalCtx<'_>,
) -> EvalResult<Value> {
    let filtered: Vec<Tuple> = match &f.filter {
        None => group.to_vec(),
        Some(p) => {
            let mut kept = Vec::with_capacity(group.len());
            for t in group {
                if scalar::truthy(p, &env.concat(t), ctx)? {
                    kept.push(t.clone());
                }
            }
            kept
        }
    };
    f.aggregate(&filtered, ctx.catalog).map_err(EvalError::new)
}

#[cfg(test)]
mod tests;
