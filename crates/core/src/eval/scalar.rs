//! Scalar (subscript) evaluation, including nested algebraic expressions.

use xmldb::NodeId;
use xpath::EvalCounters;

use crate::eval::{apply_groupfn, eval, EvalCtx, EvalError, EvalResult};
use crate::scalar::{func::effective_boolean, Scalar};
use crate::sequence::{dedup_first_occurrence, lift_items};
use crate::tuple::Tuple;
use crate::value::{cmp_general, CmpOp, Dec, NodeRef, Value};

fn nal_dec(v: f64) -> Dec {
    // normalize -0.0 so grouping keys stay canonical
    Dec(if v == 0.0 { 0.0 } else { v })
}

/// Evaluate a scalar under an environment tuple.
pub fn eval_scalar(s: &Scalar, env: &Tuple, ctx: &mut EvalCtx<'_>) -> EvalResult<Value> {
    match s {
        Scalar::Const(v) => Ok(v.clone()),

        Scalar::Attr(a) => env
            .get(*a)
            .cloned()
            .ok_or_else(|| EvalError::new(format!("unbound attribute `{a}` (env {env})"))),

        Scalar::Cmp(op, l, r) => {
            let lv = eval_scalar(l, env, ctx)?;
            let rv = eval_scalar(r, env, ctx)?;
            Ok(Value::Bool(cmp_general(*op, &lv, &rv, ctx.catalog)))
        }

        // l ∈ r — membership; identical to an existential `=` at runtime.
        Scalar::In(l, r) => {
            let lv = eval_scalar(l, env, ctx)?;
            let rv = eval_scalar(r, env, ctx)?;
            Ok(Value::Bool(cmp_general(CmpOp::Eq, &lv, &rv, ctx.catalog)))
        }

        Scalar::And(l, r) => {
            // Short-circuit, like the engine would.
            if !truthy(l, env, ctx)? {
                return Ok(Value::Bool(false));
            }
            Ok(Value::Bool(truthy(r, env, ctx)?))
        }

        Scalar::Or(l, r) => {
            if truthy(l, env, ctx)? {
                return Ok(Value::Bool(true));
            }
            Ok(Value::Bool(truthy(r, env, ctx)?))
        }

        Scalar::Not(x) => Ok(Value::Bool(!truthy(x, env, ctx)?)),

        // Numeric arithmetic with XQuery's empty-sequence propagation:
        // any empty/NULL operand yields the empty result.
        Scalar::Arith(op, l, r) => {
            let lv = eval_scalar(l, env, ctx)?.atomize(ctx.catalog);
            let rv = eval_scalar(r, env, ctx)?.atomize(ctx.catalog);
            if lv.is_empty_seq() || rv.is_empty_seq() {
                return Ok(Value::Null);
            }
            match (lv.as_number(), rv.as_number()) {
                (Some(a), Some(b)) => Ok(Value::Dec(nal_dec(op.apply(a, b)))),
                _ => Err(EvalError::new(format!(
                    "arithmetic on non-numeric operands: {lv} {} {rv}",
                    op.symbol()
                ))),
            }
        }

        Scalar::Call(f, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_scalar(a, env, ctx)?);
            }
            f.apply(&vals, ctx.catalog).map_err(EvalError::new)
        }

        Scalar::Doc(uri) => {
            let id = ctx
                .catalog
                .by_uri(uri)
                .ok_or_else(|| EvalError::new(format!("unknown document `{uri}`")))?;
            Ok(Value::Node(NodeRef {
                doc: id,
                node: NodeId::DOCUMENT,
            }))
        }

        Scalar::Path(base, path) => {
            let v = eval_scalar(base, env, ctx)?;
            eval_path_value(&v, path, ctx)
        }

        Scalar::Lift(inner, a) => {
            let v = eval_scalar(inner, env, ctx)?;
            Ok(Value::tuples(lift_items(&v, *a)))
        }

        Scalar::DistinctItems(inner) => {
            let v = eval_scalar(inner, env, ctx)?;
            let atomized = v.atomize(ctx.catalog).as_item_seq();
            Ok(Value::Items(dedup_first_occurrence(&atomized).into()))
        }

        Scalar::Exists { var, range, pred } => {
            ctx.metrics.nested_evals += 1;
            let seq = eval(range, env, ctx)?;
            for t in seq {
                let v = single_attr_value(&t)?;
                if truthy(pred, &env.extend(*var, v), ctx)? {
                    return Ok(Value::Bool(true));
                }
            }
            Ok(Value::Bool(false))
        }

        Scalar::Forall { var, range, pred } => {
            ctx.metrics.nested_evals += 1;
            let seq = eval(range, env, ctx)?;
            for t in seq {
                let v = single_attr_value(&t)?;
                if !truthy(pred, &env.extend(*var, v), ctx)? {
                    return Ok(Value::Bool(false));
                }
            }
            Ok(Value::Bool(true))
        }

        Scalar::Agg { f, input } => {
            ctx.metrics.nested_evals += 1;
            let seq = eval(input, env, ctx)?;
            apply_groupfn(f, &seq, env, ctx)
        }
    }
}

/// Effective boolean value of a scalar — predicate truthiness.
pub fn truthy(s: &Scalar, env: &Tuple, ctx: &mut EvalCtx<'_>) -> EvalResult<bool> {
    Ok(effective_boolean(&eval_scalar(s, env, ctx)?))
}

/// Evaluate a structural path against a node-valued (or node-sequence-
/// valued) context.
pub fn eval_path_value(
    base: &Value,
    path: &xpath::Path,
    ctx: &mut EvalCtx<'_>,
) -> EvalResult<Value> {
    // Collect the context nodes. All must live in the same document (true
    // for every query in the paper; a cross-document step would be a bug).
    let items = base.as_item_seq();
    if items.is_empty() {
        return Ok(Value::Items(vec![].into()));
    }
    let mut doc_id = None;
    let mut nodes: Vec<NodeId> = Vec::with_capacity(items.len());
    for it in &items {
        match it {
            Value::Node(n) => {
                if *doc_id.get_or_insert(n.doc) != n.doc {
                    return Err(EvalError::new("path over nodes from different documents"));
                }
                nodes.push(n.node);
            }
            other => {
                return Err(EvalError::new(format!(
                    "path applied to non-node value: {other}"
                )))
            }
        }
    }
    let doc_id = doc_id.expect("non-empty context");
    let doc = ctx.catalog.doc(doc_id);
    let mut counters = EvalCounters::default();
    let result = xpath::eval_path(doc, &nodes, path, &mut counters);
    ctx.metrics.doc_scans += counters.doc_scans;
    ctx.metrics.nodes_visited += counters.nodes_visited;
    Ok(Value::items(
        result
            .into_iter()
            .map(|node| Value::Node(NodeRef { doc: doc_id, node }))
            .collect(),
    ))
}

/// The value of a single-attribute tuple — how quantifier ranges bind
/// their variable (the range is always projected onto one attribute,
/// `Π_{x'}` in Eqv. 6/7).
fn single_attr_value(t: &Tuple) -> EvalResult<Value> {
    let mut it = t.iter();
    match (it.next(), it.next()) {
        (Some((_, v)), None) => Ok(v.clone()),
        _ => Err(EvalError::new(format!(
            "quantifier range must produce single-attribute tuples, got {t}"
        ))),
    }
}
