//! Evaluator unit tests, including the paper's running examples:
//! Fig. 1 (map operator), Fig. 2 (unary/binary Γ), and the §2 Ξ example.

use xmldb::Catalog;

use crate::expr::builder::*;
use crate::expr::Expr;
use crate::scalar::{AggKind, GroupFn, Scalar};
use crate::sym::Sym;
use crate::tuple::Tuple;
use crate::value::{CmpOp, Value};

use super::{eval_query, EvalCtx};

fn s(n: &str) -> Sym {
    Sym::new(n)
}

fn int_tuple(pairs: &[(&str, i64)]) -> Tuple {
    Tuple::from_pairs(pairs.iter().map(|&(n, v)| (s(n), Value::Int(v))).collect())
}

/// R1 of Fig. 1/2: A1 ∈ {1, 2, 3}.
fn r1() -> Expr {
    Expr::Literal(vec![
        int_tuple(&[("A1", 1)]),
        int_tuple(&[("A1", 2)]),
        int_tuple(&[("A1", 3)]),
    ])
}

/// R2 of Fig. 1/2: (A2, B) ∈ {(1,2), (1,3), (2,4), (2,5)}.
fn r2() -> Expr {
    Expr::Literal(vec![
        int_tuple(&[("A2", 1), ("B", 2)]),
        int_tuple(&[("A2", 1), ("B", 3)]),
        int_tuple(&[("A2", 2), ("B", 4)]),
        int_tuple(&[("A2", 2), ("B", 5)]),
    ])
}

fn run(e: &Expr) -> Vec<Tuple> {
    let cat = Catalog::new();
    let mut ctx = EvalCtx::new(&cat);
    eval_query(e, &mut ctx).expect("evaluation succeeds")
}

fn run_with_output(e: &Expr) -> (Vec<Tuple>, String) {
    let cat = Catalog::new();
    let mut ctx = EvalCtx::new(&cat);
    let seq = eval_query(e, &mut ctx).expect("evaluation succeeds");
    let out = ctx.take_output();
    (seq, out)
}

#[test]
fn fig1_map_with_nested_selection() {
    // χ_{a:σ_{A1=A2}(R2)}(R1) — Fig. 1.
    let e = r1().map(
        "a",
        Scalar::Agg {
            f: GroupFn::id(),
            input: Box::new(r2().select(Scalar::attr_cmp(CmpOp::Eq, "A1", "A2"))),
        },
    );
    let out = run(&e);
    assert_eq!(out.len(), 3);
    // A1=1 → ⟨[1,2],[1,3]⟩
    let g1 = out[0].get(s("a")).unwrap();
    assert_eq!(
        *g1,
        Value::tuples(vec![
            int_tuple(&[("A2", 1), ("B", 2)]),
            int_tuple(&[("A2", 1), ("B", 3)]),
        ])
    );
    // A1=3 → ⟨⟩
    let g3 = out[2].get(s("a")).unwrap();
    assert_eq!(*g3, Value::tuples(vec![]));
}

#[test]
fn fig2_unary_gamma_count() {
    // Γ_{g;=A2;count}(R2) = {(1, 2), (2, 2)}.
    let e = r2().group_unary("g", &["A2"], CmpOp::Eq, GroupFn::count());
    let out = run(&e);
    assert_eq!(
        out,
        vec![
            int_tuple(&[("A2", 1), ("g", 2)]),
            int_tuple(&[("A2", 2), ("g", 2)]),
        ]
    );
}

#[test]
fn fig2_unary_gamma_id() {
    // Γ_{g;=A2;id}(R2) — groups as nested relations.
    let e = r2().group_unary("g", &["A2"], CmpOp::Eq, GroupFn::id());
    let out = run(&e);
    assert_eq!(out.len(), 2);
    assert_eq!(out[0].get(s("A2")), Some(&Value::Int(1)));
    assert_eq!(
        out[0].get(s("g")).unwrap(),
        &Value::tuples(vec![
            int_tuple(&[("A2", 1), ("B", 2)]),
            int_tuple(&[("A2", 1), ("B", 3)]),
        ])
    );
}

#[test]
fn fig2_binary_gamma_keeps_empty_groups() {
    // R1 Γ_{g;A1=A2;id} R2 — A1=3 gets the empty group.
    let e = r1().group_binary(r2(), "g", &["A1"], CmpOp::Eq, &["A2"], GroupFn::id());
    let out = run(&e);
    assert_eq!(out.len(), 3);
    assert_eq!(out[2].get(s("A1")), Some(&Value::Int(3)));
    assert_eq!(out[2].get(s("g")), Some(&Value::tuples(vec![])));
}

#[test]
fn fig2_mu_inverts_gamma() {
    // μ_g(Γ_{g;=A2;id}(R2)) = R2 (§2: "µg(Rg2) = R2").
    let e = r2()
        .group_unary("g", &["A2"], CmpOp::Eq, GroupFn::id())
        .unnest("g");
    let out = run(&e);
    let expected = run(&r2());
    assert_eq!(out, expected);
}

#[test]
fn selection_preserves_order() {
    let e = r2().select(Scalar::cmp(CmpOp::Ge, Scalar::attr("B"), Scalar::int(3)));
    let out = run(&e);
    assert_eq!(
        out,
        vec![
            int_tuple(&[("A2", 1), ("B", 3)]),
            int_tuple(&[("A2", 2), ("B", 4)]),
            int_tuple(&[("A2", 2), ("B", 5)]),
        ]
    );
}

#[test]
fn cross_product_is_left_major() {
    let e = r1().cross(r2().project(&["B"]));
    let out = run(&e);
    assert_eq!(out.len(), 12);
    // First four tuples pair A1=1 with B in R2 order.
    assert_eq!(out[0], int_tuple(&[("A1", 1), ("B", 2)]));
    assert_eq!(out[1], int_tuple(&[("A1", 1), ("B", 3)]));
    assert_eq!(out[4], int_tuple(&[("A1", 2), ("B", 2)]));
}

#[test]
fn join_semijoin_antijoin() {
    let pred = Scalar::attr_cmp(CmpOp::Eq, "A1", "A2");
    let join = run(&r1().join(r2(), pred.clone()));
    assert_eq!(join.len(), 4);
    assert_eq!(join[0], int_tuple(&[("A1", 1), ("A2", 1), ("B", 2)]));

    let semi = run(&r1().semijoin(r2(), pred.clone()));
    assert_eq!(semi, vec![int_tuple(&[("A1", 1)]), int_tuple(&[("A1", 2)])]);

    let anti = run(&r1().antijoin(r2(), pred));
    assert_eq!(anti, vec![int_tuple(&[("A1", 3)])]);
}

#[test]
fn outer_join_pads_with_default_and_nulls() {
    // R1 ⟕^{g:0}_{A1=A2} Γ_{g;=A2;count}(R2) — the §2 motivation example:
    // empty groups (A1=3) get g = 0.
    let grouped = r2().group_unary("g", &["A2"], CmpOp::Eq, GroupFn::count());
    let e = r1().outerjoin(
        grouped,
        Scalar::attr_cmp(CmpOp::Eq, "A1", "A2"),
        "g",
        Value::Int(0),
    );
    let out = run(&e);
    assert_eq!(out.len(), 3);
    assert_eq!(out[0], int_tuple(&[("A1", 1), ("A2", 1), ("g", 2)]));
    assert_eq!(out[1], int_tuple(&[("A1", 2), ("A2", 2), ("g", 2)]));
    // unmatched: A2 padded with NULL, g gets the default
    assert_eq!(out[2].get(s("A1")), Some(&Value::Int(3)));
    assert_eq!(out[2].get(s("A2")), Some(&Value::Null));
    assert_eq!(out[2].get(s("g")), Some(&Value::Int(0)));
}

#[test]
fn distinct_projection_keeps_first_occurrence() {
    let e = r2().distinct_cols(&["A2"]);
    let out = run(&e);
    assert_eq!(out, vec![int_tuple(&[("A2", 1)]), int_tuple(&[("A2", 2)])]);

    let renamed = r2().distinct_rename(&[("A1", "A2")]);
    let out = run(&renamed);
    assert_eq!(out, vec![int_tuple(&[("A1", 1)]), int_tuple(&[("A1", 2)])]);
}

#[test]
fn unnest_distinct_dedups_within_groups() {
    // A nested attribute with duplicated inner tuples: μD removes them.
    let nested = Expr::Literal(vec![Tuple::from_pairs(vec![
        (s("k"), Value::Int(7)),
        (
            s("g"),
            Value::tuples(vec![
                int_tuple(&[("x", 1)]),
                int_tuple(&[("x", 1)]),
                int_tuple(&[("x", 2)]),
            ]),
        ),
    ])]);
    let plain = run(&nested.clone().unnest("g"));
    assert_eq!(plain.len(), 3);
    let distinct = run(&nested.unnest_distinct("g"));
    assert_eq!(
        distinct,
        vec![
            int_tuple(&[("k", 7), ("x", 1)]),
            int_tuple(&[("k", 7), ("x", 2)])
        ]
    );
}

#[test]
fn unnest_empty_group_behaviour() {
    let nested = Expr::Literal(vec![Tuple::from_pairs(vec![
        (s("k"), Value::Int(7)),
        (s("g"), Value::tuples(vec![])),
    ])]);
    // Default: the XQuery `for` behaviour — nothing.
    assert!(run(&nested.clone().unnest("g")).is_empty());
    // preserve_empty: the §2 ⊥ behaviour — one NULL-padded tuple. (The
    // nested attrs cannot be inferred from an empty literal group, so the
    // padded tuple simply keeps the rest.)
    let preserved = run(&Expr::Unnest {
        input: Box::new(nested),
        attr: s("g"),
        distinct: false,
        preserve_empty: true,
    });
    assert_eq!(preserved, vec![int_tuple(&[("k", 7)])]);
}

#[test]
fn unnest_map_over_items() {
    // Υ_{x:items}(R1) with items independent of the input: 3×2 tuples.
    let e = r1().unnest_map(
        "x",
        Scalar::Const(Value::items(vec![Value::Int(10), Value::Int(20)])),
    );
    let out = run(&e);
    assert_eq!(out.len(), 6);
    assert_eq!(out[0], int_tuple(&[("A1", 1), ("x", 10)]));
    assert_eq!(out[1], int_tuple(&[("A1", 1), ("x", 20)]));
    // Empty items → no tuples (for-semantics).
    let empty = r1().unnest_map("x", Scalar::Const(Value::items(vec![])));
    assert!(run(&empty).is_empty());
}

#[test]
fn xi_simple_example_from_section_2() {
    // The author/title example of §2 (simple form: one element per tuple).
    let rows = Expr::Literal(vec![
        Tuple::from_pairs(vec![
            (s("a"), Value::str("author1")),
            (s("t"), Value::str("title1")),
        ]),
        Tuple::from_pairs(vec![
            (s("a"), Value::str("author2")),
            (s("t"), Value::str("title2")),
        ]),
    ]);
    let e = rows.xi(xi_cmds(&["<entry>", "$a", ":", "$t", "</entry>"]));
    let (seq, out) = run_with_output(&e);
    assert_eq!(seq.len(), 2, "Ξ is the identity on its input sequence");
    assert_eq!(
        out,
        "<entry>author1:title1</entry><entry>author2:title2</entry>"
    );
}

#[test]
fn xi_group_example_from_section_2() {
    // s1 Ξ^{s3}_{a;s2} over the four author/title tuples of §2.
    let rows = Expr::Literal(vec![
        Tuple::from_pairs(vec![
            (s("a"), Value::str("author1")),
            (s("t"), Value::str("title1")),
        ]),
        Tuple::from_pairs(vec![
            (s("a"), Value::str("author1")),
            (s("t"), Value::str("title2")),
        ]),
        Tuple::from_pairs(vec![
            (s("a"), Value::str("author2")),
            (s("t"), Value::str("title1")),
        ]),
        Tuple::from_pairs(vec![
            (s("a"), Value::str("author2")),
            (s("t"), Value::str("title3")),
        ]),
    ]);
    let e = rows.xi_group(
        &["a"],
        xi_cmds(&["<author>", "<name>", "$a", "</name>"]),
        xi_cmds(&["<title>", "$t", "</title>"]),
        xi_cmds(&["</author>"]),
    );
    let (_, out) = run_with_output(&e);
    assert_eq!(
        out,
        "<author><name>author1</name><title>title1</title><title>title2</title></author>\
         <author><name>author2</name><title>title1</title><title>title3</title></author>"
    );
}

#[test]
fn quantifier_scalars() {
    // σ_{∃x∈Π_B(R2): x > 4}(R1) — all of R1 qualifies or none does,
    // since the range is uncorrelated; B max is 5 > 4.
    let range = r2().project(&["B"]);
    let e = r1().select(Scalar::Exists {
        var: s("x"),
        range: Box::new(range.clone()),
        pred: Box::new(Scalar::cmp(CmpOp::Gt, Scalar::attr("x"), Scalar::int(4))),
    });
    assert_eq!(run(&e).len(), 3);

    // ∀x∈Π_B(R2): x > 4 is false (B=2 fails).
    let e = r1().select(Scalar::Forall {
        var: s("x"),
        range: Box::new(range),
        pred: Box::new(Scalar::cmp(CmpOp::Gt, Scalar::attr("x"), Scalar::int(4))),
    });
    assert!(run(&e).is_empty());
}

#[test]
fn correlated_quantifier() {
    // σ_{∃x∈Π_B(σ_{A1=A2}(R2)): x >= 4}(R1) — true only for A1=2.
    let range = r2()
        .select(Scalar::attr_cmp(CmpOp::Eq, "A1", "A2"))
        .project(&["B"]);
    let e = r1().select(Scalar::Exists {
        var: s("x"),
        range: Box::new(range),
        pred: Box::new(Scalar::cmp(CmpOp::Ge, Scalar::attr("x"), Scalar::int(4))),
    });
    assert_eq!(run(&e), vec![int_tuple(&[("A1", 2)])]);
}

#[test]
fn nested_agg_min() {
    // χ_{m:min∘Π_B(σ_{A1=A2}(R2))}(R1)
    let e = r1().map(
        "m",
        Scalar::Agg {
            f: GroupFn::agg_of(AggKind::Min, "B"),
            input: Box::new(r2().select(Scalar::attr_cmp(CmpOp::Eq, "A1", "A2"))),
        },
    );
    let out = run(&e);
    assert_eq!(
        out[0].get(s("m")),
        Some(&Value::Dec(crate::value::Dec(2.0)))
    );
    assert_eq!(
        out[1].get(s("m")),
        Some(&Value::Dec(crate::value::Dec(4.0)))
    );
    assert_eq!(out[2].get(s("m")), Some(&Value::Null)); // empty group
}

#[test]
fn nested_eval_metric_counts_per_outer_tuple() {
    let cat = Catalog::new();
    let mut ctx = EvalCtx::new(&cat);
    let e = r1().map(
        "c",
        Scalar::Agg {
            f: GroupFn::count(),
            input: Box::new(r2().select(Scalar::attr_cmp(CmpOp::Eq, "A1", "A2"))),
        },
    );
    eval_query(&e, &mut ctx).unwrap();
    assert_eq!(
        ctx.metrics.nested_evals, 3,
        "one nested evaluation per R1 tuple"
    );
}

#[test]
fn doc_and_path_evaluation() {
    let mut cat = Catalog::new();
    cat.register(
        xmldb::parse_document(
            "bib.xml",
            "<bib><book><title>T1</title></book><book><title>T2</title></book></bib>",
        )
        .unwrap(),
    );
    let mut ctx = EvalCtx::new(&cat);
    let e = doc_scan("d1", "bib.xml").unnest_map(
        "t1",
        Scalar::attr("d1").path(xpath::parse_path("//book/title").unwrap()),
    );
    let out = eval_query(&e, &mut ctx).unwrap();
    assert_eq!(out.len(), 2);
    assert_eq!(ctx.metrics.doc_scans, 1);
    // Titles are node values; check their string values.
    let Value::Node(n) = out[0].get(s("t1")).unwrap() else {
        panic!()
    };
    assert_eq!(cat.doc(n.doc).string_value(n.node), "T1");
}

#[test]
fn general_comparison_on_paths() {
    let mut cat = Catalog::new();
    cat.register(
        xmldb::parse_document(
            "bib.xml",
            r#"<bib><book year="1994"><title>T1</title></book><book year="2000"><title>T2</title></book></bib>"#,
        )
        .unwrap(),
    );
    let mut ctx = EvalCtx::new(&cat);
    // σ_{b1/@year > 1995}(Υ_{b1:d1//book}(χ_{d1:doc}(□)))
    let e = doc_scan("d1", "bib.xml")
        .unnest_map(
            "b1",
            Scalar::attr("d1").path(xpath::parse_path("//book").unwrap()),
        )
        .select(Scalar::cmp(
            CmpOp::Gt,
            Scalar::attr("b1").path(xpath::parse_path("@year").unwrap()),
            Scalar::int(1995),
        ));
    let out = eval_query(&e, &mut ctx).unwrap();
    assert_eq!(out.len(), 1);
}

#[test]
fn unbound_attribute_is_an_error() {
    let e = r1().select(Scalar::attr("missing"));
    let cat = Catalog::new();
    let mut ctx = EvalCtx::new(&cat);
    let err = eval_query(&e, &mut ctx).unwrap_err();
    assert!(err.message.contains("unbound"), "{err}");
}

#[test]
fn empty_input_short_circuits() {
    let empty = Expr::Literal(vec![]);
    assert!(run(&empty.clone().select(Scalar::attr("x"))).is_empty());
    assert!(run(&empty.clone().cross(r1())).is_empty());
    assert!(run(&empty.clone().join(r1(), Scalar::Const(Value::Bool(true)))).is_empty());
    assert!(run(&empty.group_unary("g", &["A1"], CmpOp::Eq, GroupFn::count())).is_empty());
}

#[test]
fn theta_grouping_with_inequality() {
    // Γ_{g;<A2;count}: for each distinct key k, count tuples with k < A2.
    // Keys 1 and 2 (first occurrence order); k=1 matches A2=2 twice.
    let e = r2().group_unary("g", &["A2"], CmpOp::Lt, GroupFn::count());
    let out = run(&e);
    assert_eq!(out.len(), 2);
    assert_eq!(out[0], int_tuple(&[("A2", 1), ("g", 2)])); // 1 < {2,2}
    assert_eq!(out[1], int_tuple(&[("A2", 2), ("g", 0)]));
}

#[test]
fn arithmetic_scalars() {
    use crate::scalar::ArithOp;
    let e = r1().map(
        "y",
        Scalar::Arith(
            ArithOp::Add,
            Box::new(Scalar::Arith(
                ArithOp::Mul,
                Box::new(Scalar::attr("A1")),
                Box::new(Scalar::int(10)),
            )),
            Box::new(Scalar::int(5)),
        ),
    );
    let out = run(&e);
    assert_eq!(
        out[0].get(s("y")),
        Some(&Value::Dec(crate::value::Dec(15.0)))
    );
    assert_eq!(
        out[2].get(s("y")),
        Some(&Value::Dec(crate::value::Dec(35.0)))
    );
    // Empty-sequence propagation.
    let e = r1().map(
        "y",
        Scalar::Arith(
            ArithOp::Div,
            Box::new(Scalar::Const(Value::Null)),
            Box::new(Scalar::int(2)),
        ),
    );
    assert_eq!(run(&e)[0].get(s("y")), Some(&Value::Null));
}
