//! Ξ result construction: serializing values onto the output stream.

use xmldb::serializer::serialize_node;

use crate::eval::{EvalCtx, EvalError, EvalResult};
use crate::expr::XiCmd;
use crate::tuple::Tuple;
use crate::value::Value;

/// Execute a Ξ command list for one tuple.
pub fn run_cmds(cmds: &[XiCmd], env: &Tuple, ctx: &mut EvalCtx<'_>) -> EvalResult<()> {
    for cmd in cmds {
        match cmd {
            XiCmd::Str(s) => ctx.out.push_str(s),
            XiCmd::Var(a) => {
                let v = env
                    .get(*a)
                    .cloned()
                    .ok_or_else(|| EvalError::new(format!("Ξ: unbound variable `{a}`")))?;
                let mut s = String::new();
                write_value(&v, ctx, &mut s)?;
                ctx.out.push_str(&s);
            }
        }
    }
    Ok(())
}

/// Serialize a value the way XQuery result construction does: nodes as
/// XML markup, atomic values as their string value, sequences item by
/// item.
pub fn write_value(v: &Value, ctx: &EvalCtx<'_>, out: &mut String) -> EvalResult<()> {
    match v {
        Value::Null => {}
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Dec(d) => out.push_str(&d.to_string()),
        Value::Str(s) => out.push_str(s),
        Value::Node(n) => {
            let doc = ctx.catalog.doc(n.doc);
            serialize_node(doc, n.node, out);
        }
        Value::Items(items) => {
            for it in items.iter() {
                write_value(it, ctx, out)?;
            }
        }
        Value::Tuples(ts) => {
            // A nested relation prints as the concatenation of its tuples'
            // values (used when a group with a single attribute is printed
            // directly).
            for t in ts.iter() {
                for val in t.values() {
                    write_value(val, ctx, out)?;
                }
            }
        }
    }
    Ok(())
}
