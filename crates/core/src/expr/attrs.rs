//! Static attribute analysis: `A(e)` (produced attributes) and `F(e)`
//! (free variables) of §2, plus the nested-attribute inference that `μ`
//! needs to know the schema of a tuple-valued attribute.
//!
//! Both analyses are the backbone of the rewriter's side-condition checks
//! (`Ai ⊆ A(ei)`, `F(e2) ∩ A(e1) = ∅`, `g ∉ A(e1) ∪ A(e2)`, …).

use std::collections::BTreeSet;

use crate::expr::{Expr, ProjOp};
use crate::scalar::{AggKind, GroupFn, Scalar};
use crate::sym::Sym;

/// `A(e)` — the attributes of the tuples produced by `e`, sorted.
pub fn attrs(e: &Expr) -> Vec<Sym> {
    let set = attr_set(e);
    set.into_iter().collect()
}

/// `A(e)` as a set.
pub fn attr_set(e: &Expr) -> BTreeSet<Sym> {
    match e {
        Expr::Singleton => BTreeSet::new(),
        Expr::Literal(rows) => rows.iter().flat_map(|t| t.attrs()).collect(),
        // The schema of an environment-provided nested relation is not
        // statically known here.
        Expr::AttrRel(_) => BTreeSet::new(),
        Expr::Select { input, .. } | Expr::XiSimple { input, .. } => attr_set(input),
        Expr::Project { input, op } => match op {
            ProjOp::Cols(cols) | ProjOp::DistinctCols(cols) => cols.iter().copied().collect(),
            ProjOp::Drop(cols) => {
                let mut s = attr_set(input);
                for c in cols {
                    s.remove(c);
                }
                s
            }
            ProjOp::Rename(pairs) => attr_set(input)
                .into_iter()
                .map(|a| {
                    pairs
                        .iter()
                        .find(|(_, old)| *old == a)
                        .map(|(new, _)| *new)
                        .unwrap_or(a)
                })
                .collect(),
            ProjOp::DistinctRename(pairs) => pairs.iter().map(|(new, _)| *new).collect(),
        },
        Expr::Map { input, attr, .. } => {
            let mut s = attr_set(input);
            s.insert(*attr);
            s
        }
        Expr::Cross { left, right } | Expr::Join { left, right, .. } => {
            let mut s = attr_set(left);
            s.extend(attr_set(right));
            s
        }
        Expr::SemiJoin { left, .. } | Expr::AntiJoin { left, .. } => attr_set(left),
        Expr::OuterJoin { left, right, .. } => {
            let mut s = attr_set(left);
            s.extend(attr_set(right));
            s
        }
        Expr::GroupUnary { g, by, .. } => {
            let mut s: BTreeSet<Sym> = by.iter().copied().collect();
            s.insert(*g);
            s
        }
        Expr::GroupBinary { left, g, .. } => {
            let mut s = attr_set(left);
            s.insert(*g);
            s
        }
        Expr::Unnest { input, attr, .. } => {
            let mut s = attr_set(input);
            s.remove(attr);
            if let Some(inner) = nested_attrs(input, *attr) {
                s.extend(inner);
            }
            s
        }
        Expr::UnnestMap { input, attr, .. } => {
            let mut s = attr_set(input);
            s.insert(*attr);
            s
        }
        Expr::XiGroup { by, .. } => by.iter().copied().collect(),
    }
}

/// Infer the attribute set `A(a)` of a *nested* (tuple-sequence-valued)
/// attribute `target` produced somewhere inside `e`. Returns `None` when
/// the attribute is not statically known to be tuple-valued.
pub fn nested_attrs(e: &Expr, target: Sym) -> Option<Vec<Sym>> {
    match e {
        Expr::Map { input, attr, value } => {
            if *attr == target {
                scalar_nested_attrs(value)
            } else {
                nested_attrs(input, target)
            }
        }
        Expr::GroupUnary { input, g, f, .. } => {
            if *g == target {
                groupfn_nested_attrs(f, input)
            } else {
                nested_attrs(input, target)
            }
        }
        Expr::GroupBinary {
            left, right, g, f, ..
        } => {
            if *g == target {
                groupfn_nested_attrs(f, right)
            } else {
                nested_attrs(left, target)
            }
        }
        Expr::OuterJoin { left, right, g, .. } => {
            if *g == target || attr_set(right).contains(&target) {
                nested_attrs(right, target)
            } else {
                nested_attrs(left, target)
            }
        }
        Expr::Project { input, op } => match op {
            ProjOp::Rename(pairs) | ProjOp::DistinctRename(pairs) => {
                let old = pairs
                    .iter()
                    .find(|(new, _)| *new == target)
                    .map(|(_, old)| *old)
                    .unwrap_or(target);
                nested_attrs(input, old)
            }
            _ => nested_attrs(input, target),
        },
        Expr::Select { input, .. }
        | Expr::Unnest { input, .. }
        | Expr::UnnestMap { input, .. }
        | Expr::XiSimple { input, .. }
        | Expr::XiGroup { input, .. } => nested_attrs(input, target),
        Expr::Cross { left, right } | Expr::Join { left, right, .. } => {
            if attr_set(left).contains(&target) {
                nested_attrs(left, target)
            } else {
                nested_attrs(right, target)
            }
        }
        Expr::SemiJoin { left, .. } | Expr::AntiJoin { left, .. } => nested_attrs(left, target),
        Expr::Singleton | Expr::AttrRel(_) => None,
        Expr::Literal(rows) => rows.iter().find_map(|t| match t.get(target) {
            // An empty nested relation carries no schema — keep looking at
            // later rows (a `Some(vec![])` here would fabricate an empty
            // grouping key list downstream).
            Some(crate::value::Value::Tuples(ts)) if !ts.is_empty() => {
                let mut set: BTreeSet<Sym> = BTreeSet::new();
                for inner in ts.iter() {
                    set.extend(inner.attrs());
                }
                Some(set.into_iter().collect())
            }
            _ => None,
        }),
    }
}

fn scalar_nested_attrs(s: &Scalar) -> Option<Vec<Sym>> {
    match s {
        Scalar::Lift(_, a) => Some(vec![*a]),
        Scalar::Agg { f, input } => groupfn_nested_attrs(f, input),
        _ => None,
    }
}

fn groupfn_nested_attrs(f: &GroupFn, input: &Expr) -> Option<Vec<Sym>> {
    if f.agg != AggKind::Tuples {
        return None;
    }
    match f.project {
        Some(p) => Some(vec![p]),
        None => Some(attrs(input)),
    }
}

/// `F(e)` — the free variables of `e`: attributes referenced by scalars
/// that are not produced by the expression's own inputs. A nested
/// expression with free variables must be evaluated once per binding of
/// those variables — exactly what unnesting eliminates.
pub fn free_vars(e: &Expr) -> BTreeSet<Sym> {
    match e {
        Expr::Singleton | Expr::Literal(_) => BTreeSet::new(),
        // reads the enclosing environment — the attribute itself is free
        Expr::AttrRel(a) => std::iter::once(*a).collect(),
        Expr::Select { input, pred } => unary_free(input, Some(pred)),
        Expr::Project { input, .. }
        | Expr::XiSimple { input, .. }
        | Expr::XiGroup { input, .. }
        | Expr::Unnest { input, .. } => unary_free(input, None),
        Expr::Map { input, value, .. } | Expr::UnnestMap { input, value, .. } => {
            unary_free(input, Some(value))
        }
        Expr::Cross { left, right } => binary_free(left, right, None),
        Expr::Join { left, right, pred }
        | Expr::SemiJoin { left, right, pred }
        | Expr::AntiJoin { left, right, pred }
        | Expr::OuterJoin {
            left, right, pred, ..
        } => binary_free(left, right, Some(pred)),
        Expr::GroupUnary { input, f, .. } => {
            let mut out = unary_free(input, None);
            if let Some(p) = &f.filter {
                let mut inner = p.free_attrs();
                for a in attr_set(input) {
                    inner.remove(&a);
                }
                out.extend(inner);
            }
            out
        }
        Expr::GroupBinary { left, right, f, .. } => {
            let mut out = binary_free(left, right, None);
            if let Some(p) = &f.filter {
                let mut inner = p.free_attrs();
                for a in attr_set(left).union(&attr_set(right)) {
                    inner.remove(a);
                }
                out.extend(inner);
            }
            out
        }
    }
}

fn unary_free(input: &Expr, scalar: Option<&Scalar>) -> BTreeSet<Sym> {
    let mut out = free_vars(input);
    if let Some(s) = scalar {
        let mut refs = s.free_attrs();
        for a in attr_set(input) {
            refs.remove(&a);
        }
        out.extend(refs);
    }
    out
}

fn binary_free(left: &Expr, right: &Expr, scalar: Option<&Scalar>) -> BTreeSet<Sym> {
    let mut out = free_vars(left);
    out.extend(free_vars(right));
    if let Some(s) = scalar {
        let mut refs = s.free_attrs();
        for a in attr_set(left).union(&attr_set(right)) {
            refs.remove(a);
        }
        out.extend(refs);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::builder::*;
    use crate::value::CmpOp;

    fn s(n: &str) -> Sym {
        Sym::new(n)
    }

    #[test]
    fn attrs_of_basic_pipeline() {
        let e = doc_scan("d1", "bib.xml").unnest_map("b1", Scalar::attr("d1"));
        assert_eq!(attrs(&e), vec![s("b1"), s("d1")]);
        let p = e.clone().project(&["b1"]);
        assert_eq!(attrs(&p), vec![s("b1")]);
        let d = e.clone().drop_attrs(&["d1"]);
        assert_eq!(attrs(&d), vec![s("b1")]);
        let r = e.rename(&[("book", "b1")]);
        assert_eq!(attrs(&r), vec![s("book"), s("d1")]);
    }

    #[test]
    fn attrs_of_joins_and_groups() {
        let l = singleton().map("a", Scalar::int(1));
        let r = singleton().map("b", Scalar::int(2));
        let j = l
            .clone()
            .join(r.clone(), Scalar::attr_cmp(CmpOp::Eq, "a", "b"));
        assert_eq!(attrs(&j), vec![s("a"), s("b")]);
        let sj = l
            .clone()
            .semijoin(r.clone(), Scalar::attr_cmp(CmpOp::Eq, "a", "b"));
        assert_eq!(attrs(&sj), vec![s("a")]);
        let g = r
            .clone()
            .group_unary("g", &["b"], CmpOp::Eq, crate::scalar::GroupFn::count());
        assert_eq!(attrs(&g), vec![s("b"), s("g")]);
        let gb = l.group_binary(
            r,
            "g",
            &["a"],
            CmpOp::Eq,
            &["b"],
            crate::scalar::GroupFn::id(),
        );
        assert_eq!(attrs(&gb), vec![s("a"), s("g")]);
    }

    #[test]
    fn distinct_rename_projects_to_new_names() {
        let e = singleton()
            .map("a2", Scalar::int(1))
            .map("x", Scalar::int(2))
            .distinct_rename(&[("a1", "a2")]);
        assert_eq!(attrs(&e), vec![s("a1")]);
    }

    #[test]
    fn unnest_recovers_nested_attrs() {
        // Γ_binary with f = id nests the right attrs; μ recovers them.
        let l = singleton().map("a", Scalar::int(1));
        let r = singleton()
            .map("b", Scalar::int(2))
            .map("c", Scalar::int(3));
        let gb = l.group_binary(
            r,
            "g",
            &["a"],
            CmpOp::Eq,
            &["b"],
            crate::scalar::GroupFn::id(),
        );
        assert_eq!(nested_attrs(&gb, s("g")), Some(vec![s("b"), s("c")]));
        let un = gb.unnest("g");
        assert_eq!(attrs(&un), vec![s("a"), s("b"), s("c")]);
    }

    #[test]
    fn lift_gives_single_nested_attr() {
        let e = singleton().map("a2", Scalar::attr("b2").lift("a2x"));
        assert_eq!(nested_attrs(&e, s("a2")), Some(vec![s("a2x")]));
        let un = e.unnest_distinct("a2");
        assert!(attrs(&un).contains(&s("a2x")));
    }

    #[test]
    fn free_vars_of_correlated_subexpression() {
        // σ_{a1 = a2}(e2) where a2 comes from e2 but a1 is free.
        let e2 = singleton().map("a2", Scalar::int(1));
        let sel = e2.select(Scalar::attr_cmp(CmpOp::Eq, "a1", "a2"));
        let fv = free_vars(&sel);
        assert!(fv.contains(&s("a1")));
        assert!(!fv.contains(&s("a2")));
    }

    #[test]
    fn free_vars_of_nested_agg() {
        // χ_{m:min(σ_{t1=t2}(e2))}(e1): the nested input references t1
        // (from e1), so the map's scalar has t1 free — but the whole
        // expression has no free variables because e1 provides t1.
        let e1 = singleton().map("t1", Scalar::int(1));
        let e2 = singleton()
            .map("t2", Scalar::int(2))
            .map("c2", Scalar::int(3));
        let nested = e2.select(Scalar::attr_cmp(CmpOp::Eq, "t1", "t2"));
        assert_eq!(
            free_vars(&nested).into_iter().collect::<Vec<_>>(),
            vec![s("t1")]
        );
        let whole = e1.map(
            "m",
            Scalar::Agg {
                f: crate::scalar::GroupFn::agg_of(crate::scalar::AggKind::Min, "c2"),
                input: Box::new(nested),
            },
        );
        assert!(free_vars(&whole).is_empty());
    }
}
