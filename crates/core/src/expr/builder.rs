//! Fluent construction of NAL expressions.
//!
//! Keeps tests, the translator, and the rewriter readable:
//!
//! ```
//! use nal::expr::builder::*;
//! use nal::scalar::Scalar;
//! use nal::value::CmpOp;
//!
//! // σ_{a1 = a2}(□ × □)
//! let e = singleton().cross(singleton()).select(Scalar::attr_cmp(CmpOp::Eq, "a1", "a2"));
//! assert_eq!(e.size(), 4);
//! ```

use crate::expr::{Expr, ProjOp, XiCmd};
use crate::scalar::{GroupFn, Scalar};
use crate::sym::Sym;
use crate::value::{CmpOp, Value};

/// `□`.
pub fn singleton() -> Expr {
    Expr::Singleton
}

impl Expr {
    /// σ_pred.
    pub fn select(self, pred: Scalar) -> Expr {
        Expr::Select {
            input: Box::new(self),
            pred,
        }
    }

    /// `Π_A` by name.
    pub fn project(self, cols: &[&str]) -> Expr {
        Expr::Project {
            input: Box::new(self),
            op: ProjOp::Cols(cols.iter().map(|c| Sym::new(c)).collect()),
        }
    }

    /// `Π_A` by symbol.
    pub fn project_syms(self, cols: Vec<Sym>) -> Expr {
        Expr::Project {
            input: Box::new(self),
            op: ProjOp::Cols(cols),
        }
    }

    /// `Π_{Ā}` by name.
    pub fn drop_attrs(self, cols: &[&str]) -> Expr {
        Expr::Project {
            input: Box::new(self),
            op: ProjOp::Drop(cols.iter().map(|c| Sym::new(c)).collect()),
        }
    }

    /// `Π_{Ā}` by symbol.
    pub fn drop_syms(self, cols: Vec<Sym>) -> Expr {
        Expr::Project {
            input: Box::new(self),
            op: ProjOp::Drop(cols),
        }
    }

    /// `Π_{new:old}(…)`.
    pub fn rename(self, pairs: &[(&str, &str)]) -> Expr {
        Expr::Project {
            input: Box::new(self),
            op: ProjOp::Rename(
                pairs
                    .iter()
                    .map(|(n, o)| (Sym::new(n), Sym::new(o)))
                    .collect(),
            ),
        }
    }

    /// `Π_{new:old}` by symbol.
    pub fn rename_syms(self, pairs: Vec<(Sym, Sym)>) -> Expr {
        Expr::Project {
            input: Box::new(self),
            op: ProjOp::Rename(pairs),
        }
    }

    /// `Π^D_A`.
    pub fn distinct_cols(self, cols: &[&str]) -> Expr {
        Expr::Project {
            input: Box::new(self),
            op: ProjOp::DistinctCols(cols.iter().map(|c| Sym::new(c)).collect()),
        }
    }

    /// `Π^D_{new:old}(…)`.
    pub fn distinct_rename(self, pairs: &[(&str, &str)]) -> Expr {
        Expr::Project {
            input: Box::new(self),
            op: ProjOp::DistinctRename(
                pairs
                    .iter()
                    .map(|(n, o)| (Sym::new(n), Sym::new(o)))
                    .collect(),
            ),
        }
    }

    /// `χ_{attr:value}`.
    pub fn map(self, attr: impl Into<Sym>, value: Scalar) -> Expr {
        Expr::Map {
            input: Box::new(self),
            attr: attr.into(),
            value,
        }
    }

    /// `self × right`.
    pub fn cross(self, right: Expr) -> Expr {
        Expr::Cross {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// `self ⋈_pred right`.
    pub fn join(self, right: Expr, pred: Scalar) -> Expr {
        Expr::Join {
            left: Box::new(self),
            right: Box::new(right),
            pred,
        }
    }

    /// `self ⋉_pred right`.
    pub fn semijoin(self, right: Expr, pred: Scalar) -> Expr {
        Expr::SemiJoin {
            left: Box::new(self),
            right: Box::new(right),
            pred,
        }
    }

    /// `self ▷_pred right`.
    pub fn antijoin(self, right: Expr, pred: Scalar) -> Expr {
        Expr::AntiJoin {
            left: Box::new(self),
            right: Box::new(right),
            pred,
        }
    }

    /// `self ⟕^{g:default}_pred right`.
    pub fn outerjoin(self, right: Expr, pred: Scalar, g: impl Into<Sym>, default: Value) -> Expr {
        Expr::OuterJoin {
            left: Box::new(self),
            right: Box::new(right),
            pred,
            g: g.into(),
            default,
        }
    }

    /// `Γ_{g;θA;f}(…)`.
    pub fn group_unary(self, g: impl Into<Sym>, by: &[&str], theta: CmpOp, f: GroupFn) -> Expr {
        Expr::GroupUnary {
            input: Box::new(self),
            g: g.into(),
            by: by.iter().map(|c| Sym::new(c)).collect(),
            theta,
            f,
        }
    }

    /// `… Γ_{g;A1 θ A2;f} right`.
    pub fn group_binary(
        self,
        right: Expr,
        g: impl Into<Sym>,
        left_on: &[&str],
        theta: CmpOp,
        right_on: &[&str],
        f: GroupFn,
    ) -> Expr {
        Expr::GroupBinary {
            left: Box::new(self),
            right: Box::new(right),
            g: g.into(),
            left_on: left_on.iter().map(|c| Sym::new(c)).collect(),
            theta,
            right_on: right_on.iter().map(|c| Sym::new(c)).collect(),
            f,
        }
    }

    /// `μ_attr(…)`.
    pub fn unnest(self, attr: impl Into<Sym>) -> Expr {
        Expr::Unnest {
            input: Box::new(self),
            attr: attr.into(),
            distinct: false,
            preserve_empty: false,
        }
    }

    /// `μ^D_attr(…)` — duplicate-eliminating unnest (Eqv. 4/5).
    pub fn unnest_distinct(self, attr: impl Into<Sym>) -> Expr {
        Expr::Unnest {
            input: Box::new(self),
            attr: attr.into(),
            distinct: true,
            preserve_empty: false,
        }
    }

    /// `Υ_{attr:value}(…)`.
    pub fn unnest_map(self, attr: impl Into<Sym>, value: Scalar) -> Expr {
        Expr::UnnestMap {
            input: Box::new(self),
            attr: attr.into(),
            value,
        }
    }

    /// Simple `Ξ`.
    pub fn xi(self, cmds: Vec<XiCmd>) -> Expr {
        Expr::XiSimple {
            input: Box::new(self),
            cmds,
        }
    }

    /// Group-detecting `Ξ`.
    pub fn xi_group(
        self,
        by: &[&str],
        head: Vec<XiCmd>,
        body: Vec<XiCmd>,
        tail: Vec<XiCmd>,
    ) -> Expr {
        Expr::XiGroup {
            input: Box::new(self),
            by: by.iter().map(|c| Sym::new(c)).collect(),
            head,
            body,
            tail,
        }
    }
}

/// Shorthand for Ξ command lists: strings become [`XiCmd::Str`], names
/// prefixed with `$` become [`XiCmd::Var`].
pub fn xi_cmds(parts: &[&str]) -> Vec<XiCmd> {
    parts
        .iter()
        .map(|p| {
            if let Some(var) = p.strip_prefix('$') {
                XiCmd::Var(Sym::new(var))
            } else {
                XiCmd::Str((*p).to_string())
            }
        })
        .collect()
}

/// `doc("uri")` bound to a fresh attribute via χ over `□` — the standard
/// start of every translated query block.
pub fn doc_scan(var: impl Into<Sym>, uri: &str) -> Expr {
    singleton().map(var, Scalar::Doc(uri.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xi_cmds_shorthand() {
        let cmds = xi_cmds(&["<author>", "$a1", "</author>"]);
        assert_eq!(
            cmds,
            vec![
                XiCmd::Str("<author>".into()),
                XiCmd::Var(Sym::new("a1")),
                XiCmd::Str("</author>".into()),
            ]
        );
    }

    #[test]
    fn doc_scan_shape() {
        let e = doc_scan("d1", "bib.xml");
        let Expr::Map { attr, value, .. } = &e else {
            panic!()
        };
        assert_eq!(*attr, Sym::new("d1"));
        assert_eq!(*value, Scalar::Doc("bib.xml".into()));
    }

    #[test]
    fn builders_nest() {
        let e = doc_scan("d1", "bib.xml")
            .unnest_map("b1", Scalar::attr("d1"))
            .select(Scalar::attr("b1"))
            .project(&["b1"]);
        assert_eq!(e.size(), 5);
    }
}
