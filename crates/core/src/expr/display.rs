//! Pretty printing of expressions in the paper's notation.
//!
//! `σ_{p}(…)`, `χ_{a:e}(…)`, `Γ_{g;=A;f}(…)`, `e1 ⋉_{p} e2`, … — used in
//! tests that assert plan shapes and in the examples' explain output.

use std::fmt;

use crate::expr::{Expr, ProjOp, XiCmd};
use crate::sym::Sym;

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Singleton => write!(f, "□"),
            Expr::Literal(rows) => write!(f, "R⟨{} rows⟩", rows.len()),
            Expr::AttrRel(a) => write!(f, "rel({a})"),
            Expr::Select { input, pred } => write!(f, "σ[{pred}]({input})"),
            Expr::Project { input, op } => match op {
                ProjOp::Cols(cols) => write!(f, "Π[{}]({input})", syms(cols)),
                ProjOp::Drop(cols) => write!(f, "Π[-{}]({input})", syms(cols)),
                ProjOp::Rename(pairs) => write!(f, "Π[{}]({input})", renames(pairs)),
                ProjOp::DistinctCols(cols) => write!(f, "ΠD[{}]({input})", syms(cols)),
                ProjOp::DistinctRename(pairs) => {
                    write!(f, "ΠD[{}]({input})", renames(pairs))
                }
            },
            Expr::Map { input, attr, value } => write!(f, "χ[{attr}:{value}]({input})"),
            Expr::Cross { left, right } => write!(f, "({left} × {right})"),
            Expr::Join { left, right, pred } => write!(f, "({left} ⋈[{pred}] {right})"),
            Expr::SemiJoin { left, right, pred } => write!(f, "({left} ⋉[{pred}] {right})"),
            Expr::AntiJoin { left, right, pred } => write!(f, "({left} ▷[{pred}] {right})"),
            Expr::OuterJoin {
                left,
                right,
                pred,
                g,
                default,
            } => {
                write!(f, "({left} ⟕[{pred}; {g}:{default}] {right})")
            }
            Expr::GroupUnary {
                input,
                g,
                by,
                theta,
                f: gf,
            } => {
                write!(f, "Γ[{g};{}{};{gf}]({input})", theta.symbol(), syms(by))
            }
            Expr::GroupBinary {
                left,
                right,
                g,
                left_on,
                theta,
                right_on,
                f: gf,
            } => {
                write!(
                    f,
                    "({left} Γ[{g};{}{}{};{gf}] {right})",
                    syms(left_on),
                    theta.symbol(),
                    syms(right_on)
                )
            }
            Expr::Unnest {
                input,
                attr,
                distinct,
                preserve_empty,
            } => {
                let d = if *distinct { "D" } else { "" };
                let p = if *preserve_empty { "⊥" } else { "" };
                write!(f, "μ{d}{p}[{attr}]({input})")
            }
            Expr::UnnestMap { input, attr, value } => {
                write!(f, "Υ[{attr}:{value}]({input})")
            }
            Expr::XiSimple { input, cmds } => write!(f, "Ξ[{}]({input})", cmd_list(cmds)),
            Expr::XiGroup {
                input,
                by,
                head,
                body,
                tail,
            } => write!(
                f,
                "Ξg[{} ; {} ; {} ; {}]({input})",
                cmd_list(head),
                syms(by),
                cmd_list(body),
                cmd_list(tail)
            ),
        }
    }
}

fn syms(list: &[Sym]) -> String {
    list.iter()
        .map(|s| s.as_str().to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn renames(pairs: &[(Sym, Sym)]) -> String {
    pairs
        .iter()
        .map(|(new, old)| format!("{new}:{old}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn cmd_list(cmds: &[XiCmd]) -> String {
    cmds.iter()
        .map(|c| match c {
            XiCmd::Str(s) => format!("{s:?}"),
            XiCmd::Var(v) => format!("${v}"),
        })
        .collect::<Vec<_>>()
        .join(";")
}

/// Multi-line, indented rendering for explain output.
pub fn explain(e: &Expr) -> String {
    let mut out = String::new();
    explain_into(e, 0, &mut out);
    out
}

fn explain_into(e: &Expr, depth: usize, out: &mut String) {
    use std::fmt::Write;
    for _ in 0..depth {
        out.push_str("  ");
    }
    let head = match e {
        Expr::Singleton => "□".to_string(),
        Expr::Literal(rows) => format!("R⟨{} rows⟩", rows.len()),
        Expr::AttrRel(a) => format!("rel({a})"),
        Expr::Select { pred, .. } => format!("σ[{pred}]"),
        Expr::Project { op, .. } => match op {
            ProjOp::Cols(c) => format!("Π[{}]", syms(c)),
            ProjOp::Drop(c) => format!("Π[-{}]", syms(c)),
            ProjOp::Rename(p) => format!("Π[{}]", renames(p)),
            ProjOp::DistinctCols(c) => format!("ΠD[{}]", syms(c)),
            ProjOp::DistinctRename(p) => format!("ΠD[{}]", renames(p)),
        },
        Expr::Map { attr, value, .. } => format!("χ[{attr}: {value}]"),
        Expr::Cross { .. } => "×".to_string(),
        Expr::Join { pred, .. } => format!("⋈[{pred}]"),
        Expr::SemiJoin { pred, .. } => format!("⋉[{pred}]"),
        Expr::AntiJoin { pred, .. } => format!("▷[{pred}]"),
        Expr::OuterJoin {
            pred, g, default, ..
        } => format!("⟕[{pred}; {g}:{default}]"),
        Expr::GroupUnary {
            g, by, theta, f, ..
        } => {
            format!("Γ[{g}; {}{}; {f}]", theta.symbol(), syms(by))
        }
        Expr::GroupBinary {
            g,
            left_on,
            theta,
            right_on,
            f,
            ..
        } => format!(
            "Γ2[{g}; {}{}{}; {f}]",
            syms(left_on),
            theta.symbol(),
            syms(right_on)
        ),
        Expr::Unnest { attr, distinct, .. } => {
            format!("μ{}[{attr}]", if *distinct { "D" } else { "" })
        }
        Expr::UnnestMap { attr, value, .. } => format!("Υ[{attr}: {value}]"),
        Expr::XiSimple { cmds, .. } => format!("Ξ[{}]", cmd_list(cmds)),
        Expr::XiGroup { by, .. } => format!("Ξg[{}]", syms(by)),
    };
    let _ = writeln!(out, "{head}");
    for c in super::visit::children(e) {
        explain_into(c, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use crate::expr::builder::*;
    use crate::scalar::Scalar;
    use crate::value::CmpOp;

    #[test]
    fn display_uses_paper_notation() {
        let e = doc_scan("d1", "bib.xml").select(Scalar::attr_cmp(CmpOp::Eq, "a1", "a2"));
        let s = e.to_string();
        assert!(s.contains("σ[a1 = a2]"), "{s}");
        assert!(s.contains("χ[d1:doc(\"bib.xml\")]"), "{s}");
        assert!(s.contains('□'), "{s}");
    }

    #[test]
    fn explain_is_indented() {
        let e = doc_scan("d1", "bib.xml").unnest_map("b1", Scalar::attr("d1"));
        let ex = super::explain(&e);
        let lines: Vec<_> = ex.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("Υ"));
        assert!(lines[1].starts_with("  χ"));
        assert!(lines[2].starts_with("    □"));
    }
}
