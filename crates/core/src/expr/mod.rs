//! The logical algebra: NAL's order-preserving operators (§2).

pub mod attrs;
pub mod builder;
pub mod display;
pub mod visit;

use crate::scalar::{GroupFn, Scalar};
use crate::sym::Sym;
use crate::value::{CmpOp, Value};

/// Projection flavors. §2 defines `Π_A` (keep), `Π_{Ā}` (drop),
/// `Π_{A':A}` (rename, keeping other attributes), and the
/// duplicate-eliminating `Π^D` variants (deterministic and idempotent, not
/// order-preserving — we fix first-occurrence order).
#[derive(Clone, PartialEq, Debug)]
pub enum ProjOp {
    /// `Π_A` — project onto `A` (attribute order in the tuple is canonical,
    /// the list order here is irrelevant).
    Cols(Vec<Sym>),
    /// `Π_{Ā}` — drop the attributes in the list.
    Drop(Vec<Sym>),
    /// `Π_{A':A}` — rename `old` to `new` per pair, keep the rest.
    Rename(Vec<(Sym, Sym)>),
    /// `Π^D_A` — project onto `A` and eliminate duplicates.
    DistinctCols(Vec<Sym>),
    /// `Π^D_{A':A}` — project onto the old attributes, rename them to the
    /// new ones, and eliminate duplicates (the combination used in the Γ
    /// definition and in the side conditions of Eqv. 3/5/8/9).
    DistinctRename(Vec<(Sym, Sym)>),
}

/// One command of a Ξ (result construction) operator: emit a constant
/// string or the string value of a variable (§2).
#[derive(Clone, PartialEq, Debug)]
pub enum XiCmd {
    /// Emit a constant string.
    Str(String),
    /// Emit the string value of the named attribute.
    Var(Sym),
}

/// A NAL expression. All operators are order-preserving as defined in §2
/// (the `Π^D`/`μ^D` duplicate eliminations are deterministic but not
/// order-preserving).
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// `□` — the singleton sequence containing the empty tuple (§2).
    Singleton,
    /// A literal relation — a constant sequence of tuples. Not part of the
    /// paper's algebra; used as a leaf for unit tests (the Fig. 1/2 micro
    /// relations) and the randomized Appendix-A property tests.
    Literal(Vec<crate::tuple::Tuple>),
    /// The tuple sequence stored in attribute `a` of the *environment* — a
    /// leaf only meaningful inside a nested expression whose enclosing
    /// tuple carries a nested relation (e.g. a Γ group). SAL/NAL allow
    /// algebra expressions over nested attributes; this is the hook for
    /// them (used by the single-scan group-filter plans of §5.4).
    AttrRel(Sym),
    /// `σ_p(e)` — order-preserving selection.
    Select {
        /// Input expression.
        input: Box<Expr>,
        /// The predicate.
        pred: Scalar,
    },
    /// `Π(e)` in one of its flavors.
    Project {
        /// Input expression.
        input: Box<Expr>,
        /// The projection operation.
        op: ProjOp,
    },
    /// `χ_{a:e2}(e1)` — map: extend each tuple with `a` bound to the value
    /// of `e2` under that tuple's bindings. `e2` may contain nested
    /// algebraic expressions; unnesting removes them.
    Map {
        /// Input expression.
        input: Box<Expr>,
        /// The bound attribute.
        attr: Sym,
        /// The subscript computing the attribute’s value.
        value: Scalar,
    },
    /// `e1 × e2` — order-preserving cross product (left-major).
    Cross {
        /// Left (outer, slow-varying) input.
        left: Box<Expr>,
        /// Right input.
        right: Box<Expr>,
    },
    /// `e1 ⋈_p e2 = σ_p(e1 × e2)`.
    Join {
        /// Left input.
        left: Box<Expr>,
        /// Right input.
        right: Box<Expr>,
        /// The predicate.
        pred: Scalar,
    },
    /// `e1 ⋉_p e2` — semijoin (keeps left tuples with at least one match).
    SemiJoin {
        /// Left input.
        left: Box<Expr>,
        /// Right input.
        right: Box<Expr>,
        /// The predicate.
        pred: Scalar,
    },
    /// `e1 ▷_p e2` — anti-join (keeps left tuples with no match).
    AntiJoin {
        /// Left input.
        left: Box<Expr>,
        /// Right input.
        right: Box<Expr>,
        /// The predicate.
        pred: Scalar,
    },
    /// `e1 ⟕^{g:default}_p e2` — left outer join with a default value for
    /// attribute `g` of unmatched left tuples; the other right attributes
    /// are padded with NULL (§2; `g ∈ A(e2)`).
    OuterJoin {
        /// Left input.
        left: Box<Expr>,
        /// Right input.
        right: Box<Expr>,
        /// The predicate.
        pred: Scalar,
        /// Attribute receiving the group aggregate (or outer-join default).
        g: Sym,
        /// `g`’s value on unmatched left tuples.
        default: Value,
    },
    /// `Γ_{g;θA;f}(e)` — unary grouping: group keys are the distinct
    /// `A`-projections of `e` itself (§2).
    GroupUnary {
        /// Input expression.
        input: Box<Expr>,
        /// Attribute receiving the group aggregate (or outer-join default).
        g: Sym,
        /// Grouping attributes.
        by: Vec<Sym>,
        /// The grouping comparison.
        theta: CmpOp,
        /// The aggregate applied per group.
        f: GroupFn,
    },
    /// `e1 Γ_{g;A1θA2;f} e2` — binary grouping (nest-join): the *left*
    /// operand determines the groups (§2: "this will become important for
    /// the correctness of the unnesting procedure").
    GroupBinary {
        /// Left input.
        left: Box<Expr>,
        /// Right input.
        right: Box<Expr>,
        /// Attribute receiving the group aggregate (or outer-join default).
        g: Sym,
        /// Left-side match attributes.
        left_on: Vec<Sym>,
        /// The grouping comparison.
        theta: CmpOp,
        /// Right-side match attributes.
        right_on: Vec<Sym>,
        /// The aggregate applied per group.
        f: GroupFn,
    },
    /// `μ_g(e)` / `μ^D_g(e)` — unnest a tuple-sequence-valued attribute.
    /// `distinct` eliminates duplicates within each nested sequence first
    /// (μ^D, used by Eqv. 4/5). `preserve_empty` controls the `⊥` case of
    /// the §2 definition: when true, a tuple with an empty nested
    /// sequence yields one output tuple padded with NULLs; when false it
    /// yields nothing (the XQuery `for` semantics used by Υ).
    Unnest {
        /// Input expression.
        input: Box<Expr>,
        /// The bound attribute.
        attr: Sym,
        /// μ^D: deduplicate the nested sequence first.
        distinct: bool,
        /// Keep tuples with an empty nested sequence (⊥ padding).
        preserve_empty: bool,
    },
    /// `Υ_{a:e2}(e1) = μ_g(χ_{g:e2[a]}(e1))` — unnest-map, the workhorse
    /// for `for` clauses and path expressions (§2).
    UnnestMap {
        /// Input expression.
        input: Box<Expr>,
        /// The bound attribute.
        attr: Sym,
        /// The subscript computing the attribute’s value.
        value: Scalar,
    },
    /// Simple `Ξ_{cmds}(e)` — execute the command list per input tuple as
    /// a side effect on the output stream; identity on the sequence (§2).
    XiSimple {
        /// Input expression.
        input: Box<Expr>,
        /// Serialization commands per tuple.
        cmds: Vec<XiCmd>,
    },
    /// Group-detecting `s1 Ξ^{s3}_{A;s2}(e)` (§2): for each group of
    /// consecutive-by-`A` tuples, run `head` on the first tuple, `body`
    /// on every tuple, `tail` on the last.
    XiGroup {
        /// Input expression.
        input: Box<Expr>,
        /// Grouping attributes.
        by: Vec<Sym>,
        /// Commands once per group, before the body.
        head: Vec<XiCmd>,
        /// Commands per tuple of the group.
        body: Vec<XiCmd>,
        /// Commands once per group, after the body.
        tail: Vec<XiCmd>,
    },
}

impl Expr {
    /// Short operator name (for traces and metrics).
    pub fn op_name(&self) -> &'static str {
        match self {
            Expr::Singleton => "□",
            Expr::Literal(_) => "R",
            Expr::AttrRel(_) => "rel",
            Expr::Select { .. } => "σ",
            Expr::Project { .. } => "Π",
            Expr::Map { .. } => "χ",
            Expr::Cross { .. } => "×",
            Expr::Join { .. } => "⋈",
            Expr::SemiJoin { .. } => "⋉",
            Expr::AntiJoin { .. } => "▷",
            Expr::OuterJoin { .. } => "⟕",
            Expr::GroupUnary { .. } => "Γ",
            Expr::GroupBinary { .. } => "Γ2",
            Expr::Unnest { .. } => "μ",
            Expr::UnnestMap { .. } => "Υ",
            Expr::XiSimple { .. } => "Ξ",
            Expr::XiGroup { .. } => "Ξg",
        }
    }

    /// `true` iff any scalar in the tree embeds a nested algebra
    /// expression (quantifier or aggregate over a query block) — i.e. the
    /// plan still contains nesting that forces nested-loop evaluation.
    pub fn has_nested_scalars(&self) -> bool {
        let mut found = false;
        visit::walk(self, &mut |e| {
            let nested = match e {
                Expr::Select { pred, .. }
                | Expr::Join { pred, .. }
                | Expr::SemiJoin { pred, .. }
                | Expr::AntiJoin { pred, .. }
                | Expr::OuterJoin { pred, .. } => pred.has_nested_expr(),
                Expr::Map { value, .. } | Expr::UnnestMap { value, .. } => value.has_nested_expr(),
                Expr::GroupUnary { f, .. } | Expr::GroupBinary { f, .. } => f
                    .filter
                    .as_ref()
                    .map(|p| p.has_nested_expr())
                    .unwrap_or(false),
                _ => false,
            };
            found |= nested;
        });
        found
    }

    /// Number of operators in the expression tree.
    pub fn size(&self) -> usize {
        let mut n = 0;
        visit::walk(self, &mut |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::builder::*;

    #[test]
    fn op_names_and_size() {
        let e = singleton().select(Scalar::attr("x"));
        assert_eq!(e.op_name(), "σ");
        assert_eq!(e.size(), 2);
    }

    #[test]
    fn nested_scalar_detection() {
        let plain = singleton().select(Scalar::attr("x"));
        assert!(!plain.has_nested_scalars());
        let nested = singleton().map(
            "g",
            Scalar::Agg {
                f: GroupFn::count(),
                input: Box::new(Expr::Singleton),
            },
        );
        assert!(nested.has_nested_scalars());
    }
}
