//! Tree traversal and rewriting plumbing for [`Expr`].

use crate::expr::Expr;
use crate::scalar::Scalar;

/// Immutable children of an expression (unary: one; binary: two).
pub fn children(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Singleton | Expr::Literal(_) | Expr::AttrRel(_) => vec![],
        Expr::Select { input, .. }
        | Expr::Project { input, .. }
        | Expr::Map { input, .. }
        | Expr::GroupUnary { input, .. }
        | Expr::Unnest { input, .. }
        | Expr::UnnestMap { input, .. }
        | Expr::XiSimple { input, .. }
        | Expr::XiGroup { input, .. } => vec![input],
        Expr::Cross { left, right }
        | Expr::Join { left, right, .. }
        | Expr::SemiJoin { left, right, .. }
        | Expr::AntiJoin { left, right, .. }
        | Expr::OuterJoin { left, right, .. }
        | Expr::GroupBinary { left, right, .. } => vec![left, right],
    }
}

/// Nested algebra expressions embedded in this node's scalars (quantifier
/// ranges and aggregate inputs). These are *not* children in the dataflow
/// sense — they are re-evaluated per tuple — but rewriters need to reach
/// them.
pub fn nested_exprs(e: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    for s in scalars(e) {
        collect_nested(s, &mut out);
    }
    out
}

/// The scalar expressions attached to this node.
pub fn scalars(e: &Expr) -> Vec<&Scalar> {
    match e {
        Expr::Select { pred, .. }
        | Expr::Join { pred, .. }
        | Expr::SemiJoin { pred, .. }
        | Expr::AntiJoin { pred, .. }
        | Expr::OuterJoin { pred, .. } => vec![pred],
        Expr::Map { value, .. } | Expr::UnnestMap { value, .. } => vec![value],
        Expr::GroupUnary { f, .. } | Expr::GroupBinary { f, .. } => {
            f.filter.as_deref().into_iter().collect()
        }
        _ => vec![],
    }
}

/// The nested algebraic expressions inside one scalar (quantifier
/// ranges, aggregate inputs), at any nesting depth within the scalar.
pub fn scalar_nested_exprs(s: &Scalar) -> Vec<&Expr> {
    let mut out = Vec::new();
    collect_nested(s, &mut out);
    out
}

fn collect_nested<'a>(s: &'a Scalar, out: &mut Vec<&'a Expr>) {
    match s {
        Scalar::Exists { range, pred, .. } | Scalar::Forall { range, pred, .. } => {
            out.push(range);
            collect_nested(pred, out);
        }
        Scalar::Agg { input, f } => {
            out.push(input);
            if let Some(p) = &f.filter {
                collect_nested(p, out);
            }
        }
        Scalar::Cmp(_, l, r)
        | Scalar::In(l, r)
        | Scalar::And(l, r)
        | Scalar::Or(l, r)
        | Scalar::Arith(_, l, r) => {
            collect_nested(l, out);
            collect_nested(r, out);
        }
        Scalar::Not(x) | Scalar::Lift(x, _) | Scalar::DistinctItems(x) | Scalar::Path(x, _) => {
            collect_nested(x, out)
        }
        Scalar::Call(_, args) => {
            for a in args {
                collect_nested(a, out);
            }
        }
        Scalar::Const(_) | Scalar::Attr(_) | Scalar::Doc(_) => {}
    }
}

/// Pre-order walk over the dataflow tree (children only, not nested
/// scalar expressions).
pub fn walk<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    for c in children(e) {
        walk(c, f);
    }
}

/// Pre-order walk that also descends into nested scalar expressions.
pub fn walk_deep<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    for c in children(e) {
        walk_deep(c, f);
    }
    for n in nested_exprs(e) {
        walk_deep(n, f);
    }
}

/// Rebuild an expression with its direct children transformed by `f`
/// (nested scalar expressions are left untouched).
pub fn map_children(e: Expr, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
    match e {
        Expr::Singleton => Expr::Singleton,
        Expr::Literal(rows) => Expr::Literal(rows),
        Expr::AttrRel(a) => Expr::AttrRel(a),
        Expr::Select { input, pred } => Expr::Select {
            input: Box::new(f(*input)),
            pred,
        },
        Expr::Project { input, op } => Expr::Project {
            input: Box::new(f(*input)),
            op,
        },
        Expr::Map { input, attr, value } => Expr::Map {
            input: Box::new(f(*input)),
            attr,
            value,
        },
        Expr::Cross { left, right } => Expr::Cross {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
        },
        Expr::Join { left, right, pred } => Expr::Join {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            pred,
        },
        Expr::SemiJoin { left, right, pred } => Expr::SemiJoin {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            pred,
        },
        Expr::AntiJoin { left, right, pred } => Expr::AntiJoin {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            pred,
        },
        Expr::OuterJoin {
            left,
            right,
            pred,
            g,
            default,
        } => Expr::OuterJoin {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            pred,
            g,
            default,
        },
        Expr::GroupUnary {
            input,
            g,
            by,
            theta,
            f: gf,
        } => Expr::GroupUnary {
            input: Box::new(f(*input)),
            g,
            by,
            theta,
            f: gf,
        },
        Expr::GroupBinary {
            left,
            right,
            g,
            left_on,
            theta,
            right_on,
            f: gf,
        } => Expr::GroupBinary {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            g,
            left_on,
            theta,
            right_on,
            f: gf,
        },
        Expr::Unnest {
            input,
            attr,
            distinct,
            preserve_empty,
        } => Expr::Unnest {
            input: Box::new(f(*input)),
            attr,
            distinct,
            preserve_empty,
        },
        Expr::UnnestMap { input, attr, value } => Expr::UnnestMap {
            input: Box::new(f(*input)),
            attr,
            value,
        },
        Expr::XiSimple { input, cmds } => Expr::XiSimple {
            input: Box::new(f(*input)),
            cmds,
        },
        Expr::XiGroup {
            input,
            by,
            head,
            body,
            tail,
        } => Expr::XiGroup {
            input: Box::new(f(*input)),
            by,
            head,
            body,
            tail,
        },
    }
}

/// Bottom-up rewriting: children first, then the node itself.
pub fn rewrite_bottom_up(e: Expr, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
    let rebuilt = map_children(e, &mut |c| rewrite_bottom_up(c, f));
    f(rebuilt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::builder::*;
    use crate::scalar::{GroupFn, Scalar};
    use crate::value::CmpOp;

    #[test]
    fn walk_counts_nodes() {
        let e = singleton()
            .map("d1", Scalar::Doc("bib.xml".into()))
            .select(Scalar::attr_cmp(CmpOp::Eq, "a", "b"));
        let mut n = 0;
        walk(&e, &mut |_| n += 1);
        assert_eq!(n, 3);
    }

    #[test]
    fn walk_deep_reaches_nested() {
        let inner = singleton().map("d2", Scalar::Doc("bib.xml".into()));
        let e = singleton().map(
            "g",
            Scalar::Agg {
                f: GroupFn::count(),
                input: Box::new(inner),
            },
        );
        let mut shallow = 0;
        walk(&e, &mut |_| shallow += 1);
        assert_eq!(shallow, 2);
        let mut deep = 0;
        walk_deep(&e, &mut |_| deep += 1);
        assert_eq!(deep, 4);
    }

    #[test]
    fn rewrite_bottom_up_transforms_leaves_first() {
        let e = singleton().select(Scalar::attr("x"));
        let mut order = Vec::new();
        rewrite_bottom_up(e, &mut |node| {
            order.push(node.op_name());
            node
        });
        assert_eq!(order, vec!["□", "σ"]);
    }
}
