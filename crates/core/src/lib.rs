//! `nal` — the order-preserving Nested ALgebra of May, Helmer, and
//! Moerkotte, *Nested Queries and Quantifiers in an Ordered Context*
//! (ICDE 2004).
//!
//! NAL extends Beeri and Tzaban's SAL; it operates on ordered sequences of
//! unordered tuples and permits *nested algebraic expressions* in operator
//! subscripts (selection predicates, χ bindings, quantifier ranges). This
//! crate provides:
//!
//! * the data model: [`value::Value`], [`tuple::Tuple`], [`sequence::Seq`],
//! * the scalar language with nesting: [`scalar::Scalar`], [`scalar::GroupFn`],
//! * the logical operators: [`expr::Expr`] (σ, Π, Π^D, χ, ×, ⋈, ⋉, ▷, ⟕,
//!   unary/binary Γ, μ, μ^D, Υ, Ξ, □),
//! * static analyses `A(e)`/`F(e)`: [`expr::attrs`],
//! * and the reference evaluator implementing the §2 definitions
//!   literally: [`mod@eval`].
//!
//! The unnesting equivalences that rewrite these expressions live in the
//! `unnest` crate; the optimized physical operators in `engine`.

#![warn(missing_docs)]

pub mod eval;
pub mod expr;
pub mod obs;
pub mod scalar;
pub mod sequence;
pub mod sym;
pub mod tuple;
pub mod value;

pub use eval::{eval, eval_query, EvalCtx, EvalError, EvalResult, Metrics};
pub use expr::{Expr, ProjOp, XiCmd};
pub use scalar::{AggKind, ArithOp, Func, GroupFn, Scalar};
pub use sequence::Seq;
pub use sym::Sym;
pub use tuple::Tuple;
pub use value::{cmp_atomic, cmp_general, CmpOp, Dec, NodeRef, Value};
