//! Query observability primitives: a shared monotonic clock, frontend
//! stage spans, and per-operator execution traces.
//!
//! Everything here is zero-dependency and deliberately *outside*
//! [`crate::eval::Metrics`]: the executor-parity suites assert that the
//! materializing and streaming executors produce identical counters, and
//! wall-clock timing can never be identical by construction. Traces ride
//! in their own optional slot on [`crate::eval::EvalCtx`], so an
//! untraced run pays nothing and the parity invariants never see time.

use std::collections::HashMap;
use std::time::Instant;

/// One monotonic clock per query. Every timestamp of a query — stage
/// spans, the `done`-frame `elapsed_us`, the trace total — must be read
/// from the *same* clock so they nest consistently (a span can never end
/// after the total it is part of).
#[derive(Clone, Copy, Debug)]
pub struct Clock {
    origin: Instant,
}

impl Clock {
    /// Start a clock at "now"; all readings are relative to this origin.
    pub fn start() -> Clock {
        Clock {
            origin: Instant::now(),
        }
    }

    /// Microseconds elapsed since the clock started.
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// The frontend/backend stages a query passes through.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// XQuery text → AST.
    Parse,
    /// AST normalization.
    Normalize,
    /// Plan-cache lookup (text memo + fingerprint lookup).
    CacheLookup,
    /// Translation + unnesting enumeration + cost-based ranking.
    Unnest,
    /// Physical compilation (and cache insert).
    Plan,
    /// Plan execution.
    Execute,
}

impl Stage {
    /// Stable lower-case label (wire frames, logs, Prometheus).
    pub fn label(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Normalize => "normalize",
            Stage::CacheLookup => "cache_lookup",
            Stage::Unnest => "unnest",
            Stage::Plan => "plan",
            Stage::Execute => "execute",
        }
    }
}

/// One recorded stage interval, in microseconds since the query clock's
/// origin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageSpan {
    /// Which stage this span times.
    pub stage: Stage,
    /// Start offset (µs since the clock origin).
    pub start_us: u64,
    /// End offset (µs since the clock origin).
    pub end_us: u64,
}

impl StageSpan {
    /// Span length in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// The stage-level trace of one query: non-overlapping spans read off
/// one [`Clock`], plus the total elapsed time off the same clock.
///
/// Invariant (asserted by tests, guaranteed by the shared clock and
/// non-overlapping recording): the sum of all span durations never
/// exceeds `total_us`.
#[derive(Clone, Debug, Default)]
pub struct QueryTrace {
    /// Recorded stage spans, in recording order.
    pub stages: Vec<StageSpan>,
    /// Whole-query elapsed time on the same clock (µs).
    pub total_us: u64,
}

impl QueryTrace {
    /// Record one stage interval.
    pub fn record_stage(&mut self, stage: Stage, start_us: u64, end_us: u64) {
        self.stages.push(StageSpan {
            stage,
            start_us,
            end_us,
        });
    }

    /// Total microseconds attributed to `stage` (summed over spans).
    pub fn stage_us(&self, stage: Stage) -> u64 {
        self.stages
            .iter()
            .filter(|s| s.stage == stage)
            .map(StageSpan::duration_us)
            .sum()
    }

    /// Sum of all span durations (≤ `total_us` by construction).
    pub fn stages_total_us(&self) -> u64 {
        self.stages.iter().map(StageSpan::duration_us).sum()
    }

    /// One-line `stage=NNNus` breakdown (slow-query log format).
    pub fn breakdown(&self) -> String {
        let mut parts: Vec<String> = Vec::with_capacity(self.stages.len());
        for s in &self.stages {
            parts.push(format!("{}={}us", s.stage.label(), s.duration_us()));
        }
        parts.join(" ")
    }
}

/// Accumulated per-operator execution counters for one plan node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Times the operator was entered (`next` calls in the streaming
    /// executor, recursive invocations in the materializing one).
    pub calls: u64,
    /// Output rows the operator produced.
    pub rows: u64,
    /// Inclusive wall time (the operator and its subtree), nanoseconds.
    pub elapsed_ns: u64,
    /// Index probes issued while this operator (subtree) ran.
    pub index_lookups: u64,
    /// Index probes that found at least one node.
    pub index_hits: u64,
}

impl OpStats {
    /// Inclusive wall time in microseconds.
    pub fn elapsed_us(&self) -> u64 {
        self.elapsed_ns / 1_000
    }
}

/// Per-operator execution trace: node identity → accumulated counters.
///
/// Node identities are opaque `usize` tokens chosen by the executor (the
/// engine uses the plan node's address, which is stable for the life of
/// a run — plans are immutable while executing). `nal` never interprets
/// them, which is what lets this type live below the engine crate.
#[derive(Clone, Debug, Default)]
pub struct ExecTrace {
    ops: HashMap<usize, OpStats>,
}

impl ExecTrace {
    /// An empty trace.
    pub fn new() -> ExecTrace {
        ExecTrace::default()
    }

    /// Accumulate one operator invocation.
    pub fn record(&mut self, node: usize, rows: u64, elapsed_ns: u64, lookups: u64, hits: u64) {
        let s = self.ops.entry(node).or_default();
        s.calls += 1;
        s.rows += rows;
        s.elapsed_ns += elapsed_ns;
        s.index_lookups += lookups;
        s.index_hits += hits;
    }

    /// The accumulated counters for `node`, if it ever ran.
    pub fn get(&self, node: usize) -> Option<&OpStats> {
        self.ops.get(&node)
    }

    /// Fold another trace into this one, node by node. Parallel workers
    /// trace into private `ExecTrace`s against the same (shared,
    /// immutable) plan allocation, so node identities line up and the
    /// merged trace reads like a serial one — except `elapsed_ns`, which
    /// becomes summed-across-workers CPU time rather than wall time.
    pub fn merge(&mut self, other: &ExecTrace) {
        for (node, s) in &other.ops {
            let acc = self.ops.entry(*node).or_default();
            acc.calls += s.calls;
            acc.rows += s.rows;
            acc.elapsed_ns += s.elapsed_ns;
            acc.index_lookups += s.index_lookups;
            acc.index_hits += s.index_hits;
        }
    }

    /// Number of distinct nodes traced.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing was traced.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_spans_sum_below_total() {
        let clock = Clock::start();
        let mut trace = QueryTrace::default();
        let t0 = clock.now_us();
        std::thread::sleep(std::time::Duration::from_millis(2));
        trace.record_stage(Stage::Parse, t0, clock.now_us());
        let t1 = clock.now_us();
        std::thread::sleep(std::time::Duration::from_millis(2));
        trace.record_stage(Stage::Execute, t1, clock.now_us());
        trace.total_us = clock.now_us();
        assert!(trace.stages_total_us() <= trace.total_us);
        assert!(trace.stage_us(Stage::Parse) > 0);
        assert!(trace.breakdown().contains("parse="));
    }

    #[test]
    fn exec_trace_accumulates_per_node() {
        let mut t = ExecTrace::new();
        t.record(7, 1, 100, 2, 1);
        t.record(7, 1, 50, 0, 0);
        t.record(9, 3, 10, 0, 0);
        let s = t.get(7).unwrap();
        assert_eq!(s.calls, 2);
        assert_eq!(s.rows, 2);
        assert_eq!(s.elapsed_ns, 150);
        assert_eq!(s.index_lookups, 2);
        assert_eq!(s.index_hits, 1);
        assert_eq!(t.len(), 2);
    }
}
