//! Builtin scalar functions.

use std::fmt;

use xmldb::Catalog;

use crate::value::{Dec, Value};

/// The builtin functions the paper's queries use, plus the item-sequence
/// aggregates of XQuery's function library (used when an aggregate is
/// applied to an already-bound sequence variable rather than a nested
/// query block).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Func {
    /// `contains(haystack, needle)` on string values.
    Contains,
    /// `decimal(x)` — explicit numeric conversion (§5.2).
    Decimal,
    /// `string(x)` — string value.
    String,
    /// `concat(a, b, …)`.
    Concat,
    /// `count(seq)` over an item sequence.
    Count,
    /// `min(seq)` over an item sequence (numeric if possible).
    Min,
    /// `max(seq)`.
    Max,
    /// `sum(seq)`.
    Sum,
    /// `avg(seq)`.
    Avg,
    /// `empty(seq)` — true iff the sequence is empty.
    Empty,
    /// `exists(seq)` — true iff the sequence is non-empty (§5.4).
    Exists,
    /// `true()` / `false()` are parsed as constants; `not(x)` is
    /// `Scalar::Not`. `boolean(x)` — effective boolean value.
    Boolean,
    /// `item-at(seq, n)` — the 1-based `n`-th item of a sequence in its
    /// sequence (document) order; the empty sequence when `n` is out of
    /// range or not a number. The ordered-context positional subscript:
    /// its answer depends on the *order* of the input sequence, so any
    /// upstream order violation is observable through it.
    ItemAt,
}

impl Func {
    /// XQuery surface name of the function.
    pub fn name(self) -> &'static str {
        match self {
            Func::Contains => "contains",
            Func::Decimal => "decimal",
            Func::String => "string",
            Func::Concat => "concat",
            Func::Count => "count",
            Func::Min => "min",
            Func::Max => "max",
            Func::Sum => "sum",
            Func::Avg => "avg",
            Func::Empty => "empty",
            Func::Exists => "exists",
            Func::Boolean => "boolean",
            Func::ItemAt => "item-at",
        }
    }

    /// Look up a function by its XQuery name.
    pub fn by_name(name: &str) -> Option<Func> {
        Some(match name {
            "contains" => Func::Contains,
            "decimal" | "xs:decimal" | "number" => Func::Decimal,
            "string" => Func::String,
            "concat" => Func::Concat,
            "count" => Func::Count,
            "min" => Func::Min,
            "max" => Func::Max,
            "sum" => Func::Sum,
            "avg" => Func::Avg,
            "empty" => Func::Empty,
            "exists" => Func::Exists,
            "boolean" => Func::Boolean,
            "item-at" | "fn:item-at" => Func::ItemAt,
            _ => return None,
        })
    }

    /// `true` for the aggregate functions over item sequences. The
    /// translator gives their nested-query form special treatment
    /// (they become [`crate::scalar::GroupFn`]s).
    pub fn is_aggregate(self) -> bool {
        matches!(
            self,
            Func::Count | Func::Min | Func::Max | Func::Sum | Func::Avg
        )
    }

    /// Apply to already-evaluated argument values.
    pub fn apply(self, args: &[Value], catalog: &Catalog) -> Result<Value, String> {
        let arity_err = |want: &str| {
            Err(format!(
                "{}() expects {want} argument(s), got {}",
                self.name(),
                args.len()
            ))
        };
        match self {
            Func::Contains => {
                let [h, n] = args else { return arity_err("2") };
                let h = h.atomize(catalog).as_str_lossy();
                let n = n.atomize(catalog).as_str_lossy();
                Ok(Value::Bool(h.contains(&n)))
            }
            Func::Decimal => {
                let [x] = args else { return arity_err("1") };
                match x.atomize(catalog).as_number() {
                    Some(n) => Ok(Value::Dec(Dec(n))),
                    None if x.is_empty_seq() => Ok(Value::Null),
                    None => Err(format!("decimal(): not a number: {x}")),
                }
            }
            Func::String => {
                let [x] = args else { return arity_err("1") };
                Ok(Value::str(x.atomize(catalog).as_str_lossy()))
            }
            Func::Concat => {
                let mut out = String::new();
                for a in args {
                    out.push_str(&a.atomize(catalog).as_str_lossy());
                }
                Ok(Value::str(out))
            }
            Func::Count => {
                let [x] = args else { return arity_err("1") };
                Ok(Value::Int(x.item_count() as i64))
            }
            Func::Min | Func::Max => {
                let [x] = args else { return arity_err("1") };
                Ok(min_max_items(self == Func::Min, x, catalog))
            }
            Func::Sum | Func::Avg => {
                let [x] = args else { return arity_err("1") };
                let items = x.atomize(catalog).as_item_seq();
                let mut sum = 0.0f64;
                let mut n = 0usize;
                for it in &items {
                    if let Some(v) = it.as_number() {
                        sum += v;
                        n += 1;
                    }
                }
                if self == Func::Sum {
                    Ok(Value::Dec(Dec(sum)))
                } else if n == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Dec(Dec(sum / n as f64)))
                }
            }
            Func::Empty => {
                let [x] = args else { return arity_err("1") };
                Ok(Value::Bool(x.is_empty_seq()))
            }
            Func::Exists => {
                let [x] = args else { return arity_err("1") };
                Ok(Value::Bool(!x.is_empty_seq()))
            }
            Func::Boolean => {
                let [x] = args else { return arity_err("1") };
                Ok(Value::Bool(effective_boolean(x)))
            }
            Func::ItemAt => {
                let [x, n] = args else { return arity_err("2") };
                let Some(pos) = n.atomize(catalog).as_number() else {
                    return Ok(Value::Null);
                };
                // XQuery positions are 1-based; fractional or out-of-range
                // positions select nothing.
                if pos < 1.0 || pos.fract() != 0.0 {
                    return Ok(Value::Null);
                }
                let items = x.atomize(catalog).as_item_seq();
                match items.get(pos as usize - 1) {
                    Some(v) => Ok(v.clone()),
                    None => Ok(Value::Null),
                }
            }
        }
    }
}

/// XQuery-ish effective boolean value.
pub fn effective_boolean(v: &Value) -> bool {
    match v {
        Value::Null => false,
        Value::Bool(b) => *b,
        Value::Int(i) => *i != 0,
        Value::Dec(d) => d.0 != 0.0,
        Value::Str(s) => !s.is_empty(),
        Value::Node(_) => true,
        Value::Items(items) => !items.is_empty(),
        Value::Tuples(ts) => !ts.is_empty(),
    }
}

/// min/max over item values: numeric when all items are numeric,
/// lexicographic otherwise. Empty input yields `Null`.
pub fn min_max_items(is_min: bool, v: &Value, catalog: &Catalog) -> Value {
    let items = v.atomize(catalog).as_item_seq();
    if items.is_empty() {
        return Value::Null;
    }
    let numbers: Option<Vec<f64>> = items.iter().map(Value::as_number).collect();
    if let Some(ns) = numbers {
        let best = if is_min {
            ns.iter().copied().fold(f64::INFINITY, f64::min)
        } else {
            ns.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        };
        return Value::Dec(Dec(best));
    }
    let mut best = items[0].as_str_lossy();
    for it in &items[1..] {
        let s = it.as_str_lossy();
        if (is_min && s < best) || (!is_min && s > best) {
            best = s;
        }
    }
    Value::str(best)
}

impl fmt::Display for Func {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat() -> Catalog {
        Catalog::new()
    }

    #[test]
    fn contains_and_decimal() {
        let c = cat();
        assert_eq!(
            Func::Contains.apply(&[Value::str("Dan Suciu"), Value::str("Suciu")], &c),
            Ok(Value::Bool(true))
        );
        assert_eq!(
            Func::Decimal.apply(&[Value::str(" 12.50 ")], &c),
            Ok(Value::Dec(Dec(12.5)))
        );
        assert!(Func::Decimal.apply(&[Value::str("abc")], &c).is_err());
        assert!(Func::Contains.apply(&[Value::str("x")], &c).is_err());
    }

    #[test]
    fn aggregates_over_item_sequences() {
        let c = cat();
        let seq = Value::items(vec![Value::Int(3), Value::Int(1), Value::Int(2)]);
        assert_eq!(
            Func::Count.apply(std::slice::from_ref(&seq), &c),
            Ok(Value::Int(3))
        );
        assert_eq!(
            Func::Min.apply(std::slice::from_ref(&seq), &c),
            Ok(Value::Dec(Dec(1.0)))
        );
        assert_eq!(
            Func::Max.apply(std::slice::from_ref(&seq), &c),
            Ok(Value::Dec(Dec(3.0)))
        );
        assert_eq!(
            Func::Sum.apply(std::slice::from_ref(&seq), &c),
            Ok(Value::Dec(Dec(6.0)))
        );
        assert_eq!(Func::Avg.apply(&[seq], &c), Ok(Value::Dec(Dec(2.0))));
        let empty = Value::items(vec![]);
        assert_eq!(
            Func::Count.apply(std::slice::from_ref(&empty), &c),
            Ok(Value::Int(0))
        );
        assert_eq!(
            Func::Min.apply(std::slice::from_ref(&empty), &c),
            Ok(Value::Null)
        );
        assert_eq!(Func::Avg.apply(&[empty], &c), Ok(Value::Null));
    }

    #[test]
    fn string_min_when_not_numeric() {
        let c = cat();
        let seq = Value::items(vec![Value::str("pear"), Value::str("apple")]);
        assert_eq!(Func::Min.apply(&[seq], &c), Ok(Value::str("apple")));
    }

    #[test]
    fn empty_and_exists() {
        let c = cat();
        let empty = Value::items(vec![]);
        let some = Value::Int(1);
        assert_eq!(
            Func::Empty.apply(std::slice::from_ref(&empty), &c),
            Ok(Value::Bool(true))
        );
        assert_eq!(Func::Exists.apply(&[empty], &c), Ok(Value::Bool(false)));
        assert_eq!(Func::Exists.apply(&[some], &c), Ok(Value::Bool(true)));
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(Func::by_name("count"), Some(Func::Count));
        assert_eq!(Func::by_name("nope"), None);
        assert!(Func::Count.is_aggregate());
        assert!(!Func::Contains.is_aggregate());
    }

    #[test]
    fn item_at_is_one_based_and_order_sensitive() {
        let c = cat();
        let seq = Value::items(vec![Value::str("a"), Value::str("b"), Value::str("c")]);
        assert_eq!(
            Func::ItemAt.apply(&[seq.clone(), Value::Int(1)], &c),
            Ok(Value::str("a"))
        );
        assert_eq!(
            Func::ItemAt.apply(&[seq.clone(), Value::Int(3)], &c),
            Ok(Value::str("c"))
        );
        // Out of range, zero, fractional, and non-numeric positions all
        // select nothing rather than erroring.
        assert_eq!(
            Func::ItemAt.apply(&[seq.clone(), Value::Int(4)], &c),
            Ok(Value::Null)
        );
        assert_eq!(
            Func::ItemAt.apply(&[seq.clone(), Value::Int(0)], &c),
            Ok(Value::Null)
        );
        assert_eq!(
            Func::ItemAt.apply(&[seq.clone(), Value::Dec(Dec(1.5))], &c),
            Ok(Value::Null)
        );
        assert_eq!(
            Func::ItemAt.apply(&[seq, Value::str("x")], &c),
            Ok(Value::Null)
        );
        // A singleton behaves as a one-item sequence.
        assert_eq!(
            Func::ItemAt.apply(&[Value::Int(7), Value::Int(1)], &c),
            Ok(Value::Int(7))
        );
        assert_eq!(Func::by_name("item-at"), Some(Func::ItemAt));
    }

    #[test]
    fn effective_boolean_values() {
        assert!(!effective_boolean(&Value::Null));
        assert!(effective_boolean(&Value::Int(2)));
        assert!(!effective_boolean(&Value::items(vec![])));
        assert!(effective_boolean(&Value::str("x")));
    }
}
