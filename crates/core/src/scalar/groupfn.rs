//! Group functions — the `f` of the grouping operators and unnesting
//! equivalences.
//!
//! The paper's Γ and equivalences use `f` compositions such as `id`,
//! `count`, `Π_{t2}`, `min ∘ Π_{c2}`, and `count ∘ σ_p` (Eqv. 8/9). A
//! [`GroupFn`] is exactly that composition pipeline:
//!
//! ```text
//!   f  =  agg ∘ project? ∘ filter?
//! ```
//!
//! applied to a tuple sequence (a group). Crucially, `f` must "assign a
//! meaningful value to empty groups" (§2) — that value, [`GroupFn::on_empty`],
//! is what the outer join of Eqv. 2/4 pads unmatched tuples with.

use std::fmt;

use xmldb::Catalog;

use crate::scalar::func::min_max_items;
use crate::scalar::Scalar;
use crate::sequence::collect_items;
use crate::sym::Sym;
use crate::tuple::Tuple;
use crate::value::{Dec, Value};

/// Final aggregation step of a group function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AggKind {
    /// Identity on the tuple sequence (the paper's `id`): the group value
    /// is the nested relation itself.
    Tuples,
    /// Project to the item sequence of a single attribute (the paper's
    /// `Π_a` used as `f`, e.g. `Π_{t2}` in §5.1). Requires `project`.
    Items,
    /// `count` — group cardinality.
    Count,
    /// `sum` — numeric sum of the projected items.
    Sum,
    /// `min` — minimum of the projected items.
    Min,
    /// `max` — maximum of the projected items.
    Max,
    /// `avg` — mean of the projected items.
    Avg,
}

impl AggKind {
    /// Display name of the aggregate.
    pub fn name(self) -> &'static str {
        match self {
            AggKind::Tuples => "id",
            AggKind::Items => "Π",
            AggKind::Count => "count",
            AggKind::Sum => "sum",
            AggKind::Min => "min",
            AggKind::Max => "max",
            AggKind::Avg => "avg",
        }
    }
}

/// A group function `f`.
#[derive(Clone, PartialEq, Debug)]
pub struct GroupFn {
    /// Optional pre-filter (`count ∘ σ_p` in Eqv. 8/9). Evaluated against
    /// each group tuple.
    pub filter: Option<Box<Scalar>>,
    /// Optional projection to a single attribute before aggregating.
    pub project: Option<Sym>,
    /// The aggregate applied to the (filtered, projected) group.
    pub agg: AggKind,
}

impl GroupFn {
    /// `id` — the group itself, as a nested relation.
    pub fn id() -> GroupFn {
        GroupFn {
            filter: None,
            project: None,
            agg: AggKind::Tuples,
        }
    }

    /// `count`.
    pub fn count() -> GroupFn {
        GroupFn {
            filter: None,
            project: None,
            agg: AggKind::Count,
        }
    }

    /// `Π_a` — the item sequence of attribute `a`.
    pub fn project_items(a: impl Into<Sym>) -> GroupFn {
        GroupFn {
            filter: None,
            project: Some(a.into()),
            agg: AggKind::Items,
        }
    }

    /// `agg ∘ Π_a`, e.g. `min ∘ Π_{c2}`.
    pub fn agg_of(agg: AggKind, a: impl Into<Sym>) -> GroupFn {
        GroupFn {
            filter: None,
            project: Some(a.into()),
            agg,
        }
    }

    /// Add a filter stage: `self ∘ σ_p`.
    pub fn filtered(mut self, p: Scalar) -> GroupFn {
        self.filter = Some(Box::new(p));
        self
    }

    /// Apply `f` to a group. The `env` is the environment the filter
    /// predicate may reference (outer bindings); filter evaluation is
    /// delegated to the caller-supplied closure so this module stays
    /// independent of the evaluator.
    pub fn apply_with<E>(
        &self,
        group: &[Tuple],
        catalog: &Catalog,
        mut eval_filter: E,
    ) -> Result<Value, String>
    where
        E: FnMut(&Scalar, &Tuple) -> Result<bool, String>,
    {
        let filtered: Vec<Tuple> = match &self.filter {
            None => group.to_vec(),
            Some(p) => {
                let mut kept = Vec::with_capacity(group.len());
                for t in group {
                    if eval_filter(p, t)? {
                        kept.push(t.clone());
                    }
                }
                kept
            }
        };
        self.aggregate(&filtered, catalog)
    }

    /// Apply to a group that is already filtered (or has no filter).
    pub fn aggregate(&self, group: &[Tuple], catalog: &Catalog) -> Result<Value, String> {
        match self.agg {
            AggKind::Tuples => Ok(match self.project {
                None => Value::tuples(group.to_vec()),
                Some(a) => Value::tuples(group.iter().map(|t| t.project(&[a])).collect()),
            }),
            AggKind::Items => {
                let a = self.project.ok_or_else(|| {
                    "Π group function requires a projection attribute".to_string()
                })?;
                Ok(collect_items(group, a))
            }
            AggKind::Count => Ok(Value::Int(group.len() as i64)),
            AggKind::Min | AggKind::Max => {
                let items = self.projected_items(group)?;
                Ok(min_max_items(self.agg == AggKind::Min, &items, catalog))
            }
            AggKind::Sum | AggKind::Avg => {
                let items = self.projected_items(group)?;
                let nums: Vec<f64> = items
                    .atomize(catalog)
                    .as_item_seq()
                    .iter()
                    .filter_map(Value::as_number)
                    .collect();
                // `Iterator::sum` for f64 folds from -0.0, which our
                // total-order Dec distinguishes from 0.0 — fold explicitly.
                let total = nums.iter().fold(0.0f64, |a, b| a + b);
                if self.agg == AggKind::Sum {
                    Ok(Value::Dec(Dec(total)))
                } else if nums.is_empty() {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Dec(Dec(total / nums.len() as f64)))
                }
            }
        }
    }

    fn projected_items(&self, group: &[Tuple]) -> Result<Value, String> {
        let a = self.project.ok_or_else(|| {
            format!(
                "{} group function requires a projection attribute",
                self.agg.name()
            )
        })?;
        Ok(collect_items(group, a))
    }

    /// `f(ε)` — the value for the empty group; the outer-join default `e`
    /// of `⟕^{g:e}` in Eqv. 2 and 4.
    pub fn on_empty(&self) -> Value {
        match self.agg {
            AggKind::Tuples => Value::tuples(vec![]),
            AggKind::Items => Value::Items(vec![].into()),
            AggKind::Count => Value::Int(0),
            AggKind::Sum => Value::Dec(Dec(0.0)),
            AggKind::Min | AggKind::Max | AggKind::Avg => Value::Null,
        }
    }

    /// Check the Eqv. 4/5 side condition that `f` does not depend on the
    /// given attributes ("the function f may not depend on the values of
    /// the attributes a2 and A2", §4): neither the projection nor the
    /// filter may reference them.
    pub fn independent_of(&self, attrs: &[Sym]) -> bool {
        if let Some(p) = self.project {
            if attrs.contains(&p) {
                return false;
            }
        }
        if let Some(f) = &self.filter {
            if f.free_attrs().iter().any(|a| attrs.contains(a)) {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for GroupFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.agg, self.project) {
            (AggKind::Items, Some(p)) => write!(f, "Π{p}")?,
            (agg, Some(p)) => write!(f, "{}∘Π{p}", agg.name())?,
            (agg, None) => write!(f, "{}", agg.name())?,
        }
        if let Some(p) = &self.filter {
            write!(f, "∘σ[{p}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: &str) -> Sym {
        Sym::new(n)
    }

    fn group() -> Vec<Tuple> {
        vec![
            Tuple::from_pairs(vec![(s("a"), Value::Int(1)), (s("b"), Value::Int(10))]),
            Tuple::from_pairs(vec![(s("a"), Value::Int(2)), (s("b"), Value::Int(30))]),
            Tuple::from_pairs(vec![(s("a"), Value::Int(3)), (s("b"), Value::Int(20))]),
        ]
    }

    fn cat() -> Catalog {
        Catalog::new()
    }

    #[test]
    fn id_returns_nested_relation() {
        let g = group();
        let v = GroupFn::id().aggregate(&g, &cat()).unwrap();
        assert_eq!(v, Value::tuples(g));
    }

    #[test]
    fn count_min_max_sum_avg() {
        let g = group();
        let c = cat();
        assert_eq!(GroupFn::count().aggregate(&g, &c).unwrap(), Value::Int(3));
        assert_eq!(
            GroupFn::agg_of(AggKind::Min, "b")
                .aggregate(&g, &c)
                .unwrap(),
            Value::Dec(Dec(10.0))
        );
        assert_eq!(
            GroupFn::agg_of(AggKind::Max, "b")
                .aggregate(&g, &c)
                .unwrap(),
            Value::Dec(Dec(30.0))
        );
        assert_eq!(
            GroupFn::agg_of(AggKind::Sum, "b")
                .aggregate(&g, &c)
                .unwrap(),
            Value::Dec(Dec(60.0))
        );
        assert_eq!(
            GroupFn::agg_of(AggKind::Avg, "b")
                .aggregate(&g, &c)
                .unwrap(),
            Value::Dec(Dec(20.0))
        );
    }

    #[test]
    fn project_items_preserves_group_order() {
        let g = group();
        let v = GroupFn::project_items("b").aggregate(&g, &cat()).unwrap();
        assert_eq!(
            v,
            Value::Items(vec![Value::Int(10), Value::Int(30), Value::Int(20)].into())
        );
    }

    #[test]
    fn empty_group_values() {
        assert_eq!(GroupFn::count().on_empty(), Value::Int(0));
        assert_eq!(GroupFn::id().on_empty(), Value::tuples(vec![]));
        assert_eq!(GroupFn::agg_of(AggKind::Min, "x").on_empty(), Value::Null);
        // on_empty must agree with aggregate(ε) — the correctness hinge of
        // the outer-join equivalences.
        let c = cat();
        for f in [
            GroupFn::count(),
            GroupFn::id(),
            GroupFn::project_items("x"),
            GroupFn::agg_of(AggKind::Min, "x"),
            GroupFn::agg_of(AggKind::Sum, "x"),
            GroupFn::agg_of(AggKind::Avg, "x"),
        ] {
            assert_eq!(f.aggregate(&[], &c).unwrap(), f.on_empty(), "f = {f}");
        }
    }

    #[test]
    fn filter_stage() {
        use crate::value::CmpOp;
        let g = group();
        let f =
            GroupFn::count().filtered(Scalar::cmp(CmpOp::Gt, Scalar::attr("b"), Scalar::int(15)));
        let v = f
            .apply_with(&g, &cat(), |p, t| {
                // minimal filter evaluator for the test
                let Scalar::Cmp(op, l, r) = p else { panic!() };
                let Scalar::Attr(a) = **l else { panic!() };
                let Scalar::Const(ref k) = **r else { panic!() };
                Ok(crate::value::cmp_atomic(*op, t.get(a).unwrap(), k, &cat()))
            })
            .unwrap();
        assert_eq!(v, Value::Int(2));
    }

    #[test]
    fn independence_check() {
        let f = GroupFn::agg_of(AggKind::Min, "c2");
        assert!(f.independent_of(&[s("a2"), s("x2")]));
        assert!(!f.independent_of(&[s("c2")]));
        let g = GroupFn::count().filtered(Scalar::attr_cmp(crate::value::CmpOp::Eq, "a2", "b2"));
        assert!(!g.independent_of(&[s("a2")]));
        assert!(GroupFn::count().independent_of(&[s("anything")]));
    }

    #[test]
    fn display() {
        assert_eq!(GroupFn::count().to_string(), "count");
        assert_eq!(GroupFn::project_items("t2").to_string(), "Πt2");
        assert_eq!(GroupFn::agg_of(AggKind::Min, "c2").to_string(), "min∘Πc2");
    }
}
