//! The scalar expression language — subscripts of NAL operators.
//!
//! NAL "allows nesting of algebraic expressions: for example, within a
//! selection predicate of a select operator we allow the occurrence of
//! further nested algebraic expressions" (§2). This is where that nesting
//! lives: [`Scalar::Agg`], [`Scalar::Exists`], and [`Scalar::Forall`]
//! embed full algebra [`Expr`]essions inside predicates and χ subscripts.
//! Nested expressions force nested-loop evaluation; removing them is the
//! whole point of the unnesting equivalences.

pub mod func;
pub mod groupfn;

pub use func::Func;
pub use groupfn::{AggKind, GroupFn};

use std::fmt;

use xpath::Path;

use crate::expr::Expr;
use crate::sym::Sym;
use crate::value::{CmpOp, Value};

/// Arithmetic operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div`
    Div,
    /// `mod`
    Mod,
}

impl ArithOp {
    /// XQuery surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "div",
            ArithOp::Mod => "mod",
        }
    }

    /// Apply to two numbers.
    pub fn apply(self, l: f64, r: f64) -> f64 {
        match self {
            ArithOp::Add => l + r,
            ArithOp::Sub => l - r,
            ArithOp::Mul => l * r,
            ArithOp::Div => l / r,
            ArithOp::Mod => l % r,
        }
    }
}

/// A scalar expression, evaluated against an environment tuple.
#[derive(Clone, PartialEq, Debug)]
pub enum Scalar {
    /// A constant value.
    Const(Value),
    /// An attribute/variable reference.
    Attr(Sym),
    /// Atomic comparison `l θ r` (with XQuery's existential semantics when
    /// either side evaluates to a sequence).
    Cmp(CmpOp, Box<Scalar>, Box<Scalar>),
    /// Membership `l ∈ r`, where `r` is sequence-valued (equivalent to
    /// `Cmp(Eq, …)` at runtime, kept distinct because equivalences 4 and 5
    /// pattern-match on it).
    In(Box<Scalar>, Box<Scalar>),
    /// Logical conjunction.
    And(Box<Scalar>, Box<Scalar>),
    /// Logical disjunction.
    Or(Box<Scalar>, Box<Scalar>),
    /// Logical negation.
    Not(Box<Scalar>),
    /// Builtin function call.
    Call(Func, Vec<Scalar>),
    /// Arithmetic on atomic values (`+ - * div mod`), numeric per
    /// XQuery's untyped-data coercion rules.
    Arith(ArithOp, Box<Scalar>, Box<Scalar>),
    /// Structural path applied to a context value (node or node sequence).
    Path(Box<Scalar>, Path),
    /// `doc("uri")` — the document node of a catalog document.
    Doc(String),
    /// `e[a]`: lift the item sequence produced by the inner scalar into a
    /// tuple sequence with single attribute `a` (§2).
    Lift(Box<Scalar>, Sym),
    /// `Π^D` on an item sequence — `distinct-values(…)` after atomization.
    /// Deterministic first-occurrence order, not order-preserving (§2).
    DistinctItems(Box<Scalar>),
    /// `∃ x ∈ range : pred` — a nested algebraic expression in a
    /// quantifier (left-hand side of Eqv. 6).
    Exists {
        /// The quantified variable.
        var: Sym,
        /// The range expression (a query block).
        range: Box<Expr>,
        /// The quantified predicate.
        pred: Box<Scalar>,
    },
    /// `∀ x ∈ range : pred` (left-hand side of Eqv. 7).
    Forall {
        /// The quantified variable.
        var: Sym,
        /// The range expression (a query block).
        range: Box<Expr>,
        /// The quantified predicate.
        pred: Box<Scalar>,
    },
    /// `f(e)` where `e` is a nested algebraic expression and `f` a group
    /// function — the shape produced by translating `let` clauses, and the
    /// left-hand side of equivalences 1–5.
    Agg {
        /// The group function applied to the block's result.
        f: GroupFn,
        /// The nested query block.
        input: Box<Expr>,
    },
}

impl Scalar {
    /// An attribute reference.
    pub fn attr(a: impl Into<Sym>) -> Scalar {
        Scalar::Attr(a.into())
    }

    /// A constant.
    pub fn constant(v: Value) -> Scalar {
        Scalar::Const(v)
    }

    /// An integer constant.
    pub fn int(i: i64) -> Scalar {
        Scalar::Const(Value::Int(i))
    }

    /// A string constant.
    pub fn string(s: &str) -> Scalar {
        Scalar::Const(Value::str(s))
    }

    /// The comparison `l op r`.
    pub fn cmp(op: CmpOp, l: Scalar, r: Scalar) -> Scalar {
        Scalar::Cmp(op, Box::new(l), Box::new(r))
    }

    /// `a θ b` between two attributes — the correlation-predicate shape of
    /// the unnesting equivalences.
    pub fn attr_cmp(op: CmpOp, l: impl Into<Sym>, r: impl Into<Sym>) -> Scalar {
        Scalar::cmp(op, Scalar::attr(l), Scalar::attr(r))
    }

    /// The membership test `l ∈ r`.
    pub fn is_in(l: Scalar, r: Scalar) -> Scalar {
        Scalar::In(Box::new(l), Box::new(r))
    }

    /// `self ∧ other`.
    pub fn and(self, other: Scalar) -> Scalar {
        Scalar::And(Box::new(self), Box::new(other))
    }

    /// `self ∨ other`.
    pub fn or(self, other: Scalar) -> Scalar {
        Scalar::Or(Box::new(self), Box::new(other))
    }

    /// `¬self`, with comparison negation folded in.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Scalar {
        match self {
            // Cheap simplifications keep rewritten predicates readable.
            Scalar::Not(inner) => *inner,
            Scalar::Cmp(op, l, r) => Scalar::Cmp(op.negate(), l, r),
            other => Scalar::Not(Box::new(other)),
        }
    }

    /// Apply a structural path to this context value.
    pub fn path(self, p: Path) -> Scalar {
        Scalar::Path(Box::new(self), p)
    }

    /// `self[a]` — lift the item sequence into single-attribute tuples.
    pub fn lift(self, a: impl Into<Sym>) -> Scalar {
        Scalar::Lift(Box::new(self), a.into())
    }

    /// `distinct-values(self)`.
    pub fn distinct(self) -> Scalar {
        Scalar::DistinctItems(Box::new(self))
    }

    /// Split a conjunction into its conjuncts.
    pub fn conjuncts(&self) -> Vec<&Scalar> {
        match self {
            Scalar::And(l, r) => {
                let mut out = l.conjuncts();
                out.extend(r.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// Rebuild a conjunction from conjuncts (`true` for the empty list is
    /// represented as `Const(Bool(true))`).
    pub fn conjoin(mut parts: Vec<Scalar>) -> Scalar {
        match parts.len() {
            0 => Scalar::Const(Value::Bool(true)),
            1 => parts.pop().expect("len checked"),
            _ => {
                let mut it = parts.into_iter();
                let first = it.next().expect("len checked");
                it.fold(first, |acc, p| acc.and(p))
            }
        }
    }

    /// All attribute symbols referenced by this scalar, *including* those
    /// referenced inside nested algebra expressions (their own bound
    /// attributes excluded). This is the `F(e)` of §2 restricted to
    /// scalars.
    pub fn free_attrs(&self) -> std::collections::BTreeSet<Sym> {
        let mut out = std::collections::BTreeSet::new();
        self.collect_free(&mut out);
        out
    }

    pub(crate) fn collect_free(&self, out: &mut std::collections::BTreeSet<Sym>) {
        match self {
            Scalar::Const(_) | Scalar::Doc(_) => {}
            Scalar::Attr(a) => {
                out.insert(*a);
            }
            Scalar::Cmp(_, l, r)
            | Scalar::In(l, r)
            | Scalar::And(l, r)
            | Scalar::Or(l, r)
            | Scalar::Arith(_, l, r) => {
                l.collect_free(out);
                r.collect_free(out);
            }
            Scalar::Not(x) | Scalar::Lift(x, _) | Scalar::DistinctItems(x) => x.collect_free(out),
            Scalar::Path(x, _) => x.collect_free(out),
            Scalar::Call(_, args) => {
                for a in args {
                    a.collect_free(out);
                }
            }
            Scalar::Exists { var, range, pred } | Scalar::Forall { var, range, pred } => {
                out.extend(crate::expr::attrs::free_vars(range));
                let mut inner = std::collections::BTreeSet::new();
                pred.collect_free(&mut inner);
                inner.remove(var);
                // attributes produced by the range are bound, not free
                for a in crate::expr::attrs::attrs(range) {
                    inner.remove(&a);
                }
                out.extend(inner);
            }
            Scalar::Agg { f, input } => {
                out.extend(crate::expr::attrs::free_vars(input));
                if let Some(filter) = &f.filter {
                    let mut inner = std::collections::BTreeSet::new();
                    filter.collect_free(&mut inner);
                    for a in crate::expr::attrs::attrs(input) {
                        inner.remove(&a);
                    }
                    out.extend(inner);
                }
            }
        }
    }

    /// Rename free attribute references per `(new, old)` pairs. Used by
    /// the rewriter, e.g. Eqv. 6/7 replace the quantifier variable `x` by
    /// the range attribute `x'` ("p′ results from p by replacing x by
    /// x′"). Nested algebra expressions are renamed via their own free
    /// scalars only — their internally-bound attributes are untouched
    /// because the rewriter only ever substitutes freshly scoped names.
    pub fn rename_attrs(&self, pairs: &[(Sym, Sym)]) -> Scalar {
        let ren = |a: Sym| -> Sym {
            pairs
                .iter()
                .find(|(_, old)| *old == a)
                .map(|(new, _)| *new)
                .unwrap_or(a)
        };
        match self {
            Scalar::Const(_) | Scalar::Doc(_) => self.clone(),
            Scalar::Attr(a) => Scalar::Attr(ren(*a)),
            Scalar::Cmp(op, l, r) => Scalar::Cmp(
                *op,
                Box::new(l.rename_attrs(pairs)),
                Box::new(r.rename_attrs(pairs)),
            ),
            Scalar::In(l, r) => Scalar::In(
                Box::new(l.rename_attrs(pairs)),
                Box::new(r.rename_attrs(pairs)),
            ),
            Scalar::And(l, r) => Scalar::And(
                Box::new(l.rename_attrs(pairs)),
                Box::new(r.rename_attrs(pairs)),
            ),
            Scalar::Or(l, r) => Scalar::Or(
                Box::new(l.rename_attrs(pairs)),
                Box::new(r.rename_attrs(pairs)),
            ),
            Scalar::Arith(op, l, r) => Scalar::Arith(
                *op,
                Box::new(l.rename_attrs(pairs)),
                Box::new(r.rename_attrs(pairs)),
            ),
            Scalar::Not(x) => Scalar::Not(Box::new(x.rename_attrs(pairs))),
            Scalar::Call(f, args) => {
                Scalar::Call(*f, args.iter().map(|a| a.rename_attrs(pairs)).collect())
            }
            Scalar::Path(x, p) => Scalar::Path(Box::new(x.rename_attrs(pairs)), p.clone()),
            Scalar::Lift(x, a) => Scalar::Lift(Box::new(x.rename_attrs(pairs)), *a),
            Scalar::DistinctItems(x) => Scalar::DistinctItems(Box::new(x.rename_attrs(pairs))),
            // Nested expressions keep their internal structure; only the
            // quantifier predicate (which sees the outer scope) is renamed.
            Scalar::Exists { var, range, pred } => Scalar::Exists {
                var: *var,
                range: range.clone(),
                pred: Box::new(pred.rename_attrs(pairs)),
            },
            Scalar::Forall { var, range, pred } => Scalar::Forall {
                var: *var,
                range: range.clone(),
                pred: Box::new(pred.rename_attrs(pairs)),
            },
            Scalar::Agg { f, input } => Scalar::Agg {
                f: f.clone(),
                input: input.clone(),
            },
        }
    }

    /// Is this scalar *pure and total* on the values the engine's
    /// chains produce — free of nested algebra (a quantifier/aggregate
    /// could write Ξ output or be arbitrarily expensive per evaluation)
    /// and of eagerly-erroring constructs (arithmetic and `decimal()`
    /// error on non-numeric input)? The engine's index conversions
    /// replay such scalars lazily per probed candidate, and the cost
    /// model prices only plans the engine will convert, so both layers
    /// share this predicate.
    pub fn replay_safe(&self) -> bool {
        match self {
            Scalar::Exists { .. } | Scalar::Forall { .. } | Scalar::Agg { .. } => false,
            Scalar::Arith(..) => false,
            Scalar::Call(f, args) => *f != Func::Decimal && args.iter().all(Scalar::replay_safe),
            Scalar::Const(_) | Scalar::Attr(_) | Scalar::Doc(_) => true,
            Scalar::Cmp(_, l, r) | Scalar::In(l, r) | Scalar::And(l, r) | Scalar::Or(l, r) => {
                l.replay_safe() && r.replay_safe()
            }
            Scalar::Not(x) | Scalar::Lift(x, _) | Scalar::DistinctItems(x) | Scalar::Path(x, _) => {
                x.replay_safe()
            }
        }
    }

    /// `true` iff this scalar contains a nested algebra expression —
    /// i.e. forces nested-loop evaluation.
    pub fn has_nested_expr(&self) -> bool {
        match self {
            Scalar::Exists { .. } | Scalar::Forall { .. } | Scalar::Agg { .. } => true,
            Scalar::Const(_) | Scalar::Attr(_) | Scalar::Doc(_) => false,
            Scalar::Cmp(_, l, r)
            | Scalar::In(l, r)
            | Scalar::And(l, r)
            | Scalar::Or(l, r)
            | Scalar::Arith(_, l, r) => l.has_nested_expr() || r.has_nested_expr(),
            Scalar::Not(x) | Scalar::Lift(x, _) | Scalar::DistinctItems(x) | Scalar::Path(x, _) => {
                x.has_nested_expr()
            }
            Scalar::Call(_, args) => args.iter().any(Scalar::has_nested_expr),
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Const(v) => write!(f, "{v}"),
            Scalar::Attr(a) => write!(f, "{a}"),
            Scalar::Cmp(op, l, r) => write!(f, "{l} {} {r}", op.symbol()),
            Scalar::Arith(op, l, r) => write!(f, "({l} {} {r})", op.symbol()),
            Scalar::In(l, r) => write!(f, "{l} ∈ {r}"),
            Scalar::And(l, r) => write!(f, "({l} ∧ {r})"),
            Scalar::Or(l, r) => write!(f, "({l} ∨ {r})"),
            Scalar::Not(x) => write!(f, "¬({x})"),
            Scalar::Call(func, args) => {
                write!(f, "{func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Scalar::Path(base, p) => write!(f, "{base}{p}"),
            Scalar::Doc(uri) => write!(f, "doc(\"{uri}\")"),
            Scalar::Lift(x, a) => write!(f, "{x}[{a}]"),
            Scalar::DistinctItems(x) => write!(f, "ΠD({x})"),
            Scalar::Exists { var, range, pred } => {
                write!(f, "∃{var} ∈ ({range}) {pred}")
            }
            Scalar::Forall { var, range, pred } => {
                write!(f, "∀{var} ∈ ({range}) {pred}")
            }
            Scalar::Agg { f: gf, input } => write!(f, "{gf}({input})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_roundtrip() {
        let p = Scalar::attr_cmp(CmpOp::Eq, "a", "b")
            .and(Scalar::attr_cmp(CmpOp::Gt, "c", "d"))
            .and(Scalar::int(1));
        let parts = p.conjuncts();
        assert_eq!(parts.len(), 3);
        let rebuilt = Scalar::conjoin(parts.into_iter().cloned().collect());
        assert_eq!(rebuilt, p);
        assert_eq!(Scalar::conjoin(vec![]), Scalar::Const(Value::Bool(true)));
    }

    #[test]
    fn negation_simplifies_comparisons() {
        let p = Scalar::attr_cmp(CmpOp::Gt, "y", "x");
        assert_eq!(p.clone().not(), Scalar::attr_cmp(CmpOp::Le, "y", "x"));
        assert_eq!(p.clone().not().not(), p);
        let q = Scalar::attr("b").and(Scalar::attr("c"));
        assert_eq!(q.clone().not(), Scalar::Not(Box::new(q)));
    }

    #[test]
    fn free_attrs_of_plain_scalars() {
        let p = Scalar::attr_cmp(CmpOp::Eq, "a1", "a2").and(Scalar::int(3));
        let free: Vec<_> = p.free_attrs().into_iter().collect();
        assert_eq!(free, vec![Sym::new("a1"), Sym::new("a2")]);
    }

    #[test]
    fn has_nested_expr_flags_quantifiers_and_aggs() {
        assert!(!Scalar::attr("x").has_nested_expr());
        let nested = Scalar::Agg {
            f: GroupFn::count(),
            input: Box::new(Expr::Singleton),
        };
        assert!(nested.has_nested_expr());
        assert!(Scalar::attr("x").and(nested).has_nested_expr());
    }

    #[test]
    fn display_shapes() {
        let p = Scalar::attr_cmp(CmpOp::Eq, "a1", "a2");
        assert_eq!(p.to_string(), "a1 = a2");
        let q = Scalar::is_in(Scalar::attr("a1"), Scalar::attr("a2"));
        assert_eq!(q.to_string(), "a1 ∈ a2");
    }
}
