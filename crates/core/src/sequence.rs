//! Ordered sequences of tuples and the `e[a]` lifting (§2).

use crate::sym::Sym;
use crate::tuple::Tuple;
use crate::value::Value;

/// An ordered sequence of tuples — the carrier of every NAL operator.
pub type Seq = Vec<Tuple>;

/// `e[a]`: lift a sequence of non-tuple values into a sequence of tuples
/// with the single attribute `a` (§2: "we construct from a sequence of
/// non-tuple values e a sequence of tuples denoted by e\[a\]").
pub fn lift_items(value: &Value, a: Sym) -> Seq {
    value
        .as_item_seq()
        .into_iter()
        .map(|v| Tuple::singleton(a, v))
        .collect()
}

/// The inverse view: collect attribute `a` of each tuple into an item
/// sequence (flattening nested item sequences, skipping absent values).
pub fn collect_items(seq: &[Tuple], a: Sym) -> Value {
    let mut out = Vec::with_capacity(seq.len());
    for t in seq {
        if let Some(v) = t.get(a) {
            match v {
                Value::Items(items) => out.extend(items.iter().cloned()),
                Value::Null => {}
                other => out.push(other.clone()),
            }
        }
    }
    Value::Items(out.into())
}

/// Duplicate elimination preserving first occurrence. This is the
/// deterministic, idempotent order policy we fix for the paper's `Π^D`
/// (§2 requires determinism and idempotence but not order preservation;
/// first-occurrence order additionally makes plans comparable
/// output-for-output).
pub fn dedup_first_occurrence<T: Clone + Eq + std::hash::Hash>(items: &[T]) -> Vec<T> {
    let mut seen = std::collections::HashSet::with_capacity(items.len());
    let mut out = Vec::with_capacity(items.len());
    for it in items {
        if seen.insert(it.clone()) {
            out.push(it.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lift_and_collect_roundtrip() {
        let a = Sym::new("a");
        let v = Value::items(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        let seq = lift_items(&v, a);
        assert_eq!(seq.len(), 3);
        assert_eq!(seq[0].get(a), Some(&Value::Int(1)));
        assert_eq!(
            collect_items(&seq, a),
            Value::Items(vec![Value::Int(1), Value::Int(2), Value::Int(3)].into())
        );
    }

    #[test]
    fn lift_singleton_and_empty() {
        let a = Sym::new("a");
        assert_eq!(lift_items(&Value::Int(7), a).len(), 1);
        assert!(lift_items(&Value::items(vec![]), a).is_empty());
        assert!(lift_items(&Value::Null, a).is_empty());
    }

    #[test]
    fn dedup_keeps_first_occurrence_order() {
        let v = vec![3, 1, 3, 2, 1, 4];
        assert_eq!(dedup_first_occurrence(&v), vec![3, 1, 2, 4]);
        // idempotent
        assert_eq!(
            dedup_first_occurrence(&dedup_first_occurrence(&v)),
            dedup_first_occurrence(&v)
        );
    }
}
