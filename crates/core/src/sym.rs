//! Interned attribute/variable symbols.
//!
//! NAL tuples are sets of variable bindings; attribute names (`a1`, `t2`,
//! `g`, …) appear everywhere — in tuples, projections, predicates, and
//! the rewriter's side conditions. Interning them makes comparisons and
//! hashing integer-cheap and keeps `Tuple` compact.
//!
//! The interner is global and append-only; unique names are bounded by the
//! query (plus fresh attributes invented by the rewriter), so leaking each
//! unique string to obtain `&'static str` is deliberate and safe.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned symbol. Ordering is *by name* (lexicographic), so that
/// sorted tuple layouts and printed attribute sets are deterministic
/// across processes regardless of interning order.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(&'static str);

struct Interner {
    map: HashMap<&'static str, Sym>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
        })
    })
}

impl Sym {
    /// Intern `name`.
    pub fn new(name: &str) -> Sym {
        let mut int = interner().lock().expect("interner poisoned");
        if let Some(&s) = int.map.get(name) {
            return s;
        }
        let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
        let sym = Sym(leaked);
        int.map.insert(leaked, sym);
        sym
    }

    /// The symbol's name.
    #[inline]
    pub fn as_str(self) -> &'static str {
        self.0
    }

    /// A fresh symbol not equal to any in `used`, derived from `base`
    /// (`g`, `g'`, `g''`, … — the paper's priming convention).
    pub fn fresh(base: &str, used: &[Sym]) -> Sym {
        let mut candidate = Sym::new(base);
        let mut name = base.to_string();
        while used.contains(&candidate) {
            name.push('\'');
            candidate = Sym::new(&name);
        }
        candidate
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Sym) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Sym) -> std::cmp::Ordering {
        self.0.cmp(other.0)
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        assert_eq!(Sym::new("a1"), Sym::new("a1"));
        assert_ne!(Sym::new("a1"), Sym::new("a2"));
        assert_eq!(Sym::new("a1").as_str(), "a1");
    }

    #[test]
    fn ordering_is_lexicographic() {
        // Intern in reverse order to prove order is by name, not by id.
        let z = Sym::new("zz-order-test");
        let a = Sym::new("aa-order-test");
        assert!(a < z);
    }

    #[test]
    fn fresh_primes_until_unused() {
        let g = Sym::new("fresh-g");
        let g1 = Sym::fresh("fresh-g", &[g]);
        assert_ne!(g, g1);
        assert_eq!(g1.as_str(), "fresh-g'");
        let g2 = Sym::fresh("fresh-g", &[g, g1]);
        assert_eq!(g2.as_str(), "fresh-g''");
        assert_eq!(Sym::fresh("fresh-h", &[g]), Sym::new("fresh-h"));
    }
}
