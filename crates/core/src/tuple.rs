//! Tuples: unordered sets of variable bindings (§2).
//!
//! "SAL and NAL work on sequences of sets of variable bindings, i.e.,
//! sequences of unordered tuples where every attribute corresponds to a
//! variable." A tuple maps attribute symbols to values; we store the
//! fields sorted by symbol so equality, hashing, and display are
//! canonical. Fields are behind an `Arc`, making tuple clones (which
//! joins and maps do constantly) a pointer copy.

use std::fmt;
use std::sync::Arc;

use crate::sym::Sym;
use crate::value::Value;

/// An unordered tuple of attribute bindings.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    fields: Arc<Vec<(Sym, Value)>>,
}

impl Tuple {
    /// The empty tuple (the single element of the `□` singleton sequence).
    pub fn empty() -> Tuple {
        static EMPTY: std::sync::OnceLock<Tuple> = std::sync::OnceLock::new();
        EMPTY
            .get_or_init(|| Tuple {
                fields: Arc::new(Vec::new()),
            })
            .clone()
    }

    /// `[a: v]`
    pub fn singleton(a: Sym, v: Value) -> Tuple {
        Tuple {
            fields: Arc::new(vec![(a, v)]),
        }
    }

    /// Build from pairs; later bindings of the same attribute win.
    pub fn from_pairs(pairs: Vec<(Sym, Value)>) -> Tuple {
        let mut fields: Vec<(Sym, Value)> = Vec::with_capacity(pairs.len());
        for (s, v) in pairs {
            match fields.binary_search_by(|(fs, _)| fs.cmp(&s)) {
                Ok(i) => fields[i].1 = v,
                Err(i) => fields.insert(i, (s, v)),
            }
        }
        Tuple {
            fields: Arc::new(fields),
        }
    }

    /// `⊥_A`: all attributes of `attrs` bound to NULL (§2).
    pub fn bottom(attrs: &[Sym]) -> Tuple {
        Tuple::from_pairs(attrs.iter().map(|&a| (a, Value::Null)).collect())
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// `true` for the empty tuple.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Look up attribute `a`.
    pub fn get(&self, a: Sym) -> Option<&Value> {
        self.fields
            .binary_search_by(|(s, _)| s.cmp(&a))
            .ok()
            .map(|i| &self.fields[i].1)
    }

    /// The attribute set, sorted.
    pub fn attrs(&self) -> Vec<Sym> {
        self.fields.iter().map(|(s, _)| *s).collect()
    }

    /// Iterate over `(attr, value)` pairs in attribute order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &Value)> {
        self.fields.iter().map(|(s, v)| (*s, v))
    }

    /// Iterate over values in attribute order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.fields.iter().map(|(_, v)| v)
    }

    /// Concatenation `◦`. The paper requires disjoint attribute sets; for
    /// evaluation environments we let the *right* operand shadow the left,
    /// which coincides with `◦` on disjoint tuples and gives lexical
    /// scoping for nested query evaluation.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut fields = (*self.fields).clone();
        for (s, v) in other.fields.iter() {
            match fields.binary_search_by(|(fs, _)| fs.cmp(s)) {
                Ok(i) => fields[i].1 = v.clone(),
                Err(i) => fields.insert(i, (*s, v.clone())),
            }
        }
        Tuple {
            fields: Arc::new(fields),
        }
    }

    /// Extend with one binding (the map operator's `t ◦ [a: v]`).
    pub fn extend(&self, a: Sym, v: Value) -> Tuple {
        let mut fields = (*self.fields).clone();
        match fields.binary_search_by(|(fs, _)| fs.cmp(&a)) {
            Ok(i) => fields[i].1 = v,
            Err(i) => fields.insert(i, (a, v)),
        }
        Tuple {
            fields: Arc::new(fields),
        }
    }

    /// Projection `|_A`: keep only the attributes in `attrs`.
    /// Missing attributes are skipped (the paper's tuples always have
    /// them; being lenient keeps ⊥-padded tuples workable).
    pub fn project(&self, attrs: &[Sym]) -> Tuple {
        Tuple::from_pairs(
            attrs
                .iter()
                .filter_map(|&a| self.get(a).map(|v| (a, v.clone())))
                .collect(),
        )
    }

    /// Drop the attributes in `attrs` (the paper's `Π_{Ā}`).
    pub fn without(&self, attrs: &[Sym]) -> Tuple {
        Tuple {
            fields: Arc::new(
                self.fields
                    .iter()
                    .filter(|(s, _)| !attrs.contains(s))
                    .cloned()
                    .collect(),
            ),
        }
    }

    /// Rename per `(new, old)` pairs; attributes not mentioned are kept
    /// (`Π_{A':A}`, §2: "Attributes other than those in A remain
    /// untouched").
    pub fn rename(&self, pairs: &[(Sym, Sym)]) -> Tuple {
        Tuple::from_pairs(
            self.fields
                .iter()
                .map(|(s, v)| {
                    let new = pairs
                        .iter()
                        .find(|(_, old)| old == s)
                        .map(|(new, _)| *new)
                        .unwrap_or(*s);
                    (new, v.clone())
                })
                .collect(),
        )
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (s, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}: {v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: &str) -> Sym {
        Sym::new(n)
    }

    fn t(pairs: &[(&str, i64)]) -> Tuple {
        Tuple::from_pairs(pairs.iter().map(|&(n, v)| (s(n), Value::Int(v))).collect())
    }

    #[test]
    fn construction_and_lookup() {
        let tup = t(&[("b", 2), ("a", 1)]);
        assert_eq!(tup.get(s("a")), Some(&Value::Int(1)));
        assert_eq!(tup.get(s("b")), Some(&Value::Int(2)));
        assert_eq!(tup.get(s("c")), None);
        assert_eq!(tup.attrs(), vec![s("a"), s("b")]);
        assert_eq!(tup.arity(), 2);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        assert_eq!(t(&[("a", 1), ("b", 2)]), t(&[("b", 2), ("a", 1)]));
    }

    #[test]
    fn concat_disjoint_and_shadowing() {
        let l = t(&[("a", 1)]);
        let r = t(&[("b", 2)]);
        assert_eq!(l.concat(&r), t(&[("a", 1), ("b", 2)]));
        // shadowing: right wins
        let r2 = t(&[("a", 9)]);
        assert_eq!(l.concat(&r2), t(&[("a", 9)]));
        // identity cases
        assert_eq!(Tuple::empty().concat(&l), l);
        assert_eq!(l.concat(&Tuple::empty()), l);
    }

    #[test]
    fn project_without_rename() {
        let tup = t(&[("a", 1), ("b", 2), ("c", 3)]);
        assert_eq!(tup.project(&[s("c"), s("a")]), t(&[("a", 1), ("c", 3)]));
        assert_eq!(tup.without(&[s("b")]), t(&[("a", 1), ("c", 3)]));
        let renamed = tup.rename(&[(s("x"), s("a"))]);
        assert_eq!(renamed, t(&[("x", 1), ("b", 2), ("c", 3)]));
    }

    #[test]
    fn bottom_is_all_nulls() {
        let b = Tuple::bottom(&[s("a"), s("b")]);
        assert_eq!(b.get(s("a")), Some(&Value::Null));
        assert_eq!(b.get(s("b")), Some(&Value::Null));
        assert_eq!(b.arity(), 2);
    }

    #[test]
    fn extend_overwrites() {
        let tup = t(&[("a", 1)]);
        let e = tup.extend(s("b"), Value::Int(5));
        assert_eq!(e, t(&[("a", 1), ("b", 5)]));
        let e2 = e.extend(s("a"), Value::Int(7));
        assert_eq!(e2.get(s("a")), Some(&Value::Int(7)));
    }

    #[test]
    fn display_is_sorted() {
        assert_eq!(t(&[("b", 2), ("a", 1)]).to_string(), "[a: 1, b: 2]");
    }
}
