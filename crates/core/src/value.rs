//! The value domain of NAL.
//!
//! NAL works on *sequences of unordered tuples*; attribute values are
//! atomic values, XML nodes, item sequences (what XQuery expressions
//! return), or nested tuple sequences (what grouping produces). §2 of the
//! paper: "We allow nested tuples, i.e. the value of an attribute may be a
//! sequence of tuples" — and the translation additionally stores node
//! handles "pointing to nodes in trees stored in the database" instead of
//! materialized trees.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use xmldb::{Catalog, DocId, NodeId};

use crate::tuple::Tuple;

/// A decimal value with total ordering (wrapper over `f64` comparing by
/// IEEE total order so it can serve as a grouping key). `-0.0`
/// canonicalizes to `0.0` in equality, ordering, and hashing, so the
/// two zeros are one key point everywhere a `Dec` is used as a dedup or
/// group key — matching [`cmp_atomic`] (where they compare equal) and
/// the engine's hash/index keys. NaN stays an ordinary point of the
/// total order here (distinct-values keeps one NaN); *comparisons* with
/// NaN are the business of [`cmp_atomic`], which rejects them.
#[derive(Clone, Copy, Debug)]
pub struct Dec(pub f64);

impl Dec {
    /// The canonical key value: `-0.0` folds to `0.0`.
    #[inline]
    fn canon(self) -> f64 {
        if self.0 == 0.0 {
            0.0
        } else {
            self.0
        }
    }
}

impl PartialEq for Dec {
    fn eq(&self, other: &Dec) -> bool {
        self.canon().total_cmp(&other.canon()) == Ordering::Equal
    }
}

impl Eq for Dec {}

impl PartialOrd for Dec {
    fn partial_cmp(&self, other: &Dec) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dec {
    fn cmp(&self, other: &Dec) -> Ordering {
        self.canon().total_cmp(&other.canon())
    }
}

impl std::hash::Hash for Dec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.canon().to_bits().hash(state);
    }
}

impl fmt::Display for Dec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.fract() == 0.0 && self.0.abs() < 1e15 {
            write!(f, "{:.1}", self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// A handle to a node of a catalog document.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeRef {
    /// The owning catalog document.
    pub doc: DocId,
    /// The node within it.
    pub node: NodeId,
}

/// An attribute value.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// NULL — produced by `⊥_A` (outer joins, empty unnests).
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// A decimal (canonicalized `f64`).
    Dec(Dec),
    /// A string (shared).
    Str(Arc<str>),
    /// A node handle.
    Node(NodeRef),
    /// A sequence of items (an XQuery value). Single-item sequences are
    /// normalized to the item itself ("we identify single element
    /// sequences and elements", §2).
    Items(Arc<Vec<Value>>),
    /// A sequence of tuples (a nested relation, e.g. a group).
    Tuples(Arc<Vec<Tuple>>),
}

impl Value {
    /// A string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build an item sequence, collapsing singletons and flattening nested
    /// item sequences (XQuery sequences do not nest).
    pub fn items(items: Vec<Value>) -> Value {
        let mut flat = Vec::with_capacity(items.len());
        for v in items {
            match v {
                Value::Items(inner) => flat.extend(inner.iter().cloned()),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().expect("len checked")
        } else {
            Value::Items(Arc::new(flat))
        }
    }

    /// A nested relation value.
    pub fn tuples(ts: Vec<Tuple>) -> Value {
        Value::Tuples(Arc::new(ts))
    }

    /// View this value as a sequence of items (without atomization).
    /// `Null` is the empty sequence; scalars are singleton sequences.
    pub fn as_item_seq(&self) -> Vec<Value> {
        match self {
            Value::Null => Vec::new(),
            Value::Items(v) => v.as_ref().clone(),
            other => vec![other.clone()],
        }
    }

    /// Number of items when viewed as a sequence.
    pub fn item_count(&self) -> usize {
        match self {
            Value::Null => 0,
            Value::Items(v) => v.len(),
            Value::Tuples(v) => v.len(),
            _ => 1,
        }
    }

    /// `true` iff the empty sequence.
    pub fn is_empty_seq(&self) -> bool {
        self.item_count() == 0
    }

    /// Atomize: nodes become their string value, everything else is
    /// unchanged. Sequences atomize item-wise.
    pub fn atomize(&self, catalog: &Catalog) -> Value {
        match self {
            Value::Node(n) => {
                let doc = catalog.doc(n.doc);
                Value::str(doc.string_value(n.node))
            }
            Value::Items(items) => Value::items(items.iter().map(|v| v.atomize(catalog)).collect()),
            other => other.clone(),
        }
    }

    /// Numeric view, if this atomic value is (or parses as) a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Dec(d) => Some(d.0),
            Value::Str(s) => s.trim().parse::<f64>().ok(),
            _ => None,
        }
    }

    /// String view of an atomic value (after atomization).
    pub fn as_str_lossy(&self) -> String {
        match self {
            Value::Str(s) => s.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Dec(d) => d.to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Null => String::new(),
            other => format!("{other:?}"),
        }
    }
}

/// Comparison operators θ ∈ {=, ≤, ≥, <, >, ≠} on atomic values (§2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The operator with operands swapped (`a θ b` ⇔ `b θ.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Logical negation (`¬(a θ b)` ⇔ `a θ.negate() b`) — used by Eqv. 7,
    /// which turns `∀x p` into an anti-join on `¬p`.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// Compare two *atomic* values (`Null` compares false against everything,
/// including itself — SQL-style, which is what outer-join padding needs).
///
/// Untyped data coming from XML is numeric-coerced when the other side is
/// numeric (`@year > 1993` works on the string `"1994"`), otherwise
/// compared as strings. Numeric comparison is IEEE: `NaN` behaves like
/// NULL and satisfies no comparison (not even `≠`), and `-0.0` equals
/// `0.0` — the semantics mirrored by the engine's hash keys and the
/// value index's ordered keys, so every access path agrees on these
/// edge points.
pub fn cmp_atomic(op: CmpOp, l: &Value, r: &Value, catalog: &Catalog) -> bool {
    let l = l.atomize(catalog);
    let r = r.atomize(catalog);
    if matches!(l, Value::Null) || matches!(r, Value::Null) {
        return false;
    }
    // Numeric coercion when either side is a number.
    let numericish =
        matches!(l, Value::Int(_) | Value::Dec(_)) || matches!(r, Value::Int(_) | Value::Dec(_));
    if numericish {
        return match (l.as_number(), r.as_number()) {
            (Some(a), Some(b)) => a.partial_cmp(&b).is_some_and(|ord| op.test(ord)),
            _ => false,
        };
    }
    match (&l, &r) {
        (Value::Bool(a), Value::Bool(b)) => op.test(a.cmp(b)),
        (Value::Str(a), Value::Str(b)) => op.test(a.as_ref().cmp(b.as_ref())),
        // Mixed leftovers: compare string forms.
        _ => op.test(l.as_str_lossy().cmp(&r.as_str_lossy())),
    }
}

/// General comparison with XQuery's existential semantics: `l op r` holds
/// iff ∃ item `a` in `l`, ∃ item `b` in `r` with `a op b` atomically
/// (§5.1: "a simple '=' has existential semantics in case either side
/// contains a sequence").
///
/// Tuple sequences contribute the values of their single attribute
/// (the `e[a]`-lifted representation of item sequences).
pub fn cmp_general(op: CmpOp, l: &Value, r: &Value, catalog: &Catalog) -> bool {
    let ls = explode(l);
    let rs = explode(r);
    ls.iter()
        .any(|a| rs.iter().any(|b| cmp_atomic(op, a, b, catalog)))
}

/// Flatten a value into candidate atomic items for general comparison.
fn explode(v: &Value) -> Vec<Value> {
    match v {
        Value::Items(items) => items.iter().flat_map(explode).collect(),
        Value::Tuples(ts) => ts
            .iter()
            .flat_map(|t| t.values().flat_map(explode).collect::<Vec<_>>())
            .collect(),
        Value::Null => Vec::new(),
        other => vec![other.clone()],
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Dec(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Node(n) => write!(f, "node({:?},{:?})", n.doc, n.node),
            Value::Items(items) => {
                write!(f, "(")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Tuples(ts) => {
                write!(f, "⟨")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "⟩")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.register(xmldb::parse_document("t.xml", "<a><b>42</b><b>x</b></a>").unwrap());
        c
    }

    #[test]
    fn items_collapse_singletons_and_flatten() {
        assert_eq!(Value::items(vec![Value::Int(1)]), Value::Int(1));
        let v = Value::items(vec![
            Value::Int(1),
            Value::items(vec![Value::Int(2), Value::Int(3)]),
        ]);
        assert_eq!(v.item_count(), 3);
        assert!(Value::items(vec![]).is_empty_seq());
        assert!(Value::Null.is_empty_seq());
    }

    #[test]
    fn numeric_coercion_in_comparisons() {
        let c = cat();
        assert!(cmp_atomic(
            CmpOp::Gt,
            &Value::str("1994"),
            &Value::Int(1993),
            &c
        ));
        assert!(!cmp_atomic(
            CmpOp::Gt,
            &Value::str("1990"),
            &Value::Int(1993),
            &c
        ));
        assert!(cmp_atomic(
            CmpOp::Eq,
            &Value::Dec(Dec(2.0)),
            &Value::Int(2),
            &c
        ));
        // Non-numeric string against number: false, not a panic.
        assert!(!cmp_atomic(
            CmpOp::Eq,
            &Value::str("abc"),
            &Value::Int(1),
            &c
        ));
    }

    #[test]
    fn string_comparisons() {
        let c = cat();
        assert!(cmp_atomic(
            CmpOp::Lt,
            &Value::str("abc"),
            &Value::str("abd"),
            &c
        ));
        assert!(cmp_atomic(
            CmpOp::Eq,
            &Value::str("x"),
            &Value::str("x"),
            &c
        ));
    }

    #[test]
    fn nan_behaves_like_null_in_comparisons() {
        let c = cat();
        let nan = Value::Dec(Dec(f64::NAN));
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert!(!cmp_atomic(op, &nan, &nan, &c), "NaN {} NaN", op.symbol());
            assert!(!cmp_atomic(op, &nan, &Value::Int(1), &c));
            assert!(!cmp_atomic(op, &Value::Int(1), &nan, &c));
            // Coerced too: a string that parses to NaN matches nothing.
            assert!(!cmp_atomic(op, &Value::str("NaN"), &Value::Int(1), &c));
        }
    }

    #[test]
    fn negative_zero_equals_positive_zero() {
        let c = cat();
        let nz = Value::Dec(Dec(-0.0));
        let pz = Value::Dec(Dec(0.0));
        assert!(cmp_atomic(CmpOp::Eq, &nz, &pz, &c));
        assert!(cmp_atomic(CmpOp::Le, &nz, &pz, &c));
        assert!(cmp_atomic(CmpOp::Ge, &nz, &pz, &c));
        assert!(!cmp_atomic(CmpOp::Lt, &nz, &pz, &c));
        assert!(!cmp_atomic(CmpOp::Ne, &nz, &pz, &c));
        // And through string coercion.
        assert!(cmp_atomic(CmpOp::Eq, &Value::str("-0"), &Value::Int(0), &c));
    }

    #[test]
    fn null_never_compares() {
        let c = cat();
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Gt] {
            assert!(!cmp_atomic(op, &Value::Null, &Value::Null, &c));
            assert!(!cmp_atomic(op, &Value::Null, &Value::Int(1), &c));
        }
    }

    #[test]
    fn node_atomization() {
        let c = cat();
        let doc_id = c.by_uri("t.xml").unwrap();
        let doc = c.doc(doc_id);
        let root = doc.root_element().unwrap();
        let b1 = doc.children(root).next().unwrap();
        let node = Value::Node(NodeRef {
            doc: doc_id,
            node: b1,
        });
        assert_eq!(node.atomize(&c), Value::str("42"));
        assert!(cmp_atomic(CmpOp::Eq, &node, &Value::Int(42), &c));
    }

    #[test]
    fn general_comparison_is_existential() {
        let c = cat();
        let seq = Value::items(vec![Value::str("a"), Value::str("b"), Value::str("c")]);
        assert!(cmp_general(CmpOp::Eq, &Value::str("b"), &seq, &c));
        assert!(!cmp_general(CmpOp::Eq, &Value::str("z"), &seq, &c));
        // empty sequence: no pair exists
        assert!(!cmp_general(CmpOp::Eq, &Value::items(vec![]), &seq, &c));
        // seq-to-seq
        let seq2 = Value::items(vec![Value::str("c"), Value::str("d")]);
        assert!(cmp_general(CmpOp::Eq, &seq, &seq2, &c));
        assert!(
            cmp_general(CmpOp::Ne, &seq, &seq, &c),
            "∃ a≠b in the same sequence"
        );
    }

    #[test]
    fn general_comparison_sees_into_tuples() {
        let c = cat();
        let t1 = Tuple::from_pairs(vec![(crate::sym::Sym::new("x"), Value::str("u"))]);
        let t2 = Tuple::from_pairs(vec![(crate::sym::Sym::new("x"), Value::str("v"))]);
        let rel = Value::tuples(vec![t1, t2]);
        assert!(cmp_general(CmpOp::Eq, &Value::str("v"), &rel, &c));
        assert!(!cmp_general(CmpOp::Eq, &Value::str("w"), &rel, &c));
    }

    #[test]
    fn cmp_op_algebra() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        assert_eq!(CmpOp::Eq.negate(), CmpOp::Ne);
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
            assert_eq!(op.flip().flip(), op);
        }
    }

    #[test]
    fn dec_total_order_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Dec(Dec(1.5)));
        assert!(set.contains(&Value::Dec(Dec(1.5))));
        assert!(Dec(1.0) < Dec(2.0));
        assert_eq!(Dec(13.0).to_string(), "13.0");
        // The two zeros are one key point: equal, same hash bucket, and
        // neither orders below the other — so dedup/group keys agree
        // with cmp_atomic and the engine's hash/index keys.
        assert_eq!(Dec(-0.0), Dec(0.0));
        assert!(set.insert(Value::Dec(Dec(-0.0))));
        assert!(set.contains(&Value::Dec(Dec(0.0))));
        assert_eq!(Dec(-0.0).cmp(&Dec(0.0)), std::cmp::Ordering::Equal);
        // NaN stays a single, self-equal point of the dedup order.
        assert_eq!(Dec(f64::NAN), Dec(f64::NAN));
    }
}
