//! Index-backed access paths: the recipe IR, its tracer, and the
//! runtime that executes it.
//!
//! [`apply_indexes`] is a physical rewrite pass over a compiled
//! [`PhysPlan`]: it recognizes document-rooted path scans and semi/anti
//! quantifier joins whose build side is such a scan, and replaces them
//! with [`PhysPlan::IndexScan`] operators and [`PhysPlan::IndexJoin`]
//! operators carrying a declarative [`AccessRecipe`] — backed by the
//! catalog's [`xmldb::PathIndex`] / [`xmldb::ValueIndex`] /
//! [`xmldb::CompositeValueIndex`].
//!
//! The module is split by role:
//!
//! * [`recipe`] — the IR: [`AccessRecipe`], [`Driver`] (point /
//!   composite / range), ancestor reconstruction ([`AncestorMode`]),
//!   replay pipeline, residual;
//! * [`trace`] — the **single convertibility predicate**
//!   ([`join_recipe`]): everything that proves a conversion
//!   output-preserving lives there, and the cost model consumes the same
//!   function, so pricing can never claim an access path the engine
//!   declines;
//! * [`probe`] — recipe execution ([`probe::IndexJoinAccess`]), shared
//!   verbatim by both executors, which makes
//!   `index_lookups`/`index_hits` parity a construction property rather
//!   than a test obligation.
//!
//! The pass stays *conservative by construction*: a conversion happens
//! only when the replaced subtree provably produces the same tuple
//! sequence — same nodes, same document order, same duplicate structure,
//! same residual-evaluation order — so every converted plan stays
//! byte-identical in rows and Ξ output to its scan-based original (the
//! differential suite `tests/index_vs_scan.rs` enforces this across the
//! paper's workloads and both executors). Anything the tracer cannot
//! prove is left untouched and keeps scanning.

pub mod probe;
pub mod recipe;
pub mod trace;

pub use probe::IndexJoinAccess;
pub use recipe::{AccessRecipe, AncestorMode, BuildOp, Driver, RangeProbe};
pub use trace::join_recipe;

use std::sync::Arc;

use nal::eval::{EvalCtx, EvalError, EvalResult};
use nal::{NodeRef, Value};
use xmldb::{Catalog, PathPattern, PatternStep};
use xpath::{Axis, NameTest, Path};

use crate::plan::PhysPlan;

/// Convert a structural path into its index-side pattern form. Total:
/// every axis/test combination is representable (resolvability is
/// checked by the index at lookup time).
pub fn pattern_of(path: &Path) -> PathPattern {
    let steps = path
        .steps
        .iter()
        .map(|s| {
            let name = match &s.test {
                NameTest::Any => None,
                NameTest::Name(n) => Some(n.clone()),
            };
            match s.axis {
                Axis::Child => PatternStep::Child(name),
                Axis::Descendant => PatternStep::Descendant(name),
                Axis::Attribute => PatternStep::Attribute(name),
            }
        })
        .collect();
    PathPattern::new(steps)
}

/// The value-index probe key of an attribute value — the exact mirror of
/// [`crate::key::KeyVal::from_value`], so index probes and hash-bucket
/// lookups agree on every input (including the deliberate misses: a
/// numeric probe never equals a string build key, and NaN / `-0.0`
/// canonicalize identically on every access path).
pub fn probe_key_of(v: &Value, catalog: &Catalog) -> xmldb::ValueKey {
    use xmldb::ValueKey;
    match v.atomize(catalog) {
        Value::Null => ValueKey::Null,
        Value::Bool(b) => ValueKey::Bool(b),
        Value::Int(i) => ValueKey::num(i as f64),
        Value::Dec(d) => ValueKey::num(d.0),
        Value::Str(s) => ValueKey::Str(s.to_string()),
        other => ValueKey::Other(format!("{other}")),
    }
}

// ---------------------------------------------------------------------
// Plan revalidation (the plan-cache re-resolution surface)
// ---------------------------------------------------------------------

/// One access path embedded in a compiled plan: a doc-rooted index scan
/// or an index-backed quantifier join's recipe.
pub enum AccessPathRef<'p> {
    /// A [`PhysPlan::IndexScan`]'s document and pattern.
    Scan {
        /// Document URI the scan resolves through the catalog.
        uri: &'p str,
        /// The scanned pattern.
        pattern: &'p PathPattern,
    },
    /// A [`PhysPlan::IndexJoin`]'s recipe.
    Join(&'p AccessRecipe),
}

/// Visit every access path embedded anywhere in `plan`, in plan order.
pub fn for_each_access_path<'p>(plan: &'p PhysPlan, f: &mut impl FnMut(AccessPathRef<'p>)) {
    match plan {
        PhysPlan::Singleton
        | PhysPlan::Literal(_)
        | PhysPlan::AttrRel(_)
        | PhysPlan::MorselFeed => {}
        // A parallel segment embeds access paths on both sides: the
        // serially-executed source and the worker-side stage pipeline
        // (index scans resolved once per segment, index joins probed per
        // morsel tuple). Cached parallel plans revalidate exactly like
        // their serial originals.
        PhysPlan::Parallel { source, stages } => {
            for_each_access_path(source, f);
            for_each_access_path(stages, f);
        }
        PhysPlan::IndexScan {
            input,
            uri,
            pattern,
            ..
        } => {
            f(AccessPathRef::Scan { uri, pattern });
            for_each_access_path(input, f);
        }
        PhysPlan::IndexJoin { left, recipe } => {
            f(AccessPathRef::Join(recipe));
            for_each_access_path(left, f);
        }
        PhysPlan::Select { input, .. }
        | PhysPlan::Project { input, .. }
        | PhysPlan::Map { input, .. }
        | PhysPlan::HashGroupUnary { input, .. }
        | PhysPlan::ThetaGroupUnary { input, .. }
        | PhysPlan::Unnest { input, .. }
        | PhysPlan::UnnestMap { input, .. }
        | PhysPlan::XiSimple { input, .. }
        | PhysPlan::XiGroup { input, .. } => for_each_access_path(input, f),
        PhysPlan::Cross { left, right }
        | PhysPlan::HashJoin { left, right, .. }
        | PhysPlan::LoopJoin { left, right, .. }
        | PhysPlan::HashGroupBinary { left, right, .. }
        | PhysPlan::ThetaGroupBinary { left, right, .. } => {
            for_each_access_path(left, f);
            for_each_access_path(right, f);
        }
    }
}

/// Re-validate every access path of a compiled plan against the
/// catalog's *current* state — the plan-cache counterpart of the
/// stale-recipe check in [`IndexJoinAccess::resolve`].
///
/// Recipes are declarative: execution resolves their backing indexes
/// freshly every run, so a plan compiled before a document update stays
/// *correct* as long as each referenced pattern still resolves. This
/// walk performs exactly the resolutions execution would (path-index
/// lookup for scans, value/composite index for join recipes, building
/// lazily as needed) and reports the first one that no longer does —
/// e.g. after a URI was re-registered with structurally different
/// content. On `Ok(n)`, the plan's `n` access paths are all serviceable
/// at the current epochs and the cached plan can be re-used without
/// re-planning; on `Err`, the caller should recompile.
pub fn revalidate_plan(plan: &PhysPlan, catalog: &Catalog) -> Result<usize, String> {
    let mut checked = 0usize;
    let mut failure: Option<String> = None;
    for_each_access_path(plan, &mut |ap| {
        if failure.is_some() {
            return;
        }
        checked += 1;
        let (uri, outcome) = match ap {
            AccessPathRef::Scan { uri, pattern } => {
                let ok = catalog
                    .by_uri(uri)
                    .map(|id| catalog.path_index(id).lookup(pattern).is_some())
                    .unwrap_or(false);
                (uri, ok.then_some(()).ok_or(pattern.to_string()))
            }
            AccessPathRef::Join(recipe) => {
                let ok = catalog
                    .by_uri(&recipe.uri)
                    .is_some_and(|id| match &recipe.driver {
                        Driver::Composite { spec, .. } => {
                            catalog.composite_index(id, spec).is_some()
                        }
                        _ => catalog.value_index(id, &recipe.pattern).is_some(),
                    });
                (
                    recipe.uri.as_str(),
                    ok.then_some(()).ok_or(recipe.pattern.to_string()),
                )
            }
        };
        if let Err(pattern) = outcome {
            failure = Some(format!(
                "access path `{pattern}` over `{uri}` no longer resolves"
            ));
        }
    });
    match failure {
        Some(msg) => Err(msg),
        None => Ok(checked),
    }
}

// ---------------------------------------------------------------------
// Runtime access
// ---------------------------------------------------------------------

/// Resolve `uri` to its catalog id, or a standard evaluation error.
pub(crate) fn doc_id_of(uri: &str, ctx: &EvalCtx<'_>) -> EvalResult<xmldb::DocId> {
    ctx.catalog
        .by_uri(uri)
        .ok_or_else(|| EvalError::new(format!("unknown document `{uri}`")))
}

/// The item sequence an [`PhysPlan::IndexScan`] fans out: the pattern's
/// nodes in document order, or (with `distinct`) their first-occurrence
/// distinct atomized values — exactly what the replaced Υ subscript
/// produced, without touching the document tree.
pub(crate) fn scan_items(
    uri: &str,
    pattern: &PathPattern,
    distinct: bool,
    ctx: &mut EvalCtx<'_>,
) -> EvalResult<Vec<Value>> {
    let id = doc_id_of(uri, ctx)?;
    let pidx = ctx.catalog.path_index(id);
    ctx.metrics.index_lookups += 1;
    let nodes = pidx.lookup(pattern).ok_or_else(|| {
        EvalError::new(format!(
            "pattern `{pattern}` is not resolvable by the path index"
        ))
    })?;
    if !nodes.is_empty() {
        ctx.metrics.index_hits += 1;
    }
    if distinct {
        let doc = ctx.catalog.doc(id).clone();
        let values: Vec<Value> = nodes
            .into_iter()
            .map(|n| Value::str(doc.string_value(n)))
            .collect();
        Ok(nal::sequence::dedup_first_occurrence(&values))
    } else {
        Ok(nodes
            .into_iter()
            .map(|node| Value::Node(NodeRef { doc: id, node }))
            .collect())
    }
}

// ---------------------------------------------------------------------
// The rewrite pass
// ---------------------------------------------------------------------

/// Rewrite a compiled plan to use index-backed access paths wherever the
/// conversion is provably output-preserving. `catalog` gates conversions
/// on the referenced document actually being registered.
pub fn apply_indexes(plan: PhysPlan, catalog: &Catalog) -> PhysPlan {
    // Try a conversion at this node first (the tracers inspect the
    // *unconverted* children), then recurse.
    let plan = try_convert(plan, catalog);
    map_children(plan, &mut |child| apply_indexes(child, catalog))
}

fn try_convert(plan: PhysPlan, catalog: &Catalog) -> PhysPlan {
    match plan {
        PhysPlan::UnnestMap { input, attr, value } => {
            match trace::doc_rooted_path(&value, &input, false) {
                Some((uri, path, distinct)) if trace::scan_convertible(&uri, &path, catalog) => {
                    PhysPlan::IndexScan {
                        input,
                        attr,
                        uri,
                        pattern: pattern_of(&path),
                        distinct,
                    }
                }
                _ => PhysPlan::UnnestMap { input, attr, value },
            }
        }
        PhysPlan::HashJoin { .. } | PhysPlan::LoopJoin { .. } => {
            match join_recipe(&plan, catalog) {
                Some(recipe) => {
                    let left = match plan {
                        PhysPlan::HashJoin { left, .. } | PhysPlan::LoopJoin { left, .. } => left,
                        _ => unreachable!("matched above"),
                    };
                    PhysPlan::IndexJoin {
                        left,
                        recipe: Arc::new(recipe),
                    }
                }
                None => plan,
            }
        }
        other => other,
    }
}

/// Rebuild a plan with every direct child mapped through `f`.
pub(crate) fn map_children(plan: PhysPlan, f: &mut impl FnMut(PhysPlan) -> PhysPlan) -> PhysPlan {
    let fb = |b: Box<PhysPlan>, f: &mut dyn FnMut(PhysPlan) -> PhysPlan| Box::new(f(*b));
    match plan {
        leaf @ (PhysPlan::Singleton
        | PhysPlan::Literal(_)
        | PhysPlan::AttrRel(_)
        | PhysPlan::MorselFeed) => leaf,
        PhysPlan::Parallel { source, stages } => PhysPlan::Parallel {
            source: fb(source, f),
            stages: fb(stages, f),
        },
        PhysPlan::Select { input, pred } => PhysPlan::Select {
            input: fb(input, f),
            pred,
        },
        PhysPlan::Project { input, op } => PhysPlan::Project {
            input: fb(input, f),
            op,
        },
        PhysPlan::Map { input, attr, value } => PhysPlan::Map {
            input: fb(input, f),
            attr,
            value,
        },
        PhysPlan::Cross { left, right } => PhysPlan::Cross {
            left: fb(left, f),
            right: fb(right, f),
        },
        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            kind,
            pad,
        } => PhysPlan::HashJoin {
            left: fb(left, f),
            right: fb(right, f),
            left_keys,
            right_keys,
            residual,
            kind,
            pad,
        },
        PhysPlan::LoopJoin {
            left,
            right,
            pred,
            kind,
            pad,
        } => PhysPlan::LoopJoin {
            left: fb(left, f),
            right: fb(right, f),
            pred,
            kind,
            pad,
        },
        PhysPlan::HashGroupUnary {
            input,
            g,
            by,
            f: gf,
        } => PhysPlan::HashGroupUnary {
            input: fb(input, f),
            g,
            by,
            f: gf,
        },
        PhysPlan::ThetaGroupUnary {
            input,
            g,
            by,
            theta,
            f: gf,
        } => PhysPlan::ThetaGroupUnary {
            input: fb(input, f),
            g,
            by,
            theta,
            f: gf,
        },
        PhysPlan::HashGroupBinary {
            left,
            right,
            g,
            left_on,
            right_on,
            f: gf,
        } => PhysPlan::HashGroupBinary {
            left: fb(left, f),
            right: fb(right, f),
            g,
            left_on,
            right_on,
            f: gf,
        },
        PhysPlan::ThetaGroupBinary {
            left,
            right,
            g,
            left_on,
            theta,
            right_on,
            f: gf,
        } => PhysPlan::ThetaGroupBinary {
            left: fb(left, f),
            right: fb(right, f),
            g,
            left_on,
            theta,
            right_on,
            f: gf,
        },
        PhysPlan::Unnest {
            input,
            attr,
            distinct,
            preserve_empty,
            inner_attrs,
        } => PhysPlan::Unnest {
            input: fb(input, f),
            attr,
            distinct,
            preserve_empty,
            inner_attrs,
        },
        PhysPlan::UnnestMap { input, attr, value } => PhysPlan::UnnestMap {
            input: fb(input, f),
            attr,
            value,
        },
        PhysPlan::XiSimple { input, cmds } => PhysPlan::XiSimple {
            input: fb(input, f),
            cmds,
        },
        PhysPlan::XiGroup {
            input,
            by,
            head,
            body,
            tail,
        } => PhysPlan::XiGroup {
            input: fb(input, f),
            by,
            head,
            body,
            tail,
        },
        PhysPlan::IndexScan {
            input,
            attr,
            uri,
            pattern,
            distinct,
        } => PhysPlan::IndexScan {
            input: fb(input, f),
            attr,
            uri,
            pattern,
            distinct,
        },
        PhysPlan::IndexJoin { left, recipe } => PhysPlan::IndexJoin {
            left: fb(left, f),
            recipe,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::JoinKind;
    use nal::expr::builder::*;
    use nal::{CmpOp, Scalar, Sym};
    use xmldb::gen::{gen_bib, BibConfig};
    use xpath::parse_path;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register(gen_bib(&BibConfig {
            books: 10,
            authors_per_book: 2,
            ..BibConfig::default()
        }));
        cat
    }

    fn p(s: &str) -> Path {
        parse_path(s).unwrap()
    }

    /// Destructure the root as an index join and return its recipe.
    fn root_recipe(plan: &PhysPlan) -> &AccessRecipe {
        let PhysPlan::IndexJoin { recipe, .. } = plan else {
            panic!("expected an index join: {}", plan.explain());
        };
        recipe
    }

    #[test]
    fn doc_rooted_scan_converts() {
        let cat = catalog();
        let e = doc_scan("d", "bib.xml").unnest_map("b", Scalar::attr("d").path(p("//book")));
        let plan = apply_indexes(crate::compile(&e), &cat);
        let ex = plan.explain();
        assert!(ex.starts_with("IndexScan"), "{ex}");
    }

    #[test]
    fn distinct_scan_converts_with_flag() {
        let cat = catalog();
        let e = doc_scan("d", "bib.xml")
            .unnest_map("a", Scalar::attr("d").path(p("//author")).distinct());
        let plan = apply_indexes(crate::compile(&e), &cat);
        let PhysPlan::IndexScan { distinct, .. } = &plan else {
            panic!("{}", plan.explain());
        };
        assert!(distinct);
    }

    #[test]
    fn per_tuple_paths_do_not_convert() {
        let cat = catalog();
        // b is bound per tuple: the author step depends on the book.
        let e = doc_scan("d", "bib.xml")
            .unnest_map("b", Scalar::attr("d").path(p("//book")))
            .unnest_map("a", Scalar::attr("b").path(p("/author")));
        let plan = apply_indexes(crate::compile(&e), &cat);
        let PhysPlan::UnnestMap { input, .. } = &plan else {
            panic!("outer Υ must stay scan-based: {}", plan.explain());
        };
        assert!(
            matches!(input.as_ref(), PhysPlan::IndexScan { .. }),
            "inner doc-rooted Υ must convert: {}",
            plan.explain()
        );
    }

    #[test]
    fn unknown_documents_do_not_convert() {
        let cat = Catalog::new();
        let e = doc_scan("d", "bib.xml").unnest_map("b", Scalar::attr("d").path(p("//book")));
        let plan = apply_indexes(crate::compile(&e), &cat);
        assert!(matches!(plan, PhysPlan::UnnestMap { .. }));
    }

    #[test]
    fn semi_join_on_doc_scan_build_converts() {
        let cat = catalog();
        let probe =
            doc_scan("d1", "bib.xml").unnest_map("t1", Scalar::attr("d1").path(p("//book/title")));
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("t2", Scalar::attr("d2").path(p("//book/title")))
            .project(&["t2"]);
        let e = probe.semijoin(build, Scalar::attr_cmp(CmpOp::Eq, "t1", "t2"));
        let plan = apply_indexes(crate::compile(&e), &cat);
        let recipe = root_recipe(&plan);
        assert_eq!(recipe.kind, JoinKind::Semi);
        assert!(matches!(recipe.driver, Driver::Point { .. }));
        assert_eq!(recipe.pattern.key(), "//book/title");
    }

    #[test]
    fn composed_build_chain_converts() {
        let cat = catalog();
        let probe = doc_scan("d1", "bib.xml")
            .unnest_map("a1", Scalar::attr("d1").path(p("//author")).distinct());
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("b2", Scalar::attr("d2").path(p("//book")))
            .unnest_map("a2", Scalar::attr("b2").path(p("/author")))
            .project(&["a2"]);
        let e = probe.antijoin(build, Scalar::attr_cmp(CmpOp::Eq, "a1", "a2"));
        let plan = apply_indexes(crate::compile(&e), &cat);
        let recipe = root_recipe(&plan);
        assert_eq!(recipe.kind, JoinKind::Anti);
        assert_eq!(recipe.pattern.key(), "//book/author");
    }

    #[test]
    fn residual_over_reconstructed_ancestor_converts() {
        let cat = catalog();
        let probe =
            doc_scan("d1", "bib.xml").unnest_map("t1", Scalar::attr("d1").path(p("//book/title")));
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("b2", Scalar::attr("d2").path(p("//book")))
            .unnest_map("t2", Scalar::attr("b2").path(p("/title")));
        // The residual touches b2 — one fixed child step above the key,
        // so the index join reconstructs it by parent navigation.
        let pred = Scalar::attr_cmp(CmpOp::Eq, "t1", "t2").and(Scalar::cmp(
            CmpOp::Gt,
            Scalar::attr("b2").path(p("/@year")),
            Scalar::int(1990),
        ));
        let e = probe.semijoin(build, pred);
        let plan = apply_indexes(crate::compile(&e), &cat);
        let recipe = root_recipe(&plan);
        let AncestorMode::Fixed(seeds) = &recipe.ancestors else {
            panic!("fixed-depth chain expected");
        };
        assert!(
            seeds.iter().any(|(a, d)| *a == Sym::new("b2") && *d == 1),
            "b2 must be seeded as the key's parent"
        );
    }

    #[test]
    fn variable_depth_ancestor_reference_converts_to_matched_chain() {
        let cat = catalog();
        let probe =
            doc_scan("d1", "bib.xml").unnest_map("l1", Scalar::attr("d1").path(p("//last")));
        // l2 sits a *descendant* step below b2: depth is variable, and
        // the residual needs b2 — formerly a decline, now reconstructed
        // by matching the candidate's ancestor trail against //book.
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("b2", Scalar::attr("d2").path(p("//book")))
            .unnest_map("l2", Scalar::attr("b2").path(p("//last")));
        let pred = Scalar::attr_cmp(CmpOp::Eq, "l1", "l2").and(Scalar::cmp(
            CmpOp::Gt,
            Scalar::attr("b2").path(p("/@year")),
            Scalar::int(1990),
        ));
        let e = probe.semijoin(build, pred);
        let plan = apply_indexes(crate::compile(&e), &cat);
        let recipe = root_recipe(&plan);
        assert_eq!(recipe.pattern.key(), "//book//last");
        let AncestorMode::Matched { attrs, spec } = &recipe.ancestors else {
            panic!("matched chain expected: {:?}", recipe.ancestors);
        };
        assert_eq!(attrs, &[Sym::new("b2")]);
        assert_eq!(spec.base.key(), "//book");
        assert_eq!(spec.rels.len(), 1);
        assert_eq!(spec.rels[0].key(), "//last");
        // Without the reference the binding is simply dropped, as before.
        let probe2 =
            doc_scan("d1", "bib.xml").unnest_map("l1", Scalar::attr("d1").path(p("//last")));
        let build2 = doc_scan("d2", "bib.xml")
            .unnest_map("b2", Scalar::attr("d2").path(p("//book")))
            .unnest_map("l2", Scalar::attr("b2").path(p("//last")));
        let e = probe2.semijoin(build2, Scalar::attr_cmp(CmpOp::Eq, "l1", "l2"));
        let plan = apply_indexes(crate::compile(&e), &cat);
        let recipe = root_recipe(&plan);
        assert!(matches!(&recipe.ancestors, AncestorMode::Fixed(v) if v.is_empty()));
    }

    #[test]
    fn matched_chains_decline_non_replay_safe_residuals() {
        // Matched reconstruction iterates (candidate, assignment) while
        // the scan bucket iterates (ancestor, candidate) — with nested
        // same-name anchors those interleave differently, so a residual
        // that can error (arithmetic) must keep the hash join scanning.
        let cat = catalog();
        let probe =
            doc_scan("d1", "bib.xml").unnest_map("l1", Scalar::attr("d1").path(p("//last")));
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("b2", Scalar::attr("d2").path(p("//book")))
            .unnest_map("l2", Scalar::attr("b2").path(p("//last")));
        let pred = Scalar::attr_cmp(CmpOp::Eq, "l1", "l2").and(Scalar::cmp(
            CmpOp::Gt,
            Scalar::Arith(
                nal::ArithOp::Mul,
                Box::new(Scalar::attr("b2").path(p("/@year"))),
                Box::new(Scalar::int(1)),
            ),
            Scalar::int(0),
        ));
        let e = probe.semijoin(build, pred);
        let plan = apply_indexes(crate::compile(&e), &cat);
        assert!(
            matches!(plan, PhysPlan::HashJoin { .. }),
            "{}",
            plan.explain()
        );
    }

    #[test]
    fn multi_key_semi_join_converts_to_composite() {
        let cat = catalog();
        let probe = doc_scan("d1", "bib.xml")
            .unnest_map("b1", Scalar::attr("d1").path(p("//book")))
            .unnest_map("t1", Scalar::attr("b1").path(p("/title")))
            .unnest_map("y1", Scalar::attr("b1").path(p("/@year")));
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("b2", Scalar::attr("d2").path(p("//book")))
            .unnest_map("t2", Scalar::attr("b2").path(p("/title")))
            .unnest_map("y2", Scalar::attr("b2").path(p("/@year")));
        let pred =
            Scalar::attr_cmp(CmpOp::Eq, "t1", "t2").and(Scalar::attr_cmp(CmpOp::Eq, "y1", "y2"));
        let e = probe.semijoin(build, pred);
        let plan = apply_indexes(crate::compile(&e), &cat);
        let recipe = root_recipe(&plan);
        assert_eq!(plan.op_name(), "IndexCompositeSemiJoin");
        let Driver::Composite {
            probes,
            member_attrs,
            spec,
        } = &recipe.driver
        else {
            panic!("composite driver expected: {:?}", recipe.driver);
        };
        assert_eq!(probes, &[Sym::new("t1"), Sym::new("y1")]);
        assert_eq!(member_attrs, &[Sym::new("y2")]);
        assert_eq!(spec.primary.key(), "//book/title");
        assert_eq!(spec.members.len(), 1);
        assert_eq!(spec.members[0].levels, Some(1), "anchor is the book node");
        assert_eq!(spec.members[0].rel.key(), "/@year");
        assert_eq!(
            spec.key,
            vec![xmldb::KeyComponent::Primary, xmldb::KeyComponent::Member(0)]
        );
    }

    #[test]
    fn composite_declines_non_consecutive_or_unresolvable_members() {
        let cat = catalog();
        let probe = doc_scan("d1", "bib.xml")
            .unnest_map("t1", Scalar::attr("d1").path(p("//book/title")))
            .unnest_map("y1", Scalar::attr("d1").path(p("//book/@year")));
        // A member computed by χ (not a Υ binding) is not derivable from
        // the primary node at index-build time.
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("t2", Scalar::attr("d2").path(p("//book/title")))
            .map("y2", Scalar::int(7));
        let pred =
            Scalar::attr_cmp(CmpOp::Eq, "t1", "t2").and(Scalar::attr_cmp(CmpOp::Eq, "y1", "y2"));
        let e = probe.semijoin(build, pred);
        let plan = apply_indexes(crate::compile(&e), &cat);
        assert!(
            matches!(plan, PhysPlan::HashJoin { .. }),
            "{}",
            plan.explain()
        );
    }

    #[test]
    fn nested_expressions_in_build_filters_decline() {
        let cat = catalog();
        let probe =
            doc_scan("d1", "bib.xml").unnest_map("t1", Scalar::attr("d1").path(p("//book/title")));
        // A quantifier inside the build-side filter: not replayable.
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("t2", Scalar::attr("d2").path(p("//book/title")))
            .select(Scalar::Exists {
                var: Sym::new("x"),
                range: Box::new(nal::expr::builder::singleton().map("y", Scalar::int(1))),
                pred: Box::new(Scalar::Const(nal::Value::Bool(true))),
            })
            .project(&["t2"]);
        let e = probe.semijoin(build, Scalar::attr_cmp(CmpOp::Eq, "t1", "t2"));
        let plan = apply_indexes(crate::compile(&e), &cat);
        assert!(
            matches!(plan, PhysPlan::HashJoin { .. }),
            "{}",
            plan.explain()
        );
    }

    #[test]
    fn erroring_scalars_in_build_pipelines_decline() {
        let cat = catalog();
        let probe =
            doc_scan("d1", "bib.xml").unnest_map("t1", Scalar::attr("d1").path(p("//book/title")));
        // Arithmetic can error on non-numeric rows the index join would
        // never replay — the scan plan's failure must be preserved.
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("t2", Scalar::attr("d2").path(p("//book/title")))
            .select(Scalar::cmp(
                CmpOp::Gt,
                Scalar::Arith(
                    nal::ArithOp::Mul,
                    Box::new(Scalar::attr("t2")),
                    Box::new(Scalar::int(2)),
                ),
                Scalar::int(0),
            ))
            .project(&["t2"]);
        let e = probe.semijoin(build, Scalar::attr_cmp(CmpOp::Eq, "t1", "t2"));
        let plan = apply_indexes(crate::compile(&e), &cat);
        assert!(
            matches!(plan, PhysPlan::HashJoin { .. }),
            "{}",
            plan.explain()
        );
    }

    #[test]
    fn literal_build_sides_decline() {
        let cat = catalog();
        let probe =
            doc_scan("d1", "bib.xml").unnest_map("t1", Scalar::attr("d1").path(p("//book/title")));
        let build =
            nal::Expr::Literal(vec![nal::Tuple::singleton(Sym::new("t2"), Value::str("x"))])
                .project_syms(vec![Sym::new("t2")]);
        let e = probe.semijoin(build, Scalar::attr_cmp(CmpOp::Eq, "t1", "t2"));
        let plan = apply_indexes(crate::compile(&e), &cat);
        assert!(
            matches!(plan, PhysPlan::HashJoin { .. }),
            "{}",
            plan.explain()
        );
    }

    #[test]
    fn residual_over_build_attr_converts() {
        let cat = catalog();
        let probe = doc_scan("d1", "bib.xml")
            .unnest_map("b1", Scalar::attr("d1").path(p("//book")))
            .map("t1", Scalar::attr("b1").path(p("/title")));
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("b2", Scalar::attr("d2").path(p("//book")))
            .project(&["b2"]);
        let pred = Scalar::attr_cmp(CmpOp::Eq, "t1", "b2").and(Scalar::cmp(
            CmpOp::Gt,
            Scalar::attr("b2").path(p("/@year")),
            Scalar::int(1990),
        ));
        let e = probe.semijoin(build, pred);
        let plan = apply_indexes(crate::compile(&e), &cat);
        let recipe = root_recipe(&plan);
        assert!(recipe.residual.is_some());
    }

    #[test]
    fn filtered_build_side_converts_with_replayed_select() {
        let cat = catalog();
        let probe =
            doc_scan("d1", "bib.xml").unnest_map("t1", Scalar::attr("d1").path(p("//book/title")));
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("t2", Scalar::attr("d2").path(p("//book/title")))
            .select(Scalar::Call(
                nal::Func::Contains,
                vec![Scalar::attr("t2"), Scalar::string("a")],
            ))
            .project(&["t2"]);
        let e = probe.semijoin(build, Scalar::attr_cmp(CmpOp::Eq, "t1", "t2"));
        let plan = apply_indexes(crate::compile(&e), &cat);
        let recipe = root_recipe(&plan);
        assert!(
            recipe.ops.iter().any(|o| matches!(o, BuildOp::Select(_))),
            "the pushed filter must be replayed per candidate"
        );
    }

    #[test]
    fn inequality_semi_and_anti_joins_convert_to_range_joins() {
        let cat = catalog();
        for (anti, op) in [
            (false, CmpOp::Lt),
            (false, CmpOp::Le),
            (true, CmpOp::Gt),
            (true, CmpOp::Ge),
        ] {
            let probe = doc_scan("d1", "bib.xml")
                .unnest_map("t1", Scalar::attr("d1").path(p("//book/title")));
            let build = doc_scan("d2", "bib.xml")
                .unnest_map("t2", Scalar::attr("d2").path(p("//book/title")))
                .project(&["t2"]);
            let pred = Scalar::attr_cmp(op, "t1", "t2");
            let e = if anti {
                probe.antijoin(build, pred)
            } else {
                probe.semijoin(build, pred)
            };
            let plan = apply_indexes(crate::compile(&e), &cat);
            let recipe = root_recipe(&plan);
            let Driver::Range { eq_probe, ranges } = &recipe.driver else {
                panic!("{}", plan.explain());
            };
            assert_eq!(eq_probe, &None);
            assert_eq!(ranges.len(), 1);
            assert_eq!(ranges[0].op, op);
            assert_eq!(
                recipe.kind,
                if anti { JoinKind::Anti } else { JoinKind::Semi }
            );
            assert_eq!(recipe.pattern.key(), "//book/title");
        }
    }

    #[test]
    fn constant_bound_quantifier_joins_convert() {
        let cat = catalog();
        // `every $y in doc//book/@year satisfies $y > 1990` → anti join
        // with the negated constant bound, no probe-side attribute.
        let probe =
            doc_scan("d1", "bib.xml").unnest_map("t1", Scalar::attr("d1").path(p("//book/title")));
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("y2", Scalar::attr("d2").path(p("//book/@year")))
            .project(&["y2"]);
        let e = probe.antijoin(
            build,
            Scalar::cmp(CmpOp::Le, Scalar::attr("y2"), Scalar::int(1990)),
        );
        let plan = apply_indexes(crate::compile(&e), &cat);
        let recipe = root_recipe(&plan);
        let Driver::Range { ranges, .. } = &recipe.driver else {
            panic!("{}", plan.explain());
        };
        // `y2 <= 1990` normalizes (flipped) to `1990 >= key`.
        assert_eq!(ranges[0].op, CmpOp::Ge);
        assert!(matches!(ranges[0].side, Scalar::Const(_)));
        assert!(recipe.probe_invariant(), "constant bounds memoize");
    }

    #[test]
    fn band_predicates_on_the_hash_key_convert_to_range_joins() {
        let cat = catalog();
        let probe =
            doc_scan("d1", "bib.xml").unnest_map("t1", Scalar::attr("d1").path(p("//book/title")));
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("t2", Scalar::attr("d2").path(p("//book/title")))
            .project(&["t2"]);
        // Eq on the key plus an inequality on the same column: the hash
        // join's residual band becomes an index-side filter.
        let pred = Scalar::attr_cmp(CmpOp::Eq, "t1", "t2").and(Scalar::cmp(
            CmpOp::Gt,
            Scalar::attr("t2"),
            Scalar::string("B"),
        ));
        let e = probe.semijoin(build, pred);
        let plan = apply_indexes(crate::compile(&e), &cat);
        let recipe = root_recipe(&plan);
        let Driver::Range { eq_probe, ranges } = &recipe.driver else {
            panic!("{}", plan.explain());
        };
        assert_eq!(*eq_probe, Some(Sym::new("t1")));
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0].op, CmpOp::Lt, "t2 > \"B\" flips to \"B\" < key");
        assert!(recipe.residual.is_none(), "the band is the whole residual");
    }

    #[test]
    fn inequality_conversions_decline_unsafe_residuals() {
        let cat = catalog();
        // An arithmetic residual can error on rows a narrower candidate
        // set would skip — the loop join must keep scanning.
        let probe =
            doc_scan("d1", "bib.xml").unnest_map("t1", Scalar::attr("d1").path(p("//book/title")));
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("t2", Scalar::attr("d2").path(p("//book/title")))
            .project(&["t2"]);
        let pred = Scalar::attr_cmp(CmpOp::Lt, "t1", "t2").and(Scalar::cmp(
            CmpOp::Gt,
            Scalar::Arith(
                nal::ArithOp::Mul,
                Box::new(Scalar::attr("t2")),
                Box::new(Scalar::int(2)),
            ),
            Scalar::int(0),
        ));
        let e = probe.semijoin(build, pred);
        let plan = apply_indexes(crate::compile(&e), &cat);
        assert!(
            matches!(plan, PhysPlan::LoopJoin { .. }),
            "{}",
            plan.explain()
        );
        // `≠` alone offers no single key range: stays a loop join.
        let probe2 =
            doc_scan("d1", "bib.xml").unnest_map("t1", Scalar::attr("d1").path(p("//book/title")));
        let build2 = doc_scan("d2", "bib.xml")
            .unnest_map("t2", Scalar::attr("d2").path(p("//book/title")))
            .project(&["t2"]);
        let e = probe2.semijoin(build2, Scalar::attr_cmp(CmpOp::Ne, "t1", "t2"));
        let plan = apply_indexes(crate::compile(&e), &cat);
        assert!(
            matches!(plan, PhysPlan::LoopJoin { .. }),
            "{}",
            plan.explain()
        );
    }

    #[test]
    fn probe_keys_mirror_hash_keys() {
        let cat = catalog();
        use xmldb::ValueKey;
        assert_eq!(
            probe_key_of(&Value::str("x"), &cat),
            ValueKey::Str("x".into())
        );
        assert_eq!(probe_key_of(&Value::Int(2), &cat), ValueKey::num(2.0));
        assert_eq!(
            probe_key_of(&Value::Dec(nal::Dec(2.0)), &cat),
            ValueKey::num(2.0)
        );
        assert_eq!(probe_key_of(&Value::Null, &cat), ValueKey::Null);
        assert!(!probe_key_of(&Value::Null, &cat).matchable());
    }

    #[test]
    fn pattern_conversion_roundtrips_display() {
        for s in ["//book/title", "/bib/book/@year", "//author"] {
            assert_eq!(pattern_of(&p(s)).key(), s);
        }
    }
}
