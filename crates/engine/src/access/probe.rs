//! Recipe execution: the runtime side of the access-path IR.
//!
//! [`IndexJoinAccess`] resolves an [`AccessRecipe`] against the catalog
//! once per join and then answers each probe tuple. **Both executors**
//! call the same [`IndexJoinAccess::probe_matches`], so probe semantics
//! and `index_lookups`/`index_hits` accounting are identical by
//! construction (the streaming executor additionally counts
//! `probe_tuples` for examined candidates, matching where the scan-based
//! join cursors track it; the materializing executor leaves it 0 for
//! every join kind).

use std::ops::Bound;
use std::sync::Arc;

use nal::eval::scalar::{eval_scalar, truthy};
use nal::eval::{EvalCtx, EvalError, EvalResult};
use nal::{Sym, Tuple, Value};
use xmldb::{CompositeValueIndex, ValueIndex, ValueKey};

use crate::exec::scoped;

use super::recipe::{AccessRecipe, AncestorMode, BuildOp, Driver};
use super::{doc_id_of, probe_key_of};

/// Resolved runtime state of one index-backed join: the document id and
/// the (composite) value index the recipe's driver probes.
pub struct IndexJoinAccess {
    doc: xmldb::DocId,
    vindex: Option<Arc<ValueIndex>>,
    cindex: Option<Arc<CompositeValueIndex>>,
}

impl IndexJoinAccess {
    /// Resolve the recipe's index through the catalog (building it
    /// lazily on first use).
    ///
    /// Recipes are declarative, so one compiled before a document
    /// update is still *correct* — the indexes resolved here are the
    /// delta-maintained (or lazily rebuilt) current ones. The recipe's
    /// epoch stamp is re-validated against the document's: when the
    /// document has advanced and the pattern no longer resolves (e.g.
    /// the URI was re-registered with structurally different content),
    /// the failure is reported as recipe staleness rather than as an
    /// unexplained resolution error.
    pub fn resolve(recipe: &AccessRecipe, ctx: &EvalCtx<'_>) -> EvalResult<IndexJoinAccess> {
        let doc = doc_id_of(&recipe.uri, ctx)?;
        let stale = ctx.catalog.epoch(doc) != recipe.epoch;
        let unresolvable = |what: &str| {
            if stale {
                EvalError::new(format!(
                    "stale access recipe: document `{}` was updated since the plan \
                     was compiled and {what} `{}` no longer resolves — recompile the plan",
                    recipe.uri, recipe.pattern
                ))
            } else {
                EvalError::new(format!(
                    "{what} `{}` is not index-resolvable",
                    recipe.pattern
                ))
            }
        };
        let (vindex, cindex) = match &recipe.driver {
            Driver::Composite { spec, .. } => {
                let idx = ctx
                    .catalog
                    .composite_index(doc, spec)
                    .ok_or_else(|| unresolvable("composite pattern"))?;
                (None, Some(idx))
            }
            _ => {
                let idx = ctx
                    .catalog
                    .value_index(doc, &recipe.pattern)
                    .ok_or_else(|| unresolvable("pattern"))?;
                (Some(idx), None)
            }
        };
        Ok(IndexJoinAccess {
            doc,
            vindex,
            cindex,
        })
    }

    /// Answer one probe tuple: does any build row reconstructed from the
    /// recipe's candidate entries match (pass the replayed pipeline and
    /// the residual)?
    ///
    /// Build rows reconstruct candidate by candidate in document order —
    /// the bucket order of the replaced hash join — so the first
    /// deciding row is the row the scan probe would have stopped at.
    pub fn probe_matches(
        &self,
        recipe: &AccessRecipe,
        lt: &Tuple,
        count_probes: bool,
        env: &Tuple,
        ctx: &mut EvalCtx<'_>,
    ) -> EvalResult<bool> {
        match &recipe.driver {
            Driver::Point { probe } => {
                let Some(v) = lt.get(*probe) else {
                    return Ok(false);
                };
                ctx.metrics.index_lookups += 1;
                let key = probe_key_of(v, ctx.catalog);
                let candidates = self.vindex.as_ref().expect("point driver").get(&key);
                if candidates.is_empty() {
                    return Ok(false);
                }
                ctx.metrics.index_hits += 1;
                self.decide_from_candidates(recipe, lt, candidates, count_probes, env, ctx)
            }
            Driver::Composite { probes, .. } => {
                // The composite probe key mirrors the hash operators'
                // composite `key_of`: every component must be present
                // and matchable (a NULL or NaN component matches
                // nothing), and component types stay typed — a numeric
                // probe never equals a string build key.
                let mut key: Vec<ValueKey> = Vec::with_capacity(probes.len());
                for p in probes {
                    let Some(v) = lt.get(*p) else {
                        return Ok(false);
                    };
                    let k = probe_key_of(v, ctx.catalog);
                    if !k.matchable() {
                        return Ok(false);
                    }
                    key.push(k);
                }
                ctx.metrics.index_lookups += 1;
                let entries = self.cindex.as_ref().expect("composite driver").get(&key);
                if entries.is_empty() {
                    return Ok(false);
                }
                ctx.metrics.index_hits += 1;
                if !recipe.replays_rows() {
                    if count_probes {
                        ctx.metrics.probe_tuples += 1;
                    }
                    return Ok(true);
                }
                for entry in entries {
                    if self.candidate_matches(
                        recipe,
                        lt,
                        entry.primary,
                        &entry.members,
                        count_probes,
                        env,
                        ctx,
                    )? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Driver::Range { eq_probe, ranges } => {
                self.range_probe_matches(recipe, lt, *eq_probe, ranges, count_probes, env, ctx)
            }
        }
    }

    /// One **range** probe over the ordered key space: evaluate every
    /// conjunct's probe side once, seek the value index for candidate
    /// nodes, filter them by the remaining conjuncts (via
    /// [`nal::cmp_general`] against the candidate node — exactly the
    /// comparison the scan plan's predicate would run), and decide from
    /// the survivors like an equality probe.
    ///
    /// With `eq_probe` set (band conversions), the typed bucket lookup
    /// supplies the candidates and every range conjunct filters. Without
    /// it, the first conjunct whose probe key is a string or number
    /// drives a [`xmldb::ValueIndex::range`] seek (postings already
    /// merged into document order); a NULL/NaN side decides the tuple
    /// outright (those values satisfy no comparison); and if no side is
    /// rangeable (sequences, booleans), every indexed key is examined —
    /// still without ever executing the build side.
    #[allow(clippy::too_many_arguments)]
    fn range_probe_matches(
        &self,
        recipe: &AccessRecipe,
        lt: &Tuple,
        eq_probe: Option<Sym>,
        ranges: &[super::recipe::RangeProbe],
        count_probes: bool,
        env: &Tuple,
        ctx: &mut EvalCtx<'_>,
    ) -> EvalResult<bool> {
        let vindex = self.vindex.as_ref().expect("range driver");
        // The probe sides are pure and replay-safe by conversion; the
        // loop join evaluated them once per candidate row, so evaluating
        // them once per probe tuple is unobservable.
        let mut sides: Vec<(Value, nal::CmpOp)> = Vec::with_capacity(ranges.len());
        for rp in ranges {
            sides.push((eval_scalar(&rp.side, &scoped(env, lt), ctx)?, rp.op));
        }
        // Non-driving conjuncts filter at the node level — a candidate's
        // atomized value is its index key, so this is the scan plan's
        // predicate conjunct verbatim.
        let catalog = ctx.catalog;
        let doc = self.doc;
        let passes = |node: xmldb::NodeId, skip: Option<usize>| {
            sides.iter().enumerate().all(|(i, (v, op))| {
                Some(i) == skip
                    || nal::cmp_general(*op, v, &Value::Node(nal::NodeRef { doc, node }), catalog)
            })
        };
        // Fast path: no pipeline, no residual — existence alone decides,
        // so the key window streams lazily and stops at the first
        // passing candidate (the range analogue of the hash probe's
        // first-bucket-row short-circuit).
        let fast = !recipe.replays_rows();
        let candidates: Vec<xmldb::NodeId> = if let Some(p) = eq_probe {
            let Some(v) = lt.get(p) else {
                return Ok(false);
            };
            ctx.metrics.index_lookups += 1;
            let key = probe_key_of(v, ctx.catalog);
            let posting = vindex.get(&key);
            if fast {
                let found = posting.iter().any(|&n| passes(n, None));
                if found {
                    ctx.metrics.index_hits += 1;
                    if count_probes {
                        ctx.metrics.probe_tuples += 1;
                    }
                }
                return Ok(found);
            }
            posting
                .iter()
                .copied()
                .filter(|&n| passes(n, None))
                .collect()
        } else {
            let mut driver: Option<usize> = None;
            let mut keys: Vec<ValueKey> = Vec::with_capacity(sides.len());
            for (i, (v, _)) in sides.iter().enumerate() {
                let k = probe_key_of(v, ctx.catalog);
                if matches!(k, ValueKey::Null) {
                    // NULL (and NaN, which canonicalizes to NULL)
                    // satisfies no comparison: the conjunction is false
                    // for every build row.
                    return Ok(false);
                }
                if driver.is_none() && matches!(k, ValueKey::Num(_) | ValueKey::Str(_)) {
                    driver = Some(i);
                }
                keys.push(k);
            }
            // The first string/numeric side drives the index seek; if no
            // side is rangeable (sequences, booleans), every indexed key
            // is examined — still without executing the build side.
            let (lo, hi) = match driver {
                Some(i) => {
                    let key = &keys[i];
                    match sides[i].1 {
                        nal::CmpOp::Eq => (Bound::Included(key), Bound::Included(key)),
                        nal::CmpOp::Lt => (Bound::Excluded(key), Bound::Unbounded),
                        nal::CmpOp::Le => (Bound::Included(key), Bound::Unbounded),
                        nal::CmpOp::Gt => (Bound::Unbounded, Bound::Excluded(key)),
                        nal::CmpOp::Ge => (Bound::Unbounded, Bound::Included(key)),
                        nal::CmpOp::Ne => unreachable!("≠ never converts to a range probe"),
                    }
                }
                None => (Bound::Unbounded, Bound::Unbounded),
            };
            ctx.metrics.index_lookups += 1;
            if fast {
                let found = vindex.range_iter(lo, hi).any(|n| passes(n, driver));
                if found {
                    ctx.metrics.index_hits += 1;
                    if count_probes {
                        ctx.metrics.probe_tuples += 1;
                    }
                }
                return Ok(found);
            }
            // Residual/pipeline path: materialize the surviving window
            // and merge it back into document order, so rows reconstruct
            // in exactly the build order the scan join examined.
            let mut nodes: Vec<xmldb::NodeId> = vindex
                .range_iter(lo, hi)
                .filter(|&n| passes(n, driver))
                .collect();
            nodes.sort_unstable();
            nodes
        };
        if candidates.is_empty() {
            return Ok(false);
        }
        ctx.metrics.index_hits += 1;
        self.decide_from_candidates(recipe, lt, &candidates, count_probes, env, ctx)
    }

    /// Decide a probe from its candidate nodes (already restricted to
    /// the matching key set, in document order). Fast path: no pipeline,
    /// no residual — existence is decided by the candidate list alone
    /// (one candidate "examined", mirroring the scan probes' first-row
    /// short-circuit). Otherwise candidates reconstruct build rows in
    /// document order and the first passing row decides.
    fn decide_from_candidates(
        &self,
        recipe: &AccessRecipe,
        lt: &Tuple,
        candidates: &[xmldb::NodeId],
        count_probes: bool,
        env: &Tuple,
        ctx: &mut EvalCtx<'_>,
    ) -> EvalResult<bool> {
        if !recipe.replays_rows() {
            if count_probes {
                ctx.metrics.probe_tuples += 1;
            }
            return Ok(true);
        }
        for &node in candidates {
            if self.candidate_matches(recipe, lt, node, &[], count_probes, env, ctx)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Reconstruct one candidate's build rows and test them against the
    /// residual; `true` as soon as one passes.
    #[allow(clippy::too_many_arguments)]
    fn candidate_matches(
        &self,
        recipe: &AccessRecipe,
        lt: &Tuple,
        node: xmldb::NodeId,
        members: &[xmldb::NodeId],
        count_probes: bool,
        env: &Tuple,
        ctx: &mut EvalCtx<'_>,
    ) -> EvalResult<bool> {
        let rows = self.rebuild_rows(recipe, node, members, env, ctx)?;
        for row in rows {
            if count_probes {
                ctx.metrics.probe_tuples += 1;
            }
            match &recipe.residual {
                None => return Ok(true),
                Some(p) => {
                    let joined = lt.concat(&row);
                    if truthy(p, &scoped(env, &joined), ctx)? {
                        return Ok(true);
                    }
                }
            }
        }
        Ok(false)
    }

    /// Reconstruct the build rows of one candidate: seed the key column,
    /// the doc/ancestor bindings (one chain per fixed walk, or one per
    /// matched assignment for variable-depth chains), and any composite
    /// member columns, then replay the recorded pipeline.
    fn rebuild_rows(
        &self,
        recipe: &AccessRecipe,
        node: xmldb::NodeId,
        members: &[xmldb::NodeId],
        env: &Tuple,
        ctx: &mut EvalCtx<'_>,
    ) -> EvalResult<Vec<Tuple>> {
        let doc = self.doc;
        let tree = ctx.catalog.doc(doc).clone();
        let mut base: Vec<(Sym, Value)> = Vec::with_capacity(recipe.doc_seeds.len() + 2);
        for &a in &recipe.doc_seeds {
            base.push((
                a,
                Value::Node(nal::NodeRef {
                    doc,
                    node: xmldb::NodeId::DOCUMENT,
                }),
            ));
        }
        if let Driver::Composite { member_attrs, .. } = &recipe.driver {
            for (&a, &n) in member_attrs.iter().zip(members) {
                base.push((a, Value::Node(nal::NodeRef { doc, node: n })));
            }
        }
        // One seed tuple per reconstructed ancestor chain.
        let mut seed_tuples: Vec<Tuple> = Vec::new();
        match &recipe.ancestors {
            AncestorMode::Fixed(list) => {
                let mut pairs = base;
                for (a, levels) in list {
                    let mut cur = node;
                    for _ in 0..*levels {
                        cur = tree.parent(cur).ok_or_else(|| {
                            EvalError::new("index join: candidate ancestor above document root")
                        })?;
                    }
                    pairs.push((*a, Value::Node(nal::NodeRef { doc, node: cur })));
                }
                pairs.push((recipe.key_attr, Value::Node(nal::NodeRef { doc, node })));
                seed_tuples.push(Tuple::from_pairs(pairs));
            }
            AncestorMode::Matched { attrs, spec } => {
                // One assignment per consistent placement of the chain's
                // bindings on the candidate's ancestor path, in build-row
                // order (outermost binding varies slowest).
                for assignment in xmldb::index::matched_assignments(&tree, node, spec) {
                    let mut pairs = base.clone();
                    for (&a, &n) in attrs.iter().zip(&assignment) {
                        pairs.push((a, Value::Node(nal::NodeRef { doc, node: n })));
                    }
                    pairs.push((recipe.key_attr, Value::Node(nal::NodeRef { doc, node })));
                    seed_tuples.push(Tuple::from_pairs(pairs));
                }
            }
        }
        let mut out: Vec<Tuple> = Vec::new();
        for seed in seed_tuples {
            let mut rows = vec![seed];
            for op in &recipe.ops {
                match op {
                    BuildOp::Map(attr, value) => {
                        let mut next = Vec::with_capacity(rows.len());
                        for t in rows {
                            let v = eval_scalar(value, &scoped(env, &t), ctx)?;
                            next.push(t.extend(*attr, v));
                        }
                        rows = next;
                    }
                    BuildOp::UnnestMap(attr, value) => {
                        let mut next = Vec::new();
                        for t in rows {
                            let v = eval_scalar(value, &scoped(env, &t), ctx)?;
                            for item in v.as_item_seq() {
                                next.push(t.extend(*attr, item));
                            }
                        }
                        rows = next;
                    }
                    BuildOp::Select(pred) => {
                        let mut next = Vec::with_capacity(rows.len());
                        for t in rows {
                            if truthy(pred, &scoped(env, &t), ctx)? {
                                next.push(t);
                            }
                        }
                        rows = next;
                    }
                    BuildOp::Project(op) => {
                        rows = crate::exec::project_rows(&rows, op, ctx);
                    }
                }
                if rows.is_empty() {
                    break;
                }
            }
            out.extend(rows);
        }
        Ok(out)
    }
}
