//! The **access-path recipe IR**.
//!
//! An [`AccessRecipe`] is the single declarative description of one
//! index-backed quantifier join: how candidates are obtained per probe
//! tuple ([`Driver`]), which value-index node set backs the probe
//! (`uri` + `pattern`), how full build rows are reconstructed from a
//! candidate (doc seeds, [`AncestorMode`], composite member seeds), which
//! operators are replayed over the reconstruction (`ops`), and which
//! residual predicate filters the rows.
//!
//! The recipe is emitted once, by the tracer ([`super::trace`]), and then
//! consumed *unchanged* by three parties:
//!
//! * the materializing executor ([`crate::exec`]),
//! * the streaming executor ([`crate::pipeline::join`]) — both through
//!   the shared [`super::probe::IndexJoinAccess`], so probe semantics and
//!   `index_lookups`/`index_hits` accounting are identical by
//!   construction, and
//! * the cost model (`unnest::CostModel`), which prices a quantifier
//!   join as an index probe **iff** the tracer emits a recipe for it —
//!   the "never price what the engine declines" invariant holds because
//!   there is no second convertibility predicate to drift.

use nal::{ProjOp, Scalar, Sym};
use xmldb::{AncestorChainSpec, CompositeSpec, PathPattern};

use crate::plan::JoinKind;

/// One range/filter conjunct of a [`Driver::Range`] recipe: the
/// predicate `side θ key`, where `side` references only probe-side
/// attributes (or constants) and θ is `=`, `<`, `≤`, `>`, or `≥`.
#[derive(Clone, Debug)]
pub struct RangeProbe {
    /// The probe-side scalar (pure and replay-safe).
    pub side: Scalar,
    /// The comparison, oriented `side θ key`.
    pub op: nal::CmpOp,
}

/// How an index join obtains candidate entries for one probe tuple.
#[derive(Clone, Debug)]
pub enum Driver {
    /// Typed point probe: the left attribute's key against the value
    /// index — the hash semi/anti join replacement.
    Point {
        /// The probe tuple's key attribute.
        probe: Sym,
    },
    /// Lexicographic composite probe: the left attributes (in join-key
    /// order, parallel to `spec.key`) form a `Vec<ValueKey>` probed
    /// against the composite value index — the multi-key hash semi/anti
    /// join replacement. `member_attrs` (chain order, parallel to
    /// `spec.members`) are the build attributes each entry's member
    /// nodes seed during reconstruction.
    Composite {
        /// Probe-side key attributes, in join-key order.
        probes: Vec<Sym>,
        /// Build attributes seeded from each entry's member nodes.
        member_attrs: Vec<Sym>,
        /// The composite index's build spec.
        spec: CompositeSpec,
    },
    /// Ordered-key range seek: `side θ key` conjuncts drive a
    /// [`xmldb::ValueIndex::range`] probe (`eq_probe` anchors the typed
    /// bucket lookup in the hash-join band case; `None` for pure
    /// inequality loop-join conversions).
    Range {
        /// Typed bucket probe of the band case, if any.
        eq_probe: Option<Sym>,
        /// The range/filter conjuncts.
        ranges: Vec<RangeProbe>,
    },
}

/// How bindings between the document and the key column come back when a
/// candidate's build rows are reconstructed.
#[derive(Clone, Debug)]
pub enum AncestorMode {
    /// Every seeded binding sits at a fixed depth above the candidate:
    /// plain parent hops, one reconstructed chain per candidate.
    Fixed(Vec<(Sym, usize)>),
    /// At least one referenced binding sits at **variable depth** (a
    /// descendant step between it and the key): the candidate's ancestor
    /// trail is matched against the chain's relative patterns
    /// ([`xmldb::index::matched_assignments`]); one reconstructed chain
    /// per consistent assignment, in build-row order. `attrs` lists the
    /// bound attributes deepest-first, parallel to `spec.rels`.
    Matched {
        /// Bound attributes, deepest-first (parallel to `spec.rels`).
        attrs: Vec<Sym>,
        /// The chain's base and relative patterns.
        spec: AncestorChainSpec,
    },
}

/// One post-key build operator replayed per reconstructed chain. All
/// scalars are pure (no nested algebra), so replaying them cannot write
/// Ξ output.
#[derive(Clone, Debug)]
pub enum BuildOp {
    /// χ — bind the attribute to the scalar's value.
    Map(Sym, Scalar),
    /// Υ — fan out over the scalar's item sequence.
    UnnestMap(Sym, Scalar),
    /// σ — keep rows satisfying the predicate.
    Select(Scalar),
    /// Π — project/rename/drop columns.
    Project(ProjOp),
}

/// The complete recipe for one index-backed semi/anti quantifier join.
#[derive(Clone, Debug)]
pub struct AccessRecipe {
    /// `Semi` or `Anti` only.
    pub kind: JoinKind,
    /// How candidates are obtained per probe tuple.
    pub driver: Driver,
    /// URI of the document whose value index backs the probe.
    pub uri: String,
    /// The document's index epoch ([`xmldb::Catalog::epoch`]) at trace
    /// time. The recipe is declarative — its correctness does not decay
    /// under incremental index maintenance, because the probe runtime
    /// resolves indexes freshly per execution — but the runtime uses
    /// the stamp to *re-validate* a recipe whose document has advanced
    /// (deltas applied, or the URI re-registered with new content): a
    /// resolution failure is then reported as recipe staleness, not as
    /// a compile-time contradiction.
    pub epoch: u64,
    /// Absolute pattern of the (primary) key column — the node set the
    /// value index is built over.
    pub pattern: PathPattern,
    /// Build attribute the candidate (primary) node seeds.
    pub key_attr: Sym,
    /// `doc(uri)` bindings, seeded with the document node.
    pub doc_seeds: Vec<Sym>,
    /// Ancestor bindings between the document and the key.
    pub ancestors: AncestorMode,
    /// Post-key build operators, replayed in execution order.
    pub ops: Vec<BuildOp>,
    /// Join residual evaluated over each reconstructed row.
    pub residual: Option<Scalar>,
}

impl AccessRecipe {
    /// Operator name for explain output, by driver kind.
    pub fn op_name(&self) -> &'static str {
        let semi = matches!(self.kind, JoinKind::Semi);
        match &self.driver {
            Driver::Point { .. } => {
                if semi {
                    "IndexSemiJoin"
                } else {
                    "IndexAntiJoin"
                }
            }
            Driver::Composite { .. } => {
                if semi {
                    "IndexCompositeSemiJoin"
                } else {
                    "IndexCompositeAntiJoin"
                }
            }
            Driver::Range { .. } => {
                if semi {
                    "IndexRangeSemiJoin"
                } else {
                    "IndexRangeAntiJoin"
                }
            }
        }
    }

    /// Is the probe decision independent of the probe tuple? True for
    /// constant-bound range quantifiers (`every $x satisfies $x > 5`):
    /// no typed bucket probe, no residual, every range side closed.
    /// Both executors then probe once and reuse the answer — identically,
    /// so metric parity is preserved.
    pub fn probe_invariant(&self) -> bool {
        match &self.driver {
            Driver::Range { eq_probe, ranges } => {
                eq_probe.is_none()
                    && self.residual.is_none()
                    && ranges.iter().all(|rp| rp.side.free_attrs().is_empty())
            }
            _ => false,
        }
    }

    /// Does a probe reconstruct build rows (replayed pipeline or
    /// residual), or is bare candidate existence enough?
    pub fn replays_rows(&self) -> bool {
        !self.ops.is_empty() || self.residual.is_some()
    }

    /// Can reconstruction actually *reject* a candidate — a residual, a
    /// replayed filter, or a fan-out that may come back empty? When
    /// `false`, the first candidate always decides the probe (χ and Π
    /// replay 1:1), which is what existence-only cost pricing assumes.
    pub fn filters_rows(&self) -> bool {
        self.residual.is_some()
            || self
                .ops
                .iter()
                .any(|o| matches!(o, BuildOp::Select(_) | BuildOp::UnnestMap(_, _)))
    }

    /// The element tag of the key column — the pattern's last
    /// non-attribute step, which must be a *literal* name — for
    /// statistics lookups in the cost model. `None` for wildcard-final
    /// patterns: their statistics would describe a different node set,
    /// so pricing conservatively skips the index discount (exactly the
    /// old `final_name` behaviour).
    pub fn key_tag(&self) -> Option<&str> {
        self.pattern
            .steps
            .iter()
            .rev()
            .find(|s| !matches!(s, xmldb::PatternStep::Attribute(_)))
            .and_then(|s| match s {
                xmldb::PatternStep::Child(t) | xmldb::PatternStep::Descendant(t) => t.as_deref(),
                xmldb::PatternStep::Attribute(_) => None,
            })
    }
}
