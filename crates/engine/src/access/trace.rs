//! Recipe tracing: prove that a semi/anti join converts to an
//! index-backed access path, and emit the [`AccessRecipe`] describing it.
//!
//! [`join_recipe`] is the **single convertibility predicate** of the
//! system: [`super::apply_indexes`] converts exactly the joins it emits a
//! recipe for, and `unnest::CostModel` prices exactly the same set — by
//! calling this function, not by re-deriving the conditions.
//!
//! The tracing is *conservative by construction*: a recipe is emitted
//! only when the replaced subtree provably produces the same tuple
//! sequence — same nodes, same document order, same duplicate structure,
//! same residual-evaluation order — so every converted plan stays
//! byte-identical in rows and Ξ output to its scan-based original (the
//! differential suite `tests/index_vs_scan.rs` enforces this across the
//! paper's workloads and both executors). Error behaviour is guarded
//! too: build pipelines are replayed only for probed candidates, so
//! scalars that can *error* on unprobed rows (arithmetic, `decimal()`)
//! decline — see [`nal::Scalar::replay_safe`].

use std::collections::BTreeSet;

use nal::{CmpOp, Scalar, Sym};
use xmldb::{AncestorChainSpec, Catalog, CompositeSpec, KeyComponent, MemberSpec, PathPattern};
use xpath::{Axis, Path};

use crate::plan::{JoinKind, PhysPlan};

use super::pattern_of;
use super::recipe::{AccessRecipe, AncestorMode, BuildOp, Driver, RangeProbe};

/// Trace a compiled semi/anti join node to its access recipe, or `None`
/// when the join must keep scanning. Handles all three driver regimes:
///
/// * `HashJoin` with one key → band ([`Driver::Range`] with `eq_probe`)
///   or point ([`Driver::Point`]);
/// * `HashJoin` with several keys → composite ([`Driver::Composite`]);
/// * `LoopJoin` with rangeable inequality conjuncts → [`Driver::Range`].
///
/// The emitted recipe is stamped with the document's current index
/// epoch, so the probe runtime can tell a recipe compiled before an
/// update from a fresh one (see [`AccessRecipe::epoch`]).
///
/// # Examples
///
/// ```
/// use engine::{compile, join_recipe};
/// use nal::expr::builder::*;
/// use nal::{CmpOp, Scalar};
/// use xmldb::{parse_document, Catalog};
///
/// let mut cat = Catalog::new();
/// cat.register(parse_document("bib.xml", "<bib><book><title>T</title></book></bib>").unwrap());
/// let probe = doc_scan("d1", "bib.xml")
///     .unnest_map("t1", Scalar::attr("d1").path(xpath::parse_path("//book/title").unwrap()));
/// let build = doc_scan("d2", "bib.xml")
///     .unnest_map("t2", Scalar::attr("d2").path(xpath::parse_path("//book/title").unwrap()))
///     .project(&["t2"]);
/// let join = probe.semijoin(build, Scalar::attr_cmp(CmpOp::Eq, "t1", "t2"));
///
/// // The tracer is the single convertibility predicate: a recipe is
/// // emitted iff the engine converts (and the cost model prices) the join.
/// let recipe = join_recipe(&compile(&join), &cat).expect("convertible");
/// assert_eq!(recipe.pattern.key(), "//book/title");
/// assert_eq!(recipe.op_name(), "IndexSemiJoin");
/// ```
pub fn join_recipe(plan: &PhysPlan, catalog: &Catalog) -> Option<AccessRecipe> {
    let mut recipe = join_recipe_inner(plan, catalog)?;
    if let Some(id) = catalog.by_uri(&recipe.uri) {
        recipe.epoch = catalog.epoch(id);
    }
    Some(recipe)
}

fn join_recipe_inner(plan: &PhysPlan, catalog: &Catalog) -> Option<AccessRecipe> {
    match plan {
        PhysPlan::HashJoin {
            right,
            left_keys,
            right_keys,
            residual,
            kind,
            ..
        } if matches!(kind, JoinKind::Semi | JoinKind::Anti) => {
            if left_keys.len() == 1 {
                // Band case first: inequality residual conjuncts on the
                // join key column become index-side range filters —
                // checked once per candidate key, before any build row
                // is reconstructed — leaving only the non-key residual
                // to replay per row.
                if let Some((ranges, rest_residual, build)) =
                    trace_band_parts(right, right_keys[0], residual.as_ref())
                {
                    if scan_convertible(&build.uri, &build.path, catalog) {
                        return Some(build.into_recipe(
                            kind.clone(),
                            Driver::Range {
                                eq_probe: Some(left_keys[0]),
                                ranges,
                            },
                            rest_residual,
                        ));
                    }
                }
                let build = trace_build_parts(right, right_keys[0], residual.as_ref())?;
                if !scan_convertible(&build.uri, &build.path, catalog) {
                    return None;
                }
                Some(build.into_recipe(
                    kind.clone(),
                    Driver::Point {
                        probe: left_keys[0],
                    },
                    residual.clone(),
                ))
            } else {
                let build = trace_composite_parts(right, right_keys, residual.as_ref())?;
                if !scan_convertible(&build.uri, &build.path, catalog) {
                    return None;
                }
                Some(build.into_composite_recipe(
                    kind.clone(),
                    left_keys.to_vec(),
                    residual.clone(),
                ))
            }
        }
        PhysPlan::LoopJoin {
            right, pred, kind, ..
        } if matches!(kind, JoinKind::Semi | JoinKind::Anti) => {
            // Non-equi quantifier joins: inequality conjuncts against one
            // document path column probe the value index's ordered key
            // space instead of scanning the build per probe tuple.
            let (ranges, residual, build) = trace_range_parts(right, pred)?;
            if !scan_convertible(&build.uri, &build.path, catalog) {
                return None;
            }
            Some(build.into_recipe(
                kind.clone(),
                Driver::Range {
                    eq_probe: None,
                    ranges,
                },
                residual,
            ))
        }
        _ => None,
    }
}

/// Split a loop join's predicate into `side θ key` range conjuncts over
/// one build column plus a replay-safe residual, and trace that column
/// to build parts. The residual runs only for in-range candidates — the
/// loop join evaluated the whole predicate over *every* build row — so
/// every leftover conjunct must be replay-safe (pure and total) for the
/// skipped evaluations to be unobservable.
fn trace_range_parts(
    right: &PhysPlan,
    pred: &Scalar,
) -> Option<(Vec<RangeProbe>, Option<Scalar>, BuildParts)> {
    let r_attrs = phys_attrs(right)?;
    let mut key: Option<Sym> = None;
    let mut ranges: Vec<RangeProbe> = Vec::new();
    let mut rest: Vec<Scalar> = Vec::new();
    for c in pred.conjuncts() {
        match as_range_conjunct(c, &r_attrs) {
            Some((k, probe)) if key.is_none() || key == Some(k) => {
                key = Some(k);
                ranges.push(probe);
            }
            _ => rest.push(c.clone()),
        }
    }
    let key = key?;
    if !rest.iter().all(Scalar::replay_safe) {
        return None;
    }
    let residual = if rest.is_empty() {
        None
    } else {
        Some(Scalar::conjoin(rest))
    };
    let build = trace_build_parts(right, key, residual.as_ref())?;
    Some((ranges, residual, build))
}

/// The hash-join band variant of [`trace_range_parts`]: keep the equality
/// key as the typed bucket probe, peel inequality residual conjuncts
/// **on that same key column** into range filters, and require the
/// remaining residual to be replay-safe (the candidate set shrinks, so
/// skipped residual evaluations must be unobservable).
fn trace_band_parts(
    right: &PhysPlan,
    join_key: Sym,
    residual: Option<&Scalar>,
) -> Option<(Vec<RangeProbe>, Option<Scalar>, BuildParts)> {
    let residual = residual?;
    let r_attrs = phys_attrs(right)?;
    let mut ranges: Vec<RangeProbe> = Vec::new();
    let mut rest: Vec<Scalar> = Vec::new();
    for c in residual.conjuncts() {
        match as_range_conjunct(c, &r_attrs) {
            Some((k, probe)) if k == join_key => ranges.push(probe),
            _ => rest.push(c.clone()),
        }
    }
    if ranges.is_empty() || !rest.iter().all(Scalar::replay_safe) {
        return None;
    }
    let rest_residual = if rest.is_empty() {
        None
    } else {
        Some(Scalar::conjoin(rest))
    };
    let build = trace_build_parts(right, join_key, rest_residual.as_ref())?;
    Some((ranges, rest_residual, build))
}

/// Recognize `side θ key` (or `key θ side`, flipped) with θ ∈
/// {=, <, ≤, >, ≥}, where `key` is a bare build-side attribute and
/// `side` is a replay-safe scalar free of build-side attributes. `≠`
/// stays residual: its key set is two disjoint ranges, not one.
fn as_range_conjunct(c: &Scalar, r_attrs: &BTreeSet<Sym>) -> Option<(Sym, RangeProbe)> {
    let Scalar::Cmp(op, x, y) = c else {
        return None;
    };
    if matches!(op, CmpOp::Ne) {
        return None;
    }
    let as_key = |s: &Scalar| match s {
        Scalar::Attr(a) if r_attrs.contains(a) => Some(*a),
        _ => None,
    };
    let side_ok =
        |s: &Scalar| s.replay_safe() && s.free_attrs().iter().all(|a| !r_attrs.contains(a));
    if let Some(k) = as_key(y) {
        if side_ok(x) {
            return Some((
                k,
                RangeProbe {
                    side: (**x).clone(),
                    op: *op,
                },
            ));
        }
    }
    if let Some(k) = as_key(x) {
        if side_ok(y) {
            return Some((
                k,
                RangeProbe {
                    side: (**y).clone(),
                    op: op.flip(),
                },
            ));
        }
    }
    None
}

/// Output attribute set of a build-side plan, for the operator shapes
/// the build tracer accepts; `None` for anything whose schema this pass
/// does not model (such builds decline conversion anyway).
fn phys_attrs(plan: &PhysPlan) -> Option<BTreeSet<Sym>> {
    match plan {
        PhysPlan::Singleton => Some(BTreeSet::new()),
        PhysPlan::Map { input, attr, .. }
        | PhysPlan::UnnestMap { input, attr, .. }
        | PhysPlan::IndexScan { input, attr, .. } => {
            let mut a = phys_attrs(input)?;
            a.insert(*attr);
            Some(a)
        }
        PhysPlan::Select { input, .. } => phys_attrs(input),
        PhysPlan::Project { input, op } => {
            let a = phys_attrs(input)?;
            Some(match op {
                nal::ProjOp::Cols(cols) | nal::ProjOp::DistinctCols(cols) => {
                    cols.iter().copied().filter(|c| a.contains(c)).collect()
                }
                nal::ProjOp::Drop(cols) => a.into_iter().filter(|x| !cols.contains(x)).collect(),
                // Π_rename keeps unmatched columns; Π^D_rename projects
                // onto the renamed columns first.
                nal::ProjOp::Rename(pairs) => a
                    .into_iter()
                    .map(|x| {
                        pairs
                            .iter()
                            .find(|(_, old)| *old == x)
                            .map(|(new, _)| *new)
                            .unwrap_or(x)
                    })
                    .collect(),
                nal::ProjOp::DistinctRename(pairs) => pairs
                    .iter()
                    .filter(|(_, old)| a.contains(old))
                    .map(|(new, _)| *new)
                    .collect(),
            })
        }
        _ => None,
    }
}

/// A conversion is worthwhile and safe when the document is registered
/// and the pattern is resolvable by the path index.
pub(super) fn scan_convertible(uri: &str, path: &Path, catalog: &Catalog) -> bool {
    catalog.by_uri(uri).is_some() && pattern_of(path).is_resolvable()
}

/// Resolve an Υ subscript to a document-rooted path: `doc(uri)path`
/// directly, or `Attr(d)path` where `d` is bound to `doc(uri)` somewhere
/// below in the input chain. `distinct` tracks a `distinct-values`
/// wrapper. Returns `None` for anything else — in particular for paths
/// over per-tuple context nodes, which are genuinely tuple-dependent.
pub(super) fn doc_rooted_path(
    value: &Scalar,
    input: &PhysPlan,
    distinct: bool,
) -> Option<(String, Path, bool)> {
    match value {
        Scalar::DistinctItems(inner) => doc_rooted_path(inner, input, true),
        Scalar::Path(base, path) => match base.as_ref() {
            Scalar::Doc(uri) => Some((uri.clone(), path.clone(), distinct)),
            Scalar::Attr(d) => {
                let uri = resolve_doc_binding(input, *d)?;
                Some((uri, path.clone(), distinct))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Walk an input chain looking for the binding of `d`. Only a `Map` to
/// `doc(uri)` counts; any operator that could rebind or originate `d`
/// differently makes the walk decline.
fn resolve_doc_binding(plan: &PhysPlan, d: Sym) -> Option<String> {
    match plan {
        PhysPlan::Map { input, attr, value } => {
            if *attr == d {
                match value {
                    Scalar::Doc(uri) => Some(uri.clone()),
                    _ => None,
                }
            } else {
                resolve_doc_binding(input, d)
            }
        }
        PhysPlan::UnnestMap { input, attr, .. } | PhysPlan::IndexScan { input, attr, .. } => {
            if *attr == d {
                None
            } else {
                resolve_doc_binding(input, d)
            }
        }
        PhysPlan::Select { input, .. } => resolve_doc_binding(input, d),
        PhysPlan::Project { input, op } => {
            // The name must pass through unrenamed and undropped.
            let survives = match op {
                nal::ProjOp::Cols(cols) | nal::ProjOp::DistinctCols(cols) => cols.contains(&d),
                nal::ProjOp::Drop(cols) => !cols.contains(&d),
                nal::ProjOp::Rename(pairs) | nal::ProjOp::DistinctRename(pairs) => {
                    pairs.iter().all(|(new, _)| *new != d)
                }
            };
            if survives {
                resolve_doc_binding(input, d)
            } else {
                None
            }
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Build-side tracing
// ---------------------------------------------------------------------

/// What the tracer learned about a semi/anti join's build side: the key
/// column is the nodes of one document-rooted path (in document order,
/// never dropped before the key binding), plus everything needed to
/// rebuild the full build rows per candidate node.
pub(super) struct BuildParts {
    uri: String,
    /// Composite document-rooted path of the key column.
    path: Path,
    /// Attribute the key binding introduced (post-`Project` renames are
    /// replayed by the recorded ops, so this is the *binding* name).
    key_attr: Sym,
    doc_seeds: Vec<Sym>,
    ancestors: AncestorMode,
    /// Operators above the key binding, in execution order.
    ops: Vec<BuildOp>,
    /// Composite member seeds (set by [`trace_composite_parts`] only).
    composite: Option<(Vec<Sym>, CompositeSpec)>,
}

impl BuildParts {
    fn into_recipe(self, kind: JoinKind, driver: Driver, residual: Option<Scalar>) -> AccessRecipe {
        AccessRecipe {
            kind,
            driver,
            uri: self.uri,
            // Stamped by `join_recipe` once the document id is known.
            epoch: 0,
            pattern: pattern_of(&self.path),
            key_attr: self.key_attr,
            doc_seeds: self.doc_seeds,
            ancestors: self.ancestors,
            ops: self.ops,
            residual,
        }
    }

    /// [`Self::into_recipe`] for the composite driver, whose member
    /// seeds and index spec were collected during the build trace.
    fn into_composite_recipe(
        mut self,
        kind: JoinKind,
        probes: Vec<Sym>,
        residual: Option<Scalar>,
    ) -> AccessRecipe {
        let (member_attrs, spec) = self
            .composite
            .take()
            .expect("composite trace sets the spec");
        self.into_recipe(
            kind,
            Driver::Composite {
                probes,
                member_attrs,
                spec,
            },
            residual,
        )
    }
}

/// Prove that a semi/anti join's build side is an indexable document
/// path scan wrapped in replayable operators.
///
/// Walking down from the build root, the accepted shape is
///
/// ```text
/// (Project | Select | Map | UnnestMap)*      — the replayable pipeline
///   UnnestMap(key ← path over doc/ancestor)  — the key binding
///     [UnnestMap(ancestor ← …)]*             — ancestor chain
///       [Map(d ← doc(uri))]* over □          — the singleton seed
/// ```
///
/// with these conditions (each guards an equivalence the differential
/// suite would otherwise catch):
///
/// * pipeline scalars are pure (no nested algebra → no Ξ writes, no
///   correlated re-evaluation) and replay-safe (no eager errors on
///   never-probed rows),
/// * pipeline `Project`s keep the key column (renames are replayed;
///   distinct variants only as the topmost operator of a pipeline with
///   no residual, where dedup cannot change existence),
/// * every *referenced* ancestor binding between the document and the
///   key is reconstructable: by parent navigation when all relative
///   steps are child/attribute (fixed depth), or by ancestor-trail
///   pattern matching when a descendant step makes the depth variable
///   ([`AncestorMode::Matched`]); an **unreferenced** variable-depth
///   binding is dropped (its row multiplicity cannot change semi/anti
///   existence),
/// * the chain roots at `□`, so every key-path node occurs in exactly
///   one pre-pipeline row.
///
/// Anything else — selections below the key, joins, groupings, μ,
/// `rel(…)` — declines, and the join keeps scanning.
fn trace_build_parts(
    plan: &PhysPlan,
    join_key: Sym,
    residual: Option<&Scalar>,
) -> Option<BuildParts> {
    // Phase 1: peel the pipeline, tracking the key column's name down
    // through renames.
    let mut keys = [join_key];
    let (ops, stop) = peel_pipeline(plan, &mut keys, residual, true)?;
    let key = keys[0];
    let PhysPlan::UnnestMap {
        input: key_binding_input,
        value: key_binding_value,
        ..
    } = stop
    else {
        return None;
    };

    // Phase 2: resolve the key binding's subscript to a document-rooted
    // composite path, collecting the raw ancestor/doc chain.
    let distinct_key = matches!(key_binding_value, Scalar::DistinctItems(_));
    if distinct_key && (!ops.is_empty() || residual.is_some()) {
        // Distinct key values are atomized strings, not nodes; only the
        // bare existence probe is equivalent.
        return None;
    }
    let chain = resolve_key_chain(key_binding_value, key_binding_input)?;

    // Phase 3: reconstructability. The replayed ops and the residual run
    // over exactly the tuple shape the hash plan had, so errors and
    // shadowing replicate identically — the only question is how each
    // attribute bound below the key comes back from a candidate node.
    let mut referenced: BTreeSet<Sym> = BTreeSet::new();
    for op in &ops {
        match op {
            BuildOp::Map(_, v) | BuildOp::UnnestMap(_, v) => referenced.extend(v.free_attrs()),
            BuildOp::Select(p) => referenced.extend(p.free_attrs()),
            BuildOp::Project(_) => {}
        }
    }
    if let Some(r) = residual {
        referenced.extend(r.free_attrs());
    }
    let ancestors = resolve_ancestor_mode(&chain, &referenced)?;
    // Matched-chain reconstruction iterates (candidate, assignment)
    // while the scan bucket iterates (ancestor, candidate); when nested
    // same-name anchors hold duplicate key values those orders can
    // interleave differently, so the residual's evaluation order (and
    // count) is only provably unobservable when it is replay-safe —
    // pure and total. A non-replay-safe residual (arithmetic that can
    // error, nested algebra that can write Ξ) declines.
    if matches!(ancestors, AncestorMode::Matched { .. }) {
        if let Some(r) = residual {
            if !r.replay_safe() {
                return None;
            }
        }
    }
    // Bare distinct existence probe: the guard above only admits an
    // empty pipeline with no residual.
    debug_assert!(!distinct_key || ops.is_empty());
    Some(BuildParts {
        uri: chain.uri,
        path: chain.path,
        key_attr: key,
        doc_seeds: chain.doc_seeds,
        ancestors,
        ops,
        composite: None,
    })
}

/// The shared phase-1 peel of both build tracers: strip replay-safe
/// pipeline operators off the build root, tracking every key column's
/// binding name down through renames, until an Υ binding one of the
/// tracked keys is reached (the returned stop node). The recorded
/// pipeline comes back in execution order.
///
/// Distinct projections atomize and dedup the key values, so they are
/// accepted only with `allow_existence_distinct` and only as the
/// topmost operator of a pipeline with no residual — where dedup cannot
/// change existence and nothing downstream observes the re-typed
/// values. The composite tracer passes `false`: a deduped *pair* column
/// has no node-backed reconstruction.
fn peel_pipeline<'a>(
    plan: &'a PhysPlan,
    keys: &mut [Sym],
    residual: Option<&Scalar>,
    allow_existence_distinct: bool,
) -> Option<(Vec<BuildOp>, &'a PhysPlan)> {
    let mut ops_rev: Vec<BuildOp> = Vec::new();
    let mut cur = plan;
    loop {
        match cur {
            PhysPlan::Project { input, op } => {
                match op {
                    nal::ProjOp::Cols(cols) | nal::ProjOp::DistinctCols(cols) => {
                        if !keys.iter().all(|k| cols.contains(k)) {
                            return None;
                        }
                    }
                    nal::ProjOp::Drop(cols) => {
                        if keys.iter().any(|k| cols.contains(k)) {
                            return None;
                        }
                    }
                    nal::ProjOp::Rename(pairs) | nal::ProjOp::DistinctRename(pairs) => {
                        for k in keys.iter_mut() {
                            if let Some((_, old)) = pairs.iter().find(|(new, _)| new == k) {
                                *k = *old;
                            }
                        }
                    }
                }
                let is_distinct = matches!(
                    op,
                    nal::ProjOp::DistinctCols(_) | nal::ProjOp::DistinctRename(_)
                );
                if is_distinct
                    && !(allow_existence_distinct && ops_rev.is_empty() && residual.is_none())
                {
                    return None;
                }
                if !is_distinct {
                    ops_rev.push(BuildOp::Project(op.clone()));
                }
                cur = input;
            }
            PhysPlan::Select { input, pred } => {
                if !pred.replay_safe() {
                    return None;
                }
                ops_rev.push(BuildOp::Select(pred.clone()));
                cur = input;
            }
            PhysPlan::Map { input, attr, value } if !keys.contains(attr) => {
                if !value.replay_safe() {
                    return None;
                }
                ops_rev.push(BuildOp::Map(*attr, value.clone()));
                cur = input;
            }
            PhysPlan::UnnestMap { input, attr, value } if !keys.contains(attr) => {
                if !value.replay_safe() {
                    return None;
                }
                ops_rev.push(BuildOp::UnnestMap(*attr, value.clone()));
                cur = input;
            }
            PhysPlan::UnnestMap { .. } => break,
            _ => return None,
        }
    }
    Some((ops_rev.into_iter().rev().collect(), cur))
}

/// Cumulative fixed depth of each chain ancestor above the key,
/// nearest-key-first: the sum of the relative steps of every binding
/// between it and the key — defined only while all of them are child or
/// attribute steps (one parent hop each); a descendant step makes the
/// depth (and every deeper one's) variable.
fn fixed_depths(chain: &KeyChain) -> Vec<Option<usize>> {
    let mut depths: Vec<Option<usize>> = Vec::with_capacity(chain.ancestors.len());
    let mut cum = Some(0usize);
    for a in &chain.ancestors {
        let fixed = a
            .rel_above
            .steps
            .iter()
            .all(|s| matches!(s.axis, Axis::Child | Axis::Attribute));
        cum = match (cum, fixed) {
            (Some(c), true) => Some(c + a.rel_above.steps.len()),
            _ => None,
        };
        depths.push(cum);
    }
    depths
}

/// Decide how the chain's ancestor bindings reconstruct, given which
/// attributes the replayed ops/residual actually read.
fn resolve_ancestor_mode(chain: &KeyChain, referenced: &BTreeSet<Sym>) -> Option<AncestorMode> {
    let depths = fixed_depths(chain);
    let all_referenced_fixed = chain
        .ancestors
        .iter()
        .zip(&depths)
        .all(|(a, d)| d.is_some() || !referenced.contains(&a.attr));
    if all_referenced_fixed {
        // Plain parent hops. Fixed bindings are seeded whether referenced
        // or not (cheap and faithful); unreferenced variable bindings are
        // dropped — their multiplicity cannot change existence.
        let fixed = chain
            .ancestors
            .iter()
            .zip(&depths)
            .filter_map(|(a, d)| d.map(|levels| (a.attr, levels)))
            .collect();
        return Some(AncestorMode::Fixed(fixed));
    }
    // Variable-depth reconstruction: referenced bindings become matcher
    // links (unreferenced ones are composed away); the deepest referenced
    // binding anchors the match with its absolute pattern.
    let mut attrs: Vec<Sym> = Vec::new(); // nearest-key-first, reversed below
    let mut rels: Vec<PathPattern> = Vec::new();
    let mut base: Option<PathPattern> = None;
    let mut acc: Option<Path> = None; // composed path from the current binding up
    for a in &chain.ancestors {
        let composed = match acc.take() {
            None => a.rel_above.clone(),
            Some(upper) => a.rel_above.join(&upper),
        };
        if referenced.contains(&a.attr) {
            let rel = pattern_of(&composed);
            // Attribute steps are legal only at the very end of the
            // nearest-key link (an attribute-valued key node); anywhere
            // else the span matcher has no segment to consume.
            let attr_ok = rel.steps.iter().enumerate().all(|(i, s)| match s {
                xmldb::PatternStep::Attribute(_) => rels.is_empty() && i + 1 == rel.steps.len(),
                _ => true,
            });
            if !attr_ok || rel.steps.is_empty() {
                return None;
            }
            attrs.push(a.attr);
            rels.push(rel);
            base = Some(pattern_of(&a.abs_path));
            acc = None;
        } else {
            acc = Some(composed);
        }
    }
    let base = base?;
    if base
        .steps
        .iter()
        .any(|s| matches!(s, xmldb::PatternStep::Attribute(_)))
    {
        return None;
    }
    // Collected nearest-key-first; the matcher wants deepest-first.
    attrs.reverse();
    rels.reverse();
    Some(AncestorMode::Matched {
        attrs,
        spec: AncestorChainSpec { base, rels },
    })
}

// ---------------------------------------------------------------------
// Composite tracing
// ---------------------------------------------------------------------

/// Multi-key variant of the build trace: the keys must be bound by a run
/// of **consecutive** `Υ` operators directly under the replayable
/// pipeline — the deepest of them is the *primary* key column (its path
/// backs the composite index's node set), and every other key is a
/// *member* whose subscript is a structural path over the primary, one
/// of its fixed-depth ancestors, or the document — so member values can
/// be derived per primary node at index-build time, with no build-side
/// execution. The composite key order follows the join's key list.
fn trace_composite_parts(
    right: &PhysPlan,
    right_keys: &[Sym],
    residual: Option<&Scalar>,
) -> Option<BuildParts> {
    // Phase 1: peel the pipeline above the key run, tracking every key
    // column through renames (the shared peel declines distinct
    // projections outright here — deduped pairs are not node-backed).
    let mut keys: Vec<Sym> = right_keys.to_vec();
    let (ops, stop) = peel_pipeline(right, &mut keys, residual, false)?;
    let mut cur = stop;

    // Phase 2: the consecutive key-binding run, top-down. Each key must
    // be bound exactly once; the deepest binding is the primary.
    let mut run: Vec<(Sym, &Scalar)> = Vec::new();
    while let PhysPlan::UnnestMap { input, attr, value } = cur {
        if keys.contains(attr) && !run.iter().any(|(a, _)| a == attr) {
            run.push((*attr, value));
            cur = input;
        } else {
            break;
        }
    }
    if run.len() != keys.len() {
        return None;
    }
    let (primary_attr, primary_value) = run.pop().expect("len >= 2");
    if matches!(primary_value, Scalar::DistinctItems(_)) {
        return None;
    }
    let chain = resolve_key_chain(primary_value, cur)?;

    // Fixed depth of each chain ancestor above the primary (member
    // anchors must be parent-hoppable at index build time).
    let fixed_depth: Vec<(Sym, usize)> = chain
        .ancestors
        .iter()
        .zip(fixed_depths(&chain))
        .filter_map(|(a, d)| d.map(|levels| (a.attr, levels)))
        .collect();

    // Members in chain order (deepest-bound first = reverse of the
    // top-down run), each resolved against the primary's chain.
    run.reverse();
    let mut member_attrs: Vec<Sym> = Vec::new();
    let mut members: Vec<MemberSpec> = Vec::new();
    let mut anchor_attrs: Vec<Sym> = Vec::new();
    for (attr, value) in run {
        let Scalar::Path(base, path) = value else {
            return None;
        };
        if path.steps.is_empty() {
            return None;
        }
        let spec = match base.as_ref() {
            Scalar::Attr(v) if *v == primary_attr => MemberSpec {
                levels: Some(0),
                rel: pattern_of(path),
            },
            Scalar::Attr(v) => {
                if let Some(&(_, d)) = fixed_depth.iter().find(|(a, _)| a == v) {
                    anchor_attrs.push(*v);
                    MemberSpec {
                        levels: Some(d),
                        rel: pattern_of(path),
                    }
                } else if resolve_doc_binding(cur, *v).as_deref() == Some(chain.uri.as_str()) {
                    MemberSpec {
                        levels: None,
                        rel: pattern_of(path),
                    }
                } else {
                    return None;
                }
            }
            Scalar::Doc(uri) if *uri == chain.uri => MemberSpec {
                levels: None,
                rel: pattern_of(path),
            },
            _ => return None,
        };
        member_attrs.push(attr);
        members.push(spec);
    }

    // Key component order = the join's key list order.
    let key_components: Vec<KeyComponent> = keys
        .iter()
        .map(|k| {
            if *k == primary_attr {
                Some(KeyComponent::Primary)
            } else {
                member_attrs
                    .iter()
                    .position(|m| m == k)
                    .map(KeyComponent::Member)
            }
        })
        .collect::<Option<_>>()?;

    // Phase 3: reconstructability — referenced chain ancestors (by ops,
    // residual, or a member anchor) must all be fixed-depth; composite
    // does not combine with the variable-depth matcher.
    let mut referenced: BTreeSet<Sym> = anchor_attrs.iter().copied().collect();
    for op in &ops {
        match op {
            BuildOp::Map(_, v) | BuildOp::UnnestMap(_, v) => referenced.extend(v.free_attrs()),
            BuildOp::Select(p) => referenced.extend(p.free_attrs()),
            BuildOp::Project(_) => {}
        }
    }
    if let Some(r) = residual {
        referenced.extend(r.free_attrs());
    }
    // Member attributes are seeded from the composite entry itself.
    for m in &member_attrs {
        referenced.remove(m);
    }
    let ancestors = match resolve_ancestor_mode(&chain, &referenced)? {
        f @ AncestorMode::Fixed(_) => f,
        AncestorMode::Matched { .. } => return None,
    };

    let spec = CompositeSpec {
        primary: pattern_of(&chain.path),
        members,
        key: key_components,
    };
    Some(BuildParts {
        uri: chain.uri,
        path: chain.path,
        key_attr: primary_attr,
        doc_seeds: chain.doc_seeds,
        ancestors,
        ops,
        composite: Some((member_attrs, spec)),
    })
}

// ---------------------------------------------------------------------
// Key-chain resolution
// ---------------------------------------------------------------------

/// One binding discovered below the key while resolving its path,
/// nearest-key-first.
struct RawAncestor {
    attr: Sym,
    /// Relative path from this binding to the binding above it (the key
    /// for the first entry).
    rel_above: Path,
    /// Absolute path of this binding's own nodes.
    abs_path: Path,
}

struct KeyChain {
    uri: String,
    /// Composed absolute path of the key column.
    path: Path,
    doc_seeds: Vec<Sym>,
    /// Bindings below the key, nearest-key-first.
    ancestors: Vec<RawAncestor>,
}

/// Resolve the key binding's subscript down to `doc(uri)`, composing
/// relative paths and recording each intermediate binding's relative and
/// absolute position.
fn resolve_key_chain(value: &Scalar, input: &PhysPlan) -> Option<KeyChain> {
    match value {
        Scalar::DistinctItems(inner) => resolve_key_chain(inner, input),
        Scalar::Path(base, path) => match base.as_ref() {
            Scalar::Doc(uri) => singleton_seed_bindings(input).map(|doc_seeds| KeyChain {
                uri: uri.clone(),
                path: path.clone(),
                doc_seeds,
                ancestors: Vec::new(),
            }),
            Scalar::Attr(v) => {
                if let Some(uri) = resolve_doc_binding(input, *v) {
                    let mut doc_seeds = singleton_seed_bindings(input)?;
                    // `v` itself is one of the doc bindings; make sure it
                    // is present even if shadowed oddly.
                    if !doc_seeds.contains(v) {
                        doc_seeds.push(*v);
                    }
                    return Some(KeyChain {
                        uri,
                        path: path.clone(),
                        doc_seeds,
                        ancestors: Vec::new(),
                    });
                }
                // `v` must be bound by a directly nested Υ — the
                // ancestor chain of the key.
                let PhysPlan::UnnestMap {
                    input: deeper,
                    attr,
                    value: inner_value,
                } = input
                else {
                    return None;
                };
                if *attr != *v {
                    return None;
                }
                let inner = resolve_key_chain(inner_value, deeper)?;
                let mut ancestors = vec![RawAncestor {
                    attr: *v,
                    rel_above: path.clone(),
                    abs_path: inner.path.clone(),
                }];
                ancestors.extend(inner.ancestors);
                Some(KeyChain {
                    uri: inner.uri,
                    path: inner.path.join(path),
                    doc_seeds: inner.doc_seeds,
                    ancestors,
                })
            }
            _ => None,
        },
        _ => None,
    }
}

/// The doc-binding attributes of a `□`-rooted seed chain, or `None` if
/// the chain is anything else (which would change row multiplicities).
fn singleton_seed_bindings(plan: &PhysPlan) -> Option<Vec<Sym>> {
    match plan {
        PhysPlan::Singleton => Some(Vec::new()),
        PhysPlan::Map { input, attr, value } => {
            if !matches!(value, Scalar::Doc(_)) {
                return None;
            }
            let mut out = singleton_seed_bindings(input)?;
            out.push(*attr);
            Some(out)
        }
        _ => None,
    }
}
