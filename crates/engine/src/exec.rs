//! Plan execution.
//!
//! Operators are materializing (Vec in, Vec out) — the experiments all
//! run over memory-resident documents, matching the paper's setup where
//! the database cache holds the queried documents. Order preservation is
//! structural: every operator emits in left-input order; hash buckets
//! keep right-input insertion order, so hash joins produce exactly the
//! sequence the definitional nested loop would.

use std::borrow::Cow;
use std::collections::HashMap;

use nal::eval::scalar::{eval_scalar, truthy};
use nal::eval::{apply_groupfn, dedup_by_value, eval, xi, EvalCtx, EvalError, EvalResult};
use nal::{ProjOp, Seq, Sym, Tuple, Value};

use crate::key::{key_of, Key};
use crate::plan::{JoinKind, PhysPlan};

/// Evaluation scope of a tuple under an environment. Top-level plans run
/// with an empty environment, where `env.concat(t)` would just clone `t`
/// — borrow it instead so the hot σ/χ/Υ/⋈ loops allocate nothing extra.
pub(crate) fn scoped<'a>(env: &Tuple, t: &'a Tuple) -> Cow<'a, Tuple> {
    if env.is_empty() {
        Cow::Borrowed(t)
    } else {
        Cow::Owned(env.concat(t))
    }
}

/// Execute a plan under an environment (non-empty only for nested
/// evaluation contexts).
pub fn execute(plan: &PhysPlan, env: &Tuple, ctx: &mut EvalCtx<'_>) -> EvalResult<Seq> {
    let out = match plan {
        PhysPlan::Singleton => vec![Tuple::empty()],
        PhysPlan::Literal(rows) => rows.clone(),
        PhysPlan::AttrRel(a) => match env.get(*a) {
            Some(Value::Tuples(ts)) => ts.as_ref().clone(),
            other => {
                return Err(EvalError::new(format!(
                    "rel({a}): not a nested relation: {other:?}"
                )))
            }
        },

        PhysPlan::Select { input, pred } => {
            let rows = execute(input, env, ctx)?;
            let mut out = Vec::with_capacity(rows.len());
            for t in rows {
                if truthy(pred, &scoped(env, &t), ctx)? {
                    out.push(t);
                }
            }
            out
        }

        PhysPlan::Project { input, op } => {
            let rows = execute(input, env, ctx)?;
            project_rows(&rows, op, ctx)
        }

        PhysPlan::Map { input, attr, value } => {
            let rows = execute(input, env, ctx)?;
            let mut out = Vec::with_capacity(rows.len());
            for t in rows {
                let v = eval_scalar(value, &scoped(env, &t), ctx)?;
                out.push(t.extend(*attr, v));
            }
            out
        }

        PhysPlan::Cross { left, right } => {
            let l = execute(left, env, ctx)?;
            let r = execute(right, env, ctx)?;
            let mut out = Vec::with_capacity(l.len() * r.len());
            for lt in &l {
                for rt in &r {
                    out.push(lt.concat(rt));
                }
            }
            out
        }

        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            kind,
            pad,
        } => {
            let l = execute(left, env, ctx)?;
            let r = execute(right, env, ctx)?;
            hash_join(
                &l,
                &r,
                left_keys,
                right_keys,
                residual.as_ref(),
                kind,
                pad,
                env,
                ctx,
            )?
        }

        PhysPlan::LoopJoin {
            left,
            right,
            pred,
            kind,
            pad,
        } => {
            let l = execute(left, env, ctx)?;
            let r = execute(right, env, ctx)?;
            loop_join(&l, &r, pred, kind, pad, env, ctx)?
        }

        PhysPlan::HashGroupUnary { input, g, by, f } => {
            let rows = execute(input, env, ctx)?;
            let groups = hash_groups(&rows, by, ctx);
            let mut out = Vec::with_capacity(groups.len());
            for (key_tuple, members) in groups {
                let v = apply_groupfn(f, &members, env, ctx)?;
                out.push(key_tuple.extend(*g, v));
            }
            out
        }

        PhysPlan::ThetaGroupUnary {
            input,
            g,
            by,
            theta,
            f,
        } => {
            // Definitional fallback — delegate to the reference semantics
            // by rebuilding the logical node over a literal.
            let rows = execute(input, env, ctx)?;
            let logical = nal::Expr::GroupUnary {
                input: Box::new(nal::Expr::Literal(rows)),
                g: *g,
                by: by.clone(),
                theta: *theta,
                f: f.clone(),
            };
            eval(&logical, env, ctx)?
        }

        PhysPlan::HashGroupBinary {
            left,
            right,
            g,
            left_on,
            right_on,
            f,
        } => {
            let l = execute(left, env, ctx)?;
            let r = execute(right, env, ctx)?;
            // Bucket the right side once, pre-sized to avoid rehashing.
            let mut buckets: HashMap<Key, Vec<Tuple>> = HashMap::with_capacity(r.len());
            for rt in &r {
                if let Some(k) = key_of(rt, right_on, ctx.catalog) {
                    buckets.entry(k).or_default().push(rt.clone());
                }
            }
            let empty: Vec<Tuple> = Vec::new();
            let mut out = Vec::with_capacity(l.len());
            for lt in l {
                let members = key_of(&lt, left_on, ctx.catalog)
                    .and_then(|k| buckets.get(&k))
                    .unwrap_or(&empty);
                let v = apply_groupfn(f, members, env, ctx)?;
                out.push(lt.extend(*g, v));
            }
            out
        }

        PhysPlan::ThetaGroupBinary {
            left,
            right,
            g,
            left_on,
            theta,
            right_on,
            f,
        } => {
            let l = execute(left, env, ctx)?;
            let r = execute(right, env, ctx)?;
            let logical = nal::Expr::GroupBinary {
                left: Box::new(nal::Expr::Literal(l)),
                right: Box::new(nal::Expr::Literal(r)),
                g: *g,
                left_on: left_on.clone(),
                theta: *theta,
                right_on: right_on.clone(),
                f: f.clone(),
            };
            eval(&logical, env, ctx)?
        }

        PhysPlan::Unnest {
            input,
            attr,
            distinct,
            preserve_empty,
            inner_attrs,
        } => {
            let rows = execute(input, env, ctx)?;
            let mut out = Vec::new();
            for t in rows {
                let nested = match t.get(*attr) {
                    Some(Value::Tuples(ts)) => ts.as_ref().clone(),
                    Some(Value::Null) | None => Vec::new(),
                    Some(other) => {
                        return Err(EvalError::new(format!(
                            "unnest({attr}): not tuple-valued: {other}"
                        )))
                    }
                };
                let nested = if *distinct {
                    dedup_by_value(&nested, ctx.catalog)
                } else {
                    nested
                };
                let rest = t.without(&[*attr]);
                if nested.is_empty() {
                    if *preserve_empty {
                        out.push(rest.concat(&Tuple::bottom(inner_attrs)));
                    }
                } else {
                    for inner in nested {
                        out.push(rest.concat(&inner));
                    }
                }
            }
            out
        }

        PhysPlan::UnnestMap { input, attr, value } => {
            let rows = execute(input, env, ctx)?;
            let mut out = Vec::new();
            for t in rows {
                let v = eval_scalar(value, &scoped(env, &t), ctx)?;
                for item in v.as_item_seq() {
                    out.push(t.extend(*attr, item));
                }
            }
            out
        }

        PhysPlan::XiSimple { input, cmds } => {
            let rows = execute(input, env, ctx)?;
            for t in &rows {
                xi::run_cmds(cmds, &scoped(env, t), ctx)?;
            }
            rows
        }

        PhysPlan::XiGroup {
            input,
            by,
            head,
            body,
            tail,
        } => {
            let rows = execute(input, env, ctx)?;
            let groups = hash_groups(&rows, by, ctx);
            let mut out = Vec::with_capacity(groups.len());
            for (key_tuple, members) in groups {
                let key_env = env.concat(&key_tuple);
                xi::run_cmds(head, &key_env, ctx)?;
                for t in &members {
                    xi::run_cmds(body, &env.concat(t), ctx)?;
                }
                xi::run_cmds(tail, &key_env, ctx)?;
                out.push(key_tuple);
            }
            out
        }

        PhysPlan::IndexScan {
            input,
            attr,
            uri,
            pattern,
            distinct,
        } => {
            let rows = execute(input, env, ctx)?;
            // The path is document-rooted: one index resolution serves
            // every input tuple (the replaced Υ re-evaluated it per
            // tuple, producing the identical sequence each time).
            let items = crate::index::scan_items(uri, pattern, *distinct, ctx)?;
            let mut out = Vec::with_capacity(rows.len() * items.len());
            for t in rows {
                for item in &items {
                    out.push(t.extend(*attr, item.clone()));
                }
            }
            out
        }

        PhysPlan::IndexJoin {
            left,
            probe,
            key_attr,
            uri,
            pattern,
            seeds,
            ops,
            residual,
            kind,
        } => {
            let l = execute(left, env, ctx)?;
            let access = IndexJoinAccess::resolve(uri, pattern, ctx)?;
            let mut out = Vec::with_capacity(l.len());
            for lt in l {
                let matched = access.probe_matches(
                    &lt,
                    *probe,
                    *key_attr,
                    seeds,
                    ops,
                    residual.as_ref(),
                    false,
                    env,
                    ctx,
                )?;
                match kind {
                    JoinKind::Semi if matched => out.push(lt),
                    JoinKind::Anti if !matched => out.push(lt),
                    _ => {}
                }
            }
            out
        }

        PhysPlan::IndexRangeJoin {
            left,
            eq_probe,
            ranges,
            key_attr,
            uri,
            pattern,
            seeds,
            ops,
            residual,
            kind,
        } => {
            let l = execute(left, env, ctx)?;
            let access = IndexJoinAccess::resolve(uri, pattern, ctx)?;
            let cacheable = range_probe_invariant(*eq_probe, ranges, residual.as_ref());
            let mut cached: Option<bool> = None;
            let mut out = Vec::with_capacity(l.len());
            for lt in l {
                let matched = match cached {
                    Some(m) => m,
                    None => {
                        let m = access.range_probe_matches(
                            &lt,
                            *eq_probe,
                            ranges,
                            *key_attr,
                            seeds,
                            ops,
                            residual.as_ref(),
                            false,
                            env,
                            ctx,
                        )?;
                        if cacheable {
                            cached = Some(m);
                        }
                        m
                    }
                };
                match kind {
                    JoinKind::Semi if matched => out.push(lt),
                    JoinKind::Anti if !matched => out.push(lt),
                    _ => {}
                }
            }
            out
        }
    };
    ctx.metrics.tuples_produced += out.len() as u64;
    Ok(out)
}

fn project_rows(rows: &[Tuple], op: &ProjOp, ctx: &EvalCtx<'_>) -> Seq {
    use nal::eval::atomize_tuple;
    match op {
        ProjOp::Cols(cols) => rows.iter().map(|t| t.project(cols)).collect(),
        ProjOp::Drop(cols) => rows.iter().map(|t| t.without(cols)).collect(),
        ProjOp::Rename(pairs) => rows.iter().map(|t| t.rename(pairs)).collect(),
        ProjOp::DistinctCols(cols) => {
            let projected: Seq = rows
                .iter()
                .map(|t| atomize_tuple(&t.project(cols), ctx.catalog))
                .collect();
            dedup_by_value(&projected, ctx.catalog)
        }
        ProjOp::DistinctRename(pairs) => {
            let old: Vec<Sym> = pairs.iter().map(|(_, o)| *o).collect();
            let projected: Seq = rows
                .iter()
                .map(|t| atomize_tuple(&t.project(&old).rename(pairs), ctx.catalog))
                .collect();
            dedup_by_value(&projected, ctx.catalog)
        }
    }
}

/// Single-pass grouping in first-occurrence key order, atomized keys.
/// Shared with the streaming executor's blocking group cursors.
pub(crate) fn hash_groups(
    rows: &[Tuple],
    by: &[Sym],
    ctx: &EvalCtx<'_>,
) -> Vec<(Tuple, Vec<Tuple>)> {
    let mut index: HashMap<Key, usize> = HashMap::with_capacity(rows.len().min(1024));
    let mut groups: Vec<(Tuple, Vec<Tuple>)> = Vec::new();
    for t in rows {
        let Some(k) = key_of(t, by, ctx.catalog) else {
            continue; // NULL keys group with nothing (cmp_atomic semantics)
        };
        let idx = *index.entry(k).or_insert_with(|| {
            let key_tuple = nal::eval::atomize_tuple(&t.project(by), ctx.catalog);
            groups.push((key_tuple, Vec::new()));
            groups.len() - 1
        });
        groups[idx].1.push(t.clone());
    }
    groups
}

/// Is an [`PhysPlan::IndexRangeJoin`]'s decision independent of the
/// probe tuple? True for constant-bound quantifiers (`every $x
/// satisfies $x > 5`): no typed bucket probe, no residual, and every
/// range side closed (build-side ops reference only the reconstructed
/// chain by construction). Both executors then probe once and reuse the
/// answer — identically, so metric parity is preserved.
pub(crate) fn range_probe_invariant(
    eq_probe: Option<Sym>,
    ranges: &[crate::plan::RangeProbe],
    residual: Option<&nal::Scalar>,
) -> bool {
    eq_probe.is_none()
        && residual.is_none()
        && ranges.iter().all(|rp| rp.side.free_attrs().is_empty())
}

/// Resolved runtime state of an [`PhysPlan::IndexJoin`]: the document id
/// and the value index of the build path. Shared by both executors so
/// probe semantics and metrics accounting stay identical.
pub struct IndexJoinAccess {
    pub(crate) doc: xmldb::DocId,
    pub(crate) vindex: std::sync::Arc<xmldb::ValueIndex>,
}

impl IndexJoinAccess {
    pub(crate) fn resolve(
        uri: &str,
        pattern: &xmldb::PathPattern,
        ctx: &EvalCtx<'_>,
    ) -> EvalResult<IndexJoinAccess> {
        let doc = crate::index::doc_id_of(uri, ctx)?;
        let vindex = ctx.catalog.value_index(doc, pattern).ok_or_else(|| {
            EvalError::new(format!("pattern `{pattern}` is not index-resolvable"))
        })?;
        Ok(IndexJoinAccess { doc, vindex })
    }

    /// One probe: does any build row reconstructed from the posting list
    /// of the probe key match (pass the replayed filters and the
    /// residual)?
    ///
    /// Build rows are reconstructed candidate by candidate in document
    /// order — exactly the bucket order of the replaced hash join — so
    /// the first deciding row is the same row the hash probe would have
    /// stopped at. `count_probes` is set by the streaming executor only,
    /// matching where `probe_tuples` is tracked for the scan-based join
    /// cursors (the materializing executor leaves it 0 for every join
    /// kind). `index_lookups`/`index_hits` are counted here, shared by
    /// both executors, so their totals are identical by construction.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn probe_matches(
        &self,
        lt: &Tuple,
        probe: Sym,
        key_attr: Sym,
        seeds: &[crate::plan::SeedBinding],
        ops: &[crate::plan::BuildOp],
        residual: Option<&nal::Scalar>,
        count_probes: bool,
        env: &Tuple,
        ctx: &mut EvalCtx<'_>,
    ) -> EvalResult<bool> {
        let Some(v) = lt.get(probe) else {
            return Ok(false);
        };
        ctx.metrics.index_lookups += 1;
        let key = crate::index::probe_key_of(v, ctx.catalog);
        let candidates = self.vindex.get(&key);
        if candidates.is_empty() {
            return Ok(false);
        }
        ctx.metrics.index_hits += 1;
        self.decide_from_candidates(
            lt,
            candidates,
            key_attr,
            seeds,
            ops,
            residual,
            count_probes,
            env,
            ctx,
        )
    }

    /// One **range** probe over the ordered key space
    /// ([`PhysPlan::IndexRangeJoin`]): evaluate every conjunct's probe
    /// side once, seek the value index for candidate nodes, filter them
    /// by the remaining conjuncts (via [`nal::cmp_general`] against the
    /// candidate node — exactly the comparison the scan plan's predicate
    /// would run), and decide from the survivors like an equality probe.
    ///
    /// With `eq_probe` set (band conversions), the typed bucket lookup
    /// of [`Self::probe_matches`] supplies the candidates and every
    /// range conjunct filters. Without it, the first conjunct whose
    /// probe key is a string or number drives a
    /// [`xmldb::ValueIndex::range`] seek (postings already merged into
    /// document order); a NULL/NaN side decides the tuple outright
    /// (those values satisfy no comparison); and if no side is
    /// rangeable (sequences, booleans), every indexed key is examined —
    /// still without ever executing the build side.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn range_probe_matches(
        &self,
        lt: &Tuple,
        eq_probe: Option<Sym>,
        ranges: &[crate::plan::RangeProbe],
        key_attr: Sym,
        seeds: &[crate::plan::SeedBinding],
        ops: &[crate::plan::BuildOp],
        residual: Option<&nal::Scalar>,
        count_probes: bool,
        env: &Tuple,
        ctx: &mut EvalCtx<'_>,
    ) -> EvalResult<bool> {
        use std::ops::Bound;
        use xmldb::ValueKey;
        // The probe sides are pure and replay-safe by conversion; the
        // loop join evaluated them once per candidate row, so evaluating
        // them once per probe tuple is unobservable.
        let mut sides: Vec<(Value, nal::CmpOp)> = Vec::with_capacity(ranges.len());
        for rp in ranges {
            sides.push((eval_scalar(&rp.side, &scoped(env, lt), ctx)?, rp.op));
        }
        // Non-driving conjuncts filter at the node level — a candidate's
        // atomized value is its index key, so this is the scan plan's
        // predicate conjunct verbatim.
        let catalog = ctx.catalog;
        let doc = self.doc;
        let passes = |node: xmldb::NodeId, skip: Option<usize>| {
            sides.iter().enumerate().all(|(i, (v, op))| {
                Some(i) == skip
                    || nal::cmp_general(*op, v, &Value::Node(nal::NodeRef { doc, node }), catalog)
            })
        };
        // Fast path: no pipeline, no residual — existence alone decides,
        // so the key window streams lazily and stops at the first
        // passing candidate (the range analogue of the hash probe's
        // first-bucket-row short-circuit).
        let fast = ops.is_empty() && residual.is_none();
        let candidates: Vec<xmldb::NodeId> = if let Some(p) = eq_probe {
            let Some(v) = lt.get(p) else {
                return Ok(false);
            };
            ctx.metrics.index_lookups += 1;
            let key = crate::index::probe_key_of(v, ctx.catalog);
            let posting = self.vindex.get(&key);
            if fast {
                let found = posting.iter().any(|&n| passes(n, None));
                if found {
                    ctx.metrics.index_hits += 1;
                    if count_probes {
                        ctx.metrics.probe_tuples += 1;
                    }
                }
                return Ok(found);
            }
            posting
                .iter()
                .copied()
                .filter(|&n| passes(n, None))
                .collect()
        } else {
            let mut driver: Option<usize> = None;
            let mut keys: Vec<ValueKey> = Vec::with_capacity(sides.len());
            for (i, (v, _)) in sides.iter().enumerate() {
                let k = crate::index::probe_key_of(v, ctx.catalog);
                if matches!(k, ValueKey::Null) {
                    // NULL (and NaN, which canonicalizes to NULL)
                    // satisfies no comparison: the conjunction is false
                    // for every build row.
                    return Ok(false);
                }
                if driver.is_none() && matches!(k, ValueKey::Num(_) | ValueKey::Str(_)) {
                    driver = Some(i);
                }
                keys.push(k);
            }
            // The first string/numeric side drives the index seek; if no
            // side is rangeable (sequences, booleans), every indexed key
            // is examined — still without executing the build side.
            let (lo, hi) = match driver {
                Some(i) => {
                    let key = &keys[i];
                    match sides[i].1 {
                        nal::CmpOp::Eq => (Bound::Included(key), Bound::Included(key)),
                        nal::CmpOp::Lt => (Bound::Excluded(key), Bound::Unbounded),
                        nal::CmpOp::Le => (Bound::Included(key), Bound::Unbounded),
                        nal::CmpOp::Gt => (Bound::Unbounded, Bound::Excluded(key)),
                        nal::CmpOp::Ge => (Bound::Unbounded, Bound::Included(key)),
                        nal::CmpOp::Ne => unreachable!("≠ never converts to a range probe"),
                    }
                }
                None => (Bound::Unbounded, Bound::Unbounded),
            };
            ctx.metrics.index_lookups += 1;
            if fast {
                let found = self.vindex.range_iter(lo, hi).any(|n| passes(n, driver));
                if found {
                    ctx.metrics.index_hits += 1;
                    if count_probes {
                        ctx.metrics.probe_tuples += 1;
                    }
                }
                return Ok(found);
            }
            // Residual/pipeline path: materialize the surviving window
            // and merge it back into document order, so rows reconstruct
            // in exactly the build order the scan join examined.
            let mut nodes: Vec<xmldb::NodeId> = self
                .vindex
                .range_iter(lo, hi)
                .filter(|&n| passes(n, driver))
                .collect();
            nodes.sort_unstable();
            nodes
        };
        if candidates.is_empty() {
            return Ok(false);
        }
        ctx.metrics.index_hits += 1;
        self.decide_from_candidates(
            lt,
            &candidates,
            key_attr,
            seeds,
            ops,
            residual,
            count_probes,
            env,
            ctx,
        )
    }

    /// Decide a probe from its candidate nodes (already restricted to
    /// the matching key set, in document order). Fast path: no pipeline,
    /// no residual — existence is decided by the candidate list alone
    /// (one candidate "examined", mirroring the scan probes'
    /// first-row short-circuit). Otherwise candidates reconstruct build
    /// rows in document order and the first passing row decides.
    #[allow(clippy::too_many_arguments)]
    fn decide_from_candidates(
        &self,
        lt: &Tuple,
        candidates: &[xmldb::NodeId],
        key_attr: Sym,
        seeds: &[crate::plan::SeedBinding],
        ops: &[crate::plan::BuildOp],
        residual: Option<&nal::Scalar>,
        count_probes: bool,
        env: &Tuple,
        ctx: &mut EvalCtx<'_>,
    ) -> EvalResult<bool> {
        if ops.is_empty() && residual.is_none() {
            if count_probes {
                ctx.metrics.probe_tuples += 1;
            }
            return Ok(true);
        }
        for &node in candidates {
            let rows = self.rebuild_rows(node, key_attr, seeds, ops, env, ctx)?;
            for row in rows {
                if count_probes {
                    ctx.metrics.probe_tuples += 1;
                }
                match residual {
                    None => return Ok(true),
                    Some(p) => {
                        let joined = lt.concat(&row);
                        if truthy(p, &scoped(env, &joined), ctx)? {
                            return Ok(true);
                        }
                    }
                }
            }
        }
        Ok(false)
    }

    /// Reconstruct the build rows of one candidate: seed the key column
    /// and the ancestor/doc bindings, then replay the recorded pipeline.
    fn rebuild_rows(
        &self,
        node: xmldb::NodeId,
        key_attr: Sym,
        seeds: &[crate::plan::SeedBinding],
        ops: &[crate::plan::BuildOp],
        env: &Tuple,
        ctx: &mut EvalCtx<'_>,
    ) -> EvalResult<Vec<Tuple>> {
        use crate::plan::{BuildOp, SeedBinding};
        let doc = self.doc;
        let tree = ctx.catalog.doc(doc).clone();
        let mut pairs: Vec<(Sym, Value)> = Vec::with_capacity(seeds.len() + 1);
        for s in seeds {
            match s {
                SeedBinding::DocNode(a) => pairs.push((
                    *a,
                    Value::Node(nal::NodeRef {
                        doc,
                        node: xmldb::NodeId::DOCUMENT,
                    }),
                )),
                SeedBinding::Ancestor(a, levels) => {
                    let mut cur = node;
                    for _ in 0..*levels {
                        cur = tree.parent(cur).ok_or_else(|| {
                            EvalError::new("index join: candidate ancestor above document root")
                        })?;
                    }
                    pairs.push((*a, Value::Node(nal::NodeRef { doc, node: cur })));
                }
            }
        }
        pairs.push((key_attr, Value::Node(nal::NodeRef { doc, node })));
        let mut rows = vec![Tuple::from_pairs(pairs)];
        for op in ops {
            match op {
                BuildOp::Map(attr, value) => {
                    let mut next = Vec::with_capacity(rows.len());
                    for t in rows {
                        let v = eval_scalar(value, &scoped(env, &t), ctx)?;
                        next.push(t.extend(*attr, v));
                    }
                    rows = next;
                }
                BuildOp::UnnestMap(attr, value) => {
                    let mut next = Vec::new();
                    for t in rows {
                        let v = eval_scalar(value, &scoped(env, &t), ctx)?;
                        for item in v.as_item_seq() {
                            next.push(t.extend(*attr, item));
                        }
                    }
                    rows = next;
                }
                BuildOp::Select(pred) => {
                    let mut next = Vec::with_capacity(rows.len());
                    for t in rows {
                        if truthy(pred, &scoped(env, &t), ctx)? {
                            next.push(t);
                        }
                    }
                    rows = next;
                }
                BuildOp::Project(op) => {
                    rows = project_rows(&rows, op, ctx);
                }
            }
            if rows.is_empty() {
                break;
            }
        }
        Ok(rows)
    }
}

#[allow(clippy::too_many_arguments)]
fn hash_join(
    l: &[Tuple],
    r: &[Tuple],
    left_keys: &[Sym],
    right_keys: &[Sym],
    residual: Option<&nal::Scalar>,
    kind: &JoinKind,
    pad: &[Sym],
    env: &Tuple,
    ctx: &mut EvalCtx<'_>,
) -> EvalResult<Seq> {
    // Build on the right; buckets preserve right order. Pre-sized from
    // the build-side cardinality so the build never rehashes.
    let mut buckets: HashMap<Key, Vec<&Tuple>> = HashMap::with_capacity(r.len());
    for rt in r {
        if let Some(k) = key_of(rt, right_keys, ctx.catalog) {
            buckets.entry(k).or_default().push(rt);
        }
    }
    let mut out = Vec::new();
    for lt in l {
        let bucket = key_of(lt, left_keys, ctx.catalog).and_then(|k| buckets.get(&k));
        let mut matched = false;
        if let Some(bucket) = bucket {
            for &rt in bucket {
                let joined = lt.concat(rt);
                let pass = match residual {
                    None => true,
                    Some(p) => truthy(p, &scoped(env, &joined), ctx)?,
                };
                if pass {
                    matched = true;
                    match kind {
                        JoinKind::Inner | JoinKind::Outer { .. } => out.push(joined),
                        JoinKind::Semi | JoinKind::Anti => break,
                    }
                }
            }
        }
        match kind {
            JoinKind::Semi if matched => out.push(lt.clone()),
            JoinKind::Anti if !matched => out.push(lt.clone()),
            JoinKind::Outer { g, default } if !matched => {
                out.push(lt.concat(&Tuple::bottom(pad)).extend(*g, default.clone()));
            }
            _ => {}
        }
    }
    Ok(out)
}

fn loop_join(
    l: &[Tuple],
    r: &[Tuple],
    pred: &nal::Scalar,
    kind: &JoinKind,
    pad: &[Sym],
    env: &Tuple,
    ctx: &mut EvalCtx<'_>,
) -> EvalResult<Seq> {
    let mut out = Vec::new();
    for lt in l {
        let mut matched = false;
        for rt in r {
            let joined = lt.concat(rt);
            if truthy(pred, &scoped(env, &joined), ctx)? {
                matched = true;
                match kind {
                    JoinKind::Inner | JoinKind::Outer { .. } => out.push(joined),
                    JoinKind::Semi | JoinKind::Anti => break,
                }
            }
        }
        match kind {
            JoinKind::Semi if matched => out.push(lt.clone()),
            JoinKind::Anti if !matched => out.push(lt.clone()),
            JoinKind::Outer { g, default } if !matched => {
                out.push(lt.concat(&Tuple::bottom(pad)).extend(*g, default.clone()));
            }
            _ => {}
        }
    }
    Ok(out)
}
