//! Plan execution.
//!
//! Operators are materializing (Vec in, Vec out) — the experiments all
//! run over memory-resident documents, matching the paper's setup where
//! the database cache holds the queried documents. Order preservation is
//! structural: every operator emits in left-input order; hash buckets
//! keep right-input insertion order, so hash joins produce exactly the
//! sequence the definitional nested loop would.

use std::borrow::Cow;
use std::collections::HashMap;

use nal::eval::scalar::{eval_scalar, truthy};
use nal::eval::{apply_groupfn, dedup_by_value, eval, xi, EvalCtx, EvalError, EvalResult};
use nal::{ProjOp, Seq, Sym, Tuple, Value};

use crate::key::{key_of, Key};
use crate::plan::{JoinKind, PhysPlan};

/// Evaluation scope of a tuple under an environment. Top-level plans run
/// with an empty environment, where `env.concat(t)` would just clone `t`
/// — borrow it instead so the hot σ/χ/Υ/⋈ loops allocate nothing extra.
pub(crate) fn scoped<'a>(env: &Tuple, t: &'a Tuple) -> Cow<'a, Tuple> {
    if env.is_empty() {
        Cow::Borrowed(t)
    } else {
        Cow::Owned(env.concat(t))
    }
}

/// Execute a plan under an environment (non-empty only for nested
/// evaluation contexts).
///
/// When the context carries a trace ([`EvalCtx::enable_trace`]), every
/// node records inclusive wall time, output rows, and index-probe deltas
/// under its address — the materializing side of EXPLAIN ANALYZE.
/// Untraced runs take the first branch and pay a single `Option` check
/// per node.
pub fn execute(plan: &PhysPlan, env: &Tuple, ctx: &mut EvalCtx<'_>) -> EvalResult<Seq> {
    if ctx.trace.is_none() {
        return execute_node(plan, env, ctx);
    }
    let start = std::time::Instant::now();
    let (lookups0, hits0) = (ctx.metrics.index_lookups, ctx.metrics.index_hits);
    let out = execute_node(plan, env, ctx)?;
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let lookups = ctx.metrics.index_lookups - lookups0;
    let hits = ctx.metrics.index_hits - hits0;
    if let Some(trace) = ctx.trace.as_mut() {
        trace.record(
            plan as *const PhysPlan as usize,
            out.len() as u64,
            elapsed_ns,
            lookups,
            hits,
        );
    }
    Ok(out)
}

fn execute_node(plan: &PhysPlan, env: &Tuple, ctx: &mut EvalCtx<'_>) -> EvalResult<Seq> {
    let out = match plan {
        PhysPlan::Singleton => vec![Tuple::empty()],
        PhysPlan::Literal(rows) => rows.clone(),
        PhysPlan::AttrRel(a) => match env.get(*a) {
            Some(Value::Tuples(ts)) => ts.as_ref().clone(),
            other => {
                return Err(EvalError::new(format!(
                    "rel({a}): not a nested relation: {other:?}"
                )))
            }
        },

        PhysPlan::Select { input, pred } => {
            let rows = execute(input, env, ctx)?;
            let mut out = Vec::with_capacity(rows.len());
            for t in rows {
                if truthy(pred, &scoped(env, &t), ctx)? {
                    out.push(t);
                }
            }
            out
        }

        PhysPlan::Project { input, op } => {
            let rows = execute(input, env, ctx)?;
            project_rows(&rows, op, ctx)
        }

        PhysPlan::Map { input, attr, value } => {
            let rows = execute(input, env, ctx)?;
            let mut out = Vec::with_capacity(rows.len());
            for t in rows {
                let v = eval_scalar(value, &scoped(env, &t), ctx)?;
                out.push(t.extend(*attr, v));
            }
            out
        }

        PhysPlan::Cross { left, right } => {
            let l = execute(left, env, ctx)?;
            let r = execute(right, env, ctx)?;
            let mut out = Vec::with_capacity(l.len() * r.len());
            for lt in &l {
                for rt in &r {
                    out.push(lt.concat(rt));
                }
            }
            out
        }

        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            kind,
            pad,
        } => {
            let l = execute(left, env, ctx)?;
            let r = execute(right, env, ctx)?;
            hash_join(
                &l,
                &r,
                left_keys,
                right_keys,
                residual.as_ref(),
                kind,
                pad,
                env,
                ctx,
            )?
        }

        PhysPlan::LoopJoin {
            left,
            right,
            pred,
            kind,
            pad,
        } => {
            let l = execute(left, env, ctx)?;
            let r = execute(right, env, ctx)?;
            loop_join(&l, &r, pred, kind, pad, env, ctx)?
        }

        PhysPlan::HashGroupUnary { input, g, by, f } => {
            let rows = execute(input, env, ctx)?;
            let groups = hash_groups(&rows, by, ctx);
            let mut out = Vec::with_capacity(groups.len());
            for (key_tuple, members) in groups {
                let v = apply_groupfn(f, &members, env, ctx)?;
                out.push(key_tuple.extend(*g, v));
            }
            out
        }

        PhysPlan::ThetaGroupUnary {
            input,
            g,
            by,
            theta,
            f,
        } => {
            // Definitional fallback — delegate to the reference semantics
            // by rebuilding the logical node over a literal.
            let rows = execute(input, env, ctx)?;
            let logical = nal::Expr::GroupUnary {
                input: Box::new(nal::Expr::Literal(rows)),
                g: *g,
                by: by.clone(),
                theta: *theta,
                f: f.clone(),
            };
            eval(&logical, env, ctx)?
        }

        PhysPlan::HashGroupBinary {
            left,
            right,
            g,
            left_on,
            right_on,
            f,
        } => {
            let l = execute(left, env, ctx)?;
            let r = execute(right, env, ctx)?;
            // Bucket the right side once, pre-sized to avoid rehashing.
            let mut buckets: HashMap<Key, Vec<Tuple>> = HashMap::with_capacity(r.len());
            for rt in &r {
                if let Some(k) = key_of(rt, right_on, ctx.catalog) {
                    buckets.entry(k).or_default().push(rt.clone());
                }
            }
            let empty: Vec<Tuple> = Vec::new();
            let mut out = Vec::with_capacity(l.len());
            for lt in l {
                let members = key_of(&lt, left_on, ctx.catalog)
                    .and_then(|k| buckets.get(&k))
                    .unwrap_or(&empty);
                let v = apply_groupfn(f, members, env, ctx)?;
                out.push(lt.extend(*g, v));
            }
            out
        }

        PhysPlan::ThetaGroupBinary {
            left,
            right,
            g,
            left_on,
            theta,
            right_on,
            f,
        } => {
            let l = execute(left, env, ctx)?;
            let r = execute(right, env, ctx)?;
            let logical = nal::Expr::GroupBinary {
                left: Box::new(nal::Expr::Literal(l)),
                right: Box::new(nal::Expr::Literal(r)),
                g: *g,
                left_on: left_on.clone(),
                theta: *theta,
                right_on: right_on.clone(),
                f: f.clone(),
            };
            eval(&logical, env, ctx)?
        }

        PhysPlan::Unnest {
            input,
            attr,
            distinct,
            preserve_empty,
            inner_attrs,
        } => {
            let rows = execute(input, env, ctx)?;
            let mut out = Vec::new();
            for t in rows {
                let nested = match t.get(*attr) {
                    Some(Value::Tuples(ts)) => ts.as_ref().clone(),
                    Some(Value::Null) | None => Vec::new(),
                    Some(other) => {
                        return Err(EvalError::new(format!(
                            "unnest({attr}): not tuple-valued: {other}"
                        )))
                    }
                };
                let nested = if *distinct {
                    dedup_by_value(&nested, ctx.catalog)
                } else {
                    nested
                };
                let rest = t.without(&[*attr]);
                if nested.is_empty() {
                    if *preserve_empty {
                        out.push(rest.concat(&Tuple::bottom(inner_attrs)));
                    }
                } else {
                    for inner in nested {
                        out.push(rest.concat(&inner));
                    }
                }
            }
            out
        }

        PhysPlan::UnnestMap { input, attr, value } => {
            let rows = execute(input, env, ctx)?;
            let mut out = Vec::new();
            for t in rows {
                let v = eval_scalar(value, &scoped(env, &t), ctx)?;
                for item in v.as_item_seq() {
                    out.push(t.extend(*attr, item));
                }
            }
            out
        }

        PhysPlan::XiSimple { input, cmds } => {
            let rows = execute(input, env, ctx)?;
            for t in &rows {
                xi::run_cmds(cmds, &scoped(env, t), ctx)?;
            }
            rows
        }

        PhysPlan::XiGroup {
            input,
            by,
            head,
            body,
            tail,
        } => {
            let rows = execute(input, env, ctx)?;
            let groups = hash_groups(&rows, by, ctx);
            let mut out = Vec::with_capacity(groups.len());
            for (key_tuple, members) in groups {
                let key_env = env.concat(&key_tuple);
                xi::run_cmds(head, &key_env, ctx)?;
                for t in &members {
                    xi::run_cmds(body, &env.concat(t), ctx)?;
                }
                xi::run_cmds(tail, &key_env, ctx)?;
                out.push(key_tuple);
            }
            out
        }

        PhysPlan::IndexScan {
            input,
            attr,
            uri,
            pattern,
            distinct,
        } => {
            let rows = execute(input, env, ctx)?;
            // The path is document-rooted: one index resolution serves
            // every input tuple (the replaced Υ re-evaluated it per
            // tuple, producing the identical sequence each time).
            let items = crate::access::scan_items(uri, pattern, *distinct, ctx)?;
            let mut out = Vec::with_capacity(rows.len() * items.len());
            for t in rows {
                for item in &items {
                    out.push(t.extend(*attr, item.clone()));
                }
            }
            out
        }

        PhysPlan::IndexJoin { left, recipe } => {
            let l = execute(left, env, ctx)?;
            let access = crate::access::IndexJoinAccess::resolve(recipe, ctx)?;
            // Probe-invariant range recipes (constant bounds, no
            // residual) decide once and reuse the answer — the streaming
            // executor memoizes identically, so metrics stay equal.
            let cacheable = recipe.probe_invariant();
            let mut cached: Option<bool> = None;
            let mut out = Vec::with_capacity(l.len());
            for lt in l {
                let matched = match cached {
                    Some(m) => m,
                    None => {
                        let m = access.probe_matches(recipe, &lt, false, env, ctx)?;
                        if cacheable {
                            cached = Some(m);
                        }
                        m
                    }
                };
                match recipe.kind {
                    JoinKind::Semi if matched => out.push(lt),
                    JoinKind::Anti if !matched => out.push(lt),
                    _ => {}
                }
            }
            out
        }

        PhysPlan::Parallel { source, stages } => {
            // Materializing fallback: run the segment inline by splicing
            // the drained source into the stage pipeline's feed leaf.
            // Parallel execution proper is a streaming-executor feature.
            let rows = execute(source, env, ctx)?;
            let spliced = crate::pipeline::par::substitute_feed(stages, &rows);
            return execute(&spliced, env, ctx);
        }

        PhysPlan::MorselFeed => {
            return Err(EvalError::new(
                "MorselFeed outside a parallel segment".to_string(),
            ))
        }
    };
    ctx.metrics.tuples_produced += out.len() as u64;
    Ok(out)
}

/// Shared with the access-path probe runtime, which replays recorded
/// `Project` build operators per reconstructed candidate.
pub(crate) fn project_rows(rows: &[Tuple], op: &ProjOp, ctx: &EvalCtx<'_>) -> Seq {
    use nal::eval::atomize_tuple;
    match op {
        ProjOp::Cols(cols) => rows.iter().map(|t| t.project(cols)).collect(),
        ProjOp::Drop(cols) => rows.iter().map(|t| t.without(cols)).collect(),
        ProjOp::Rename(pairs) => rows.iter().map(|t| t.rename(pairs)).collect(),
        ProjOp::DistinctCols(cols) => {
            let projected: Seq = rows
                .iter()
                .map(|t| atomize_tuple(&t.project(cols), ctx.catalog))
                .collect();
            dedup_by_value(&projected, ctx.catalog)
        }
        ProjOp::DistinctRename(pairs) => {
            let old: Vec<Sym> = pairs.iter().map(|(_, o)| *o).collect();
            let projected: Seq = rows
                .iter()
                .map(|t| atomize_tuple(&t.project(&old).rename(pairs), ctx.catalog))
                .collect();
            dedup_by_value(&projected, ctx.catalog)
        }
    }
}

/// Single-pass grouping in first-occurrence key order, atomized keys.
/// Shared with the streaming executor's blocking group cursors.
pub(crate) fn hash_groups(
    rows: &[Tuple],
    by: &[Sym],
    ctx: &EvalCtx<'_>,
) -> Vec<(Tuple, Vec<Tuple>)> {
    let mut index: HashMap<Key, usize> = HashMap::with_capacity(rows.len().min(1024));
    let mut groups: Vec<(Tuple, Vec<Tuple>)> = Vec::new();
    for t in rows {
        let Some(k) = key_of(t, by, ctx.catalog) else {
            continue; // NULL keys group with nothing (cmp_atomic semantics)
        };
        let idx = *index.entry(k).or_insert_with(|| {
            let key_tuple = nal::eval::atomize_tuple(&t.project(by), ctx.catalog);
            groups.push((key_tuple, Vec::new()));
            groups.len() - 1
        });
        groups[idx].1.push(t.clone());
    }
    groups
}

#[allow(clippy::too_many_arguments)]
fn hash_join(
    l: &[Tuple],
    r: &[Tuple],
    left_keys: &[Sym],
    right_keys: &[Sym],
    residual: Option<&nal::Scalar>,
    kind: &JoinKind,
    pad: &[Sym],
    env: &Tuple,
    ctx: &mut EvalCtx<'_>,
) -> EvalResult<Seq> {
    // Build on the right; buckets preserve right order. Pre-sized from
    // the build-side cardinality so the build never rehashes.
    let mut buckets: HashMap<Key, Vec<&Tuple>> = HashMap::with_capacity(r.len());
    for rt in r {
        if let Some(k) = key_of(rt, right_keys, ctx.catalog) {
            buckets.entry(k).or_default().push(rt);
        }
    }
    let mut out = Vec::new();
    for lt in l {
        let bucket = key_of(lt, left_keys, ctx.catalog).and_then(|k| buckets.get(&k));
        let mut matched = false;
        if let Some(bucket) = bucket {
            for &rt in bucket {
                let joined = lt.concat(rt);
                let pass = match residual {
                    None => true,
                    Some(p) => truthy(p, &scoped(env, &joined), ctx)?,
                };
                if pass {
                    matched = true;
                    match kind {
                        JoinKind::Inner | JoinKind::Outer { .. } => out.push(joined),
                        JoinKind::Semi | JoinKind::Anti => break,
                    }
                }
            }
        }
        match kind {
            JoinKind::Semi if matched => out.push(lt.clone()),
            JoinKind::Anti if !matched => out.push(lt.clone()),
            JoinKind::Outer { g, default } if !matched => {
                out.push(lt.concat(&Tuple::bottom(pad)).extend(*g, default.clone()));
            }
            _ => {}
        }
    }
    Ok(out)
}

fn loop_join(
    l: &[Tuple],
    r: &[Tuple],
    pred: &nal::Scalar,
    kind: &JoinKind,
    pad: &[Sym],
    env: &Tuple,
    ctx: &mut EvalCtx<'_>,
) -> EvalResult<Seq> {
    let mut out = Vec::new();
    for lt in l {
        let mut matched = false;
        for rt in r {
            let joined = lt.concat(rt);
            if truthy(pred, &scoped(env, &joined), ctx)? {
                matched = true;
                match kind {
                    JoinKind::Inner | JoinKind::Outer { .. } => out.push(joined),
                    JoinKind::Semi | JoinKind::Anti => break,
                }
            }
        }
        match kind {
            JoinKind::Semi if matched => out.push(lt.clone()),
            JoinKind::Anti if !matched => out.push(lt.clone()),
            JoinKind::Outer { g, default } if !matched => {
                out.push(lt.concat(&Tuple::bottom(pad)).extend(*g, default.clone()));
            }
            _ => {}
        }
    }
    Ok(out)
}
