//! EXPLAIN ANALYZE: pair a physical plan tree with the per-operator
//! counters a traced run recorded, and (optionally) the cost model's
//! per-node predictions.
//!
//! The report is the calibration surface the bench harness and the
//! `xqd-server` `explain` op expose: each node carries *measured* rows,
//! inclusive wall time, and index-probe counts next to the *predicted*
//! cost for the same node, so `(predicted, measured)` pairs can be read
//! off every operator rather than only whole plans.

use std::collections::HashMap;

use nal::obs::ExecTrace;
use nal::{EvalCtx, EvalResult, Seq, Tuple};
use xmldb::Catalog;

use crate::plan::PhysPlan;
use crate::QueryResult;

/// One annotated operator of an EXPLAIN ANALYZE report (pre-order).
#[derive(Clone, Debug, PartialEq)]
pub struct ExplainNode {
    /// Tree depth (root = 0; rendering indents two spaces per level).
    pub depth: usize,
    /// Operator display name ([`PhysPlan::op_name`]).
    pub op: String,
    /// Plan-node identity (the node's address during the traced run;
    /// `0` after a round-trip parse). Joins the trace and cost maps.
    pub node: usize,
    /// Output rows the operator actually produced.
    pub rows: u64,
    /// Times the operator was entered (streaming: `next` calls).
    pub calls: u64,
    /// Inclusive measured wall time, microseconds.
    pub elapsed_us: u64,
    /// Index probes issued in this operator's subtree.
    pub index_lookups: u64,
    /// Index probes that found at least one node.
    pub index_hits: u64,
    /// The cost model's predicted cost for this node (inclusive, same
    /// convention as the measured time); `None` when no model ran.
    pub predicted_cost: Option<f64>,
    /// Degree of parallelism the run executed this operator with
    /// (`Parallel` segments only; `None` elsewhere). The degree lives on
    /// the execution context, not the plan, so the annotation is applied
    /// per report via [`ExplainReport::annotate_parallel`].
    pub workers: Option<usize>,
}

/// A whole EXPLAIN ANALYZE report: the plan tree in pre-order, each
/// node annotated with measured (and optionally predicted) figures.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExplainReport {
    /// Annotated operators, pre-order (root first).
    pub nodes: Vec<ExplainNode>,
}

impl ExplainReport {
    /// Build a report from a plan and the trace a traced run recorded.
    /// Nodes the executor never entered report zero counters.
    pub fn from_trace(plan: &PhysPlan, trace: &ExecTrace) -> ExplainReport {
        let mut nodes = Vec::new();
        collect(plan, 0, trace, &mut nodes);
        ExplainReport { nodes }
    }

    /// Attach per-node predicted costs (keyed by plan-node identity).
    pub fn annotate_costs(&mut self, costs: &HashMap<usize, f64>) {
        for n in &mut self.nodes {
            if let Some(c) = costs.get(&n.node) {
                n.predicted_cost = Some(*c);
            }
        }
    }

    /// Record the degree of parallelism the traced run used on every
    /// `Parallel` segment. Plans are degree-independent (the degree is
    /// an execution-context knob), so the report — which describes one
    /// concrete run — is where the number belongs.
    pub fn annotate_parallel(&mut self, degree: usize) {
        for n in &mut self.nodes {
            if n.op == "Parallel" {
                n.workers = Some(degree);
            }
        }
    }

    /// Total measured time of the root operator (µs) — the inclusive
    /// time of the whole plan.
    pub fn total_us(&self) -> u64 {
        self.nodes.first().map(|n| n.elapsed_us).unwrap_or(0)
    }

    /// Render the annotated tree, one operator per line:
    ///
    /// ```text
    /// HashSemiJoin rows=12 calls=13 elapsed_us=84 lookups=0 hits=0 cost=912.0
    ///   IndexScan rows=40 calls=41 elapsed_us=31 lookups=1 hits=1 cost=41.0
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        for n in &self.nodes {
            for _ in 0..n.depth {
                out.push_str("  ");
            }
            out.push_str(&format!(
                "{} rows={} calls={} elapsed_us={} lookups={} hits={} cost={}",
                n.op,
                n.rows,
                n.calls,
                n.elapsed_us,
                n.index_lookups,
                n.index_hits,
                match n.predicted_cost {
                    Some(c) => format!("{c:.1}"),
                    None => "-".to_string(),
                }
            ));
            if let Some(w) = n.workers {
                out.push_str(&format!(" workers={w}"));
            }
            out.push('\n');
        }
        out
    }

    /// Parse a rendered report back into its nodes (node identities are
    /// not recoverable and parse as `0`). `parse(render(r))` reproduces
    /// every field of `r` except `node`.
    pub fn parse(text: &str) -> Result<ExplainReport, String> {
        let mut nodes = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            if raw.trim().is_empty() {
                continue;
            }
            let indent = raw.len() - raw.trim_start_matches(' ').len();
            if indent % 2 != 0 {
                return Err(format!("line {}: odd indentation", lineno + 1));
            }
            let mut parts = raw.split_whitespace();
            let op = parts
                .next()
                .ok_or_else(|| format!("line {}: missing operator", lineno + 1))?
                .to_string();
            let mut node = ExplainNode {
                depth: indent / 2,
                op,
                node: 0,
                rows: 0,
                calls: 0,
                elapsed_us: 0,
                index_lookups: 0,
                index_hits: 0,
                predicted_cost: None,
                workers: None,
            };
            for kv in parts {
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("line {}: bad field `{kv}`", lineno + 1))?;
                let int = || {
                    v.parse::<u64>()
                        .map_err(|e| format!("line {}: {k}: {e}", lineno + 1))
                };
                match k {
                    "rows" => node.rows = int()?,
                    "calls" => node.calls = int()?,
                    "elapsed_us" => node.elapsed_us = int()?,
                    "lookups" => node.index_lookups = int()?,
                    "hits" => node.index_hits = int()?,
                    "workers" => {
                        node.workers = Some(
                            v.parse::<usize>()
                                .map_err(|e| format!("line {}: workers: {e}", lineno + 1))?,
                        )
                    }
                    "cost" => {
                        node.predicted_cost = if v == "-" {
                            None
                        } else {
                            Some(
                                v.parse::<f64>()
                                    .map_err(|e| format!("line {}: cost: {e}", lineno + 1))?,
                            )
                        };
                    }
                    other => return Err(format!("line {}: unknown field `{other}`", lineno + 1)),
                }
            }
            nodes.push(node);
        }
        if nodes.is_empty() {
            return Err("empty explain report".to_string());
        }
        Ok(ExplainReport { nodes })
    }
}

fn collect(plan: &PhysPlan, depth: usize, trace: &ExecTrace, out: &mut Vec<ExplainNode>) {
    let id = plan as *const PhysPlan as usize;
    let stats = trace.get(id).copied().unwrap_or_default();
    out.push(ExplainNode {
        depth,
        op: plan.op_name().to_string(),
        node: id,
        rows: stats.rows,
        calls: stats.calls,
        elapsed_us: stats.elapsed_us(),
        index_lookups: stats.index_lookups,
        index_hits: stats.index_hits,
        predicted_cost: None,
        workers: None,
    });
    for c in plan.children() {
        collect(c, depth + 1, trace, out);
    }
}

/// [`crate::run_compiled`] with per-operator tracing enabled: returns
/// the usual result plus the recorded [`ExecTrace`]. Counters in
/// `result.metrics` are identical to an untraced run (tracing only adds
/// timing).
pub fn run_traced(plan: &PhysPlan, catalog: &Catalog) -> EvalResult<(QueryResult, ExecTrace)> {
    run_traced_with(plan, catalog, false)
}

/// [`crate::run_streaming_compiled`] with per-operator tracing enabled.
pub fn run_streaming_traced(
    plan: &PhysPlan,
    catalog: &Catalog,
) -> EvalResult<(QueryResult, ExecTrace)> {
    run_traced_with(plan, catalog, true)
}

/// [`run_streaming_traced`] at an explicit degree of parallelism:
/// `Parallel` segments in the plan fan out over `workers` threads,
/// per-worker traces merge into the returned [`ExecTrace`] (stage
/// counters sum to their serial values). Pair with
/// [`ExplainReport::annotate_parallel`] to surface the degree in the
/// rendered report.
pub fn run_streaming_traced_parallel(
    plan: &PhysPlan,
    catalog: &Catalog,
    workers: usize,
) -> EvalResult<(QueryResult, ExecTrace)> {
    run_traced_at_degree(plan, catalog, true, workers)
}

fn run_traced_with(
    plan: &PhysPlan,
    catalog: &Catalog,
    streaming: bool,
) -> EvalResult<(QueryResult, ExecTrace)> {
    run_traced_at_degree(plan, catalog, streaming, 1)
}

fn run_traced_at_degree(
    plan: &PhysPlan,
    catalog: &Catalog,
    streaming: bool,
    workers: usize,
) -> EvalResult<(QueryResult, ExecTrace)> {
    let mut ctx = EvalCtx::new(catalog);
    ctx.parallel = workers.max(1);
    ctx.enable_trace();
    let start = std::time::Instant::now();
    let rows: Seq = if streaming {
        crate::pipeline::execute_streaming(plan, &Tuple::empty(), &mut ctx)?
    } else {
        crate::exec::execute(plan, &Tuple::empty(), &mut ctx)?
    };
    let elapsed = start.elapsed();
    let trace = ctx.take_trace().expect("trace was enabled");
    Ok((
        QueryResult {
            rows,
            output: ctx.take_output(),
            metrics: ctx.metrics,
            elapsed,
        },
        trace,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nal::expr::builder::*;
    use nal::{CmpOp, Scalar};

    fn sample_plan() -> PhysPlan {
        let l = singleton().map("a", Scalar::int(1));
        let r = singleton().map("b", Scalar::int(1));
        crate::compile(&l.semijoin(r, Scalar::attr_cmp(CmpOp::Eq, "a", "b")))
    }

    #[test]
    fn traced_run_annotates_every_node() {
        let catalog = Catalog::new();
        let plan = sample_plan();
        let (result, trace) = run_traced(&plan, &catalog).unwrap();
        assert_eq!(result.rows.len(), 1);
        let report = ExplainReport::from_trace(&plan, &trace);
        assert_eq!(report.nodes[0].depth, 0);
        assert!(report.nodes.iter().all(|n| n.calls > 0), "{report:?}");
        assert_eq!(report.nodes[0].rows, 1);
        // Inclusive timing: the root's time bounds every child's.
        let root = report.nodes[0].elapsed_us;
        assert!(report.nodes.iter().all(|n| n.elapsed_us <= root));
    }

    #[test]
    fn streaming_trace_matches_tree_shape() {
        let catalog = Catalog::new();
        let plan = sample_plan();
        let (_, trace) = run_streaming_traced(&plan, &catalog).unwrap();
        let report = ExplainReport::from_trace(&plan, &trace);
        // Every node was pulled at least once (the final None pull).
        assert!(report.nodes.iter().all(|n| n.calls > 0), "{report:?}");
    }

    #[test]
    fn render_parse_round_trip() {
        let catalog = Catalog::new();
        let plan = sample_plan();
        let (_, trace) = run_traced(&plan, &catalog).unwrap();
        let mut report = ExplainReport::from_trace(&plan, &trace);
        // Give one node a predicted cost so both arms round-trip.
        let id = report.nodes[0].node;
        report.annotate_costs(&HashMap::from([(id, 12.5f64)]));
        let text = report.render();
        let parsed = ExplainReport::parse(&text).unwrap();
        assert_eq!(parsed.nodes.len(), report.nodes.len());
        for (a, b) in parsed.nodes.iter().zip(&report.nodes) {
            assert_eq!(a.depth, b.depth);
            assert_eq!(a.op, b.op);
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.calls, b.calls);
            assert_eq!(a.elapsed_us, b.elapsed_us);
            assert_eq!(a.index_lookups, b.index_lookups);
            assert_eq!(a.index_hits, b.index_hits);
            assert_eq!(a.predicted_cost, b.predicted_cost);
        }
        assert_eq!(parsed.render(), text, "render is a fixed point");
    }

    #[test]
    fn workers_annotation_round_trips() {
        let catalog = Catalog::new();
        let plan = sample_plan();
        let (_, trace) = run_traced(&plan, &catalog).unwrap();
        let mut report = ExplainReport::from_trace(&plan, &trace);
        // No Parallel node in this plan: annotation is a no-op …
        report.annotate_parallel(4);
        assert!(report.nodes.iter().all(|n| n.workers.is_none()));
        // … but a workers field must still survive render → parse.
        report.nodes[0].workers = Some(4);
        let text = report.render();
        assert!(
            text.lines().next().unwrap().ends_with("workers=4"),
            "{text}"
        );
        let parsed = ExplainReport::parse(&text).unwrap();
        assert_eq!(parsed.nodes[0].workers, Some(4));
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ExplainReport::parse("").is_err());
        assert!(ExplainReport::parse(" Op rows=1\n").is_err());
        assert!(ExplainReport::parse("Op bogus\n").is_err());
        assert!(ExplainReport::parse("Op rows=x\n").is_err());
    }
}
