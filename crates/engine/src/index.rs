//! Index-backed access paths: plan rewriting and runtime access.
//!
//! [`apply_indexes`] is a physical rewrite pass over a compiled
//! [`PhysPlan`]: it recognizes document-rooted path scans and hash
//! semi/anti joins whose build side is such a scan, and replaces them
//! with [`PhysPlan::IndexScan`] / [`PhysPlan::IndexJoin`] operators
//! backed by the catalog's [`xmldb::PathIndex`] / [`xmldb::ValueIndex`].
//!
//! The pass is *conservative by construction*: a conversion happens only
//! when the replaced subtree provably produces the same tuple sequence —
//! same nodes, same document order, same duplicate structure, same
//! residual-evaluation order — so every converted plan stays
//! byte-identical in rows and Ξ output to its scan-based original (the
//! differential suite `tests/index_vs_scan.rs` enforces this across the
//! paper's workloads and both executors). Anything the tracer cannot
//! prove is left untouched and keeps scanning. Error behaviour is
//! guarded too: build-side pipelines are replayed only for probed
//! candidates, so scalars that can *error* on unprobed rows
//! (arithmetic, `decimal()`) decline the conversion — see `replay_safe`
//! — keeping failure behaviour aligned with the scan plan, not just
//! success behaviour.
//!
//! Runtime access lives here too: `scan_items` resolves a pattern
//! through the path index, and [`probe_key_of`] mirrors the hash
//! operators' key conversion ([`crate::key::KeyVal`]) so a value-index
//! probe hits exactly the nodes the hash bucket lookup would have found.

use std::collections::BTreeSet;

use nal::eval::{EvalCtx, EvalError, EvalResult};
use nal::{CmpOp, NodeRef, Scalar, Sym, Value};
use xmldb::{Catalog, PathPattern, PatternStep, ValueKey};
use xpath::{Axis, NameTest, Path};

use crate::plan::{BuildOp, JoinKind, PhysPlan, RangeProbe, SeedBinding};

/// Convert a structural path into its index-side pattern form. Total:
/// every axis/test combination is representable (resolvability is
/// checked by the index at lookup time).
pub fn pattern_of(path: &Path) -> PathPattern {
    let steps = path
        .steps
        .iter()
        .map(|s| {
            let name = match &s.test {
                NameTest::Any => None,
                NameTest::Name(n) => Some(n.clone()),
            };
            match s.axis {
                Axis::Child => PatternStep::Child(name),
                Axis::Descendant => PatternStep::Descendant(name),
                Axis::Attribute => PatternStep::Attribute(name),
            }
        })
        .collect();
    PathPattern::new(steps)
}

/// The value-index probe key of an attribute value — the exact mirror of
/// [`crate::key::KeyVal::from_value`], so index probes and hash-bucket
/// lookups agree on every input (including the deliberate misses: a
/// numeric probe never equals a string build key).
pub fn probe_key_of(v: &Value, catalog: &Catalog) -> ValueKey {
    match v.atomize(catalog) {
        Value::Null => ValueKey::Null,
        Value::Bool(b) => ValueKey::Bool(b),
        Value::Int(i) => ValueKey::num(i as f64),
        Value::Dec(d) => ValueKey::num(d.0),
        Value::Str(s) => ValueKey::Str(s.to_string()),
        other => ValueKey::Other(format!("{other}")),
    }
}

// ---------------------------------------------------------------------
// Runtime access
// ---------------------------------------------------------------------

/// Resolve `uri` to its catalog id, or a standard evaluation error.
pub(crate) fn doc_id_of(uri: &str, ctx: &EvalCtx<'_>) -> EvalResult<xmldb::DocId> {
    ctx.catalog
        .by_uri(uri)
        .ok_or_else(|| EvalError::new(format!("unknown document `{uri}`")))
}

/// The item sequence an [`PhysPlan::IndexScan`] fans out: the pattern's
/// nodes in document order, or (with `distinct`) their first-occurrence
/// distinct atomized values — exactly what the replaced Υ subscript
/// produced, without touching the document tree.
pub(crate) fn scan_items(
    uri: &str,
    pattern: &PathPattern,
    distinct: bool,
    ctx: &mut EvalCtx<'_>,
) -> EvalResult<Vec<Value>> {
    let id = doc_id_of(uri, ctx)?;
    let pidx = ctx.catalog.path_index(id);
    ctx.metrics.index_lookups += 1;
    let nodes = pidx.lookup(pattern).ok_or_else(|| {
        EvalError::new(format!(
            "pattern `{pattern}` is not resolvable by the path index"
        ))
    })?;
    if !nodes.is_empty() {
        ctx.metrics.index_hits += 1;
    }
    if distinct {
        let doc = ctx.catalog.doc(id).clone();
        let values: Vec<Value> = nodes
            .into_iter()
            .map(|n| Value::str(doc.string_value(n)))
            .collect();
        Ok(nal::sequence::dedup_first_occurrence(&values))
    } else {
        Ok(nodes
            .into_iter()
            .map(|node| Value::Node(NodeRef { doc: id, node }))
            .collect())
    }
}

// ---------------------------------------------------------------------
// The rewrite pass
// ---------------------------------------------------------------------

/// Rewrite a compiled plan to use index-backed access paths wherever the
/// conversion is provably output-preserving. `catalog` gates conversions
/// on the referenced document actually being registered.
pub fn apply_indexes(plan: PhysPlan, catalog: &Catalog) -> PhysPlan {
    // Try a conversion at this node first (the tracers inspect the
    // *unconverted* children), then recurse.
    let plan = try_convert(plan, catalog);
    map_children(plan, &mut |child| apply_indexes(child, catalog))
}

fn try_convert(plan: PhysPlan, catalog: &Catalog) -> PhysPlan {
    match plan {
        PhysPlan::UnnestMap { input, attr, value } => {
            match doc_rooted_path(&value, &input, false) {
                Some((uri, path, distinct)) if scan_convertible(&uri, &path, catalog) => {
                    PhysPlan::IndexScan {
                        input,
                        attr,
                        uri,
                        pattern: pattern_of(&path),
                        distinct,
                    }
                }
                _ => PhysPlan::UnnestMap { input, attr, value },
            }
        }
        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            kind,
            pad,
        } => {
            if matches!(kind, JoinKind::Semi | JoinKind::Anti) && left_keys.len() == 1 {
                // Band case first: inequality residual conjuncts on the
                // join key column become index-side range filters —
                // checked once per candidate key, before any build row
                // is reconstructed — leaving only the non-key residual
                // to replay per row.
                if let Some((ranges, rest_residual, recipe)) =
                    trace_band_recipe(&right, right_keys[0], residual.as_ref())
                {
                    if scan_convertible(&recipe.uri, &recipe.path, catalog) {
                        return PhysPlan::IndexRangeJoin {
                            left,
                            eq_probe: Some(left_keys[0]),
                            ranges,
                            key_attr: recipe.key_attr,
                            uri: recipe.uri,
                            pattern: pattern_of(&recipe.path),
                            seeds: recipe.seeds,
                            ops: recipe.ops,
                            residual: rest_residual,
                            kind,
                        };
                    }
                }
                if let Some(recipe) = trace_build_recipe(&right, right_keys[0], residual.as_ref()) {
                    if scan_convertible(&recipe.uri, &recipe.path, catalog) {
                        return PhysPlan::IndexJoin {
                            left,
                            probe: left_keys[0],
                            key_attr: recipe.key_attr,
                            uri: recipe.uri,
                            pattern: pattern_of(&recipe.path),
                            seeds: recipe.seeds,
                            ops: recipe.ops,
                            residual,
                            kind,
                        };
                    }
                }
            }
            PhysPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                residual,
                kind,
                pad,
            }
        }
        PhysPlan::LoopJoin {
            left,
            right,
            pred,
            kind,
            pad,
        } => {
            // Non-equi quantifier joins: inequality conjuncts against one
            // document path column probe the value index's ordered key
            // space instead of scanning the build per probe tuple.
            if matches!(kind, JoinKind::Semi | JoinKind::Anti) {
                if let Some((ranges, residual, recipe)) = trace_range_recipe(&right, &pred) {
                    if scan_convertible(&recipe.uri, &recipe.path, catalog) {
                        return PhysPlan::IndexRangeJoin {
                            left,
                            eq_probe: None,
                            ranges,
                            key_attr: recipe.key_attr,
                            uri: recipe.uri,
                            pattern: pattern_of(&recipe.path),
                            seeds: recipe.seeds,
                            ops: recipe.ops,
                            residual,
                            kind,
                        };
                    }
                }
            }
            PhysPlan::LoopJoin {
                left,
                right,
                pred,
                kind,
                pad,
            }
        }
        other => other,
    }
}

/// Split a loop join's predicate into `side θ key` range conjuncts over
/// one build column plus a replay-safe residual, and trace that column
/// to a build recipe. The residual runs only for in-range candidates —
/// the loop join evaluated the whole predicate over *every* build row —
/// so every leftover conjunct must be replay-safe (pure and total) for
/// the skipped evaluations to be unobservable.
fn trace_range_recipe(
    right: &PhysPlan,
    pred: &Scalar,
) -> Option<(Vec<RangeProbe>, Option<Scalar>, BuildRecipe)> {
    let r_attrs = phys_attrs(right)?;
    let mut key: Option<Sym> = None;
    let mut ranges: Vec<RangeProbe> = Vec::new();
    let mut rest: Vec<Scalar> = Vec::new();
    for c in pred.conjuncts() {
        match as_range_conjunct(c, &r_attrs) {
            Some((k, probe)) if key.is_none() || key == Some(k) => {
                key = Some(k);
                ranges.push(probe);
            }
            _ => rest.push(c.clone()),
        }
    }
    let key = key?;
    if !rest.iter().all(replay_safe) {
        return None;
    }
    let residual = if rest.is_empty() {
        None
    } else {
        Some(Scalar::conjoin(rest))
    };
    let recipe = trace_build_recipe(right, key, residual.as_ref())?;
    Some((ranges, residual, recipe))
}

/// The hash-join band variant of [`trace_range_recipe`]: keep the
/// equality key as the typed bucket probe, peel inequality residual
/// conjuncts **on that same key column** into range filters, and require
/// the remaining residual to be replay-safe (the candidate set shrinks,
/// so skipped residual evaluations must be unobservable).
fn trace_band_recipe(
    right: &PhysPlan,
    join_key: Sym,
    residual: Option<&Scalar>,
) -> Option<(Vec<RangeProbe>, Option<Scalar>, BuildRecipe)> {
    let residual = residual?;
    let r_attrs = phys_attrs(right)?;
    let mut ranges: Vec<RangeProbe> = Vec::new();
    let mut rest: Vec<Scalar> = Vec::new();
    for c in residual.conjuncts() {
        match as_range_conjunct(c, &r_attrs) {
            Some((k, probe)) if k == join_key => ranges.push(probe),
            _ => rest.push(c.clone()),
        }
    }
    if ranges.is_empty() || !rest.iter().all(replay_safe) {
        return None;
    }
    let rest_residual = if rest.is_empty() {
        None
    } else {
        Some(Scalar::conjoin(rest))
    };
    let recipe = trace_build_recipe(right, join_key, rest_residual.as_ref())?;
    Some((ranges, rest_residual, recipe))
}

/// Recognize `side θ key` (or `key θ side`, flipped) with θ ∈
/// {=, <, ≤, >, ≥}, where `key` is a bare build-side attribute and
/// `side` is a replay-safe scalar free of build-side attributes. `≠`
/// stays residual: its key set is two disjoint ranges, not one.
fn as_range_conjunct(c: &Scalar, r_attrs: &BTreeSet<Sym>) -> Option<(Sym, RangeProbe)> {
    let Scalar::Cmp(op, x, y) = c else {
        return None;
    };
    if matches!(op, CmpOp::Ne) {
        return None;
    }
    let as_key = |s: &Scalar| match s {
        Scalar::Attr(a) if r_attrs.contains(a) => Some(*a),
        _ => None,
    };
    let side_ok =
        |s: &Scalar| replay_safe(s) && s.free_attrs().iter().all(|a| !r_attrs.contains(a));
    if let Some(k) = as_key(y) {
        if side_ok(x) {
            return Some((
                k,
                RangeProbe {
                    side: (**x).clone(),
                    op: *op,
                },
            ));
        }
    }
    if let Some(k) = as_key(x) {
        if side_ok(y) {
            return Some((
                k,
                RangeProbe {
                    side: (**y).clone(),
                    op: op.flip(),
                },
            ));
        }
    }
    None
}

/// Output attribute set of a build-side plan, for the operator shapes
/// the build tracer accepts; `None` for anything whose schema this pass
/// does not model (such builds decline conversion anyway).
fn phys_attrs(plan: &PhysPlan) -> Option<BTreeSet<Sym>> {
    match plan {
        PhysPlan::Singleton => Some(BTreeSet::new()),
        PhysPlan::Map { input, attr, .. }
        | PhysPlan::UnnestMap { input, attr, .. }
        | PhysPlan::IndexScan { input, attr, .. } => {
            let mut a = phys_attrs(input)?;
            a.insert(*attr);
            Some(a)
        }
        PhysPlan::Select { input, .. } => phys_attrs(input),
        PhysPlan::Project { input, op } => {
            let a = phys_attrs(input)?;
            Some(match op {
                nal::ProjOp::Cols(cols) | nal::ProjOp::DistinctCols(cols) => {
                    cols.iter().copied().filter(|c| a.contains(c)).collect()
                }
                nal::ProjOp::Drop(cols) => a.into_iter().filter(|x| !cols.contains(x)).collect(),
                // Π_rename keeps unmatched columns; Π^D_rename projects
                // onto the renamed columns first.
                nal::ProjOp::Rename(pairs) => a
                    .into_iter()
                    .map(|x| {
                        pairs
                            .iter()
                            .find(|(_, old)| *old == x)
                            .map(|(new, _)| *new)
                            .unwrap_or(x)
                    })
                    .collect(),
                nal::ProjOp::DistinctRename(pairs) => pairs
                    .iter()
                    .filter(|(_, old)| a.contains(old))
                    .map(|(new, _)| *new)
                    .collect(),
            })
        }
        _ => None,
    }
}

/// A conversion is worthwhile and safe when the document is registered
/// and the pattern is resolvable by the path index.
fn scan_convertible(uri: &str, path: &Path, catalog: &Catalog) -> bool {
    catalog.by_uri(uri).is_some() && pattern_of(path).is_resolvable()
}

/// Resolve an Υ subscript to a document-rooted path: `doc(uri)path`
/// directly, or `Attr(d)path` where `d` is bound to `doc(uri)` somewhere
/// below in the input chain. `distinct` tracks a `distinct-values`
/// wrapper. Returns `None` for anything else — in particular for paths
/// over per-tuple context nodes, which are genuinely tuple-dependent.
fn doc_rooted_path(
    value: &Scalar,
    input: &PhysPlan,
    distinct: bool,
) -> Option<(String, Path, bool)> {
    match value {
        Scalar::DistinctItems(inner) => doc_rooted_path(inner, input, true),
        Scalar::Path(base, path) => match base.as_ref() {
            Scalar::Doc(uri) => Some((uri.clone(), path.clone(), distinct)),
            Scalar::Attr(d) => {
                let uri = resolve_doc_binding(input, *d)?;
                Some((uri, path.clone(), distinct))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Walk an input chain looking for the binding of `d`. Only a `Map` to
/// `doc(uri)` counts; any operator that could rebind or originate `d`
/// differently makes the walk decline.
fn resolve_doc_binding(plan: &PhysPlan, d: Sym) -> Option<String> {
    match plan {
        PhysPlan::Map { input, attr, value } => {
            if *attr == d {
                match value {
                    Scalar::Doc(uri) => Some(uri.clone()),
                    _ => None,
                }
            } else {
                resolve_doc_binding(input, d)
            }
        }
        PhysPlan::UnnestMap { input, attr, .. } | PhysPlan::IndexScan { input, attr, .. } => {
            if *attr == d {
                None
            } else {
                resolve_doc_binding(input, d)
            }
        }
        PhysPlan::Select { input, .. } => resolve_doc_binding(input, d),
        PhysPlan::Project { input, op } => {
            // The name must pass through unrenamed and undropped.
            let survives = match op {
                nal::ProjOp::Cols(cols) | nal::ProjOp::DistinctCols(cols) => cols.contains(&d),
                nal::ProjOp::Drop(cols) => !cols.contains(&d),
                nal::ProjOp::Rename(pairs) | nal::ProjOp::DistinctRename(pairs) => {
                    pairs.iter().all(|(new, _)| *new != d)
                }
            };
            if survives {
                resolve_doc_binding(input, d)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// What the tracer learned about a semi/anti join's build side: the key
/// column is the nodes of one document-rooted path (in document order,
/// never dropped before the key binding), plus the recipe to rebuild the
/// full build rows per candidate node.
struct BuildRecipe {
    uri: String,
    /// Composite document-rooted path of the key column.
    path: Path,
    /// Attribute the key binding introduced (post-`Project` renames are
    /// replayed by the recorded ops, so this is the *binding* name).
    key_attr: Sym,
    /// Reconstructable bindings below the key, in chain order.
    seeds: Vec<SeedBinding>,
    /// Operators above the key binding, in execution order.
    ops: Vec<BuildOp>,
}

/// Prove that a semi/anti join's build side is an indexable document
/// path scan wrapped in replayable operators.
///
/// Walking down from the build root, the accepted shape is
///
/// ```text
/// (Project | Select | Map | UnnestMap)*      — the replayable pipeline
///   UnnestMap(key ← path over doc/ancestor)  — the key binding
///     [UnnestMap(ancestor ← …)]*             — invertible ancestor chain
///       [Map(d ← doc(uri))]* over □          — the singleton seed
/// ```
///
/// with these conditions (each guards an equivalence the differential
/// suite would otherwise catch):
///
/// * pipeline scalars are pure (no nested algebra → no Ξ writes, no
///   correlated re-evaluation) and never rebind a seed/key attribute,
/// * pipeline `Project`s keep the key column (renames are replayed;
///   distinct variants only as the topmost operator of a pipeline with
///   no residual, where dedup cannot change existence),
/// * every ancestor binding between the document and the key uses
///   child/attribute steps only (fixed depth → reconstructable by
///   parent navigation); a descendant step is accepted only when
///   nothing references that ancestor,
/// * the chain roots at `□`, so every key-path node occurs in exactly
///   one pre-pipeline row.
///
/// Anything else — selections below the key, joins, groupings, μ,
/// `rel(…)` — declines, and the hash join keeps scanning.
fn trace_build_recipe(
    plan: &PhysPlan,
    join_key: Sym,
    residual: Option<&Scalar>,
) -> Option<BuildRecipe> {
    // Phase 1: peel the pipeline, tracking the key column's name down
    // through renames.
    let mut ops_rev: Vec<BuildOp> = Vec::new();
    let mut key = join_key;
    let mut cur = plan;
    let (key_binding_value, key_binding_input) = loop {
        match cur {
            PhysPlan::Project { input, op } => {
                match op {
                    nal::ProjOp::Cols(cols) | nal::ProjOp::DistinctCols(cols) => {
                        if !cols.contains(&key) {
                            return None;
                        }
                    }
                    nal::ProjOp::Drop(cols) => {
                        if cols.contains(&key) {
                            return None;
                        }
                    }
                    nal::ProjOp::Rename(pairs) | nal::ProjOp::DistinctRename(pairs) => {
                        key = pairs
                            .iter()
                            .find(|(new, _)| *new == key)
                            .map(|(_, old)| *old)
                            .unwrap_or(key);
                    }
                }
                // Distinct projections atomize and dedup — existence-
                // preserving only when nothing downstream (an op above,
                // or a residual) looks at the re-typed values.
                let is_distinct = matches!(
                    op,
                    nal::ProjOp::DistinctCols(_) | nal::ProjOp::DistinctRename(_)
                );
                if is_distinct && (!ops_rev.is_empty() || residual.is_some()) {
                    return None;
                }
                if !is_distinct {
                    ops_rev.push(BuildOp::Project(op.clone()));
                }
                cur = input;
            }
            PhysPlan::Select { input, pred } => {
                if !replay_safe(pred) {
                    return None;
                }
                ops_rev.push(BuildOp::Select(pred.clone()));
                cur = input;
            }
            PhysPlan::Map { input, attr, value } if *attr != key => {
                if !replay_safe(value) {
                    return None;
                }
                ops_rev.push(BuildOp::Map(*attr, value.clone()));
                cur = input;
            }
            PhysPlan::UnnestMap { input, attr, value } if *attr != key => {
                if !replay_safe(value) {
                    return None;
                }
                ops_rev.push(BuildOp::UnnestMap(*attr, value.clone()));
                cur = input;
            }
            PhysPlan::UnnestMap { input, attr, value } if *attr == key => {
                break (value, input);
            }
            _ => return None,
        }
    };

    // Phase 2: resolve the key binding's subscript to a document-rooted
    // composite path, collecting ancestor/doc seeds.
    let mut ops: Vec<BuildOp> = ops_rev.into_iter().rev().collect();
    let distinct_key = matches!(key_binding_value, Scalar::DistinctItems(_));
    if distinct_key && (!ops.is_empty() || residual.is_some()) {
        // Distinct key values are atomized strings, not nodes; only the
        // bare existence probe is equivalent.
        return None;
    }
    let chain = resolve_key_chain(key_binding_value, key_binding_input)?;

    // Phase 3: reconstructability. The replayed ops and the residual run
    // over exactly the tuple shape the hash plan had, so errors and
    // shadowing replicate identically — the only divergence risk is an
    // attribute bound below the key that parent navigation cannot
    // rebuild (variable depth). Such a binding is fine only if nothing
    // reads it.
    let mut referenced: BTreeSet<Sym> = BTreeSet::new();
    for op in &ops {
        match op {
            BuildOp::Map(_, v) | BuildOp::UnnestMap(_, v) => referenced.extend(v.free_attrs()),
            BuildOp::Select(p) => referenced.extend(p.free_attrs()),
            BuildOp::Project(_) => {}
        }
    }
    if let Some(r) = residual {
        referenced.extend(r.free_attrs());
    }
    let mut seeds = Vec::new();
    for b in chain.bindings {
        match b {
            ChainBinding::DocNode(a) => seeds.push(SeedBinding::DocNode(a)),
            ChainBinding::Ancestor(a, Some(levels)) => seeds.push(SeedBinding::Ancestor(a, levels)),
            ChainBinding::Ancestor(a, None) => {
                if referenced.contains(&a) {
                    return None;
                }
            }
        }
    }
    if distinct_key {
        // Bare distinct existence probe: the pipeline is already empty.
        ops.clear();
    }
    Some(BuildRecipe {
        uri: chain.uri,
        path: chain.path,
        key_attr: key,
        seeds,
        ops,
    })
}

/// Is this scalar safe to replay lazily, per candidate, instead of
/// eagerly over every build row?
///
/// Two requirements. No nested algebra (a nested quantifier/aggregate
/// could write Ξ output or be arbitrarily expensive per candidate). And
/// no *eagerly-erroring* constructs: the index join only replays the
/// pipeline for probed candidates, so a scalar that would have errored
/// on some never-probed build row (scan plan: query fails) must not be
/// deferred (index plan: query succeeds). Arithmetic and `decimal()`
/// error on non-numeric input; comparisons, `contains()`, paths over
/// the chain's node bindings, and the other builtins are total on the
/// values these chains produce. The predicate itself lives in
/// [`nal::Scalar::replay_safe`], shared with the cost model so pricing
/// never assumes a conversion this pass declines.
fn replay_safe(s: &Scalar) -> bool {
    s.replay_safe()
}

/// A binding discovered below the key while resolving its path.
enum ChainBinding {
    DocNode(Sym),
    /// `None` depth = not reconstructable (descendant step in between).
    Ancestor(Sym, Option<usize>),
}

struct KeyChain {
    uri: String,
    path: Path,
    /// Bindings below the key, outermost (nearest the key) first.
    bindings: Vec<ChainBinding>,
}

/// Resolve the key binding's subscript down to `doc(uri)`, composing
/// relative paths and recording how each intermediate binding can be
/// reconstructed from a key node.
fn resolve_key_chain(value: &Scalar, input: &PhysPlan) -> Option<KeyChain> {
    match value {
        Scalar::DistinctItems(inner) => resolve_key_chain(inner, input),
        Scalar::Path(base, path) => match base.as_ref() {
            Scalar::Doc(uri) => singleton_seed_bindings(input).map(|bindings| KeyChain {
                uri: uri.clone(),
                path: path.clone(),
                bindings,
            }),
            Scalar::Attr(v) => {
                if let Some(uri) = resolve_doc_binding(input, *v) {
                    let mut bindings = singleton_seed_bindings(input)?;
                    // `v` itself is one of the doc bindings; make sure it
                    // is present even if shadowed oddly.
                    if !bindings
                        .iter()
                        .any(|b| matches!(b, ChainBinding::DocNode(a) if *a == *v))
                    {
                        bindings.push(ChainBinding::DocNode(*v));
                    }
                    return Some(KeyChain {
                        uri,
                        path: path.clone(),
                        bindings,
                    });
                }
                // `v` must be bound by a directly nested Υ — the
                // ancestor chain of the key.
                let PhysPlan::UnnestMap {
                    input: deeper,
                    attr,
                    value: inner_value,
                } = input
                else {
                    return None;
                };
                if *attr != *v {
                    return None;
                }
                let inner = resolve_key_chain(inner_value, deeper)?;
                // Depth of `v` above the key: one level per child or
                // attribute step; a descendant step makes it variable.
                let fixed_depth = path
                    .steps
                    .iter()
                    .all(|s| matches!(s.axis, Axis::Child | Axis::Attribute));
                let mut bindings = vec![ChainBinding::Ancestor(
                    *v,
                    fixed_depth.then_some(path.steps.len()),
                )];
                // Deeper ancestors sit further from the key: shift their
                // depths by this binding's (only possible when fixed).
                for b in inner.bindings {
                    bindings.push(match b {
                        ChainBinding::Ancestor(a, Some(d)) if fixed_depth => {
                            ChainBinding::Ancestor(a, Some(d + path.steps.len()))
                        }
                        ChainBinding::Ancestor(a, _) => ChainBinding::Ancestor(a, None),
                        doc => doc,
                    });
                }
                Some(KeyChain {
                    uri: inner.uri,
                    path: inner.path.join(path),
                    bindings,
                })
            }
            _ => None,
        },
        _ => None,
    }
}

/// The doc-binding attributes of a `□`-rooted seed chain, or `None` if
/// the chain is anything else (which would change row multiplicities).
fn singleton_seed_bindings(plan: &PhysPlan) -> Option<Vec<ChainBinding>> {
    match plan {
        PhysPlan::Singleton => Some(Vec::new()),
        PhysPlan::Map { input, attr, value } => {
            if !matches!(value, Scalar::Doc(_)) {
                return None;
            }
            let mut out = singleton_seed_bindings(input)?;
            out.push(ChainBinding::DocNode(*attr));
            Some(out)
        }
        _ => None,
    }
}

/// Rebuild a plan with every direct child mapped through `f`.
fn map_children(plan: PhysPlan, f: &mut impl FnMut(PhysPlan) -> PhysPlan) -> PhysPlan {
    let fb = |b: Box<PhysPlan>, f: &mut dyn FnMut(PhysPlan) -> PhysPlan| Box::new(f(*b));
    match plan {
        leaf @ (PhysPlan::Singleton | PhysPlan::Literal(_) | PhysPlan::AttrRel(_)) => leaf,
        PhysPlan::Select { input, pred } => PhysPlan::Select {
            input: fb(input, f),
            pred,
        },
        PhysPlan::Project { input, op } => PhysPlan::Project {
            input: fb(input, f),
            op,
        },
        PhysPlan::Map { input, attr, value } => PhysPlan::Map {
            input: fb(input, f),
            attr,
            value,
        },
        PhysPlan::Cross { left, right } => PhysPlan::Cross {
            left: fb(left, f),
            right: fb(right, f),
        },
        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            kind,
            pad,
        } => PhysPlan::HashJoin {
            left: fb(left, f),
            right: fb(right, f),
            left_keys,
            right_keys,
            residual,
            kind,
            pad,
        },
        PhysPlan::LoopJoin {
            left,
            right,
            pred,
            kind,
            pad,
        } => PhysPlan::LoopJoin {
            left: fb(left, f),
            right: fb(right, f),
            pred,
            kind,
            pad,
        },
        PhysPlan::HashGroupUnary {
            input,
            g,
            by,
            f: gf,
        } => PhysPlan::HashGroupUnary {
            input: fb(input, f),
            g,
            by,
            f: gf,
        },
        PhysPlan::ThetaGroupUnary {
            input,
            g,
            by,
            theta,
            f: gf,
        } => PhysPlan::ThetaGroupUnary {
            input: fb(input, f),
            g,
            by,
            theta,
            f: gf,
        },
        PhysPlan::HashGroupBinary {
            left,
            right,
            g,
            left_on,
            right_on,
            f: gf,
        } => PhysPlan::HashGroupBinary {
            left: fb(left, f),
            right: fb(right, f),
            g,
            left_on,
            right_on,
            f: gf,
        },
        PhysPlan::ThetaGroupBinary {
            left,
            right,
            g,
            left_on,
            theta,
            right_on,
            f: gf,
        } => PhysPlan::ThetaGroupBinary {
            left: fb(left, f),
            right: fb(right, f),
            g,
            left_on,
            theta,
            right_on,
            f: gf,
        },
        PhysPlan::Unnest {
            input,
            attr,
            distinct,
            preserve_empty,
            inner_attrs,
        } => PhysPlan::Unnest {
            input: fb(input, f),
            attr,
            distinct,
            preserve_empty,
            inner_attrs,
        },
        PhysPlan::UnnestMap { input, attr, value } => PhysPlan::UnnestMap {
            input: fb(input, f),
            attr,
            value,
        },
        PhysPlan::XiSimple { input, cmds } => PhysPlan::XiSimple {
            input: fb(input, f),
            cmds,
        },
        PhysPlan::XiGroup {
            input,
            by,
            head,
            body,
            tail,
        } => PhysPlan::XiGroup {
            input: fb(input, f),
            by,
            head,
            body,
            tail,
        },
        PhysPlan::IndexScan {
            input,
            attr,
            uri,
            pattern,
            distinct,
        } => PhysPlan::IndexScan {
            input: fb(input, f),
            attr,
            uri,
            pattern,
            distinct,
        },
        PhysPlan::IndexJoin {
            left,
            probe,
            key_attr,
            uri,
            pattern,
            seeds,
            ops,
            residual,
            kind,
        } => PhysPlan::IndexJoin {
            left: fb(left, f),
            probe,
            key_attr,
            uri,
            pattern,
            seeds,
            ops,
            residual,
            kind,
        },
        PhysPlan::IndexRangeJoin {
            left,
            eq_probe,
            ranges,
            key_attr,
            uri,
            pattern,
            seeds,
            ops,
            residual,
            kind,
        } => PhysPlan::IndexRangeJoin {
            left: fb(left, f),
            eq_probe,
            ranges,
            key_attr,
            uri,
            pattern,
            seeds,
            ops,
            residual,
            kind,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nal::expr::builder::*;
    use nal::CmpOp;
    use xmldb::gen::{gen_bib, BibConfig};
    use xpath::parse_path;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register(gen_bib(&BibConfig {
            books: 10,
            authors_per_book: 2,
            ..BibConfig::default()
        }));
        cat
    }

    fn p(s: &str) -> Path {
        parse_path(s).unwrap()
    }

    #[test]
    fn doc_rooted_scan_converts() {
        let cat = catalog();
        let e = doc_scan("d", "bib.xml").unnest_map("b", Scalar::attr("d").path(p("//book")));
        let plan = apply_indexes(crate::compile(&e), &cat);
        let ex = plan.explain();
        assert!(ex.starts_with("IndexScan"), "{ex}");
    }

    #[test]
    fn distinct_scan_converts_with_flag() {
        let cat = catalog();
        let e = doc_scan("d", "bib.xml")
            .unnest_map("a", Scalar::attr("d").path(p("//author")).distinct());
        let plan = apply_indexes(crate::compile(&e), &cat);
        let PhysPlan::IndexScan { distinct, .. } = &plan else {
            panic!("{}", plan.explain());
        };
        assert!(distinct);
    }

    #[test]
    fn per_tuple_paths_do_not_convert() {
        let cat = catalog();
        // b is bound per tuple: the author step depends on the book.
        let e = doc_scan("d", "bib.xml")
            .unnest_map("b", Scalar::attr("d").path(p("//book")))
            .unnest_map("a", Scalar::attr("b").path(p("/author")));
        let plan = apply_indexes(crate::compile(&e), &cat);
        let PhysPlan::UnnestMap { input, .. } = &plan else {
            panic!("outer Υ must stay scan-based: {}", plan.explain());
        };
        assert!(
            matches!(input.as_ref(), PhysPlan::IndexScan { .. }),
            "inner doc-rooted Υ must convert: {}",
            plan.explain()
        );
    }

    #[test]
    fn unknown_documents_do_not_convert() {
        let cat = Catalog::new();
        let e = doc_scan("d", "bib.xml").unnest_map("b", Scalar::attr("d").path(p("//book")));
        let plan = apply_indexes(crate::compile(&e), &cat);
        assert!(matches!(plan, PhysPlan::UnnestMap { .. }));
    }

    #[test]
    fn semi_join_on_doc_scan_build_converts() {
        let cat = catalog();
        let probe =
            doc_scan("d1", "bib.xml").unnest_map("t1", Scalar::attr("d1").path(p("//book/title")));
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("t2", Scalar::attr("d2").path(p("//book/title")))
            .project(&["t2"]);
        let e = probe.semijoin(build, Scalar::attr_cmp(CmpOp::Eq, "t1", "t2"));
        let plan = apply_indexes(crate::compile(&e), &cat);
        let PhysPlan::IndexJoin { kind, pattern, .. } = &plan else {
            panic!("{}", plan.explain());
        };
        assert_eq!(*kind, JoinKind::Semi);
        assert_eq!(pattern.key(), "//book/title");
    }

    #[test]
    fn composed_build_chain_converts() {
        let cat = catalog();
        let probe = doc_scan("d1", "bib.xml")
            .unnest_map("a1", Scalar::attr("d1").path(p("//author")).distinct());
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("b2", Scalar::attr("d2").path(p("//book")))
            .unnest_map("a2", Scalar::attr("b2").path(p("/author")))
            .project(&["a2"]);
        let e = probe.antijoin(build, Scalar::attr_cmp(CmpOp::Eq, "a1", "a2"));
        let plan = apply_indexes(crate::compile(&e), &cat);
        let PhysPlan::IndexJoin { kind, pattern, .. } = &plan else {
            panic!("{}", plan.explain());
        };
        assert_eq!(*kind, JoinKind::Anti);
        assert_eq!(pattern.key(), "//book/author");
    }

    #[test]
    fn residual_over_reconstructed_ancestor_converts() {
        let cat = catalog();
        let probe =
            doc_scan("d1", "bib.xml").unnest_map("t1", Scalar::attr("d1").path(p("//book/title")));
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("b2", Scalar::attr("d2").path(p("//book")))
            .unnest_map("t2", Scalar::attr("b2").path(p("/title")));
        // The residual touches b2 — one fixed child step above the key,
        // so the index join reconstructs it by parent navigation.
        let pred = Scalar::attr_cmp(CmpOp::Eq, "t1", "t2").and(Scalar::cmp(
            CmpOp::Gt,
            Scalar::attr("b2").path(p("/@year")),
            Scalar::int(1990),
        ));
        let e = probe.semijoin(build, pred);
        let plan = apply_indexes(crate::compile(&e), &cat);
        let PhysPlan::IndexJoin { seeds, .. } = &plan else {
            panic!("{}", plan.explain());
        };
        assert!(
            seeds.iter().any(
                |s| matches!(s, crate::plan::SeedBinding::Ancestor(a, 1) if *a == Sym::new("b2"))
            ),
            "b2 must be seeded as the key's parent"
        );
    }

    #[test]
    fn variable_depth_ancestor_reference_declines() {
        let cat = catalog();
        let probe =
            doc_scan("d1", "bib.xml").unnest_map("l1", Scalar::attr("d1").path(p("//last")));
        // l2 sits a *descendant* step below b2: depth is variable, so b2
        // cannot be reconstructed — and the residual needs it.
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("b2", Scalar::attr("d2").path(p("//book")))
            .unnest_map("l2", Scalar::attr("b2").path(p("//last")));
        let pred = Scalar::attr_cmp(CmpOp::Eq, "l1", "l2").and(Scalar::cmp(
            CmpOp::Gt,
            Scalar::attr("b2").path(p("/@year")),
            Scalar::int(1990),
        ));
        let e = probe.semijoin(build, pred);
        let plan = apply_indexes(crate::compile(&e), &cat);
        assert!(
            matches!(plan, PhysPlan::HashJoin { .. }),
            "{}",
            plan.explain()
        );
        // Without the reference the same shape converts.
        let probe2 =
            doc_scan("d1", "bib.xml").unnest_map("l1", Scalar::attr("d1").path(p("//last")));
        let build2 = doc_scan("d2", "bib.xml")
            .unnest_map("b2", Scalar::attr("d2").path(p("//book")))
            .unnest_map("l2", Scalar::attr("b2").path(p("//last")));
        let e = probe2.semijoin(build2, Scalar::attr_cmp(CmpOp::Eq, "l1", "l2"));
        let plan = apply_indexes(crate::compile(&e), &cat);
        assert!(
            matches!(plan, PhysPlan::IndexJoin { .. }),
            "{}",
            plan.explain()
        );
    }

    #[test]
    fn nested_expressions_in_build_filters_decline() {
        let cat = catalog();
        let probe =
            doc_scan("d1", "bib.xml").unnest_map("t1", Scalar::attr("d1").path(p("//book/title")));
        // A quantifier inside the build-side filter: not replayable.
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("t2", Scalar::attr("d2").path(p("//book/title")))
            .select(Scalar::Exists {
                var: Sym::new("x"),
                range: Box::new(nal::expr::builder::singleton().map("y", Scalar::int(1))),
                pred: Box::new(Scalar::Const(Value::Bool(true))),
            })
            .project(&["t2"]);
        let e = probe.semijoin(build, Scalar::attr_cmp(CmpOp::Eq, "t1", "t2"));
        let plan = apply_indexes(crate::compile(&e), &cat);
        assert!(
            matches!(plan, PhysPlan::HashJoin { .. }),
            "{}",
            plan.explain()
        );
    }

    #[test]
    fn erroring_scalars_in_build_pipelines_decline() {
        let cat = catalog();
        let probe =
            doc_scan("d1", "bib.xml").unnest_map("t1", Scalar::attr("d1").path(p("//book/title")));
        // Arithmetic can error on non-numeric rows the index join would
        // never replay — the scan plan's failure must be preserved.
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("t2", Scalar::attr("d2").path(p("//book/title")))
            .select(Scalar::cmp(
                CmpOp::Gt,
                Scalar::Arith(
                    nal::ArithOp::Mul,
                    Box::new(Scalar::attr("t2")),
                    Box::new(Scalar::int(2)),
                ),
                Scalar::int(0),
            ))
            .project(&["t2"]);
        let e = probe.semijoin(build, Scalar::attr_cmp(CmpOp::Eq, "t1", "t2"));
        let plan = apply_indexes(crate::compile(&e), &cat);
        assert!(
            matches!(plan, PhysPlan::HashJoin { .. }),
            "{}",
            plan.explain()
        );
    }

    #[test]
    fn literal_build_sides_decline() {
        let cat = catalog();
        let probe =
            doc_scan("d1", "bib.xml").unnest_map("t1", Scalar::attr("d1").path(p("//book/title")));
        let build =
            nal::Expr::Literal(vec![nal::Tuple::singleton(Sym::new("t2"), Value::str("x"))])
                .project_syms(vec![Sym::new("t2")]);
        let e = probe.semijoin(build, Scalar::attr_cmp(CmpOp::Eq, "t1", "t2"));
        let plan = apply_indexes(crate::compile(&e), &cat);
        assert!(
            matches!(plan, PhysPlan::HashJoin { .. }),
            "{}",
            plan.explain()
        );
    }

    #[test]
    fn residual_over_build_attr_converts() {
        let cat = catalog();
        let probe = doc_scan("d1", "bib.xml")
            .unnest_map("b1", Scalar::attr("d1").path(p("//book")))
            .map("t1", Scalar::attr("b1").path(p("/title")));
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("b2", Scalar::attr("d2").path(p("//book")))
            .project(&["b2"]);
        let pred = Scalar::attr_cmp(CmpOp::Eq, "t1", "b2").and(Scalar::cmp(
            CmpOp::Gt,
            Scalar::attr("b2").path(p("/@year")),
            Scalar::int(1990),
        ));
        let e = probe.semijoin(build, pred);
        let plan = apply_indexes(crate::compile(&e), &cat);
        assert!(
            matches!(
                plan,
                PhysPlan::IndexJoin {
                    residual: Some(_),
                    ..
                }
            ),
            "{}",
            plan.explain()
        );
    }

    #[test]
    fn filtered_build_side_converts_with_replayed_select() {
        let cat = catalog();
        let probe =
            doc_scan("d1", "bib.xml").unnest_map("t1", Scalar::attr("d1").path(p("//book/title")));
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("t2", Scalar::attr("d2").path(p("//book/title")))
            .select(Scalar::Call(
                nal::Func::Contains,
                vec![Scalar::attr("t2"), Scalar::string("a")],
            ))
            .project(&["t2"]);
        let e = probe.semijoin(build, Scalar::attr_cmp(CmpOp::Eq, "t1", "t2"));
        let plan = apply_indexes(crate::compile(&e), &cat);
        let PhysPlan::IndexJoin { ops, .. } = &plan else {
            panic!("{}", plan.explain());
        };
        assert!(
            ops.iter()
                .any(|o| matches!(o, crate::plan::BuildOp::Select(_))),
            "the pushed filter must be replayed per candidate"
        );
    }

    #[test]
    fn inequality_semi_and_anti_joins_convert_to_range_joins() {
        let cat = catalog();
        for (anti, op) in [
            (false, CmpOp::Lt),
            (false, CmpOp::Le),
            (true, CmpOp::Gt),
            (true, CmpOp::Ge),
        ] {
            let probe = doc_scan("d1", "bib.xml")
                .unnest_map("t1", Scalar::attr("d1").path(p("//book/title")));
            let build = doc_scan("d2", "bib.xml")
                .unnest_map("t2", Scalar::attr("d2").path(p("//book/title")))
                .project(&["t2"]);
            let pred = Scalar::attr_cmp(op, "t1", "t2");
            let e = if anti {
                probe.antijoin(build, pred)
            } else {
                probe.semijoin(build, pred)
            };
            let plan = apply_indexes(crate::compile(&e), &cat);
            let PhysPlan::IndexRangeJoin {
                eq_probe,
                ranges,
                kind,
                pattern,
                ..
            } = &plan
            else {
                panic!("{}", plan.explain());
            };
            assert_eq!(eq_probe, &None);
            assert_eq!(ranges.len(), 1);
            assert_eq!(ranges[0].op, op);
            assert_eq!(*kind, if anti { JoinKind::Anti } else { JoinKind::Semi });
            assert_eq!(pattern.key(), "//book/title");
        }
    }

    #[test]
    fn constant_bound_quantifier_joins_convert() {
        let cat = catalog();
        // `every $y in doc//book/@year satisfies $y > 1990` → anti join
        // with the negated constant bound, no probe-side attribute.
        let probe =
            doc_scan("d1", "bib.xml").unnest_map("t1", Scalar::attr("d1").path(p("//book/title")));
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("y2", Scalar::attr("d2").path(p("//book/@year")))
            .project(&["y2"]);
        let e = probe.antijoin(
            build,
            Scalar::cmp(CmpOp::Le, Scalar::attr("y2"), Scalar::int(1990)),
        );
        let plan = apply_indexes(crate::compile(&e), &cat);
        let PhysPlan::IndexRangeJoin { ranges, .. } = &plan else {
            panic!("{}", plan.explain());
        };
        // `y2 <= 1990` normalizes (flipped) to `1990 >= key`.
        assert_eq!(ranges[0].op, CmpOp::Ge);
        assert!(matches!(ranges[0].side, Scalar::Const(_)));
    }

    #[test]
    fn band_predicates_on_the_hash_key_convert_to_range_joins() {
        let cat = catalog();
        let probe =
            doc_scan("d1", "bib.xml").unnest_map("t1", Scalar::attr("d1").path(p("//book/title")));
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("t2", Scalar::attr("d2").path(p("//book/title")))
            .project(&["t2"]);
        // Eq on the key plus an inequality on the same column: the hash
        // join's residual band becomes an index-side filter.
        let pred = Scalar::attr_cmp(CmpOp::Eq, "t1", "t2").and(Scalar::cmp(
            CmpOp::Gt,
            Scalar::attr("t2"),
            Scalar::string("B"),
        ));
        let e = probe.semijoin(build, pred);
        let plan = apply_indexes(crate::compile(&e), &cat);
        let PhysPlan::IndexRangeJoin {
            eq_probe,
            ranges,
            residual,
            ..
        } = &plan
        else {
            panic!("{}", plan.explain());
        };
        assert_eq!(*eq_probe, Some(Sym::new("t1")));
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0].op, CmpOp::Lt, "t2 > \"B\" flips to \"B\" < key");
        assert!(residual.is_none(), "the band is the whole residual");
    }

    #[test]
    fn inequality_conversions_decline_unsafe_residuals() {
        let cat = catalog();
        // An arithmetic residual can error on rows a narrower candidate
        // set would skip — the loop join must keep scanning.
        let probe =
            doc_scan("d1", "bib.xml").unnest_map("t1", Scalar::attr("d1").path(p("//book/title")));
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("t2", Scalar::attr("d2").path(p("//book/title")))
            .project(&["t2"]);
        let pred = Scalar::attr_cmp(CmpOp::Lt, "t1", "t2").and(Scalar::cmp(
            CmpOp::Gt,
            Scalar::Arith(
                nal::ArithOp::Mul,
                Box::new(Scalar::attr("t2")),
                Box::new(Scalar::int(2)),
            ),
            Scalar::int(0),
        ));
        let e = probe.semijoin(build, pred);
        let plan = apply_indexes(crate::compile(&e), &cat);
        assert!(
            matches!(plan, PhysPlan::LoopJoin { .. }),
            "{}",
            plan.explain()
        );
        // `≠` alone offers no single key range: stays a loop join.
        let probe2 =
            doc_scan("d1", "bib.xml").unnest_map("t1", Scalar::attr("d1").path(p("//book/title")));
        let build2 = doc_scan("d2", "bib.xml")
            .unnest_map("t2", Scalar::attr("d2").path(p("//book/title")))
            .project(&["t2"]);
        let e = probe2.semijoin(build2, Scalar::attr_cmp(CmpOp::Ne, "t1", "t2"));
        let plan = apply_indexes(crate::compile(&e), &cat);
        assert!(
            matches!(plan, PhysPlan::LoopJoin { .. }),
            "{}",
            plan.explain()
        );
    }

    #[test]
    fn probe_keys_mirror_hash_keys() {
        let cat = catalog();
        assert_eq!(
            probe_key_of(&Value::str("x"), &cat),
            ValueKey::Str("x".into())
        );
        assert_eq!(probe_key_of(&Value::Int(2), &cat), ValueKey::num(2.0));
        assert_eq!(
            probe_key_of(&Value::Dec(nal::Dec(2.0)), &cat),
            ValueKey::num(2.0)
        );
        assert_eq!(probe_key_of(&Value::Null, &cat), ValueKey::Null);
        assert!(!probe_key_of(&Value::Null, &cat).matchable());
    }

    #[test]
    fn pattern_conversion_roundtrips_display() {
        for s in ["//book/title", "/bib/book/@year", "//author"] {
            assert_eq!(pattern_of(&p(s)).key(), s);
        }
    }
}
