//! Typed join/group keys.
//!
//! Hash operators need `Eq + Hash` keys whose equality coincides with the
//! algebra's `=` on atomized values ([`nal::cmp_atomic`]): numbers compare
//! numerically (`Int(2)` = `Dec(2.0)`), strings as strings, NULL matches
//! nothing. Mixed numeric/string comparisons (a string column against a
//! numeric one) would need coercion against the *other* side and cannot
//! be hashed consistently — the planner only selects hash operators for
//! equi-predicates, where the paper's workloads always join
//! like-typed columns; the differential tests against the reference
//! evaluator guard the behaviour.

use nal::{Tuple, Value};
use xmldb::Catalog;

/// One key component.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum KeyVal {
    /// NULL — carries "never equal" semantics via [`KeyVal::matchable`].
    Null,
    /// A boolean component.
    Bool(bool),
    /// Numeric values, unified across `Int`/`Dec` (total-order bits).
    Num(u64),
    /// A string component.
    Str(String),
    /// Sequences and other non-atomic leftovers, by canonical rendering.
    Other(String),
}

impl KeyVal {
    /// Build from an attribute value (atomizing nodes).
    pub fn from_value(v: &Value, catalog: &Catalog) -> KeyVal {
        match v.atomize(catalog) {
            Value::Null => KeyVal::Null,
            Value::Bool(b) => KeyVal::Bool(b),
            Value::Int(i) => KeyVal::num(i as f64),
            Value::Dec(d) => KeyVal::num(d.0),
            Value::Str(s) => KeyVal::Str(s.to_string()),
            other => KeyVal::Other(format!("{other}")),
        }
    }

    /// Numeric key component with `cmp_atomic`'s edge semantics: `NaN`
    /// behaves like NULL (matches nothing, not even another NaN) and
    /// `-0.0` canonicalizes to `0.0` (they are equal, so they must hash
    /// to one bucket).
    pub fn num(v: f64) -> KeyVal {
        if v.is_nan() {
            return KeyVal::Null;
        }
        let v = if v == 0.0 { 0.0 } else { v };
        KeyVal::Num(v.to_bits())
    }

    /// NULL keys never join/group with anything, including other NULLs.
    pub fn matchable(&self) -> bool {
        !matches!(self, KeyVal::Null)
    }
}

/// A composite key.
pub type Key = Vec<KeyVal>;

/// Extract the composite key of `attrs` from a tuple; `None` when any
/// component is NULL or missing (such tuples match nothing).
pub fn key_of(t: &Tuple, attrs: &[nal::Sym], catalog: &Catalog) -> Option<Key> {
    let mut key = Vec::with_capacity(attrs.len());
    for &a in attrs {
        let v = t.get(a)?;
        let kv = KeyVal::from_value(v, catalog);
        if !kv.matchable() {
            return None;
        }
        key.push(kv);
    }
    Some(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nal::{Dec, Sym};

    fn cat() -> Catalog {
        Catalog::new()
    }

    #[test]
    fn numeric_unification() {
        let c = cat();
        assert_eq!(
            KeyVal::from_value(&Value::Int(2), &c),
            KeyVal::from_value(&Value::Dec(Dec(2.0)), &c)
        );
        assert_ne!(
            KeyVal::from_value(&Value::Int(2), &c),
            KeyVal::from_value(&Value::str("2"), &c),
            "strings stay strings (cmp_atomic only coerces when one side is numeric)"
        );
    }

    #[test]
    fn nan_and_negative_zero_mirror_cmp_atomic() {
        let c = cat();
        // NaN keys are unmatchable, like NULL (cmp_atomic: NaN never
        // satisfies any comparison).
        assert!(!KeyVal::from_value(&Value::Dec(Dec(f64::NAN)), &c).matchable());
        let t = Tuple::singleton(Sym::new("a"), Value::Dec(Dec(f64::NAN)));
        assert_eq!(key_of(&t, &[Sym::new("a")], &c), None);
        // -0.0 and 0.0 are one bucket (cmp_atomic: they are equal).
        assert_eq!(
            KeyVal::from_value(&Value::Dec(Dec(-0.0)), &c),
            KeyVal::from_value(&Value::Int(0), &c)
        );
    }

    #[test]
    fn null_is_unmatchable() {
        let c = cat();
        let t = Tuple::from_pairs(vec![
            (Sym::new("a"), Value::Int(1)),
            (Sym::new("b"), Value::Null),
        ]);
        assert!(key_of(&t, &[Sym::new("a")], &c).is_some());
        assert_eq!(key_of(&t, &[Sym::new("a"), Sym::new("b")], &c), None);
        assert_eq!(key_of(&t, &[Sym::new("missing")], &c), None);
    }

    #[test]
    fn composite_keys_compare_componentwise() {
        let c = cat();
        let t1 = Tuple::from_pairs(vec![
            (Sym::new("a"), Value::Int(1)),
            (Sym::new("b"), Value::str("x")),
        ]);
        let t2 = Tuple::from_pairs(vec![
            (Sym::new("a"), Value::Dec(Dec(1.0))),
            (Sym::new("b"), Value::str("x")),
        ]);
        let ks = [Sym::new("a"), Sym::new("b")];
        assert_eq!(key_of(&t1, &ks, &c), key_of(&t2, &ks, &c));
    }
}
