//! `engine` — the physical query engine (the repo's Natix stand-in).
//!
//! Compiles NAL expressions ([`nal::Expr`]) into physical operator trees
//! ([`PhysPlan`]) and executes them over a document catalog. Equality
//! predicates run on hash-based, order-preserving operators (§2's
//! implementation discussion); everything else falls back to the
//! definitional forms. Nested scalar expressions — the hallmark of
//! *nested* plans — are evaluated per tuple with the reference
//! evaluator's machinery, which is precisely the nested-loop strategy the
//! paper's baseline measures.
//!
//! Differential tests (`tests/engine_vs_spec.rs` and the umbrella
//! `tests/` suite) assert that every plan produces results and Ξ output
//! identical to `nal::eval`.

#![warn(missing_docs)]

pub mod access;
pub mod exec;
pub mod explain;
pub mod key;
pub mod pipeline;
pub mod plan;

pub use access::{
    apply_indexes, for_each_access_path, join_recipe, revalidate_plan, AccessPathRef, AccessRecipe,
};
pub use exec::execute;
pub use explain::{
    run_streaming_traced, run_streaming_traced_parallel, run_traced, ExplainNode, ExplainReport,
};
pub use pipeline::par::apply_parallel;
pub use pipeline::{drain, Cursor};
pub use plan::{compile, JoinKind, PhysPlan};

use std::time::{Duration, Instant};

use nal::{EvalCtx, EvalResult, Expr, Metrics, Seq, Tuple};
use xmldb::Catalog;

/// Result of running a query plan.
#[derive(Debug)]
pub struct QueryResult {
    /// The result sequence (identity output of Ξ-rooted plans).
    pub rows: Seq,
    /// The serialized Ξ output stream.
    pub output: String,
    /// Collected per-run counters.
    pub metrics: Metrics,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

/// Compile and execute a logical expression against a catalog.
pub fn run(expr: &Expr, catalog: &Catalog) -> EvalResult<QueryResult> {
    run_compiled(&compile(expr), catalog)
}

/// Execute an already-compiled plan.
pub fn run_compiled(plan: &PhysPlan, catalog: &Catalog) -> EvalResult<QueryResult> {
    let mut ctx = EvalCtx::new(catalog);
    let start = Instant::now();
    let rows = execute(plan, &Tuple::empty(), &mut ctx)?;
    let elapsed = start.elapsed();
    Ok(QueryResult {
        rows,
        output: ctx.take_output(),
        metrics: ctx.metrics,
        elapsed,
    })
}

/// Compile and execute a logical expression with the streaming, pipelined
/// executor ([`pipeline`]): tuples flow one at a time, and semi/anti
/// (quantifier) joins short-circuit per probe tuple. Produces the same
/// rows and byte-identical Ξ output as [`run`].
pub fn run_streaming(expr: &Expr, catalog: &Catalog) -> EvalResult<QueryResult> {
    run_streaming_compiled(&compile(expr), catalog)
}

/// Execute an already-compiled plan with the streaming executor.
pub fn run_streaming_compiled(plan: &PhysPlan, catalog: &Catalog) -> EvalResult<QueryResult> {
    let mut ctx = EvalCtx::new(catalog);
    let start = Instant::now();
    let rows = pipeline::execute_streaming(plan, &Tuple::empty(), &mut ctx)?;
    let elapsed = start.elapsed();
    Ok(QueryResult {
        rows,
        output: ctx.take_output(),
        metrics: ctx.metrics,
        elapsed,
    })
}

/// Compile with index-backed access paths: [`compile`] followed by the
/// [`access::apply_indexes`] rewrite. Document-rooted path scans become
/// [`PhysPlan::IndexScan`]s and hash semi/anti joins over such scans
/// become [`PhysPlan::IndexJoin`]s wherever the conversion is provably
/// output-preserving; everything else compiles exactly as [`compile`].
pub fn compile_indexed(expr: &Expr, catalog: &Catalog) -> PhysPlan {
    access::apply_indexes(compile(expr), catalog)
}

/// [`run`] on an index-backed plan ([`compile_indexed`]).
pub fn run_indexed(expr: &Expr, catalog: &Catalog) -> EvalResult<QueryResult> {
    run_compiled(&compile_indexed(expr, catalog), catalog)
}

/// [`run_streaming`] on an index-backed plan ([`compile_indexed`]).
pub fn run_streaming_indexed(expr: &Expr, catalog: &Catalog) -> EvalResult<QueryResult> {
    run_streaming_compiled(&compile_indexed(expr, catalog), catalog)
}

/// Compile with parallel segments: [`compile`] followed by the
/// [`apply_parallel`] rewrite. The resulting plan is degree-independent
/// — run it with [`run_streaming_parallel`] (or set `EvalCtx::parallel`
/// yourself) to pick the worker count per execution; degree 1 executes
/// the segments inline.
pub fn compile_parallel(expr: &Expr) -> PhysPlan {
    apply_parallel(&compile(expr))
}

/// [`compile_indexed`] followed by the [`apply_parallel`] rewrite:
/// index-backed access paths *and* morsel-parallel segments.
pub fn compile_indexed_parallel(expr: &Expr, catalog: &Catalog) -> PhysPlan {
    apply_parallel(&access::apply_indexes(compile(expr), catalog))
}

/// Execute an already-compiled plan with the streaming executor at an
/// explicit degree of parallelism. Output rows, Ξ bytes, and summed
/// metrics are identical to [`run_streaming_compiled`] at every degree.
pub fn run_streaming_parallel(
    plan: &PhysPlan,
    catalog: &Catalog,
    workers: usize,
) -> EvalResult<QueryResult> {
    let mut ctx = EvalCtx::new(catalog);
    ctx.parallel = workers.max(1);
    let start = Instant::now();
    let rows = pipeline::execute_streaming(plan, &Tuple::empty(), &mut ctx)?;
    let elapsed = start.elapsed();
    Ok(QueryResult {
        rows,
        output: ctx.take_output(),
        metrics: ctx.metrics,
        elapsed,
    })
}
