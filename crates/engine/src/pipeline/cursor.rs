//! The pull-based cursor abstraction and the source cursors.
//!
//! A [`Cursor`] produces one tuple per [`Cursor::next`] call — the
//! iterator model of Volcano-style engines, adapted to this repo's
//! evaluation contexts: `next` threads the shared [`EvalCtx`] so nested
//! scalar evaluation, Ξ output, and metrics work exactly as in the
//! materializing executor.

use std::sync::Arc;

use nal::eval::{EvalCtx, EvalError, EvalResult};
use nal::{Seq, Sym, Tuple, Value};

/// A pull-based tuple stream.
pub trait Cursor {
    /// Produce the next tuple, or `None` when the stream is exhausted.
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>>;

    /// Operator display name (used for per-operator metrics).
    fn op_name(&self) -> &'static str;
}

/// Cursors borrow the plan they were lowered from.
pub type BoxCursor<'p> = Box<dyn Cursor + 'p>;

/// Pull a cursor to exhaustion, materializing its output.
pub fn drain(cur: &mut dyn Cursor, ctx: &mut EvalCtx<'_>) -> EvalResult<Seq> {
    let mut out = Vec::new();
    while let Some(t) = cur.next(ctx)? {
        out.push(t);
    }
    Ok(out)
}

/// Wrapper that counts tuples as they stream past — this is what makes
/// short-circuiting observable: a semi join that stops probing early
/// produces visibly fewer tuples downstream than the input cardinality.
pub struct Metered<'p> {
    /// The wrapped cursor.
    pub inner: BoxCursor<'p>,
    /// Operator name the counts are attributed to.
    pub name: &'static str,
    /// Plan-node identity (the node's address) the execution trace
    /// attributes this cursor's work to when tracing is enabled.
    pub node: usize,
}

impl Cursor for Metered<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        if ctx.trace.is_none() {
            let item = self.inner.next(ctx)?;
            if item.is_some() {
                ctx.metrics.tuples_produced += 1;
                ctx.metrics.bump_op(self.name, 1);
            }
            return Ok(item);
        }
        // Traced run: per-pull inclusive timing plus index-probe deltas,
        // accumulated under the plan node's identity. Children are pulled
        // inside `inner.next`, so like the materializing executor the
        // recorded time is inclusive of the subtree.
        let start = std::time::Instant::now();
        let (lookups0, hits0) = (ctx.metrics.index_lookups, ctx.metrics.index_hits);
        let item = self.inner.next(ctx)?;
        let elapsed_ns = start.elapsed().as_nanos() as u64;
        let lookups = ctx.metrics.index_lookups - lookups0;
        let hits = ctx.metrics.index_hits - hits0;
        if let Some(trace) = ctx.trace.as_mut() {
            trace.record(self.node, item.is_some() as u64, elapsed_ns, lookups, hits);
        }
        if item.is_some() {
            ctx.metrics.tuples_produced += 1;
            ctx.metrics.bump_op(self.name, 1);
        }
        Ok(item)
    }

    fn op_name(&self) -> &'static str {
        self.name
    }
}

/// An input side of a binary operator: normally a pipelined stream, but
/// switchable to a pre-materialized buffer when side-effect order (Ξ
/// output in a subtree) requires the materializing executor's strict
/// left-then-right evaluation order.
pub enum Feed<'p> {
    /// A live pipelined stream.
    Stream(BoxCursor<'p>),
    /// A pre-materialized buffer.
    Buffered(std::vec::IntoIter<Tuple>),
}

impl Feed<'_> {
    /// Produce the next tuple from the stream or the buffer.
    pub fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        match self {
            Feed::Stream(c) => c.next(ctx),
            Feed::Buffered(it) => Ok(it.next()),
        }
    }

    /// Drain the underlying stream now (a no-op when already buffered).
    pub fn buffer_now(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<()> {
        if let Feed::Stream(c) = self {
            let rows = drain(c.as_mut(), ctx)?;
            *self = Feed::Buffered(rows.into_iter());
        }
        Ok(())
    }

    /// Consume the feed entirely, returning everything it has left.
    pub fn take_all(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Seq> {
        match self {
            Feed::Stream(c) => drain(c.as_mut(), ctx),
            Feed::Buffered(it) => Ok(it.by_ref().collect()),
        }
    }
}

/// A pass-through that drains its input on the first pull and then
/// streams from the buffer. Lowering inserts it below an operator whose
/// own scalars write Ξ output when the input subtree also writes Ξ: the
/// materializing executor evaluates strictly bottom-up, so the input's
/// entire byte stream must precede the parent's first write.
pub struct Materialize<'p> {
    /// Input cursor.
    pub input: BoxCursor<'p>,
    /// The drained input, once the first pull materialized it.
    pub buffered: Option<std::vec::IntoIter<Tuple>>,
}

impl Cursor for Materialize<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        if self.buffered.is_none() {
            self.buffered = Some(drain(self.input.as_mut(), ctx)?.into_iter());
        }
        Ok(self.buffered.as_mut().expect("drained above").next())
    }

    fn op_name(&self) -> &'static str {
        "Materialize"
    }
}

/// `□` — the singleton sequence of the empty tuple.
pub struct Once {
    /// Whether the one tuple was already emitted.
    pub done: bool,
}

impl Cursor for Once {
    fn next(&mut self, _ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        Ok(Some(Tuple::empty()))
    }

    fn op_name(&self) -> &'static str {
        "Singleton"
    }
}

/// A literal relation, streamed without copying the backing slice.
pub struct Literal<'p> {
    /// The backing rows.
    pub rows: &'p [Tuple],
    /// Next row to emit.
    pub idx: usize,
}

impl Cursor for Literal<'_> {
    fn next(&mut self, _ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        let item = self.rows.get(self.idx).cloned();
        self.idx += item.is_some() as usize;
        Ok(item)
    }

    fn op_name(&self) -> &'static str {
        "Literal"
    }
}

/// `rel(a)` — stream the nested relation bound to an environment
/// attribute. Resolution is deferred to the first `next` call so lowering
/// stays infallible.
pub struct AttrRel {
    /// The bound attribute.
    pub attr: Sym,
    /// Outer-scope bindings visible to subscript evaluation.
    pub env: Tuple,
    /// Resolved relation + position (first pull).
    pub state: Option<(Arc<Vec<Tuple>>, usize)>,
}

impl Cursor for AttrRel {
    fn next(&mut self, _ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        if self.state.is_none() {
            match self.env.get(self.attr) {
                Some(Value::Tuples(ts)) => self.state = Some((ts.clone(), 0)),
                other => {
                    return Err(EvalError::new(format!(
                        "rel({}): not a nested relation: {other:?}",
                        self.attr
                    )))
                }
            }
        }
        let (rows, idx) = self.state.as_mut().expect("resolved above");
        let item = rows.get(*idx).cloned();
        *idx += item.is_some() as usize;
        Ok(item)
    }

    fn op_name(&self) -> &'static str {
        "AttrRel"
    }
}
