//! Streaming binary operators: ×, hash/loop joins (inner, semi, anti,
//! outer), and binary grouping.
//!
//! The probe side (left) streams; the build side (right) is materialized
//! on first pull, preserving arrival order inside each hash bucket so the
//! join emits exactly the sequence the definitional nested loop would.
//! Semi and anti joins short-circuit per probe tuple: the first passing
//! match decides the tuple's fate and the rest of the bucket is never
//! examined. [`EvalCtx`]'s `probe_tuples` metric counts right-side
//! candidates actually examined, which is how tests observe the
//! short-circuit.

use std::collections::HashMap;

use nal::eval::scalar::truthy;
use nal::eval::{apply_groupfn, eval, EvalCtx, EvalResult};
use nal::{GroupFn, Scalar, Sym, Tuple};

use super::cursor::{Cursor, Feed};
use crate::exec::scoped;
use crate::key::{key_of, Key};
use crate::plan::JoinKind;

/// × — materialize the right side, stream the left.
pub struct Cross<'p> {
    /// Left (probe/outer) input.
    pub left: Feed<'p>,
    /// Right (build/inner) input.
    pub right: Feed<'p>,
    /// Materialize left before right (Ξ in a subtree needs the
    /// materializing executor's left-then-right evaluation order).
    pub strict: bool,
    /// Materialized right side.
    pub right_rows: Option<Vec<Tuple>>,
    /// Current left tuple being crossed.
    pub cur_left: Option<Tuple>,
    /// Position within the materialized right side.
    pub ridx: usize,
}

impl Cursor for Cross<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        if self.right_rows.is_none() {
            if self.strict {
                self.left.buffer_now(ctx)?;
            }
            self.right_rows = Some(self.right.take_all(ctx)?);
        }
        let right = self.right_rows.as_ref().expect("built above");
        loop {
            if let Some(lt) = &self.cur_left {
                if let Some(rt) = right.get(self.ridx) {
                    self.ridx += 1;
                    return Ok(Some(lt.concat(rt)));
                }
                self.cur_left = None;
            }
            match self.left.next(ctx)? {
                Some(lt) => {
                    self.cur_left = Some(lt);
                    self.ridx = 0;
                }
                None => return Ok(None),
            }
        }
    }

    fn op_name(&self) -> &'static str {
        "Cross"
    }
}

/// Join-kind-independent emission decision for a finished probe tuple.
fn unmatched_output(kind: &JoinKind, pad: &[Sym], lt: &Tuple) -> Option<Tuple> {
    match kind {
        JoinKind::Anti => Some(lt.clone()),
        JoinKind::Outer { g, default } => {
            Some(lt.concat(&Tuple::bottom(pad)).extend(*g, default.clone()))
        }
        JoinKind::Inner | JoinKind::Semi => None,
    }
}

/// Order-preserving hash join. Build buckets on the right (insertion
/// order within a bucket = right arrival order), probe left tuples in
/// stream order.
pub struct HashJoin<'p> {
    /// Left (probe/outer) input.
    pub left: Feed<'p>,
    /// Right (build/inner) input.
    pub right: Feed<'p>,
    /// Probe-side key attributes.
    pub left_keys: &'p [Sym],
    /// Build-side key attributes.
    pub right_keys: &'p [Sym],
    /// Non-equi conjuncts evaluated per bucket match.
    pub residual: Option<&'p Scalar>,
    /// How matches are consumed.
    pub kind: &'p JoinKind,
    /// Outer-join NULL padding.
    pub pad: &'p [Sym],
    /// Outer-scope bindings visible to subscript evaluation.
    pub env: Tuple,
    /// Materialize left before right (Ξ evaluation-order barrier).
    pub strict: bool,
    /// Build state: bucket storage + key index (separate so iteration
    /// state can hold plain indices).
    pub bucket_rows: Vec<Vec<Tuple>>,
    /// Key → bucket slot.
    pub bucket_index: Option<HashMap<Key, usize>>,
    /// Inner/outer iteration state: (probe tuple, bucket, position,
    /// matched-so-far).
    pub cur: Option<(Tuple, Option<usize>, usize, bool)>,
}

impl HashJoin<'_> {
    fn build(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<()> {
        if self.strict {
            self.left.buffer_now(ctx)?;
        }
        let rows = self.right.take_all(ctx)?;
        // Pre-size from the build-side cardinality (satellite of the
        // paper's hash-operator discussion: no rehashing during build).
        let mut index: HashMap<Key, usize> = HashMap::with_capacity(rows.len());
        for rt in rows {
            if let Some(k) = key_of(&rt, self.right_keys, ctx.catalog) {
                let slot = *index.entry(k).or_insert_with(|| {
                    self.bucket_rows.push(Vec::new());
                    self.bucket_rows.len() - 1
                });
                self.bucket_rows[slot].push(rt);
            }
        }
        self.bucket_index = Some(index);
        Ok(())
    }

    fn residual_passes(&self, joined: &Tuple, ctx: &mut EvalCtx<'_>) -> EvalResult<bool> {
        match self.residual {
            None => Ok(true),
            Some(p) => truthy(p, &scoped(&self.env, joined), ctx),
        }
    }
}

impl Cursor for HashJoin<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        if self.bucket_index.is_none() {
            self.build(ctx)?;
        }
        loop {
            // Resume an inner/outer probe mid-bucket.
            if let Some((lt, slot, mut pos, mut matched)) = self.cur.take() {
                if let Some(slot) = slot {
                    while pos < self.bucket_rows[slot].len() {
                        let rt = self.bucket_rows[slot][pos].clone();
                        pos += 1;
                        ctx.metrics.probe_tuples += 1;
                        let joined = lt.concat(&rt);
                        if self.residual_passes(&joined, ctx)? {
                            matched = true;
                            self.cur = Some((lt, Some(slot), pos, matched));
                            return Ok(Some(joined));
                        }
                    }
                }
                if !matched {
                    if let Some(out) = unmatched_output(self.kind, self.pad, &lt) {
                        return Ok(Some(out));
                    }
                }
                continue;
            }
            let Some(lt) = self.left.next(ctx)? else {
                return Ok(None);
            };
            let slot = key_of(&lt, self.left_keys, ctx.catalog)
                .and_then(|k| self.bucket_index.as_ref().expect("built").get(&k))
                .copied();
            match self.kind {
                JoinKind::Inner | JoinKind::Outer { .. } => {
                    self.cur = Some((lt, slot, 0, false));
                }
                JoinKind::Semi | JoinKind::Anti => {
                    let mut matched = false;
                    if let Some(slot) = slot {
                        // Short-circuit: the first passing match decides.
                        for pos in 0..self.bucket_rows[slot].len() {
                            let rt = self.bucket_rows[slot][pos].clone();
                            ctx.metrics.probe_tuples += 1;
                            let joined = lt.concat(&rt);
                            if self.residual_passes(&joined, ctx)? {
                                matched = true;
                                break;
                            }
                        }
                    }
                    let emit = matches!(self.kind, JoinKind::Semi) == matched;
                    if emit {
                        return Ok(Some(lt));
                    }
                }
            }
        }
    }

    fn op_name(&self) -> &'static str {
        match self.kind {
            JoinKind::Inner => "HashJoin",
            JoinKind::Semi => "HashSemiJoin",
            JoinKind::Anti => "HashAntiJoin",
            JoinKind::Outer { .. } => "HashOuterJoin",
        }
    }
}

/// Definitional nested-loop join for non-equi predicates; the right side
/// is materialized, the left streams, and semi/anti probes stop at the
/// first passing match.
pub struct LoopJoin<'p> {
    /// Left (probe/outer) input.
    pub left: Feed<'p>,
    /// Right (build/inner) input.
    pub right: Feed<'p>,
    /// The predicate.
    pub pred: &'p Scalar,
    /// How matches are consumed.
    pub kind: &'p JoinKind,
    /// Outer-join NULL padding.
    pub pad: &'p [Sym],
    /// Outer-scope bindings visible to subscript evaluation.
    pub env: Tuple,
    /// Materialize left before right (Ξ evaluation-order barrier).
    pub strict: bool,
    /// Materialized right side.
    pub right_rows: Option<Vec<Tuple>>,
    /// Mid-bucket probe state being resumed.
    pub cur: Option<(Tuple, usize, bool)>,
}

impl Cursor for LoopJoin<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        if self.right_rows.is_none() {
            if self.strict {
                self.left.buffer_now(ctx)?;
            }
            self.right_rows = Some(self.right.take_all(ctx)?);
        }
        loop {
            if let Some((lt, mut pos, mut matched)) = self.cur.take() {
                let n = self.right_rows.as_ref().expect("built").len();
                while pos < n {
                    let rt = self.right_rows.as_ref().expect("built")[pos].clone();
                    pos += 1;
                    ctx.metrics.probe_tuples += 1;
                    let joined = lt.concat(&rt);
                    if truthy(self.pred, &scoped(&self.env, &joined), ctx)? {
                        matched = true;
                        match self.kind {
                            JoinKind::Inner | JoinKind::Outer { .. } => {
                                self.cur = Some((lt, pos, matched));
                                return Ok(Some(joined));
                            }
                            // Short-circuit: fate decided, skip the rest.
                            JoinKind::Semi => return Ok(Some(lt)),
                            JoinKind::Anti => break,
                        }
                    }
                }
                match self.kind {
                    JoinKind::Semi => {}
                    JoinKind::Anti | JoinKind::Inner | JoinKind::Outer { .. } if !matched => {
                        if let Some(out) = unmatched_output(self.kind, self.pad, &lt) {
                            return Ok(Some(out));
                        }
                    }
                    _ => {}
                }
                continue;
            }
            match self.left.next(ctx)? {
                Some(lt) => self.cur = Some((lt, 0, false)),
                None => return Ok(None),
            }
        }
    }

    fn op_name(&self) -> &'static str {
        match self.kind {
            JoinKind::Inner => "LoopJoin",
            JoinKind::Semi => "LoopSemiJoin",
            JoinKind::Anti => "LoopAntiJoin",
            JoinKind::Outer { .. } => "LoopOuterJoin",
        }
    }
}

/// Index-backed semi/anti quantifier join: no build side at all — each
/// probe tuple is answered by the recipe's driver (point, composite, or
/// range probe of the value indexes), plus residual evaluation over
/// reconstructed candidates in document order when present.
/// Short-circuits exactly like the hash cursors: the first passing
/// candidate decides. Probe semantics and metric accounting are shared
/// with the materializing executor through the recipe runtime
/// ([`crate::access::IndexJoinAccess`]), so both executors report
/// identical `index_lookups`/`index_hits` by construction.
pub struct IndexJoin<'p> {
    /// Left (probe/outer) input.
    pub left: super::cursor::BoxCursor<'p>,
    /// The declarative access path.
    pub recipe: &'p crate::access::AccessRecipe,
    /// Outer-scope bindings visible to subscript evaluation.
    pub env: Tuple,
    /// Resolved index state (first pull).
    pub access: Option<crate::access::IndexJoinAccess>,
    /// Whether the decision is probe-invariant (constant range bounds,
    /// no residual) — computed once at lowering, same policy as the
    /// materializing executor, so metrics stay equal.
    pub cacheable: bool,
    /// Memoized decision for probe-invariant joins.
    pub cached: Option<bool>,
}

impl Cursor for IndexJoin<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        if self.access.is_none() {
            self.access = Some(crate::access::IndexJoinAccess::resolve(self.recipe, ctx)?);
        }
        while let Some(lt) = self.left.next(ctx)? {
            let access = self.access.as_ref().expect("resolved above");
            let matched = match self.cached {
                Some(m) => m,
                None => {
                    let m = access.probe_matches(self.recipe, &lt, true, &self.env, ctx)?;
                    if self.cacheable {
                        self.cached = Some(m);
                    }
                    m
                }
            };
            let emit = matches!(self.recipe.kind, JoinKind::Semi) == matched;
            if emit {
                return Ok(Some(lt));
            }
        }
        Ok(None)
    }

    fn op_name(&self) -> &'static str {
        self.recipe.op_name()
    }
}

/// Binary Γ with hash lookup: build buckets on the right once, then
/// stream the left, aggregating each tuple's group lazily.
pub struct HashGroupBinary<'p> {
    /// Left (probe/outer) input.
    pub left: Feed<'p>,
    /// Right (build/inner) input.
    pub right: Feed<'p>,
    /// Attribute receiving the group aggregate.
    pub g: Sym,
    /// Left-side match attributes.
    pub left_on: &'p [Sym],
    /// Right-side match attributes.
    pub right_on: &'p [Sym],
    /// The aggregate applied per group.
    pub f: &'p GroupFn,
    /// Outer-scope bindings visible to subscript evaluation.
    pub env: Tuple,
    /// Materialize left before right (Ξ evaluation-order barrier).
    pub strict: bool,
    /// Key → group members.
    pub buckets: Option<HashMap<Key, Vec<Tuple>>>,
}

impl Cursor for HashGroupBinary<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        if self.buckets.is_none() {
            if self.strict {
                self.left.buffer_now(ctx)?;
            }
            let rows = self.right.take_all(ctx)?;
            let mut buckets: HashMap<Key, Vec<Tuple>> = HashMap::with_capacity(rows.len());
            for rt in rows {
                if let Some(k) = key_of(&rt, self.right_on, ctx.catalog) {
                    buckets.entry(k).or_default().push(rt);
                }
            }
            self.buckets = Some(buckets);
        }
        let Some(lt) = self.left.next(ctx)? else {
            return Ok(None);
        };
        let empty: Vec<Tuple> = Vec::new();
        let members = key_of(&lt, self.left_on, ctx.catalog)
            .and_then(|k| self.buckets.as_ref().expect("built").get(&k))
            .unwrap_or(&empty);
        let v = apply_groupfn(self.f, members, &self.env, ctx)?;
        Ok(Some(lt.extend(self.g, v)))
    }

    fn op_name(&self) -> &'static str {
        "HashNestJoin"
    }
}

/// θ binary grouping fallback: materialize both sides, delegate to the
/// reference semantics, stream the result.
pub struct ThetaGroupBinary<'p> {
    /// Left (probe/outer) input.
    pub left: Feed<'p>,
    /// Right (build/inner) input.
    pub right: Feed<'p>,
    /// Attribute receiving the group aggregate.
    pub g: Sym,
    /// Left-side match attributes.
    pub left_on: &'p [Sym],
    /// The grouping comparison.
    pub theta: nal::CmpOp,
    /// Right-side match attributes.
    pub right_on: &'p [Sym],
    /// The aggregate applied per group.
    pub f: &'p GroupFn,
    /// Outer-scope bindings visible to subscript evaluation.
    pub env: Tuple,
    /// Materialized result, streamed out.
    pub out: Option<std::vec::IntoIter<Tuple>>,
}

impl Cursor for ThetaGroupBinary<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        if self.out.is_none() {
            // Left first — matching the materializing executor's
            // evaluation order for any side effects.
            let l = self.left.take_all(ctx)?;
            let r = self.right.take_all(ctx)?;
            let logical = nal::Expr::GroupBinary {
                left: Box::new(nal::Expr::Literal(l)),
                right: Box::new(nal::Expr::Literal(r)),
                g: self.g,
                left_on: self.left_on.to_vec(),
                theta: self.theta,
                right_on: self.right_on.to_vec(),
                f: self.f.clone(),
            };
            self.out = Some(eval(&logical, &self.env, ctx)?.into_iter());
        }
        Ok(self.out.as_mut().expect("evaluated above").next())
    }

    fn op_name(&self) -> &'static str {
        "ThetaNestJoin"
    }
}
