//! Order-preserving k-way merge of morsel output runs.
//!
//! Parallel execution range-partitions a document-ordered tuple stream
//! into contiguous morsels, so the output runs have pairwise-disjoint,
//! ascending key ranges — PR 5's gap-based [`xmldb::NodeId`] keys make
//! document order a *total order on keys*, which is what lets the merge
//! restore the exact serial sequence deterministically no matter which
//! worker finishes first ("certain" order in the possible/certain-answers
//! sense: one canonical output, byte-identical to serial).
//!
//! Two entry points:
//!
//! * [`merge_runs`] — run-level merge used by the executor: each morsel's
//!   whole output is one run tagged with a [`MorselKey`]; runs drain in
//!   key order off a binary heap.
//! * [`kway_merge_by`] — item-level merge with a caller-supplied key
//!   function and stable (run-index) tie-breaking; the property tests use
//!   it to check that merging randomized contiguous partitions of a
//!   posting list reproduces the serial document-order stream.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};

/// Fault-injection switch for the differential fuzzing oracle's mutation
/// test: when set, [`merge_runs`] drains runs in *reverse* key order —
/// a deterministic order violation the oracle must catch. Never set
/// outside tests.
static SCRAMBLE_MERGE: AtomicBool = AtomicBool::new(false);

/// Enable or disable the deliberate merge-order fault (see
/// [`SCRAMBLE_MERGE`]). Exposed so the fuzz oracle's mutation test can
/// prove the differential matrix catches order violations; production
/// code must never call this.
#[doc(hidden)]
pub fn scramble_merge_for_tests(on: bool) {
    SCRAMBLE_MERGE.store(on, Ordering::SeqCst);
}

/// Merge key of one morsel run: the [`xmldb::NodeId`] ordering key of
/// the morsel's first driving node when the source binds nodes (the
/// doc-ordered posting-list case), with the morsel ordinal breaking ties
/// and covering non-node sources. Contiguous range partitioning makes
/// node keys ascend with ordinals, so both components order runs
/// identically whenever both exist — the `Ord` derive tries the node key
/// first, which is the documented merge invariant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MorselKey {
    /// Ordering key of the run's first driving node, when every run in
    /// the merge has one (mixed presence falls back to ordinals only).
    pub node: Option<xmldb::NodeId>,
    /// Position of the morsel in the contiguous source partition.
    pub ordinal: usize,
}

/// One finished morsel output run.
pub struct Run<T> {
    /// The run's merge key.
    pub key: MorselKey,
    /// The run's tuples, already in serial order within the run.
    pub items: Vec<T>,
}

/// Merge finished runs back into one stream in key order. Runs arrive in
/// whatever order workers finished them; the heap drains them by
/// [`MorselKey`], which reproduces the serial sequence because
/// contiguous partitioning gives runs pairwise-disjoint ascending key
/// ranges.
pub fn merge_runs<T>(runs: Vec<Run<T>>) -> Vec<T> {
    let mut total = 0;
    let mut heap: BinaryHeap<Reverse<(MorselKey, usize)>> = BinaryHeap::with_capacity(runs.len());
    let mut slots: Vec<Option<Vec<T>>> = Vec::with_capacity(runs.len());
    for (slot, run) in runs.into_iter().enumerate() {
        total += run.items.len();
        heap.push(Reverse((run.key, slot)));
        slots.push(Some(run.items));
    }
    let mut out = Vec::with_capacity(total);
    if SCRAMBLE_MERGE.load(Ordering::Relaxed) {
        // Injected fault: concatenate runs in reverse key order. With two
        // or more non-empty runs this breaks document order
        // deterministically — the mutation the fuzz oracle must flag.
        let mut order: Vec<usize> = Vec::with_capacity(slots.len());
        while let Some(Reverse((_, slot))) = heap.pop() {
            order.push(slot);
        }
        for slot in order.into_iter().rev() {
            out.extend(slots[slot].take().expect("each run pops once"));
        }
        return out;
    }
    while let Some(Reverse((_, slot))) = heap.pop() {
        out.extend(slots[slot].take().expect("each run pops once"));
    }
    out
}

/// Item-level k-way merge: pop the smallest key across all run heads,
/// breaking ties by run index (stable — a duplicate key on a partition
/// boundary stays in partition order, which is serial order for
/// contiguous partitions).
pub fn kway_merge_by<T, K: Ord>(runs: Vec<Vec<T>>, key: impl Fn(&T) -> K) -> Vec<T> {
    let total = runs.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<T>> = runs.into_iter().map(Vec::into_iter).collect();
    let mut heap: BinaryHeap<Reverse<(K, usize)>> = BinaryHeap::with_capacity(iters.len());
    let mut heads: Vec<Option<T>> = Vec::with_capacity(iters.len());
    for (i, it) in iters.iter_mut().enumerate() {
        let head = it.next();
        if let Some(h) = &head {
            heap.push(Reverse((key(h), i)));
        }
        heads.push(head);
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse((_, i))) = heap.pop() {
        let item = heads[i].take().expect("pushed with a head");
        out.push(item);
        heads[i] = iters[i].next();
        if let Some(h) = &heads[i] {
            heap.push(Reverse((key(h), i)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_merge_restores_partition_order() {
        // Runs delivered out of order (worker finish order) must drain
        // in key order.
        let runs = vec![
            Run {
                key: MorselKey {
                    node: None,
                    ordinal: 2,
                },
                items: vec![50, 60],
            },
            Run {
                key: MorselKey {
                    node: None,
                    ordinal: 0,
                },
                items: vec![10, 20],
            },
            Run {
                key: MorselKey {
                    node: None,
                    ordinal: 1,
                },
                items: vec![30, 40],
            },
        ];
        assert_eq!(merge_runs(runs), vec![10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn item_merge_is_stable_on_ties() {
        let merged = kway_merge_by(vec![vec![(1, 'a'), (3, 'b')], vec![(1, 'c')]], |x| x.0);
        assert_eq!(merged, vec![(1, 'a'), (1, 'c'), (3, 'b')]);
    }

    #[test]
    fn empty_runs_are_harmless() {
        let merged = kway_merge_by(vec![vec![], vec![1, 2], vec![]], |x: &i32| *x);
        assert_eq!(merged, vec![1, 2]);
        assert_eq!(merge_runs::<u8>(Vec::new()), Vec::<u8>::new());
    }
}
