//! The streaming, pipelined executor.
//!
//! Where [`crate::exec`] materializes every operator's full output ("Vec
//! in, Vec out" — the setup the paper's experiments ran on), this module
//! lowers a [`PhysPlan`] into a tree of pull-based [`Cursor`]s that
//! produce one tuple per call:
//!
//! * **Pipelined operators** (σ, Π, χ, μ, Υ, Ξ, probe sides of joins)
//!   never materialize — a tuple flows root-ward as soon as it exists.
//! * **Short-circuiting quantifier joins**: semi (⋉) and anti (▷) join
//!   cursors stop probing a tuple's bucket at the first passing match —
//!   `some` is decided by the first witness, `every` by the first
//!   counterexample — so quantifier plans no longer scan entire inputs.
//!   The `probe_tuples` metric exposes the saving.
//! * **Blocking operators** (hash builds, Γ grouping, Ξ-grouping)
//!   materialize internally but stream their output; hash buckets keep
//!   right-input insertion order so every join emits exactly the
//!   definitional order (the order-preserving hash join of §2).
//!
//! Ξ ordering: the materializing executor evaluates strictly bottom-up
//! and left-to-right, so a plan with *multiple* Ξ operators writes its
//! output stream in that order. Lowering detects the (rare) plans where
//! pipelining would interleave Ξ writes — a Ξ operator or a binary
//! operator with Ξ in a subtree — and falls back to materializing the
//! affected inputs, keeping `run_streaming` byte-identical to `run`.

pub mod cursor;
pub mod join;
pub mod merge;
pub mod ops;
pub mod par;

pub use cursor::{drain, BoxCursor, Cursor};

use nal::eval::{EvalCtx, EvalResult};
use nal::{Seq, Tuple};

use nal::expr::visit;
use nal::Scalar;

use crate::plan::PhysPlan;
use cursor::{AttrRel, Feed, Literal, Materialize, Metered, Once};

/// Does evaluating this scalar write Ξ output? True when a nested
/// algebraic expression inside it (a quantifier range, an aggregate
/// input) contains a Ξ operator at any depth.
fn scalar_emits_xi(s: &Scalar) -> bool {
    visit::scalar_nested_exprs(s).into_iter().any(|nested| {
        let mut found = false;
        visit::walk_deep(nested, &mut |e| {
            if matches!(e, nal::Expr::XiSimple { .. } | nal::Expr::XiGroup { .. }) {
                found = true;
            }
        });
        found
    })
}

/// Does executing this single operator (not its children) write to the
/// output stream — as a Ξ operator, or through Ξ nested in its scalars?
fn node_emits_xi(plan: &PhysPlan) -> bool {
    let scalars: Vec<&Scalar> = match plan {
        PhysPlan::XiSimple { .. } | PhysPlan::XiGroup { .. } => return true,
        PhysPlan::Select { pred, .. } | PhysPlan::LoopJoin { pred, .. } => vec![pred],
        PhysPlan::Map { value, .. } | PhysPlan::UnnestMap { value, .. } => vec![value],
        PhysPlan::HashJoin { residual, .. } => residual.iter().collect(),
        // Recipe probe sides and replayed pipelines are replay-safe (no
        // nested algebra) by conversion; only the residual could carry Ξ.
        PhysPlan::IndexJoin { recipe, .. } => recipe.residual.iter().collect(),
        PhysPlan::HashGroupUnary { f, .. }
        | PhysPlan::ThetaGroupUnary { f, .. }
        | PhysPlan::HashGroupBinary { f, .. }
        | PhysPlan::ThetaGroupBinary { f, .. } => f.filter.iter().map(|p| p.as_ref()).collect(),
        PhysPlan::Singleton
        | PhysPlan::Literal(_)
        | PhysPlan::AttrRel(_)
        | PhysPlan::Project { .. }
        | PhysPlan::Cross { .. }
        | PhysPlan::Unnest { .. }
        // Index scans have a pure structural subscript by construction.
        | PhysPlan::IndexScan { .. }
        // Parallel segments are Ξ-free by construction (`apply_parallel`
        // only wraps Ξ-free subtrees); the feed leaf carries no scalars.
        | PhysPlan::Parallel { .. }
        | PhysPlan::MorselFeed => vec![],
    };
    scalars.into_iter().any(scalar_emits_xi)
}

/// Does this subtree write to the output stream anywhere — through a Ξ
/// operator or through Ξ nested inside an operator's scalars?
fn contains_xi(plan: &PhysPlan) -> bool {
    if node_emits_xi(plan) {
        return true;
    }
    match plan {
        PhysPlan::Singleton
        | PhysPlan::Literal(_)
        | PhysPlan::AttrRel(_)
        | PhysPlan::MorselFeed => false,
        PhysPlan::Parallel { source, stages } => contains_xi(source) || contains_xi(stages),
        PhysPlan::Select { input, .. }
        | PhysPlan::Project { input, .. }
        | PhysPlan::Map { input, .. }
        | PhysPlan::HashGroupUnary { input, .. }
        | PhysPlan::ThetaGroupUnary { input, .. }
        | PhysPlan::Unnest { input, .. }
        | PhysPlan::UnnestMap { input, .. }
        | PhysPlan::XiSimple { input, .. }
        | PhysPlan::XiGroup { input, .. }
        | PhysPlan::IndexScan { input, .. } => contains_xi(input),
        PhysPlan::IndexJoin { left, .. } => contains_xi(left),
        PhysPlan::Cross { left, right }
        | PhysPlan::HashJoin { left, right, .. }
        | PhysPlan::LoopJoin { left, right, .. }
        | PhysPlan::HashGroupBinary { left, right, .. }
        | PhysPlan::ThetaGroupBinary { left, right, .. } => contains_xi(left) || contains_xi(right),
    }
}

/// Lower a pipelined unary operator's input, inserting a [`Materialize`]
/// barrier when both the operator itself and its input subtree write Ξ
/// output — so the input's whole byte stream precedes the parent's first
/// write, as in the materializing executor's bottom-up order.
fn lower_input<'p>(parent: &'p PhysPlan, input: &'p PhysPlan, env: &Tuple) -> BoxCursor<'p> {
    let inner = lower(input, env);
    if node_emits_xi(parent) && contains_xi(input) {
        Box::new(Materialize {
            input: inner,
            buffered: None,
        })
    } else {
        inner
    }
}

/// Binary operators evaluate left-then-right in the materializing
/// executor; when either subtree writes Ξ output the streaming cursors
/// must reproduce that order by buffering the left side first.
fn needs_strict_order(left: &PhysPlan, right: &PhysPlan) -> bool {
    contains_xi(left) || contains_xi(right)
}

/// Lower a physical plan into a cursor tree under an environment (the
/// environment is non-empty only for nested evaluation contexts). Every
/// cursor is wrapped in a [`Metered`] shell so `Metrics::op_tuples`
/// counts tuples produced per operator.
pub fn lower<'p>(plan: &'p PhysPlan, env: &Tuple) -> BoxCursor<'p> {
    let name = plan.op_name();
    // The parallel shell and its feed leaf are deliberately *not*
    // metered: the serial plan for the same query has no such nodes, so
    // metering them would break the parallel-vs-serial counter parity.
    // The stage operators inside the segment are metered per worker
    // under their own names, and worker metrics merge back on join.
    match plan {
        PhysPlan::Parallel { source, stages } => {
            return Box::new(par::ParallelCursor::new(source, stages, env.clone()))
        }
        PhysPlan::MorselFeed => return Box::new(par::DanglingFeed),
        _ => {}
    }
    let inner: BoxCursor<'p> = match plan {
        PhysPlan::Singleton => Box::new(Once { done: false }),
        PhysPlan::Literal(rows) => Box::new(Literal { rows, idx: 0 }),
        PhysPlan::AttrRel(a) => Box::new(AttrRel {
            attr: *a,
            env: env.clone(),
            state: None,
        }),
        PhysPlan::Select { input, pred } => Box::new(ops::Select {
            input: lower_input(plan, input, env),
            pred,
            env: env.clone(),
        }),
        PhysPlan::Project { input, op } => Box::new(ops::Project {
            input: lower(input, env),
            op,
            seen: Default::default(),
        }),
        PhysPlan::Map { input, attr, value } => Box::new(ops::Map {
            input: lower_input(plan, input, env),
            attr: *attr,
            value,
            env: env.clone(),
        }),
        PhysPlan::Cross { left, right } => Box::new(join::Cross {
            strict: needs_strict_order(left, right),
            left: Feed::Stream(lower(left, env)),
            right: Feed::Stream(lower(right, env)),
            right_rows: None,
            cur_left: None,
            ridx: 0,
        }),
        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            kind,
            pad,
        } => Box::new(join::HashJoin {
            strict: needs_strict_order(left, right),
            left: Feed::Stream(lower(left, env)),
            right: Feed::Stream(lower(right, env)),
            left_keys,
            right_keys,
            residual: residual.as_ref(),
            kind,
            pad,
            env: env.clone(),
            bucket_rows: Vec::new(),
            bucket_index: None,
            cur: None,
        }),
        PhysPlan::LoopJoin {
            left,
            right,
            pred,
            kind,
            pad,
        } => Box::new(join::LoopJoin {
            strict: needs_strict_order(left, right),
            left: Feed::Stream(lower(left, env)),
            right: Feed::Stream(lower(right, env)),
            pred,
            kind,
            pad,
            env: env.clone(),
            right_rows: None,
            cur: None,
        }),
        PhysPlan::HashGroupUnary { input, g, by, f } => Box::new(ops::HashGroupUnary {
            input: lower(input, env),
            g: *g,
            by,
            f,
            env: env.clone(),
            groups: None,
        }),
        PhysPlan::ThetaGroupUnary {
            input,
            g,
            by,
            theta,
            f,
        } => Box::new(ops::ThetaGroupUnary {
            input: lower(input, env),
            g: *g,
            by,
            theta: *theta,
            f,
            env: env.clone(),
            out: None,
        }),
        PhysPlan::HashGroupBinary {
            left,
            right,
            g,
            left_on,
            right_on,
            f,
        } => Box::new(join::HashGroupBinary {
            strict: needs_strict_order(left, right),
            left: Feed::Stream(lower(left, env)),
            right: Feed::Stream(lower(right, env)),
            g: *g,
            left_on,
            right_on,
            f,
            env: env.clone(),
            buckets: None,
        }),
        PhysPlan::ThetaGroupBinary {
            left,
            right,
            g,
            left_on,
            theta,
            right_on,
            f,
        } => Box::new(join::ThetaGroupBinary {
            left: Feed::Stream(lower(left, env)),
            right: Feed::Stream(lower(right, env)),
            g: *g,
            left_on,
            theta: *theta,
            right_on,
            f,
            env: env.clone(),
            out: None,
        }),
        PhysPlan::Unnest {
            input,
            attr,
            distinct,
            preserve_empty,
            inner_attrs,
        } => Box::new(ops::Unnest {
            input: lower(input, env),
            attr: *attr,
            distinct: *distinct,
            preserve_empty: *preserve_empty,
            inner_attrs,
            pending: Default::default(),
        }),
        PhysPlan::UnnestMap { input, attr, value } => Box::new(ops::UnnestMap {
            input: lower_input(plan, input, env),
            attr: *attr,
            value,
            env: env.clone(),
            pending: Default::default(),
        }),
        PhysPlan::XiSimple { input, cmds } => Box::new(ops::XiSimple {
            input: lower_input(plan, input, env),
            cmds,
            env: env.clone(),
        }),
        PhysPlan::XiGroup {
            input,
            by,
            head,
            body,
            tail,
        } => Box::new(ops::XiGroup {
            input: lower(input, env),
            by,
            head,
            body,
            tail,
            env: env.clone(),
            groups: None,
        }),
        PhysPlan::IndexScan {
            input,
            attr,
            uri,
            pattern,
            distinct,
        } => Box::new(ops::IndexScan {
            input: lower(input, env),
            attr: *attr,
            uri,
            pattern,
            distinct: *distinct,
            items: None,
            pending: Default::default(),
        }),
        PhysPlan::IndexJoin { left, recipe } => Box::new(join::IndexJoin {
            // A Ξ-writing residual must see the whole left byte stream
            // first, as in the materializing executor's bottom-up order.
            left: lower_input(plan, left, env),
            recipe,
            env: env.clone(),
            access: None,
            cacheable: recipe.probe_invariant(),
            cached: None,
        }),
        PhysPlan::Parallel { .. } | PhysPlan::MorselFeed => unreachable!("handled above"),
    };
    Box::new(Metered {
        inner,
        name,
        node: plan as *const PhysPlan as usize,
    })
}

/// Execute a plan by streaming it to exhaustion — the cursor-level
/// equivalent of [`crate::exec::execute`].
pub fn execute_streaming(plan: &PhysPlan, env: &Tuple, ctx: &mut EvalCtx<'_>) -> EvalResult<Seq> {
    let mut root = lower(plan, env);
    drain(root.as_mut(), ctx)
}
