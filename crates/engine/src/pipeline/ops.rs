//! Streaming unary operators and the blocking (materialize-inside,
//! stream-out) grouping and Ξ operators.

use std::collections::HashSet;
use std::collections::VecDeque;

use nal::eval::scalar::{eval_scalar, truthy};
use nal::eval::{apply_groupfn, atomize_tuple, eval, xi, EvalCtx, EvalError, EvalResult};
use nal::{GroupFn, ProjOp, Scalar, Sym, Tuple, Value, XiCmd};

use super::cursor::{drain, BoxCursor, Cursor};
use crate::exec::{hash_groups, scoped};

/// σ — filter, one pull per surviving tuple.
pub struct Select<'p> {
    /// Input cursor.
    pub input: BoxCursor<'p>,
    /// The predicate.
    pub pred: &'p Scalar,
    /// Outer-scope bindings visible to subscript evaluation.
    pub env: Tuple,
}

impl Cursor for Select<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        while let Some(t) = self.input.next(ctx)? {
            if truthy(self.pred, &scoped(&self.env, &t), ctx)? {
                return Ok(Some(t));
            }
        }
        Ok(None)
    }

    fn op_name(&self) -> &'static str {
        "Select"
    }
}

/// Π / Π^D — projections. The distinct variants dedup incrementally (a
/// first-occurrence filter is order-preserving, so no materialization is
/// needed).
pub struct Project<'p> {
    /// Input cursor.
    pub input: BoxCursor<'p>,
    /// The projection operation.
    pub op: &'p ProjOp,
    /// First-occurrence dedup state (distinct variants).
    pub seen: HashSet<Vec<Value>>,
}

impl Cursor for Project<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        loop {
            let Some(t) = self.input.next(ctx)? else {
                return Ok(None);
            };
            let out = match self.op {
                ProjOp::Cols(cols) => return Ok(Some(t.project(cols))),
                ProjOp::Drop(cols) => return Ok(Some(t.without(cols))),
                ProjOp::Rename(pairs) => return Ok(Some(t.rename(pairs))),
                ProjOp::DistinctCols(cols) => atomize_tuple(&t.project(cols), ctx.catalog),
                ProjOp::DistinctRename(pairs) => {
                    let old: Vec<Sym> = pairs.iter().map(|(_, o)| *o).collect();
                    atomize_tuple(&t.project(&old).rename(pairs), ctx.catalog)
                }
            };
            let key: Vec<Value> = out.values().cloned().collect();
            if self.seen.insert(key) {
                return Ok(Some(out));
            }
        }
    }

    fn op_name(&self) -> &'static str {
        "Project"
    }
}

/// χ — extend each tuple with one computed attribute.
pub struct Map<'p> {
    /// Input cursor.
    pub input: BoxCursor<'p>,
    /// The bound attribute.
    pub attr: Sym,
    /// The subscript computing the attribute’s value.
    pub value: &'p Scalar,
    /// Outer-scope bindings visible to subscript evaluation.
    pub env: Tuple,
}

impl Cursor for Map<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        let Some(t) = self.input.next(ctx)? else {
            return Ok(None);
        };
        let v = eval_scalar(self.value, &scoped(&self.env, &t), ctx)?;
        Ok(Some(t.extend(self.attr, v)))
    }

    fn op_name(&self) -> &'static str {
        "Map"
    }
}

/// μ / μ^D — unnest a tuple-valued attribute; a small pending queue holds
/// the fan-out of the current input tuple.
pub struct Unnest<'p> {
    /// Input cursor.
    pub input: BoxCursor<'p>,
    /// The bound attribute.
    pub attr: Sym,
    /// Atomize and deduplicate the fanned-out items.
    pub distinct: bool,
    /// Keep tuples with an empty nested sequence.
    pub preserve_empty: bool,
    /// Attributes of the nested tuples (NULL padding schema).
    pub inner_attrs: &'p [Sym],
    /// Fan-out queue of the current input tuple.
    pub pending: VecDeque<Tuple>,
}

impl Cursor for Unnest<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        loop {
            if let Some(t) = self.pending.pop_front() {
                return Ok(Some(t));
            }
            let Some(t) = self.input.next(ctx)? else {
                return Ok(None);
            };
            let nested = match t.get(self.attr) {
                Some(Value::Tuples(ts)) => ts.as_ref().clone(),
                Some(Value::Null) | None => Vec::new(),
                Some(other) => {
                    return Err(EvalError::new(format!(
                        "unnest({}): not tuple-valued: {other}",
                        self.attr
                    )))
                }
            };
            let nested = if self.distinct {
                nal::eval::dedup_by_value(&nested, ctx.catalog)
            } else {
                nested
            };
            let rest = t.without(&[self.attr]);
            if nested.is_empty() {
                if self.preserve_empty {
                    self.pending
                        .push_back(rest.concat(&Tuple::bottom(self.inner_attrs)));
                }
            } else {
                for inner in nested {
                    self.pending.push_back(rest.concat(&inner));
                }
            }
        }
    }

    fn op_name(&self) -> &'static str {
        "Unnest"
    }
}

/// Υ — unnest-map: evaluate a scalar per tuple and fan out its items.
pub struct UnnestMap<'p> {
    /// Input cursor.
    pub input: BoxCursor<'p>,
    /// The bound attribute.
    pub attr: Sym,
    /// The subscript computing the attribute’s value.
    pub value: &'p Scalar,
    /// Outer-scope bindings visible to subscript evaluation.
    pub env: Tuple,
    /// Fan-out queue of the current input tuple.
    pub pending: VecDeque<Tuple>,
}

impl Cursor for UnnestMap<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        loop {
            if let Some(t) = self.pending.pop_front() {
                return Ok(Some(t));
            }
            let Some(t) = self.input.next(ctx)? else {
                return Ok(None);
            };
            let v = eval_scalar(self.value, &scoped(&self.env, &t), ctx)?;
            for item in v.as_item_seq() {
                self.pending.push_back(t.extend(self.attr, item));
            }
        }
    }

    fn op_name(&self) -> &'static str {
        "UnnestMap"
    }
}

/// Index-backed Υ: the item list comes from the path index (resolved
/// once, on the first pull — the path is document-rooted, so it is the
/// same for every input tuple) and fans out per input tuple exactly as
/// the replaced scan would.
pub struct IndexScan<'p> {
    /// Input cursor.
    pub input: BoxCursor<'p>,
    /// The bound attribute.
    pub attr: Sym,
    /// Document URI resolved through the catalog.
    pub uri: &'p str,
    /// Index-side pattern of the scanned path.
    pub pattern: &'p xmldb::PathPattern,
    /// Atomize and deduplicate the fanned-out items.
    pub distinct: bool,
    /// The resolved item sequence (fetched on first pull).
    pub items: Option<Vec<Value>>,
    /// Fan-out queue of the current input tuple.
    pub pending: VecDeque<Tuple>,
}

impl Cursor for IndexScan<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        if self.items.is_none() {
            self.items = Some(crate::access::scan_items(
                self.uri,
                self.pattern,
                self.distinct,
                ctx,
            )?);
        }
        loop {
            if let Some(t) = self.pending.pop_front() {
                return Ok(Some(t));
            }
            let Some(t) = self.input.next(ctx)? else {
                return Ok(None);
            };
            let items = self.items.as_ref().expect("resolved above");
            for item in items {
                self.pending.push_back(t.extend(self.attr, item.clone()));
            }
        }
    }

    fn op_name(&self) -> &'static str {
        "IndexScan"
    }
}

/// Ξ — result construction, fully pipelined: each pulled tuple is
/// serialized and passed through. When the input subtree itself writes Ξ
/// output, lowering inserts a `Materialize` barrier below this cursor so
/// the byte stream matches the materializing executor's strict bottom-up
/// order.
pub struct XiSimple<'p> {
    /// Input cursor.
    pub input: BoxCursor<'p>,
    /// Serialization commands per tuple.
    pub cmds: &'p [XiCmd],
    /// Outer-scope bindings visible to subscript evaluation.
    pub env: Tuple,
}

impl Cursor for XiSimple<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        let Some(t) = self.input.next(ctx)? else {
            return Ok(None);
        };
        xi::run_cmds(self.cmds, &scoped(&self.env, &t), ctx)?;
        Ok(Some(t))
    }

    fn op_name(&self) -> &'static str {
        "Xi"
    }
}

/// Grouped Ξ — blocking on the input (grouping needs all tuples), then
/// streams one key tuple per group, emitting head/body/tail as pulled.
pub struct XiGroup<'p> {
    /// Input cursor.
    pub input: BoxCursor<'p>,
    /// Group-key attributes.
    pub by: &'p [Sym],
    /// Commands once per group, before the body.
    pub head: &'p [XiCmd],
    /// Commands per tuple of the group.
    pub body: &'p [XiCmd],
    /// Commands once per group, after the body.
    pub tail: &'p [XiCmd],
    /// Outer-scope bindings visible to subscript evaluation.
    pub env: Tuple,
    /// Materialized groups, streamed out one per pull.
    pub groups: Option<std::vec::IntoIter<(Tuple, Vec<Tuple>)>>,
}

impl Cursor for XiGroup<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        if self.groups.is_none() {
            let rows = drain(self.input.as_mut(), ctx)?;
            self.groups = Some(hash_groups(&rows, self.by, ctx).into_iter());
        }
        let Some((key_tuple, members)) = self.groups.as_mut().expect("grouped above").next() else {
            return Ok(None);
        };
        let key_env = self.env.concat(&key_tuple);
        xi::run_cmds(self.head, &key_env, ctx)?;
        for t in &members {
            xi::run_cmds(self.body, &scoped(&self.env, t), ctx)?;
        }
        xi::run_cmds(self.tail, &key_env, ctx)?;
        Ok(Some(key_tuple))
    }

    fn op_name(&self) -> &'static str {
        "XiGroup"
    }
}

/// Hash Γ — blocking build of the group table, then one aggregated tuple
/// per group streamed out (the group function runs lazily per pull).
pub struct HashGroupUnary<'p> {
    /// Input cursor.
    pub input: BoxCursor<'p>,
    /// Attribute receiving the group aggregate.
    pub g: Sym,
    /// Group-key attributes.
    pub by: &'p [Sym],
    /// The aggregate applied per group.
    pub f: &'p GroupFn,
    /// Outer-scope bindings visible to subscript evaluation.
    pub env: Tuple,
    /// Materialized groups, streamed out one per pull.
    pub groups: Option<std::vec::IntoIter<(Tuple, Vec<Tuple>)>>,
}

impl Cursor for HashGroupUnary<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        if self.groups.is_none() {
            let rows = drain(self.input.as_mut(), ctx)?;
            self.groups = Some(hash_groups(&rows, self.by, ctx).into_iter());
        }
        let Some((key_tuple, members)) = self.groups.as_mut().expect("grouped above").next() else {
            return Ok(None);
        };
        let v = apply_groupfn(self.f, &members, &self.env, ctx)?;
        Ok(Some(key_tuple.extend(self.g, v)))
    }

    fn op_name(&self) -> &'static str {
        "HashGroup"
    }
}

/// θ-grouping fallback: materialize, delegate to the reference semantics
/// (as the materializing executor does), stream the result.
pub struct ThetaGroupUnary<'p> {
    /// Input cursor.
    pub input: BoxCursor<'p>,
    /// Attribute receiving the group aggregate.
    pub g: Sym,
    /// Group-key attributes.
    pub by: &'p [Sym],
    /// The grouping comparison.
    pub theta: nal::CmpOp,
    /// The aggregate applied per group.
    pub f: &'p GroupFn,
    /// Outer-scope bindings visible to subscript evaluation.
    pub env: Tuple,
    /// Materialized result, streamed out.
    pub out: Option<std::vec::IntoIter<Tuple>>,
}

impl Cursor for ThetaGroupUnary<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        if self.out.is_none() {
            let rows = drain(self.input.as_mut(), ctx)?;
            let logical = nal::Expr::GroupUnary {
                input: Box::new(nal::Expr::Literal(rows)),
                g: self.g,
                by: self.by.to_vec(),
                theta: self.theta,
                f: self.f.clone(),
            };
            self.out = Some(eval(&logical, &self.env, ctx)?.into_iter());
        }
        Ok(self.out.as_mut().expect("evaluated above").next())
    }

    fn op_name(&self) -> &'static str {
        "ThetaGroup"
    }
}
