//! Morsel-driven intra-query parallelism.
//!
//! [`apply_parallel`] is a physical rewrite pass (a sibling of
//! [`crate::access::apply_indexes`]) that finds pipelines of per-tuple,
//! order-preserving, Ξ-free operators above a fan-out (a posting-list
//! [`PhysPlan::IndexScan`], a document-scan Υ, or a μ) and wraps them in
//! a [`PhysPlan::Parallel`] segment. At execution time the segment:
//!
//! 1. drains its `source` serially on the calling thread (document
//!    order, normal metering),
//! 2. range-partitions the drained rows into contiguous morsels,
//! 3. runs the `stages` pipeline over each morsel on a hand-rolled
//!    worker pool (`std::thread::scope` + per-worker deques with work
//!    stealing — no external runtime), and
//! 4. k-way merges the finished runs back into source order
//!    ([`super::merge`]) keyed by gap-based [`xmldb::NodeId`]s.
//!
//! **Metric parity is a construction property.** A parallel run must
//! report exactly the counters of a serial streaming run of the same
//! query, summed across workers:
//!
//! * stage cursors are wrapped in the same [`Metered`] shells as serial
//!   lowering, into per-worker [`nal::eval::Metrics`] merged on join;
//! * the parallel shell and feed leaf are *unmetered* (the serial plan
//!   has no such operators);
//! * build sides (hash tables, loop-join inners, ×-inners) and
//!   posting-list scans are prepared **once** on the calling thread —
//!   exactly the once-per-cursor work of serial execution — and shared
//!   read-only with every worker;
//! * probe-invariant index joins (constant range bounds, no residual)
//!   probe **once per segment** through a `ProbeGroup`: the first
//!   worker claims the probe, every sibling morsel waits on a condvar
//!   and reuses the decision. This is also the cooperative early-cancel
//!   protocol — the first deciding match cancels all sibling probes for
//!   that probe group.
//!
//! Workers share the caller's pinned snapshot (`&Catalog` is
//! `Send + Sync`; index builds are interior-locked), so the read path
//! takes no new locks.

use std::collections::{HashMap, VecDeque};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use nal::eval::scalar::truthy;
use nal::eval::{EvalCtx, EvalError, EvalResult};
use nal::{ProjOp, Scalar, Sym, Tuple, Value};

use super::cursor::{drain, BoxCursor, Cursor, Metered};
use super::merge::{merge_runs, MorselKey, Run};
use super::ops;
use crate::exec::scoped;
use crate::key::{key_of, Key};
use crate::plan::{JoinKind, PhysPlan};

/// Morsels enqueued per worker: enough granularity for stealing to fix
/// skew, few enough that per-morsel setup stays negligible.
const MORSELS_PER_WORKER: usize = 4;

// ---------------------------------------------------------------------
// The rewrite pass
// ---------------------------------------------------------------------

/// Wrap parallel-safe pipeline segments of a compiled plan in
/// [`PhysPlan::Parallel`] operators. Idempotent: a plan that already
/// contains a parallel segment is returned unchanged. The rewrite is
/// degree-independent — how many workers actually run is decided per
/// execution by `EvalCtx::parallel`, so one cached plan serves every
/// degree (including 1, which runs the segment inline).
pub fn apply_parallel(plan: &PhysPlan) -> PhysPlan {
    if contains_parallel(plan) {
        return plan.clone();
    }
    rewrite(plan)
}

fn rewrite(plan: &PhysPlan) -> PhysPlan {
    if let Some(wrapped) = try_wrap(plan) {
        return wrapped;
    }
    crate::access::map_children(plan.clone(), &mut |child| rewrite(&child))
}

fn contains_parallel(plan: &PhysPlan) -> bool {
    matches!(plan, PhysPlan::Parallel { .. } | PhysPlan::MorselFeed)
        || plan.children().into_iter().any(contains_parallel)
}

/// Operators allowed inside a stage pipeline: per-tuple, order
/// preserving, no cross-tuple state. Distinct projections dedup across
/// tuples and grouping/Ξ operators are blocking or write output, so
/// they end a segment.
fn stage_safe(plan: &PhysPlan) -> bool {
    match plan {
        PhysPlan::Select { .. }
        | PhysPlan::Map { .. }
        | PhysPlan::UnnestMap { .. }
        | PhysPlan::Unnest { .. }
        | PhysPlan::IndexScan { .. }
        | PhysPlan::IndexJoin { .. }
        | PhysPlan::Cross { .. }
        | PhysPlan::LoopJoin { .. }
        | PhysPlan::HashJoin { .. } => true,
        PhysPlan::Project { op, .. } => {
            !matches!(op, ProjOp::DistinctCols(_) | ProjOp::DistinctRename(_))
        }
        _ => false,
    }
}

/// The edge a stage pipeline's spine follows: the streamed input of a
/// unary operator, the probe side of a join.
fn spine_input(plan: &PhysPlan) -> Option<&PhysPlan> {
    match plan {
        PhysPlan::Select { input, .. }
        | PhysPlan::Project { input, .. }
        | PhysPlan::Map { input, .. }
        | PhysPlan::UnnestMap { input, .. }
        | PhysPlan::Unnest { input, .. }
        | PhysPlan::IndexScan { input, .. } => Some(input),
        PhysPlan::Cross { left, .. }
        | PhysPlan::HashJoin { left, .. }
        | PhysPlan::LoopJoin { left, .. }
        | PhysPlan::IndexJoin { left, .. } => Some(left),
        _ => None,
    }
}

/// Does this operator fan one input tuple out into many? The topmost
/// fan-out on a spine becomes the segment's source: everything it
/// produces is the partitionable work.
fn is_fanout(plan: &PhysPlan) -> bool {
    matches!(
        plan,
        PhysPlan::UnnestMap { .. } | PhysPlan::IndexScan { .. } | PhysPlan::Unnest { .. }
    )
}

/// Try to root a parallel segment at `plan`: collect the maximal spine
/// of stage-safe operators, cut it at the topmost fan-out (or at a
/// multi-row leaf below the spine), and wrap stages-over-source. The
/// whole candidate subtree must be Ξ-free — parallel draining reorders
/// evaluation, which only side-effect-free segments survive
/// byte-identically.
fn try_wrap(plan: &PhysPlan) -> Option<PhysPlan> {
    if !stage_safe(plan) || super::contains_xi(plan) {
        return None;
    }
    let mut spine: Vec<&PhysPlan> = Vec::new();
    let mut below = plan;
    while stage_safe(below) {
        spine.push(below);
        below = spine_input(below).expect("stage ops have a spine input");
    }
    // Topmost fan-out on the spine: its subtree is the source and it
    // caps the morsel count at the full fan-out cardinality. A deeper
    // cut could strand parallelism behind a low-cardinality inner scan.
    let (source, stages_end) = match spine.iter().position(|n| is_fanout(n)) {
        Some(j) if j > 0 => (spine[j], j),
        // No fan-out on the spine — a literal/nested relation below it
        // still partitions.
        None if matches!(below, PhysPlan::AttrRel(_) | PhysPlan::Literal(_)) => {
            (below, spine.len())
        }
        _ => return None,
    };
    let mut stages = PhysPlan::MorselFeed;
    for node in spine[..stages_end].iter().rev() {
        stages = replace_spine_input(node, stages);
    }
    Some(PhysPlan::Parallel {
        source: Box::new(source.clone()),
        stages: Box::new(stages),
    })
}

/// Clone `node` with its spine-input edge replaced by `new_input`.
fn replace_spine_input(node: &PhysPlan, new_input: PhysPlan) -> PhysPlan {
    let mut out = node.clone();
    match &mut out {
        PhysPlan::Select { input, .. }
        | PhysPlan::Project { input, .. }
        | PhysPlan::Map { input, .. }
        | PhysPlan::UnnestMap { input, .. }
        | PhysPlan::Unnest { input, .. }
        | PhysPlan::IndexScan { input, .. } => **input = new_input,
        PhysPlan::Cross { left, .. }
        | PhysPlan::HashJoin { left, .. }
        | PhysPlan::LoopJoin { left, .. }
        | PhysPlan::IndexJoin { left, .. } => **left = new_input,
        other => unreachable!("not a spine operator: {}", other.op_name()),
    }
    out
}

/// Splice a drained source into a stage pipeline by replacing its
/// [`PhysPlan::MorselFeed`] leaf with a literal relation — the
/// materializing executor's way of running a parallel segment (inline,
/// single-threaded, same output).
pub(crate) fn substitute_feed(plan: &PhysPlan, rows: &[Tuple]) -> PhysPlan {
    if matches!(plan, PhysPlan::MorselFeed) {
        return PhysPlan::Literal(rows.to_vec());
    }
    crate::access::map_children(plan.clone(), &mut |child| substitute_feed(&child, rows))
}

// ---------------------------------------------------------------------
// Shared per-segment state
// ---------------------------------------------------------------------

/// A hash join's build table, prepared once per segment.
struct HashBuild {
    bucket_rows: Vec<Vec<Tuple>>,
    bucket_index: HashMap<Key, usize>,
}

/// Claim-or-wait protocol for probe-invariant index joins: the decision
/// depends on nothing but constant bounds, so exactly one probe must
/// happen per segment — serial execution memoizes after one probe, and
/// the merged worker metrics must show the same single lookup. The
/// first worker to arrive claims the probe; siblings block on the
/// condvar and reuse the published decision, cancelling their own
/// probes (and, through the per-cursor memo, every later tuple's).
pub(crate) struct ProbeGroup {
    state: Mutex<ProbeState>,
    cv: Condvar,
}

enum ProbeState {
    /// Nobody has probed yet.
    Open,
    /// A worker is probing; wait for its verdict.
    InFlight,
    /// The published decision.
    Done(bool),
}

impl ProbeGroup {
    fn new() -> ProbeGroup {
        ProbeGroup {
            state: Mutex::new(ProbeState::Open),
            cv: Condvar::new(),
        }
    }

    /// Return the group's decision, computing it via `probe` if this
    /// caller wins the claim. On probe error the claim is released so a
    /// sibling can retry rather than deadlock.
    fn decide(&self, probe: impl FnOnce() -> EvalResult<bool>) -> EvalResult<bool> {
        let mut st = self.state.lock().expect("probe group lock");
        loop {
            match *st {
                ProbeState::Done(m) => return Ok(m),
                ProbeState::Open => {
                    *st = ProbeState::InFlight;
                    break;
                }
                ProbeState::InFlight => st = self.cv.wait(st).expect("probe group wait"),
            }
        }
        drop(st);
        let res = probe();
        let mut st = self.state.lock().expect("probe group lock");
        *st = match &res {
            Ok(m) => ProbeState::Done(*m),
            Err(_) => ProbeState::Open,
        };
        drop(st);
        self.cv.notify_all();
        res
    }
}

/// Read-only state prepared once (on the calling thread, against the
/// calling context's metrics) and shared by every worker, keyed by
/// stage-plan node address.
#[derive(Default)]
struct SegmentShared {
    /// Resolved [`PhysPlan::IndexScan`] item sequences.
    scans: HashMap<usize, Arc<Vec<Value>>>,
    /// Hash-join build tables.
    builds: HashMap<usize, Arc<HashBuild>>,
    /// Materialized inner sides of loop joins and cross products.
    inners: HashMap<usize, Arc<Vec<Tuple>>>,
    /// Early-cancel groups for probe-invariant index joins.
    groups: HashMap<usize, Arc<ProbeGroup>>,
}

impl SegmentShared {
    /// Walk the stage spine top-down, doing exactly the once-per-cursor
    /// work serial execution would do on first pull: drain and build
    /// join inners, resolve posting-list scans (one `index_lookups`
    /// bump), allocate probe groups.
    fn prepare(stages: &PhysPlan, env: &Tuple, ctx: &mut EvalCtx<'_>) -> EvalResult<SegmentShared> {
        let mut shared = SegmentShared::default();
        let mut cur = stages;
        loop {
            let addr = cur as *const PhysPlan as usize;
            match cur {
                PhysPlan::MorselFeed => break,
                PhysPlan::IndexScan {
                    input,
                    uri,
                    pattern,
                    distinct,
                    ..
                } => {
                    let items = crate::access::scan_items(uri, pattern, *distinct, ctx)?;
                    shared.scans.insert(addr, Arc::new(items));
                    cur = input;
                }
                PhysPlan::HashJoin {
                    left,
                    right,
                    right_keys,
                    ..
                } => {
                    let rows = drain_plan(right, env, ctx)?;
                    let mut build = HashBuild {
                        bucket_rows: Vec::new(),
                        bucket_index: HashMap::with_capacity(rows.len()),
                    };
                    for rt in rows {
                        if let Some(k) = key_of(&rt, right_keys, ctx.catalog) {
                            let slot = *build.bucket_index.entry(k).or_insert_with(|| {
                                build.bucket_rows.push(Vec::new());
                                build.bucket_rows.len() - 1
                            });
                            build.bucket_rows[slot].push(rt);
                        }
                    }
                    shared.builds.insert(addr, Arc::new(build));
                    cur = left;
                }
                PhysPlan::LoopJoin { left, right, .. } | PhysPlan::Cross { left, right } => {
                    let rows = drain_plan(right, env, ctx)?;
                    shared.inners.insert(addr, Arc::new(rows));
                    cur = left;
                }
                PhysPlan::IndexJoin { left, recipe } => {
                    if recipe.probe_invariant() {
                        shared.groups.insert(addr, Arc::new(ProbeGroup::new()));
                    }
                    cur = left;
                }
                PhysPlan::Select { input, .. }
                | PhysPlan::Project { input, .. }
                | PhysPlan::Map { input, .. }
                | PhysPlan::UnnestMap { input, .. }
                | PhysPlan::Unnest { input, .. } => cur = input,
                other => {
                    return Err(EvalError::new(format!(
                        "operator `{}` is not valid inside a parallel segment",
                        other.op_name()
                    )))
                }
            }
        }
        Ok(shared)
    }
}

fn drain_plan(plan: &PhysPlan, env: &Tuple, ctx: &mut EvalCtx<'_>) -> EvalResult<Vec<Tuple>> {
    let mut c = super::lower(plan, env);
    drain(c.as_mut(), ctx)
}

// ---------------------------------------------------------------------
// Worker-side cursors
// ---------------------------------------------------------------------

/// The feed leaf: one contiguous slice of the drained source.
struct MorselSlice {
    rows: Arc<Vec<Tuple>>,
    end: usize,
    idx: usize,
}

impl Cursor for MorselSlice {
    fn next(&mut self, _ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        if self.idx >= self.end {
            return Ok(None);
        }
        let t = self.rows[self.idx].clone();
        self.idx += 1;
        Ok(Some(t))
    }

    fn op_name(&self) -> &'static str {
        "MorselFeed"
    }
}

/// A [`PhysPlan::MorselFeed`] lowered outside a parallel segment — a
/// plan-construction bug surfaced as an execution error.
pub struct DanglingFeed;

impl Cursor for DanglingFeed {
    fn next(&mut self, _ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        Err(EvalError::new(
            "MorselFeed outside a parallel segment".to_string(),
        ))
    }

    fn op_name(&self) -> &'static str {
        "MorselFeed"
    }
}

/// Worker-side × over the shared materialized inner.
struct SharedCross<'p> {
    left: BoxCursor<'p>,
    right_rows: Arc<Vec<Tuple>>,
    cur_left: Option<Tuple>,
    ridx: usize,
}

impl Cursor for SharedCross<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        loop {
            if let Some(lt) = &self.cur_left {
                if let Some(rt) = self.right_rows.get(self.ridx) {
                    self.ridx += 1;
                    return Ok(Some(lt.concat(rt)));
                }
                self.cur_left = None;
            }
            match self.left.next(ctx)? {
                Some(lt) => {
                    self.cur_left = Some(lt);
                    self.ridx = 0;
                }
                None => return Ok(None),
            }
        }
    }

    fn op_name(&self) -> &'static str {
        "Cross"
    }
}

/// Join-kind-independent emission decision for a finished probe tuple
/// (mirror of the serial cursors').
fn unmatched_output(kind: &JoinKind, pad: &[Sym], lt: &Tuple) -> Option<Tuple> {
    match kind {
        JoinKind::Anti => Some(lt.clone()),
        JoinKind::Outer { g, default } => {
            Some(lt.concat(&Tuple::bottom(pad)).extend(*g, default.clone()))
        }
        JoinKind::Inner | JoinKind::Semi => None,
    }
}

/// Worker-side hash join probing the shared build table. Probe logic —
/// including per-candidate `probe_tuples` accounting and semi/anti
/// short-circuiting — mirrors [`super::join::HashJoin`] exactly, so
/// worker sums equal the serial counters.
struct SharedHashJoin<'p> {
    left: BoxCursor<'p>,
    build: Arc<HashBuild>,
    left_keys: &'p [Sym],
    residual: Option<&'p Scalar>,
    kind: &'p JoinKind,
    pad: &'p [Sym],
    env: Tuple,
    cur: Option<(Tuple, Option<usize>, usize, bool)>,
}

impl SharedHashJoin<'_> {
    fn residual_passes(&self, joined: &Tuple, ctx: &mut EvalCtx<'_>) -> EvalResult<bool> {
        match self.residual {
            None => Ok(true),
            Some(p) => truthy(p, &scoped(&self.env, joined), ctx),
        }
    }
}

impl Cursor for SharedHashJoin<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        loop {
            if let Some((lt, slot, mut pos, mut matched)) = self.cur.take() {
                if let Some(slot) = slot {
                    while pos < self.build.bucket_rows[slot].len() {
                        let rt = self.build.bucket_rows[slot][pos].clone();
                        pos += 1;
                        ctx.metrics.probe_tuples += 1;
                        let joined = lt.concat(&rt);
                        if self.residual_passes(&joined, ctx)? {
                            matched = true;
                            self.cur = Some((lt, Some(slot), pos, matched));
                            return Ok(Some(joined));
                        }
                    }
                }
                if !matched {
                    if let Some(out) = unmatched_output(self.kind, self.pad, &lt) {
                        return Ok(Some(out));
                    }
                }
                continue;
            }
            let Some(lt) = self.left.next(ctx)? else {
                return Ok(None);
            };
            let slot = key_of(&lt, self.left_keys, ctx.catalog)
                .and_then(|k| self.build.bucket_index.get(&k))
                .copied();
            match self.kind {
                JoinKind::Inner | JoinKind::Outer { .. } => {
                    self.cur = Some((lt, slot, 0, false));
                }
                JoinKind::Semi | JoinKind::Anti => {
                    let mut matched = false;
                    if let Some(slot) = slot {
                        for pos in 0..self.build.bucket_rows[slot].len() {
                            let rt = self.build.bucket_rows[slot][pos].clone();
                            ctx.metrics.probe_tuples += 1;
                            let joined = lt.concat(&rt);
                            if self.residual_passes(&joined, ctx)? {
                                matched = true;
                                break;
                            }
                        }
                    }
                    let emit = matches!(self.kind, JoinKind::Semi) == matched;
                    if emit {
                        return Ok(Some(lt));
                    }
                }
            }
        }
    }

    fn op_name(&self) -> &'static str {
        match self.kind {
            JoinKind::Inner => "HashJoin",
            JoinKind::Semi => "HashSemiJoin",
            JoinKind::Anti => "HashAntiJoin",
            JoinKind::Outer { .. } => "HashOuterJoin",
        }
    }
}

/// Worker-side nested-loop join over the shared materialized inner
/// (mirror of [`super::join::LoopJoin`]).
struct SharedLoopJoin<'p> {
    left: BoxCursor<'p>,
    right_rows: Arc<Vec<Tuple>>,
    pred: &'p Scalar,
    kind: &'p JoinKind,
    pad: &'p [Sym],
    env: Tuple,
    cur: Option<(Tuple, usize, bool)>,
}

impl Cursor for SharedLoopJoin<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        loop {
            if let Some((lt, mut pos, mut matched)) = self.cur.take() {
                let n = self.right_rows.len();
                while pos < n {
                    let rt = self.right_rows[pos].clone();
                    pos += 1;
                    ctx.metrics.probe_tuples += 1;
                    let joined = lt.concat(&rt);
                    if truthy(self.pred, &scoped(&self.env, &joined), ctx)? {
                        matched = true;
                        match self.kind {
                            JoinKind::Inner | JoinKind::Outer { .. } => {
                                self.cur = Some((lt, pos, matched));
                                return Ok(Some(joined));
                            }
                            JoinKind::Semi => return Ok(Some(lt)),
                            JoinKind::Anti => break,
                        }
                    }
                }
                match self.kind {
                    JoinKind::Semi => {}
                    JoinKind::Anti | JoinKind::Inner | JoinKind::Outer { .. } if !matched => {
                        if let Some(out) = unmatched_output(self.kind, self.pad, &lt) {
                            return Ok(Some(out));
                        }
                    }
                    _ => {}
                }
                continue;
            }
            match self.left.next(ctx)? {
                Some(lt) => self.cur = Some((lt, 0, false)),
                None => return Ok(None),
            }
        }
    }

    fn op_name(&self) -> &'static str {
        match self.kind {
            JoinKind::Inner => "LoopJoin",
            JoinKind::Semi => "LoopSemiJoin",
            JoinKind::Anti => "LoopAntiJoin",
            JoinKind::Outer { .. } => "LoopOuterJoin",
        }
    }
}

/// Worker-side index join. Non-invariant recipes probe per tuple
/// exactly like [`super::join::IndexJoin`]; probe-invariant recipes
/// route the single probe through the segment's [`ProbeGroup`] and
/// memoize the group decision per cursor.
struct SharedIndexJoin<'p> {
    left: BoxCursor<'p>,
    recipe: &'p crate::access::AccessRecipe,
    env: Tuple,
    access: Option<crate::access::IndexJoinAccess>,
    group: Option<Arc<ProbeGroup>>,
    cached: Option<bool>,
}

impl Cursor for SharedIndexJoin<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        if self.access.is_none() {
            self.access = Some(crate::access::IndexJoinAccess::resolve(self.recipe, ctx)?);
        }
        while let Some(lt) = self.left.next(ctx)? {
            let access = self.access.as_ref().expect("resolved above");
            let matched = match self.cached {
                Some(m) => m,
                None => match &self.group {
                    Some(g) => {
                        let m = g.decide(|| {
                            access.probe_matches(self.recipe, &lt, true, &self.env, ctx)
                        })?;
                        self.cached = Some(m);
                        m
                    }
                    None => access.probe_matches(self.recipe, &lt, true, &self.env, ctx)?,
                },
            };
            let emit = matches!(self.recipe.kind, JoinKind::Semi) == matched;
            if emit {
                return Ok(Some(lt));
            }
        }
        Ok(None)
    }

    fn op_name(&self) -> &'static str {
        self.recipe.op_name()
    }
}

/// Lower a stage pipeline for one morsel: the same cursor tree serial
/// lowering would produce, except build/scan state comes pre-resolved
/// from [`SegmentShared`] and the spine bottoms out at the morsel
/// slice. Every stage cursor gets the serial [`Metered`] shell (same
/// operator names, same plan-node identities), so per-worker counters
/// and traces merge into serial-equal totals.
fn lower_stage<'p>(
    plan: &'p PhysPlan,
    env: &Tuple,
    shared: &SegmentShared,
    feed: &mut Option<MorselSlice>,
) -> BoxCursor<'p> {
    let addr = plan as *const PhysPlan as usize;
    let inner: BoxCursor<'p> = match plan {
        PhysPlan::MorselFeed => {
            return Box::new(feed.take().expect("one feed leaf per stage spine"))
        }
        PhysPlan::Select { input, pred } => Box::new(ops::Select {
            input: lower_stage(input, env, shared, feed),
            pred,
            env: env.clone(),
        }),
        PhysPlan::Project { input, op } => Box::new(ops::Project {
            input: lower_stage(input, env, shared, feed),
            op,
            seen: Default::default(),
        }),
        PhysPlan::Map { input, attr, value } => Box::new(ops::Map {
            input: lower_stage(input, env, shared, feed),
            attr: *attr,
            value,
            env: env.clone(),
        }),
        PhysPlan::UnnestMap { input, attr, value } => Box::new(ops::UnnestMap {
            input: lower_stage(input, env, shared, feed),
            attr: *attr,
            value,
            env: env.clone(),
            pending: Default::default(),
        }),
        PhysPlan::Unnest {
            input,
            attr,
            distinct,
            preserve_empty,
            inner_attrs,
        } => Box::new(ops::Unnest {
            input: lower_stage(input, env, shared, feed),
            attr: *attr,
            distinct: *distinct,
            preserve_empty: *preserve_empty,
            inner_attrs,
            pending: Default::default(),
        }),
        PhysPlan::IndexScan {
            input,
            attr,
            uri,
            pattern,
            distinct,
        } => Box::new(ops::IndexScan {
            input: lower_stage(input, env, shared, feed),
            attr: *attr,
            uri,
            pattern,
            distinct: *distinct,
            items: Some(
                shared.scans[&addr].as_ref().clone(), // pre-resolved: no extra lookup
            ),
            pending: Default::default(),
        }),
        PhysPlan::Cross { left, .. } => Box::new(SharedCross {
            left: lower_stage(left, env, shared, feed),
            right_rows: shared.inners[&addr].clone(),
            cur_left: None,
            ridx: 0,
        }),
        PhysPlan::HashJoin {
            left,
            left_keys,
            residual,
            kind,
            pad,
            ..
        } => Box::new(SharedHashJoin {
            left: lower_stage(left, env, shared, feed),
            build: shared.builds[&addr].clone(),
            left_keys,
            residual: residual.as_ref(),
            kind,
            pad,
            env: env.clone(),
            cur: None,
        }),
        PhysPlan::LoopJoin {
            left,
            pred,
            kind,
            pad,
            ..
        } => Box::new(SharedLoopJoin {
            left: lower_stage(left, env, shared, feed),
            right_rows: shared.inners[&addr].clone(),
            pred,
            kind,
            pad,
            env: env.clone(),
            cur: None,
        }),
        PhysPlan::IndexJoin { left, recipe } => Box::new(SharedIndexJoin {
            left: lower_stage(left, env, shared, feed),
            recipe,
            env: env.clone(),
            access: None,
            group: shared.groups.get(&addr).cloned(),
            cached: None,
        }),
        other => unreachable!("not a stage operator: {}", other.op_name()),
    };
    Box::new(Metered {
        inner,
        name: plan.op_name(),
        node: addr,
    })
}

// ---------------------------------------------------------------------
// The parallel cursor
// ---------------------------------------------------------------------

/// The streaming cursor of a [`PhysPlan::Parallel`] node. The first
/// pull runs the whole segment (drain → partition → pool → merge); the
/// merged output then streams out tuple by tuple. Deliberately not
/// [`Metered`]: the serial plan has no parallel shell, and parity
/// demands identical operator counters.
pub struct ParallelCursor<'p> {
    source: &'p PhysPlan,
    stages: &'p PhysPlan,
    env: Tuple,
    out: Option<std::vec::IntoIter<Tuple>>,
}

impl<'p> ParallelCursor<'p> {
    /// A cursor over the segment `stages(source)`.
    pub fn new(source: &'p PhysPlan, stages: &'p PhysPlan, env: Tuple) -> ParallelCursor<'p> {
        ParallelCursor {
            source,
            stages,
            env,
            out: None,
        }
    }
}

impl Cursor for ParallelCursor<'_> {
    fn next(&mut self, ctx: &mut EvalCtx<'_>) -> EvalResult<Option<Tuple>> {
        if self.out.is_none() {
            let rows = run_segment(self.source, self.stages, &self.env, ctx)?;
            self.out = Some(rows.into_iter());
        }
        Ok(self.out.as_mut().expect("ran above").next())
    }

    fn op_name(&self) -> &'static str {
        "Parallel"
    }
}

/// Contiguous, balanced range partition of `len` rows into at most
/// `degree × MORSELS_PER_WORKER` morsels.
fn partition(len: usize, degree: usize) -> Vec<Range<usize>> {
    let count = (degree * MORSELS_PER_WORKER).min(len).max(1);
    let base = len / count;
    let rem = len % count;
    let mut ranges = Vec::with_capacity(count);
    let mut start = 0;
    for i in 0..count {
        let size = base + usize::from(i < rem);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// The attribute the source binds per produced tuple — when it binds
/// document nodes, morsel merge keys carry their `NodeId`s.
fn driving_attr(source: &PhysPlan) -> Option<Sym> {
    match source {
        PhysPlan::UnnestMap { attr, .. }
        | PhysPlan::IndexScan { attr, .. }
        | PhysPlan::Unnest { attr, .. } => Some(*attr),
        _ => None,
    }
}

/// Pop the next morsel for worker `w`: own deque from the front, then
/// steal from siblings' backs (skew in per-morsel cost — e.g. probe
/// fan-out concentrated in one document region — drains onto idle
/// workers).
fn next_morsel(w: usize, queues: &[Mutex<VecDeque<usize>>]) -> Option<usize> {
    if let Some(m) = queues[w].lock().expect("morsel queue").pop_front() {
        return Some(m);
    }
    for off in 1..queues.len() {
        let q = &queues[(w + off) % queues.len()];
        if let Some(m) = q.lock().expect("morsel queue").pop_back() {
            return Some(m);
        }
    }
    None
}

fn run_morsel(
    stages: &PhysPlan,
    env: &Tuple,
    shared: &SegmentShared,
    rows: Arc<Vec<Tuple>>,
    range: Range<usize>,
    ctx: &mut EvalCtx<'_>,
) -> EvalResult<Vec<Tuple>> {
    let mut feed = Some(MorselSlice {
        rows,
        end: range.end,
        idx: range.start,
    });
    let mut cur = lower_stage(stages, env, shared, &mut feed);
    drain(cur.as_mut(), ctx)
}

/// Execute one parallel segment end to end. Degree comes from
/// `ctx.parallel`; degree 1 (or a single-row source) runs the stage
/// pipeline inline on the calling thread with the calling context —
/// same code path, no threads, identical metrics.
fn run_segment(
    source: &PhysPlan,
    stages: &PhysPlan,
    env: &Tuple,
    ctx: &mut EvalCtx<'_>,
) -> EvalResult<Vec<Tuple>> {
    let rows = drain_plan(source, env, ctx)?;
    let shared = SegmentShared::prepare(stages, env, ctx)?;
    if rows.is_empty() {
        return Ok(Vec::new());
    }
    let degree = ctx.parallel.max(1);
    if degree == 1 || rows.len() < 2 {
        let len = rows.len();
        return run_morsel(stages, env, &shared, Arc::new(rows), 0..len, ctx);
    }

    let morsels = partition(rows.len(), degree);
    let workers = degree.min(morsels.len());
    let drv = driving_attr(source);
    let node_keys: Vec<Option<xmldb::NodeId>> = morsels
        .iter()
        .map(|r| match drv.and_then(|a| rows[r.start].get(a)) {
            Some(Value::Node(nref)) => Some(nref.node),
            _ => None,
        })
        .collect();
    let all_nodes = node_keys.iter().all(Option::is_some);
    // Node keys are only a sound merge component when they *ascend with
    // the morsel ordinals*. A driving attribute that restarts per input
    // tuple — e.g. a doc-rooted Υ above another fan-out, the cross
    // product of two scans — cycles through the same posting list, and
    // keying the merge by node would regroup the output by node instead
    // of restoring the serial interleaving (found by the differential
    // fuzz oracle). Ordinals alone always restore contiguous partitions.
    let keys_ascend = all_nodes && node_keys.windows(2).all(|w| w[0] <= w[1]);

    let rows = Arc::new(rows);
    // Round-robin assignment spreads contiguous document ranges across
    // workers; stealing rebalances the rest.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                (0..morsels.len())
                    .filter(|m| m % workers == w)
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();
    let results: Vec<Mutex<Option<EvalResult<Vec<Tuple>>>>> =
        morsels.iter().map(|_| Mutex::new(None)).collect();
    let abort = AtomicBool::new(false);
    let catalog = ctx.catalog;
    let tracing = ctx.trace.is_some();

    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let queues = &queues;
            let results = &results;
            let abort = &abort;
            let shared = &shared;
            let rows = &rows;
            let morsels = &morsels;
            handles.push(s.spawn(move || {
                let mut wctx = EvalCtx::new(catalog);
                if tracing {
                    wctx.enable_trace();
                }
                while let Some(m) = next_morsel(w, queues) {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let res = run_morsel(
                        stages,
                        env,
                        shared,
                        rows.clone(),
                        morsels[m].clone(),
                        &mut wctx,
                    );
                    if res.is_err() {
                        abort.store(true, Ordering::Relaxed);
                    }
                    *results[m].lock().expect("morsel slot") = Some(res);
                }
                let trace = wctx.take_trace();
                (wctx.metrics, trace)
            }));
        }
        for h in handles {
            let (metrics, trace) = h.join().expect("parallel worker panicked");
            ctx.metrics.merge(&metrics);
            if let (Some(main), Some(t)) = (ctx.trace.as_mut(), trace) {
                main.merge(&t);
            }
        }
    });

    let mut runs: Vec<Run<Tuple>> = Vec::with_capacity(morsels.len());
    let mut first_err: Option<EvalError> = None;
    for (i, slot) in results.into_iter().enumerate() {
        match slot.into_inner().expect("morsel slot") {
            Some(Ok(items)) => runs.push(Run {
                key: MorselKey {
                    node: if keys_ascend { node_keys[i] } else { None },
                    ordinal: i,
                },
                items,
            }),
            Some(Err(e)) if first_err.is_none() => first_err = Some(e),
            Some(Err(_)) => {}
            // Unprocessed: a sibling's error aborted the pool.
            None => {}
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    Ok(merge_runs(runs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nal::expr::builder::*;
    use nal::{CmpOp, Scalar};
    use xmldb::gen::{gen_bib, BibConfig};
    use xmldb::Catalog;
    use xpath::parse_path;

    fn catalog(books: usize) -> Catalog {
        let mut cat = Catalog::new();
        cat.register(gen_bib(&BibConfig {
            books,
            authors_per_book: 2,
            ..BibConfig::default()
        }));
        cat
    }

    fn quantifier_plan() -> PhysPlan {
        let probe = doc_scan("d1", "bib.xml").unnest_map(
            "t1",
            Scalar::attr("d1").path(parse_path("//book/title").unwrap()),
        );
        let build = doc_scan("d2", "bib.xml")
            .unnest_map(
                "t2",
                Scalar::attr("d2").path(parse_path("//book/title").unwrap()),
            )
            .project(&["t2"]);
        let e = probe.semijoin(build, Scalar::attr_cmp(CmpOp::Eq, "t1", "t2"));
        crate::compile(&e)
    }

    #[test]
    fn rewrite_wraps_probe_loop_over_fanout() {
        let plan = apply_parallel(&quantifier_plan());
        let PhysPlan::Parallel { source, stages } = &plan else {
            panic!("expected a parallel segment: {}", plan.explain());
        };
        assert!(
            matches!(source.as_ref(), PhysPlan::UnnestMap { .. }),
            "source is the probe-side fan-out: {}",
            source.explain()
        );
        let PhysPlan::HashJoin { left, .. } = stages.as_ref() else {
            panic!("stages keep the probe loop: {}", stages.explain());
        };
        assert!(matches!(left.as_ref(), PhysPlan::MorselFeed));
    }

    #[test]
    fn rewrite_is_idempotent() {
        let once = apply_parallel(&quantifier_plan());
        let twice = apply_parallel(&once);
        assert_eq!(once.explain(), twice.explain());
    }

    #[test]
    fn rewrite_declines_xi_segments() {
        // Ξ at the root: the segment forms *below* it, never across it.
        let e = doc_scan("d", "bib.xml")
            .unnest_map(
                "t",
                Scalar::attr("d").path(parse_path("//book/title").unwrap()),
            )
            .xi(nal::expr::builder::xi_cmds(&["$t"]));
        let plan = apply_parallel(&crate::compile(&e));
        // A lone fan-out with nothing above it inside the Ξ-free region
        // offers no stage work: no wrap.
        assert!(!contains_parallel(&plan), "{}", plan.explain());
    }

    #[test]
    fn partition_is_contiguous_and_complete() {
        for (len, degree) in [(1usize, 4usize), (7, 2), (100, 4), (3, 8)] {
            let ranges = partition(len, degree);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, len);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous");
                assert!(!w[0].is_empty());
            }
        }
    }

    #[test]
    fn parallel_output_matches_serial_streaming() {
        let cat = catalog(30);
        let serial_plan = quantifier_plan();
        let par_plan = apply_parallel(&serial_plan);
        let mut sctx = EvalCtx::new(&cat);
        let serial =
            super::super::execute_streaming(&serial_plan, &Tuple::empty(), &mut sctx).unwrap();
        for workers in [1usize, 3, 8] {
            let mut pctx = EvalCtx::new(&cat);
            pctx.parallel = workers;
            let par =
                super::super::execute_streaming(&par_plan, &Tuple::empty(), &mut pctx).unwrap();
            assert_eq!(serial, par, "rows at {workers} workers");
            assert_eq!(
                sctx.metrics.tuples_produced, pctx.metrics.tuples_produced,
                "tuple counters at {workers} workers"
            );
            assert_eq!(
                sctx.metrics.op_tuples, pctx.metrics.op_tuples,
                "per-operator counters at {workers} workers"
            );
            assert_eq!(sctx.metrics.probe_tuples, pctx.metrics.probe_tuples);
        }
    }
}
