//! Physical plans, compiled from logical NAL expressions.
//!
//! The compiler mirrors the paper's implementation notes (§2, "one word
//! on implementation"): equality predicates get hash-based
//! order-preserving operators (our in-memory stand-in for the
//! Grace-hash-join + re-sort the authors used, with the order-preserving
//! hash join of Claussen et al. as the conceptual model); non-equality
//! predicates fall back to the definitional nested-loop forms. Scalar
//! subscripts — including nested algebra expressions, which is what makes
//! a *nested plan* nested — are evaluated by the reference evaluator's
//! scalar machinery.

use nal::expr::attrs::attr_set;
use nal::{Expr, GroupFn, ProjOp, Scalar, Sym, Value, XiCmd};

/// How a binary matching operator consumes its matches.
#[derive(Clone, Debug, PartialEq)]
pub enum JoinKind {
    /// Emit concatenated pairs for every match.
    Inner,
    /// Emit each left tuple with at least one match (⋉).
    Semi,
    /// Emit each left tuple with no match (▷).
    Anti,
    /// Left outer join (⟕): unmatched left tuples pad the right
    /// attributes with NULL and bind `g` to `default`.
    Outer {
        /// The grouped/padded attribute.
        g: Sym,
        /// `g`'s value on unmatched left tuples.
        default: Value,
    },
}

/// A physical operator tree.
#[derive(Clone, Debug)]
pub enum PhysPlan {
    /// `□` — the one-empty-tuple relation.
    Singleton,
    /// A literal tuple sequence (tests, rewrites).
    Literal(Vec<nal::Tuple>),
    /// `rel(a)` — the group sequence bound to attribute `a`.
    AttrRel(Sym),
    /// σ — keep tuples satisfying `pred`.
    Select {
        /// Input operator.
        input: Box<PhysPlan>,
        /// The selection predicate.
        pred: Scalar,
    },
    /// Π / Π^D — column projection, renaming, dropping.
    Project {
        /// Input operator.
        input: Box<PhysPlan>,
        /// The projection operation.
        op: ProjOp,
    },
    /// χ — bind `attr` to `value` per tuple.
    Map {
        /// Input operator.
        input: Box<PhysPlan>,
        /// The bound attribute.
        attr: Sym,
        /// The subscript computing its value.
        value: Scalar,
    },
    /// × — ordered cross product.
    Cross {
        /// Outer (slow-varying) input.
        left: Box<PhysPlan>,
        /// Inner input.
        right: Box<PhysPlan>,
    },
    /// Hash-based order-preserving join: build on the right, probe the
    /// left in order; bucket order preserves right order.
    HashJoin {
        /// Probe side.
        left: Box<PhysPlan>,
        /// Build side.
        right: Box<PhysPlan>,
        /// Probe-side key attributes (parallel to `right_keys`).
        left_keys: Vec<Sym>,
        /// Build-side key attributes.
        right_keys: Vec<Sym>,
        /// Non-equi conjuncts evaluated per bucket match.
        residual: Option<Scalar>,
        /// How matches are consumed.
        kind: JoinKind,
        /// `A(right) \ {g}` — outer-join NULL padding (precomputed).
        pad: Vec<Sym>,
    },
    /// Definitional nested-loop join for non-equi predicates.
    LoopJoin {
        /// Outer side.
        left: Box<PhysPlan>,
        /// Inner side, re-scanned per outer tuple.
        right: Box<PhysPlan>,
        /// The join predicate.
        pred: Scalar,
        /// How matches are consumed.
        kind: JoinKind,
        /// Outer-join NULL padding.
        pad: Vec<Sym>,
    },
    /// Single-pass hash grouping (θ = '='), first-occurrence key order.
    HashGroupUnary {
        /// Input operator.
        input: Box<PhysPlan>,
        /// Attribute receiving each group's aggregate.
        g: Sym,
        /// Grouping attributes.
        by: Vec<Sym>,
        /// The aggregate applied per group.
        f: GroupFn,
    },
    /// θ-grouping fallback (distinct keys × input scan).
    ThetaGroupUnary {
        /// Input operator.
        input: Box<PhysPlan>,
        /// Attribute receiving each group's aggregate.
        g: Sym,
        /// Grouping attributes.
        by: Vec<Sym>,
        /// The grouping comparison.
        theta: nal::CmpOp,
        /// The aggregate applied per group.
        f: GroupFn,
    },
    /// Binary grouping with hash lookup of each left tuple's group.
    HashGroupBinary {
        /// The kept side (each tuple receives its group).
        left: Box<PhysPlan>,
        /// The grouped side.
        right: Box<PhysPlan>,
        /// Attribute receiving the group aggregate.
        g: Sym,
        /// Left-side match attributes.
        left_on: Vec<Sym>,
        /// Right-side match attributes.
        right_on: Vec<Sym>,
        /// The aggregate applied per group.
        f: GroupFn,
    },
    /// Binary θ-grouping fallback (non-equality comparisons).
    ThetaGroupBinary {
        /// The kept side.
        left: Box<PhysPlan>,
        /// The grouped side.
        right: Box<PhysPlan>,
        /// Attribute receiving the group aggregate.
        g: Sym,
        /// Left-side match attributes.
        left_on: Vec<Sym>,
        /// The grouping comparison.
        theta: nal::CmpOp,
        /// Right-side match attributes.
        right_on: Vec<Sym>,
        /// The aggregate applied per group.
        f: GroupFn,
    },
    /// μ / μ^D — unnest a sequence-valued attribute.
    Unnest {
        /// Input operator.
        input: Box<PhysPlan>,
        /// The sequence-valued attribute to flatten.
        attr: Sym,
        /// μ^D: atomize and deduplicate the flattened items.
        distinct: bool,
        /// Keep tuples whose sequence is empty (outer-join provenance).
        preserve_empty: bool,
        /// Attributes of the nested tuples (precomputed schema).
        inner_attrs: Vec<Sym>,
    },
    /// Υ — bind `attr` to each item of the subscript's sequence.
    UnnestMap {
        /// Input operator.
        input: Box<PhysPlan>,
        /// The bound attribute.
        attr: Sym,
        /// The sequence-producing subscript.
        value: Scalar,
    },
    /// Ξ — serialize per input tuple (identity output).
    XiSimple {
        /// Input operator.
        input: Box<PhysPlan>,
        /// Serialization commands per tuple.
        cmds: Vec<XiCmd>,
    },
    /// Grouped Ξ — head/body/tail serialization per key group.
    XiGroup {
        /// Input operator.
        input: Box<PhysPlan>,
        /// Group-key attributes.
        by: Vec<Sym>,
        /// Commands once per group, before the body.
        head: Vec<XiCmd>,
        /// Commands per tuple of the group.
        body: Vec<XiCmd>,
        /// Commands once per group, after the body.
        tail: Vec<XiCmd>,
    },
    /// Index-backed document path scan: replaces an `UnnestMap` whose
    /// subscript is a document-rooted structural path. The node sequence
    /// comes from the catalog's [`xmldb::PathIndex`] (document order, no
    /// tree traversal); each input tuple fans out over it exactly as the
    /// replaced Υ would. Produced only by
    /// [`crate::access::apply_indexes`].
    IndexScan {
        /// Input operator (each tuple fans out over the node sequence).
        input: Box<PhysPlan>,
        /// The bound attribute.
        attr: Sym,
        /// Document URI resolved through the catalog.
        uri: String,
        /// Index-side form of the path (resolvable by the path index).
        pattern: xmldb::PathPattern,
        /// `true` when the subscript was wrapped in `distinct-values`:
        /// emit first-occurrence distinct *atomized* values instead of
        /// nodes.
        distinct: bool,
    },
    /// Index-backed semi/anti quantifier join: replaces a hash or loop
    /// semi/anti join whose build side is a document path scan (possibly
    /// wrapped in filters, computed columns, and fan-outs) with a probe
    /// of the catalog's value indexes, never executing the build side at
    /// all. *Everything* about the access path — point, composite-key,
    /// or ordered range probing; ancestor reconstruction (fixed-depth
    /// parent hops or variable-depth trail matching); the replayed
    /// pipeline and residual — is carried by the declarative
    /// [`crate::access::AccessRecipe`], which both executors and the
    /// cost model consume unchanged. Produced only by
    /// [`crate::access::apply_indexes`].
    IndexJoin {
        /// Probe side.
        left: Box<PhysPlan>,
        /// The declarative access path (driver, reconstruction, replay).
        recipe: std::sync::Arc<crate::access::AccessRecipe>,
    },
    /// Morsel-driven parallel segment: `source` is drained serially (in
    /// document order), range-partitioned into contiguous morsels, and
    /// each morsel flows through a private copy of the `stages` pipeline
    /// on a worker pool; morsel outputs are k-way merged back into source
    /// order. `stages` must be a per-tuple, order-preserving, Ξ-free
    /// pipeline whose spine bottoms out at [`PhysPlan::MorselFeed`]. The
    /// degree of parallelism comes from the evaluation context
    /// (`EvalCtx::parallel`), not the plan, so cached plans stay
    /// degree-independent; with degree 1 the segment runs inline on the
    /// calling thread. Produced only by [`crate::pipeline::par::apply_parallel`].
    Parallel {
        /// The morselized input, executed serially on the calling thread.
        source: Box<PhysPlan>,
        /// The per-morsel pipeline; its spine leaf is `MorselFeed`.
        stages: Box<PhysPlan>,
    },
    /// Placeholder leaf inside a [`PhysPlan::Parallel`]'s stage pipeline:
    /// stands for "the current morsel's tuples". Never executed outside a
    /// parallel segment.
    MorselFeed,
}

impl PhysPlan {
    /// Operator name for explain output.
    pub fn op_name(&self) -> &'static str {
        match self {
            PhysPlan::Singleton => "Singleton",
            PhysPlan::Literal(_) => "Literal",
            PhysPlan::AttrRel(_) => "AttrRel",
            PhysPlan::Select { .. } => "Select",
            PhysPlan::Project { .. } => "Project",
            PhysPlan::Map { .. } => "Map",
            PhysPlan::Cross { .. } => "Cross",
            PhysPlan::HashJoin { kind, .. } => match kind {
                JoinKind::Inner => "HashJoin",
                JoinKind::Semi => "HashSemiJoin",
                JoinKind::Anti => "HashAntiJoin",
                JoinKind::Outer { .. } => "HashOuterJoin",
            },
            PhysPlan::LoopJoin { kind, .. } => match kind {
                JoinKind::Inner => "LoopJoin",
                JoinKind::Semi => "LoopSemiJoin",
                JoinKind::Anti => "LoopAntiJoin",
                JoinKind::Outer { .. } => "LoopOuterJoin",
            },
            PhysPlan::HashGroupUnary { .. } => "HashGroup",
            PhysPlan::ThetaGroupUnary { .. } => "ThetaGroup",
            PhysPlan::HashGroupBinary { .. } => "HashNestJoin",
            PhysPlan::ThetaGroupBinary { .. } => "ThetaNestJoin",
            PhysPlan::Unnest { .. } => "Unnest",
            PhysPlan::UnnestMap { .. } => "UnnestMap",
            PhysPlan::XiSimple { .. } => "Xi",
            PhysPlan::XiGroup { .. } => "XiGroup",
            PhysPlan::IndexScan { .. } => "IndexScan",
            PhysPlan::IndexJoin { recipe, .. } => recipe.op_name(),
            PhysPlan::Parallel { .. } => "Parallel",
            PhysPlan::MorselFeed => "MorselFeed",
        }
    }

    /// Indented operator-tree rendering.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(self.op_name());
        out.push('\n');
        for c in self.children() {
            c.explain_into(depth + 1, out);
        }
    }

    /// The node's direct plan inputs, in left-to-right order (the probe
    /// side only for [`PhysPlan::IndexJoin`] — the build side is never
    /// executed). Used by explain rendering and per-node cost/trace
    /// walks.
    pub fn children(&self) -> Vec<&PhysPlan> {
        match self {
            PhysPlan::Singleton
            | PhysPlan::Literal(_)
            | PhysPlan::AttrRel(_)
            | PhysPlan::MorselFeed => vec![],
            PhysPlan::Parallel { source, stages } => vec![source, stages],
            PhysPlan::Select { input, .. }
            | PhysPlan::Project { input, .. }
            | PhysPlan::Map { input, .. }
            | PhysPlan::HashGroupUnary { input, .. }
            | PhysPlan::ThetaGroupUnary { input, .. }
            | PhysPlan::Unnest { input, .. }
            | PhysPlan::UnnestMap { input, .. }
            | PhysPlan::XiSimple { input, .. }
            | PhysPlan::XiGroup { input, .. }
            | PhysPlan::IndexScan { input, .. } => vec![input],
            PhysPlan::IndexJoin { left, .. } => vec![left],
            PhysPlan::Cross { left, right }
            | PhysPlan::HashJoin { left, right, .. }
            | PhysPlan::LoopJoin { left, right, .. }
            | PhysPlan::HashGroupBinary { left, right, .. }
            | PhysPlan::ThetaGroupBinary { left, right, .. } => vec![left, right],
        }
    }
}

/// Compile a logical expression into a physical plan.
pub fn compile(e: &Expr) -> PhysPlan {
    match e {
        Expr::Singleton => PhysPlan::Singleton,
        Expr::Literal(rows) => PhysPlan::Literal(rows.clone()),
        Expr::AttrRel(a) => PhysPlan::AttrRel(*a),
        Expr::Select { input, pred } => PhysPlan::Select {
            input: Box::new(compile(input)),
            pred: pred.clone(),
        },
        Expr::Project { input, op } => PhysPlan::Project {
            input: Box::new(compile(input)),
            op: op.clone(),
        },
        Expr::Map { input, attr, value } => PhysPlan::Map {
            input: Box::new(compile(input)),
            attr: *attr,
            value: value.clone(),
        },
        Expr::Cross { left, right } => PhysPlan::Cross {
            left: Box::new(compile(left)),
            right: Box::new(compile(right)),
        },
        Expr::Join { left, right, pred } => join(left, right, pred, JoinKind::Inner, &[]),
        Expr::SemiJoin { left, right, pred } => join(left, right, pred, JoinKind::Semi, &[]),
        Expr::AntiJoin { left, right, pred } => join(left, right, pred, JoinKind::Anti, &[]),
        Expr::OuterJoin {
            left,
            right,
            pred,
            g,
            default,
        } => {
            let pad: Vec<Sym> = attr_set(right).into_iter().filter(|a| a != g).collect();
            join(
                left,
                right,
                pred,
                JoinKind::Outer {
                    g: *g,
                    default: default.clone(),
                },
                &pad,
            )
        }
        Expr::GroupUnary {
            input,
            g,
            by,
            theta,
            f,
        } => {
            let input = Box::new(compile(input));
            if *theta == nal::CmpOp::Eq {
                PhysPlan::HashGroupUnary {
                    input,
                    g: *g,
                    by: by.clone(),
                    f: f.clone(),
                }
            } else {
                PhysPlan::ThetaGroupUnary {
                    input,
                    g: *g,
                    by: by.clone(),
                    theta: *theta,
                    f: f.clone(),
                }
            }
        }
        Expr::GroupBinary {
            left,
            right,
            g,
            left_on,
            theta,
            right_on,
            f,
        } => {
            let left = Box::new(compile(left));
            let right = Box::new(compile(right));
            if *theta == nal::CmpOp::Eq {
                PhysPlan::HashGroupBinary {
                    left,
                    right,
                    g: *g,
                    left_on: left_on.clone(),
                    right_on: right_on.clone(),
                    f: f.clone(),
                }
            } else {
                PhysPlan::ThetaGroupBinary {
                    left,
                    right,
                    g: *g,
                    left_on: left_on.clone(),
                    theta: *theta,
                    right_on: right_on.clone(),
                    f: f.clone(),
                }
            }
        }
        Expr::Unnest {
            input,
            attr,
            distinct,
            preserve_empty,
        } => PhysPlan::Unnest {
            inner_attrs: nal::expr::attrs::nested_attrs(input, *attr).unwrap_or_default(),
            input: Box::new(compile(input)),
            attr: *attr,
            distinct: *distinct,
            preserve_empty: *preserve_empty,
        },
        Expr::UnnestMap { input, attr, value } => PhysPlan::UnnestMap {
            input: Box::new(compile(input)),
            attr: *attr,
            value: value.clone(),
        },
        Expr::XiSimple { input, cmds } => PhysPlan::XiSimple {
            input: Box::new(compile(input)),
            cmds: cmds.clone(),
        },
        Expr::XiGroup {
            input,
            by,
            head,
            body,
            tail,
        } => PhysPlan::XiGroup {
            input: Box::new(compile(input)),
            by: by.clone(),
            head: head.clone(),
            body: body.clone(),
            tail: tail.clone(),
        },
    }
}

/// Split a join predicate into hashable equi-pairs and a residual; choose
/// the hash or loop operator accordingly.
fn join(left: &Expr, right: &Expr, pred: &Scalar, kind: JoinKind, pad: &[Sym]) -> PhysPlan {
    let l = Box::new(compile(left));
    let r = Box::new(compile(right));
    let a_l = attr_set(left);
    let a_r = attr_set(right);

    let mut left_keys = Vec::new();
    let mut right_keys = Vec::new();
    let mut residual = Vec::new();
    for c in pred.conjuncts() {
        match c {
            Scalar::Cmp(nal::CmpOp::Eq, x, y) => match (x.as_ref(), y.as_ref()) {
                (Scalar::Attr(xa), Scalar::Attr(ya)) if a_l.contains(xa) && a_r.contains(ya) => {
                    left_keys.push(*xa);
                    right_keys.push(*ya);
                }
                (Scalar::Attr(xa), Scalar::Attr(ya)) if a_r.contains(xa) && a_l.contains(ya) => {
                    left_keys.push(*ya);
                    right_keys.push(*xa);
                }
                _ => residual.push((*c).clone()),
            },
            other => residual.push(other.clone()),
        }
    }
    if left_keys.is_empty() {
        PhysPlan::LoopJoin {
            left: l,
            right: r,
            pred: pred.clone(),
            kind,
            pad: pad.to_vec(),
        }
    } else {
        PhysPlan::HashJoin {
            left: l,
            right: r,
            left_keys,
            right_keys,
            residual: if residual.is_empty() {
                None
            } else {
                Some(Scalar::conjoin(residual))
            },
            kind,
            pad: pad.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nal::expr::builder::*;
    use nal::CmpOp;

    #[test]
    fn equi_joins_compile_to_hash_operators() {
        let l = singleton().map("a", Scalar::int(1));
        let r = singleton().map("b", Scalar::int(2));
        let j = l.clone().semijoin(
            r.clone(),
            Scalar::attr_cmp(CmpOp::Eq, "a", "b").and(Scalar::cmp(
                CmpOp::Gt,
                Scalar::attr("b"),
                Scalar::int(0),
            )),
        );
        let plan = compile(&j);
        let PhysPlan::HashJoin {
            kind,
            residual,
            left_keys,
            ..
        } = &plan
        else {
            panic!("{}", plan.explain())
        };
        assert_eq!(*kind, JoinKind::Semi);
        assert!(residual.is_some());
        assert_eq!(left_keys, &vec![Sym::new("a")]);
    }

    #[test]
    fn non_equi_joins_fall_back_to_loops() {
        let l = singleton().map("a", Scalar::int(1));
        let r = singleton().map("b", Scalar::int(2));
        let j = l.join(r, Scalar::attr_cmp(CmpOp::Lt, "a", "b"));
        assert!(matches!(compile(&j), PhysPlan::LoopJoin { .. }));
    }

    #[test]
    fn grouping_picks_hash_for_equality() {
        let e = singleton().map("a", Scalar::int(1)).group_unary(
            "g",
            &["a"],
            CmpOp::Eq,
            nal::GroupFn::count(),
        );
        assert!(matches!(compile(&e), PhysPlan::HashGroupUnary { .. }));
        let e = singleton().map("a", Scalar::int(1)).group_unary(
            "g",
            &["a"],
            CmpOp::Lt,
            nal::GroupFn::count(),
        );
        assert!(matches!(compile(&e), PhysPlan::ThetaGroupUnary { .. }));
    }

    #[test]
    fn explain_renders_tree() {
        let l = singleton().map("a", Scalar::int(1));
        let r = singleton().map("b", Scalar::int(2));
        let j = l.join(r, Scalar::attr_cmp(CmpOp::Eq, "a", "b"));
        let ex = compile(&j).explain();
        assert!(ex.starts_with("HashJoin"), "{ex}");
        assert!(ex.contains("\n  Map"), "{ex}");
    }
}
