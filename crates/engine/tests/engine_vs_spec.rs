//! Differential testing: the physical engine must agree with the
//! reference evaluator on every operator, including order.

use proptest::prelude::*;

use nal::expr::builder::*;
use nal::{eval_query, AggKind, CmpOp, EvalCtx, Expr, GroupFn, Scalar, Sym, Tuple, Value};
use xmldb::gen::{gen_bib, standard_catalog, BibConfig};
use xmldb::Catalog;

fn s(n: &str) -> Sym {
    Sym::new(n)
}

fn spec(expr: &Expr, cat: &Catalog) -> (Vec<Tuple>, String) {
    let mut ctx = EvalCtx::new(cat);
    let rows = eval_query(expr, &mut ctx).expect("spec evaluation succeeds");
    (rows, ctx.take_output())
}

fn engine_run(expr: &Expr, cat: &Catalog) -> (Vec<Tuple>, String) {
    let r = engine::run(expr, cat).expect("engine evaluation succeeds");
    (r.rows, r.output)
}

fn assert_same(expr: &Expr, cat: &Catalog) {
    let (srows, sout) = spec(expr, cat);
    let (erows, eout) = engine_run(expr, cat);
    assert_eq!(srows, erows, "row mismatch for {expr}");
    assert_eq!(sout, eout, "Ξ output mismatch for {expr}");
}

fn rel(attr_a: &str, attr_b: &str, rows: &[(i64, i64)]) -> Expr {
    Expr::Literal(
        rows.iter()
            .map(|&(x, y)| {
                Tuple::from_pairs(vec![(s(attr_a), Value::Int(x)), (s(attr_b), Value::Int(y))])
            })
            .collect(),
    )
    .project_syms(vec![s(attr_a), s(attr_b)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn joins_agree(
        l in prop::collection::vec((0i64..5, 0i64..40), 0..14),
        r in prop::collection::vec((0i64..5, 0i64..40), 0..14),
        kind in 0..4usize,
        with_residual in prop::bool::ANY,
    ) {
        let cat = Catalog::new();
        let left = rel("a", "x", &l);
        let right = rel("b", "y", &r);
        let mut pred = Scalar::attr_cmp(CmpOp::Eq, "a", "b");
        if with_residual {
            pred = pred.and(Scalar::cmp(CmpOp::Lt, Scalar::attr("y"), Scalar::int(25)));
        }
        let expr = match kind {
            0 => left.join(right, pred),
            1 => left.semijoin(right, pred),
            2 => left.antijoin(right, pred),
            _ => left.outerjoin(right, pred, "y", Value::Int(0)),
        };
        assert_same(&expr, &cat);
    }

    #[test]
    fn non_equi_joins_agree(
        l in prop::collection::vec((0i64..5, 0i64..40), 0..10),
        r in prop::collection::vec((0i64..5, 0i64..40), 0..10),
        op in prop::sample::select(vec![CmpOp::Lt, CmpOp::Ne, CmpOp::Ge]),
    ) {
        let cat = Catalog::new();
        let expr = rel("a", "x", &l).semijoin(rel("b", "y", &r), Scalar::attr_cmp(op, "a", "b"));
        assert_same(&expr, &cat);
    }

    #[test]
    fn grouping_agrees(
        rows in prop::collection::vec((0i64..5, 0i64..40), 0..16),
        theta in prop::sample::select(vec![CmpOp::Eq, CmpOp::Lt, CmpOp::Ge]),
        f in prop::sample::select(vec![
            GroupFn::count(),
            GroupFn::id(),
            GroupFn::project_items("y"),
            GroupFn::agg_of(AggKind::Min, "y"),
            GroupFn::agg_of(AggKind::Sum, "y"),
        ]),
    ) {
        let cat = Catalog::new();
        let expr = rel("b", "y", &rows).group_unary("g", &["b"], theta, f);
        assert_same(&expr, &cat);
    }

    #[test]
    fn binary_grouping_agrees(
        l in prop::collection::vec(0i64..5, 0..10),
        r in prop::collection::vec((0i64..5, 0i64..40), 0..14),
        theta in prop::sample::select(vec![CmpOp::Eq, CmpOp::Le]),
    ) {
        let cat = Catalog::new();
        let left = Expr::Literal(
            l.iter().map(|&k| Tuple::singleton(s("a"), Value::Int(k))).collect(),
        )
        .project_syms(vec![s("a")]);
        let expr = left.group_binary(
            rel("b", "y", &r),
            "g",
            &["a"],
            theta,
            &["b"],
            GroupFn::count(),
        );
        assert_same(&expr, &cat);
    }

    #[test]
    fn group_then_unnest_agrees(
        rows in prop::collection::vec((0i64..4, 0i64..40), 0..14),
        distinct in prop::bool::ANY,
    ) {
        let cat = Catalog::new();
        let grouped = rel("b", "y", &rows).group_unary("g", &["b"], CmpOp::Eq, GroupFn::id());
        let expr = if distinct { grouped.unnest_distinct("g") } else { grouped.unnest("g") };
        assert_same(&expr, &cat);
    }

    #[test]
    fn projections_agree(
        rows in prop::collection::vec((0i64..4, 0i64..6), 0..16),
    ) {
        let cat = Catalog::new();
        let base = rel("b", "y", &rows);
        assert_same(&base.clone().project(&["b"]), &cat);
        assert_same(&base.clone().drop_attrs(&["y"]), &cat);
        assert_same(&base.clone().rename(&[("z", "b")]), &cat);
        assert_same(&base.clone().distinct_cols(&["b"]), &cat);
        assert_same(&base.distinct_rename(&[("z", "b")]), &cat);
    }

    #[test]
    fn xi_group_agrees(
        rows in prop::collection::vec((0i64..4, 0i64..6), 0..16),
    ) {
        let cat = Catalog::new();
        let expr = rel("b", "y", &rows).xi_group(
            &["b"],
            xi_cmds(&["<g k=\"", "$b", "\">"]),
            xi_cmds(&["<i>", "$y", "</i>"]),
            xi_cmds(&["</g>"]),
        );
        assert_same(&expr, &cat);
    }
}

/// All plans of all six paper workloads: engine output == spec output.
#[test]
fn engine_matches_spec_on_all_paper_plans() {
    use ordered_unnesting_workloads::*;

    let catalog = standard_catalog(25, 3, 11);
    for w in workloads() {
        let nested =
            xquery::compile(w.1, &catalog).unwrap_or_else(|e| panic!("[{}] compile: {e}", w.0));
        for plan in unnest::enumerate_plans(&nested, &catalog) {
            let (srows, sout) = spec(&plan.expr, &catalog);
            let r = engine::run(&plan.expr, &catalog)
                .unwrap_or_else(|e| panic!("[{} / {}] engine: {e}", w.0, plan.label));
            assert_eq!(r.rows, srows, "[{} / {}] rows differ", w.0, plan.label);
            assert_eq!(
                r.output, sout,
                "[{} / {}] Ξ output differs",
                w.0, plan.label
            );
        }
    }
}

/// Minimal inline copy of the workload queries to avoid a dependency
/// cycle (engine ← umbrella). Kept in sync by the umbrella end-to-end
/// tests, which exercise the same strings via `ordered_unnesting`.
mod ordered_unnesting_workloads {
    pub fn workloads() -> Vec<(&'static str, &'static str)> {
        vec![
            (
                "q1",
                r#"let $d1 := doc("bib.xml")
                   for $a1 in distinct-values($d1//author)
                   return <author><name>{ $a1 }</name>{
                     let $d2 := doc("bib.xml")
                     for $b2 in $d2//book[$a1 = author]
                     return $b2/title
                   }</author>"#,
            ),
            (
                "q2",
                r#"let $d1 := doc("prices.xml")
                   for $t1 in distinct-values($d1//book/title)
                   let $m1 := min(let $d2 := doc("prices.xml")
                                  for $p2 in $d2//book[title = $t1]/price
                                  return decimal($p2))
                   return <minprice title="{ $t1 }"><price>{ $m1 }</price></minprice>"#,
            ),
            (
                "q3",
                r#"let $d1 := document("bib.xml")
                   for $t1 in $d1//book/title
                   where some $t2 in document("reviews.xml")//entry/title
                         satisfies $t1 = $t2
                   return <book-with-review>{ $t1 }</book-with-review>"#,
            ),
            (
                "q4",
                r#"let $d1 := doc("bib.xml")
                   for $b1 in $d1//book, $a1 in $b1/author
                   where exists(let $d2 := doc("bib.xml")
                                for $b2 in $d2//book, $a2 in $b2/author
                                where contains($a2, "an") and $b1 = $b2
                                return $b2)
                   return <book>{ $a1 }</book>"#,
            ),
            (
                "q5",
                r#"let $d1 := doc("bib.xml")
                   for $a1 in distinct-values($d1//author)
                   where every $b2 in doc("bib.xml")//book[author = $a1]
                         satisfies $b2/@year > 1993
                   return <new-author>{ $a1 }</new-author>"#,
            ),
            (
                "q6",
                r#"let $d1 := document("bids.xml")
                   for $i1 in distinct-values($d1//itemno)
                   where count($d1//bidtuple[itemno = $i1]) >= 3
                   return <popular-item>{ $i1 }</popular-item>"#,
            ),
        ]
    }
}

/// The engine must be *faster* than the spec evaluator on an unnested
/// grouping plan at moderate scale (sanity check of the hash operators).
#[test]
fn hash_grouping_beats_definitional_grouping() {
    let mut cat = Catalog::new();
    cat.register(gen_bib(&BibConfig {
        books: 300,
        authors_per_book: 3,
        ..Default::default()
    }));
    let q = r#"let $d1 := doc("bib.xml")
               for $a1 in distinct-values($d1//author)
               return <author><name>{ $a1 }</name>{
                 let $d2 := doc("bib.xml")
                 for $b2 in $d2//book[$a1 = author]
                 return $b2/title
               }</author>"#;
    let nested = xquery::compile(q, &cat).unwrap();
    let (best, _) = unnest::unnest_best(&nested, &cat);
    let t0 = std::time::Instant::now();
    let _ = engine::run(&best, &cat).unwrap();
    let engine_time = t0.elapsed();
    let t1 = std::time::Instant::now();
    let mut ctx = EvalCtx::new(&cat);
    let _ = eval_query(&nested, &mut ctx).unwrap();
    let nested_time = t1.elapsed();
    assert!(
        engine_time < nested_time,
        "unnested engine plan ({engine_time:?}) should beat the nested baseline ({nested_time:?})"
    );
}
