//! Differential testing of index-backed plans: `compile_indexed` must
//! produce byte-identical rows and Ξ output to the scan-based `compile`
//! on **both** executors, across every plan alternative of every §5
//! workload — and the index-backed quantifier joins must do strictly
//! less work (fewer examined tuples) while doing it.

use proptest::prelude::*;

use nal::expr::builder::*;
use nal::{CmpOp, Expr, Metrics, Scalar, Sym, Tuple, Value};
use xmldb::gen::{gen_bib, standard_catalog, BibConfig};
use xmldb::{Catalog, NodeId};
use xpath::parse_path;

fn s(n: &str) -> Sym {
    Sym::new(n)
}

fn p(path: &str) -> xpath::Path {
    parse_path(path).unwrap()
}

/// Tuples a semi/anti join examines: probed bucket/posting candidates
/// plus every tuple produced along the way (the build side of a scan
/// join produces its whole scan; an index join never runs it).
fn tuples_examined(m: &Metrics) -> u64 {
    m.probe_tuples + m.tuples_produced
}

/// Run `expr` all four ways (materialized/streaming × scan/indexed) and
/// assert identical rows and Ξ output. Returns the streaming metrics
/// (scan, indexed) for work comparisons.
fn assert_all_modes_identical(expr: &Expr, cat: &Catalog) -> (Metrics, Metrics) {
    let scan_plan = engine::compile(expr);
    let index_plan = engine::compile_indexed(expr, cat);
    let m_scan = engine::run_compiled(&scan_plan, cat).expect("materialized scan");
    let m_index = engine::run_compiled(&index_plan, cat).expect("materialized indexed");
    let s_scan = engine::run_streaming_compiled(&scan_plan, cat).expect("streaming scan");
    let s_index = engine::run_streaming_compiled(&index_plan, cat).expect("streaming indexed");
    for (label, r) in [
        ("materialized indexed", &m_index),
        ("streaming scan", &s_scan),
        ("streaming indexed", &s_index),
    ] {
        assert_eq!(r.rows, m_scan.rows, "{label}: row mismatch for {expr}");
        assert_eq!(
            r.output, m_scan.output,
            "{label}: Ξ output mismatch for {expr}"
        );
    }
    (s_scan.metrics, s_index.metrics)
}

// ---------------------------------------------------------------------
// Paper workloads: every plan alternative, both executors, bytes equal
// ---------------------------------------------------------------------

#[test]
fn all_workload_plans_are_byte_identical_with_indexes() {
    let catalog = standard_catalog(40, 2, 7);
    for w in &ordered_unnesting::workloads::ALL {
        let nested = xquery::compile(w.query, &catalog)
            .unwrap_or_else(|e| panic!("[{}] compile failed: {e}", w.id));
        for plan in unnest::enumerate_plans(&nested, &catalog) {
            assert_all_modes_identical(&plan.expr, &catalog);
        }
    }
}

#[test]
fn quantifier_workloads_use_indexes_and_examine_fewer_tuples() {
    let catalog = standard_catalog(60, 2, 11);
    // Q3/Q4 (some/exists → semijoin) and Q5 (every → anti-semijoin) are
    // the paper's quantifier experiments; their rewritten plans carry
    // the doc-rooted build sides the index join replaces — including
    // the pushed-down filters (Q4's contains(), Q5's year predicate),
    // which the index join replays per candidate.
    for (w, label) in [
        (&ordered_unnesting::workloads::Q3_EXISTENTIAL, "semijoin"),
        (&ordered_unnesting::workloads::Q4_EXISTS, "semijoin"),
        (&ordered_unnesting::workloads::Q5_UNIVERSAL, "anti-semijoin"),
    ] {
        let nested = xquery::compile(w.query, &catalog).expect("compiles");
        let plans = unnest::enumerate_plans(&nested, &catalog);
        let plan = plans
            .iter()
            .find(|p| p.label == label)
            .unwrap_or_else(|| panic!("[{}] missing `{label}` plan", w.id));
        let (scan, indexed) = assert_all_modes_identical(&plan.expr, &catalog);
        assert!(
            indexed.index_lookups > 0,
            "[{}] the indexed plan must actually probe the index",
            w.id
        );
        assert!(
            tuples_examined(&indexed) < tuples_examined(&scan),
            "[{}] indexed plan must examine strictly fewer tuples: {} vs {}",
            w.id,
            tuples_examined(&indexed),
            tuples_examined(&scan)
        );
        assert_eq!(
            indexed.doc_scans, 0,
            "[{}] index-backed plan must not scan the document",
            w.id
        );
    }
}

// ---------------------------------------------------------------------
// Index scans agree with path evaluation on every supported path shape
// ---------------------------------------------------------------------

#[test]
fn index_scans_match_path_evaluation() {
    let mut cat = Catalog::new();
    cat.register(gen_bib(&BibConfig {
        books: 25,
        authors_per_book: 3,
        seed: 3,
        ..BibConfig::default()
    }));
    for path in [
        "//book",
        "//author",
        "//book/author",
        "//book/title",
        "//author/last",
        "//book/@year",
        "/bib/book/title",
        "//bib//author",
        "//*",
        "//book/*",
        "//missing",
    ] {
        let e = doc_scan("d", "bib.xml").unnest_map("x", Scalar::attr("d").path(p(path)));
        let (scan, indexed) = assert_all_modes_identical(&e, &cat);
        // Sanity: the conversion actually happened (index lookups > 0)
        // and skipped the document walk.
        assert!(indexed.index_lookups > 0, "{path}: not converted");
        assert!(
            indexed.nodes_visited < scan.nodes_visited.max(1),
            "{path}: indexed plan must visit fewer nodes ({} vs {})",
            indexed.nodes_visited,
            scan.nodes_visited
        );
        // Distinct variant too.
        let e =
            doc_scan("d", "bib.xml").unnest_map("x", Scalar::attr("d").path(p(path)).distinct());
        assert_all_modes_identical(&e, &cat);
    }
}

#[test]
fn index_scan_rows_are_document_ordered_nodes() {
    let mut cat = Catalog::new();
    cat.register(gen_bib(&BibConfig {
        books: 10,
        authors_per_book: 2,
        seed: 9,
        ..BibConfig::default()
    }));
    let e = doc_scan("d", "bib.xml").unnest_map("a", Scalar::attr("d").path(p("//author")));
    let plan = engine::compile_indexed(&e, &cat);
    assert!(
        plan.explain().starts_with("IndexScan"),
        "{}",
        plan.explain()
    );
    let result = engine::run_compiled(&plan, &cat).expect("runs");
    let ids: Vec<NodeId> = result
        .rows
        .iter()
        .map(|t| match t.get(s("a")) {
            Some(Value::Node(n)) => n.node,
            other => panic!("expected node, got {other:?}"),
        })
        .collect();
    let mut sorted = ids.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(ids, sorted, "index scan must emit document order, no dups");
    assert_eq!(ids.len(), 20);
}

// ---------------------------------------------------------------------
// Crafted quantifier joins: hit/miss mixes, residuals, Ξ in probes
// ---------------------------------------------------------------------

fn title_probe_rel(keys: &[&str]) -> Expr {
    Expr::Literal(
        keys.iter()
            .map(|k| Tuple::singleton(s("t1"), Value::str(*k)))
            .collect(),
    )
    .project_syms(vec![s("t1")])
}

fn title_build(uri: &str) -> Expr {
    doc_scan("d2", uri)
        .unnest_map("t2", Scalar::attr("d2").path(p("//book/title")))
        .project(&["t2"])
}

#[test]
fn crafted_semi_and_anti_joins_differential() {
    let mut cat = Catalog::new();
    let doc = gen_bib(&BibConfig {
        books: 30,
        authors_per_book: 2,
        seed: 4,
        ..BibConfig::default()
    });
    // Fish some real title values out of the document for guaranteed hits.
    let titles: Vec<String> = {
        let d = &doc;
        let mut c = xpath::EvalCounters::default();
        xpath::eval_path(d, &[NodeId::DOCUMENT], &p("//title"), &mut c)
            .into_iter()
            .map(|n| d.string_value(n))
            .collect()
    };
    cat.register(doc);
    let probe_keys: Vec<&str> = titles
        .iter()
        .map(String::as_str)
        .chain(["no-such-title", "another-miss"])
        .collect();
    for anti in [false, true] {
        let l = title_probe_rel(&probe_keys);
        let r = title_build("bib.xml");
        let pred = Scalar::attr_cmp(CmpOp::Eq, "t1", "t2");
        let e = if anti {
            l.antijoin(r, pred)
        } else {
            l.semijoin(r, pred)
        };
        let plan = engine::compile_indexed(&e, &cat);
        assert!(
            plan.explain().starts_with(if anti {
                "IndexAntiJoin"
            } else {
                "IndexSemiJoin"
            }),
            "{}",
            plan.explain()
        );
        let (scan, indexed) = assert_all_modes_identical(&e, &cat);
        assert_eq!(indexed.index_lookups, probe_keys.len() as u64);
        assert_eq!(indexed.index_hits, titles.len() as u64);
        assert!(tuples_examined(&indexed) < tuples_examined(&scan));
    }
}

#[test]
fn residual_joins_differential() {
    let mut cat = Catalog::new();
    cat.register(gen_bib(&BibConfig {
        books: 40,
        authors_per_book: 2,
        seed: 6,
        ..BibConfig::default()
    }));
    // Build side: whole book nodes; residual filters on @year through
    // the build attribute (reconstructed by the index join).
    let probe = doc_scan("d1", "bib.xml")
        .unnest_map("b1", Scalar::attr("d1").path(p("//book")))
        .map("t1", Scalar::attr("b1").path(p("/title")))
        .project(&["t1"]);
    let build = doc_scan("d2", "bib.xml")
        .unnest_map("b2", Scalar::attr("d2").path(p("//book")))
        .project(&["b2"]);
    for (anti, year) in [(false, 1993), (true, 1993), (false, 2100), (true, 1800)] {
        let pred = Scalar::attr_cmp(CmpOp::Eq, "t1", "b2").and(Scalar::cmp(
            CmpOp::Gt,
            Scalar::attr("b2").path(p("/@year")),
            Scalar::int(year),
        ));
        let e = if anti {
            probe.clone().antijoin(build.clone(), pred)
        } else {
            probe.clone().semijoin(build.clone(), pred)
        };
        let plan = engine::compile_indexed(&e, &cat);
        assert!(
            plan.explain().contains("IndexSemiJoin") || plan.explain().contains("IndexAntiJoin"),
            "{}",
            plan.explain()
        );
        assert_all_modes_identical(&e, &cat);
    }
}

#[test]
fn xi_output_order_is_preserved_through_index_joins() {
    let mut cat = Catalog::new();
    cat.register(gen_bib(&BibConfig {
        books: 15,
        authors_per_book: 2,
        seed: 12,
        ..BibConfig::default()
    }));
    // Ξ on the probe side AND the join result: byte order must match the
    // materializing executor in all four modes.
    let probe = doc_scan("d1", "bib.xml")
        .unnest_map("t1", Scalar::attr("d1").path(p("//book/title")))
        .xi(xi_cmds(&["<probe>", "$t1", "</probe>"]));
    let e = probe
        .semijoin(
            title_build("bib.xml"),
            Scalar::attr_cmp(CmpOp::Eq, "t1", "t2"),
        )
        .xi(xi_cmds(&["<hit>", "$t1", "</hit>"]));
    let (_, indexed) = assert_all_modes_identical(&e, &cat);
    assert!(indexed.index_lookups > 0, "join must be index-backed");
}

#[test]
fn vacuous_and_empty_probes() {
    let mut cat = Catalog::new();
    cat.register(xmldb::parse_document("bib.xml", "<bib></bib>").expect("well-formed empty doc"));
    // Empty document: semi join emits nothing, anti join emits all.
    let l = title_probe_rel(&["a", "b"]);
    let semi = l.clone().semijoin(
        title_build("bib.xml"),
        Scalar::attr_cmp(CmpOp::Eq, "t1", "t2"),
    );
    let anti = l.antijoin(
        title_build("bib.xml"),
        Scalar::attr_cmp(CmpOp::Eq, "t1", "t2"),
    );
    let (_, semi_m) = assert_all_modes_identical(&semi, &cat);
    assert_all_modes_identical(&anti, &cat);
    assert_eq!(semi_m.index_hits, 0);
    // NULL probe keys match nothing (semi) / everything (anti).
    let nullish = Expr::Literal(vec![
        Tuple::singleton(s("t1"), Value::Null),
        Tuple::singleton(s("t1"), Value::str("x")),
    ])
    .project_syms(vec![s("t1")]);
    let e = nullish.semijoin(
        title_build("bib.xml"),
        Scalar::attr_cmp(CmpOp::Eq, "t1", "t2"),
    );
    assert_all_modes_identical(&e, &cat);
}

// ---------------------------------------------------------------------
// Randomized differential: probe keys with hit/miss/typed mixes
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_probes_stream_identically(
        picks in prop::collection::vec((0usize..40, prop::bool::ANY), 0..24),
        anti in prop::bool::ANY,
        books in 5usize..25,
    ) {
        let mut cat = Catalog::new();
        let doc = gen_bib(&BibConfig {
            books,
            authors_per_book: 2,
            seed: 21,
            ..BibConfig::default()
        });
        let titles: Vec<String> = {
            let mut c = xpath::EvalCounters::default();
            xpath::eval_path(&doc, &[NodeId::DOCUMENT], &p("//title"), &mut c)
                .into_iter()
                .map(|n| doc.string_value(n))
                .collect()
        };
        cat.register(doc);
        // Mix of real titles (hits), synthetic strings (misses), and
        // out-of-range picks folded into misses.
        let rows: Vec<Tuple> = picks
            .iter()
            .map(|&(i, hit)| {
                let v = if hit && i < titles.len() {
                    Value::str(&titles[i])
                } else {
                    Value::str(format!("miss-{i}"))
                };
                Tuple::singleton(s("t1"), v)
            })
            .collect();
        let l = Expr::Literal(rows).project_syms(vec![s("t1")]);
        let pred = Scalar::attr_cmp(CmpOp::Eq, "t1", "t2");
        let e = if anti {
            l.antijoin(title_build("bib.xml"), pred)
        } else {
            l.semijoin(title_build("bib.xml"), pred)
        };
        assert_all_modes_identical(&e, &cat);
    }
}
