//! Differential testing of index-backed plans: `compile_indexed` must
//! produce byte-identical rows and Ξ output to the scan-based `compile`
//! on **both** executors, across every plan alternative of every §5
//! workload — and the index-backed quantifier joins must do strictly
//! less work (fewer examined tuples) while doing it.

use proptest::prelude::*;

use nal::expr::builder::*;
use nal::{CmpOp, Expr, Metrics, Scalar, Sym, Tuple, Value};
use xmldb::gen::{gen_bib, standard_catalog, BibConfig};
use xmldb::{Catalog, NodeId};
use xpath::parse_path;

fn s(n: &str) -> Sym {
    Sym::new(n)
}

fn p(path: &str) -> xpath::Path {
    parse_path(path).unwrap()
}

/// Tuples a semi/anti join examines: probed bucket/posting candidates
/// plus every tuple produced along the way (the build side of a scan
/// join produces its whole scan; an index join never runs it).
fn tuples_examined(m: &Metrics) -> u64 {
    m.probe_tuples + m.tuples_produced
}

/// Run `expr` all four ways (materialized/streaming × scan/indexed) and
/// assert identical rows and Ξ output. Returns the streaming metrics
/// (scan, indexed) for work comparisons.
fn assert_all_modes_identical(expr: &Expr, cat: &Catalog) -> (Metrics, Metrics) {
    let scan_plan = engine::compile(expr);
    let index_plan = engine::compile_indexed(expr, cat);
    let m_scan = engine::run_compiled(&scan_plan, cat).expect("materialized scan");
    let m_index = engine::run_compiled(&index_plan, cat).expect("materialized indexed");
    let s_scan = engine::run_streaming_compiled(&scan_plan, cat).expect("streaming scan");
    let s_index = engine::run_streaming_compiled(&index_plan, cat).expect("streaming indexed");
    for (label, r) in [
        ("materialized indexed", &m_index),
        ("streaming scan", &s_scan),
        ("streaming indexed", &s_index),
    ] {
        assert_eq!(r.rows, m_scan.rows, "{label}: row mismatch for {expr}");
        assert_eq!(
            r.output, m_scan.output,
            "{label}: Ξ output mismatch for {expr}"
        );
    }
    // Both executors run the same shared probe runtime, so index metric
    // parity is a construction property — including after incremental
    // index maintenance.
    assert_eq!(
        m_index.metrics.index_lookups, s_index.metrics.index_lookups,
        "index_lookups must be executor-identical for {expr}"
    );
    assert_eq!(
        m_index.metrics.index_hits, s_index.metrics.index_hits,
        "index_hits must be executor-identical for {expr}"
    );
    (s_scan.metrics, s_index.metrics)
}

// ---------------------------------------------------------------------
// Paper workloads: every plan alternative, both executors, bytes equal
// ---------------------------------------------------------------------

#[test]
fn all_workload_plans_are_byte_identical_with_indexes() {
    let catalog = standard_catalog(40, 2, 7);
    for w in &ordered_unnesting::workloads::ALL {
        let nested = xquery::compile(w.query, &catalog)
            .unwrap_or_else(|e| panic!("[{}] compile failed: {e}", w.id));
        for plan in unnest::enumerate_plans(&nested, &catalog) {
            assert_all_modes_identical(&plan.expr, &catalog);
        }
    }
}

#[test]
fn quantifier_workloads_use_indexes_and_examine_fewer_tuples() {
    let catalog = standard_catalog(60, 2, 11);
    // Q3/Q4 (some/exists → semijoin) and Q5 (every → anti-semijoin) are
    // the paper's quantifier experiments; their rewritten plans carry
    // the doc-rooted build sides the index join replaces — including
    // the pushed-down filters (Q4's contains(), Q5's year predicate),
    // which the index join replays per candidate.
    for (w, label) in [
        (&ordered_unnesting::workloads::Q3_EXISTENTIAL, "semijoin"),
        (&ordered_unnesting::workloads::Q4_EXISTS, "semijoin"),
        (&ordered_unnesting::workloads::Q5_UNIVERSAL, "anti-semijoin"),
    ] {
        let nested = xquery::compile(w.query, &catalog).expect("compiles");
        let plans = unnest::enumerate_plans(&nested, &catalog);
        let plan = plans
            .iter()
            .find(|p| p.label == label)
            .unwrap_or_else(|| panic!("[{}] missing `{label}` plan", w.id));
        let (scan, indexed) = assert_all_modes_identical(&plan.expr, &catalog);
        assert!(
            indexed.index_lookups > 0,
            "[{}] the indexed plan must actually probe the index",
            w.id
        );
        assert!(
            tuples_examined(&indexed) < tuples_examined(&scan),
            "[{}] indexed plan must examine strictly fewer tuples: {} vs {}",
            w.id,
            tuples_examined(&indexed),
            tuples_examined(&scan)
        );
        assert_eq!(
            indexed.doc_scans, 0,
            "[{}] index-backed plan must not scan the document",
            w.id
        );
    }
}

#[test]
fn range_workloads_are_byte_identical_and_examine_fewer_tuples() {
    let catalog = standard_catalog(50, 2, 13);
    // Q7 (string-regime `some … < …`) and Q8 (numeric-regime vacuous
    // `every`): the scan plans run these as nested loops; the indexed
    // plans must range-probe instead, byte-identically.
    for (w, label) in [
        (&ordered_unnesting::workloads::Q7_RANGE_SOME, "semijoin"),
        (
            &ordered_unnesting::workloads::Q8_RANGE_EVERY,
            "anti-semijoin",
        ),
    ] {
        let nested = xquery::compile(w.query, &catalog).expect("compiles");
        let plans = unnest::enumerate_plans(&nested, &catalog);
        let plan = plans
            .iter()
            .find(|p| p.label == label)
            .unwrap_or_else(|| panic!("[{}] missing `{label}` plan", w.id));
        let explained = engine::compile_indexed(&plan.expr, &catalog).explain();
        assert!(
            explained.contains("IndexRange"),
            "[{}] expected a range join: {explained}",
            w.id
        );
        let (scan, indexed) = assert_all_modes_identical(&plan.expr, &catalog);
        assert!(indexed.index_lookups > 0, "[{}] no index probes", w.id);
        assert!(
            tuples_examined(&indexed) < tuples_examined(&scan),
            "[{}] range probe must examine strictly fewer tuples: {} vs {}",
            w.id,
            tuples_examined(&indexed),
            tuples_examined(&scan)
        );
    }
    // Every plan alternative of the range workloads (including nested)
    // stays byte-identical across all four modes.
    for w in &ordered_unnesting::workloads::RANGE {
        let nested = xquery::compile(w.query, &catalog).expect("compiles");
        for plan in unnest::enumerate_plans(&nested, &catalog) {
            assert_all_modes_identical(&plan.expr, &catalog);
        }
    }
}

#[test]
fn composite_workloads_are_byte_identical_and_examine_fewer_tuples() {
    let catalog = standard_catalog(50, 2, 19);
    // Q9 (two-key composite probe) and Q10 (variable-depth ancestor
    // binding referenced by the residual): both former decline cases
    // must now produce index plans, byte-identical to the scan plans in
    // all four modes, examining strictly fewer tuples.
    for (w, op_name) in [
        (
            &ordered_unnesting::workloads::Q9_COMPOSITE,
            "IndexCompositeSemiJoin",
        ),
        (&ordered_unnesting::workloads::Q10_DEEP, "IndexSemiJoin"),
    ] {
        let nested = xquery::compile(w.query, &catalog).expect("compiles");
        let plans = unnest::enumerate_plans(&nested, &catalog);
        let plan = plans
            .iter()
            .find(|p| p.label == "semijoin")
            .unwrap_or_else(|| panic!("[{}] missing `semijoin` plan", w.id));
        let explained = engine::compile_indexed(&plan.expr, &catalog).explain();
        assert!(
            explained.contains(op_name),
            "[{}] expected {op_name}: {explained}",
            w.id
        );
        let (scan, indexed) = assert_all_modes_identical(&plan.expr, &catalog);
        assert!(indexed.index_lookups > 0, "[{}] no index probes", w.id);
        assert!(
            tuples_examined(&indexed) < tuples_examined(&scan),
            "[{}] index plan must examine strictly fewer tuples: {} vs {}",
            w.id,
            tuples_examined(&indexed),
            tuples_examined(&scan)
        );
        assert_eq!(
            indexed.doc_scans, 0,
            "[{}] index-backed plan must not scan the document",
            w.id
        );
        // Every plan alternative (including nested) stays byte-identical.
        for plan in &plans {
            assert_all_modes_identical(&plan.expr, &catalog);
        }
    }
}

// ---------------------------------------------------------------------
// Both executors report identical index metrics (parity regression)
// ---------------------------------------------------------------------

#[test]
fn executors_report_identical_index_metrics() {
    let catalog = standard_catalog(40, 2, 17);
    let mut workloads: Vec<&ordered_unnesting::workloads::Workload> =
        ordered_unnesting::workloads::ALL.iter().collect();
    workloads.extend(ordered_unnesting::workloads::RANGE.iter());
    workloads.extend(ordered_unnesting::workloads::COMPOSITE.iter());
    for w in workloads {
        let nested = xquery::compile(w.query, &catalog).expect("compiles");
        for plan in unnest::enumerate_plans(&nested, &catalog) {
            let indexed = engine::compile_indexed(&plan.expr, &catalog);
            let m = engine::run_compiled(&indexed, &catalog).expect("materialized");
            let s = engine::run_streaming_compiled(&indexed, &catalog).expect("streaming");
            assert_eq!(
                m.metrics.index_lookups, s.metrics.index_lookups,
                "[{} / {}] index_lookups diverge between executors",
                w.id, plan.label
            );
            assert_eq!(
                m.metrics.index_hits, s.metrics.index_hits,
                "[{} / {}] index_hits diverge between executors",
                w.id, plan.label
            );
        }
    }
}

// ---------------------------------------------------------------------
// Index scans agree with path evaluation on every supported path shape
// ---------------------------------------------------------------------

#[test]
fn index_scans_match_path_evaluation() {
    let mut cat = Catalog::new();
    cat.register(gen_bib(&BibConfig {
        books: 25,
        authors_per_book: 3,
        seed: 3,
        ..BibConfig::default()
    }));
    for path in [
        "//book",
        "//author",
        "//book/author",
        "//book/title",
        "//author/last",
        "//book/@year",
        "/bib/book/title",
        "//bib//author",
        "//*",
        "//book/*",
        "//missing",
    ] {
        let e = doc_scan("d", "bib.xml").unnest_map("x", Scalar::attr("d").path(p(path)));
        let (scan, indexed) = assert_all_modes_identical(&e, &cat);
        // Sanity: the conversion actually happened (index lookups > 0)
        // and skipped the document walk.
        assert!(indexed.index_lookups > 0, "{path}: not converted");
        assert!(
            indexed.nodes_visited < scan.nodes_visited.max(1),
            "{path}: indexed plan must visit fewer nodes ({} vs {})",
            indexed.nodes_visited,
            scan.nodes_visited
        );
        // Distinct variant too.
        let e =
            doc_scan("d", "bib.xml").unnest_map("x", Scalar::attr("d").path(p(path)).distinct());
        assert_all_modes_identical(&e, &cat);
    }
}

#[test]
fn index_scan_rows_are_document_ordered_nodes() {
    let mut cat = Catalog::new();
    cat.register(gen_bib(&BibConfig {
        books: 10,
        authors_per_book: 2,
        seed: 9,
        ..BibConfig::default()
    }));
    let e = doc_scan("d", "bib.xml").unnest_map("a", Scalar::attr("d").path(p("//author")));
    let plan = engine::compile_indexed(&e, &cat);
    assert!(
        plan.explain().starts_with("IndexScan"),
        "{}",
        plan.explain()
    );
    let result = engine::run_compiled(&plan, &cat).expect("runs");
    let ids: Vec<NodeId> = result
        .rows
        .iter()
        .map(|t| match t.get(s("a")) {
            Some(Value::Node(n)) => n.node,
            other => panic!("expected node, got {other:?}"),
        })
        .collect();
    let mut sorted = ids.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(ids, sorted, "index scan must emit document order, no dups");
    assert_eq!(ids.len(), 20);
}

// ---------------------------------------------------------------------
// Crafted quantifier joins: hit/miss mixes, residuals, Ξ in probes
// ---------------------------------------------------------------------

fn title_probe_rel(keys: &[&str]) -> Expr {
    Expr::Literal(
        keys.iter()
            .map(|k| Tuple::singleton(s("t1"), Value::str(*k)))
            .collect(),
    )
    .project_syms(vec![s("t1")])
}

fn title_build(uri: &str) -> Expr {
    doc_scan("d2", uri)
        .unnest_map("t2", Scalar::attr("d2").path(p("//book/title")))
        .project(&["t2"])
}

#[test]
fn crafted_semi_and_anti_joins_differential() {
    let mut cat = Catalog::new();
    let doc = gen_bib(&BibConfig {
        books: 30,
        authors_per_book: 2,
        seed: 4,
        ..BibConfig::default()
    });
    // Fish some real title values out of the document for guaranteed hits.
    let titles: Vec<String> = {
        let d = &doc;
        let mut c = xpath::EvalCounters::default();
        xpath::eval_path(d, &[NodeId::DOCUMENT], &p("//title"), &mut c)
            .into_iter()
            .map(|n| d.string_value(n))
            .collect()
    };
    cat.register(doc);
    let probe_keys: Vec<&str> = titles
        .iter()
        .map(String::as_str)
        .chain(["no-such-title", "another-miss"])
        .collect();
    for anti in [false, true] {
        let l = title_probe_rel(&probe_keys);
        let r = title_build("bib.xml");
        let pred = Scalar::attr_cmp(CmpOp::Eq, "t1", "t2");
        let e = if anti {
            l.antijoin(r, pred)
        } else {
            l.semijoin(r, pred)
        };
        let plan = engine::compile_indexed(&e, &cat);
        assert!(
            plan.explain().starts_with(if anti {
                "IndexAntiJoin"
            } else {
                "IndexSemiJoin"
            }),
            "{}",
            plan.explain()
        );
        let (scan, indexed) = assert_all_modes_identical(&e, &cat);
        assert_eq!(indexed.index_lookups, probe_keys.len() as u64);
        assert_eq!(indexed.index_hits, titles.len() as u64);
        assert!(tuples_examined(&indexed) < tuples_examined(&scan));
    }
}

#[test]
fn crafted_range_joins_differential() {
    let mut cat = Catalog::new();
    let doc = gen_bib(&BibConfig {
        books: 30,
        authors_per_book: 2,
        seed: 5,
        ..BibConfig::default()
    });
    let titles: Vec<String> = {
        let mut c = xpath::EvalCounters::default();
        xpath::eval_path(&doc, &[NodeId::DOCUMENT], &p("//title"), &mut c)
            .into_iter()
            .map(|n| doc.string_value(n))
            .collect()
    };
    cat.register(doc);
    // String regime: every inequality against the title column, with
    // probe keys straddling the stored key range.
    let probe_keys: Vec<&str> = titles
        .iter()
        .map(String::as_str)
        .chain(["", "zzzz-past-everything", "M"])
        .collect();
    for anti in [false, true] {
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let l = title_probe_rel(&probe_keys);
            let r = title_build("bib.xml");
            let e = if anti {
                l.antijoin(r, Scalar::attr_cmp(op, "t1", "t2"))
            } else {
                l.semijoin(r, Scalar::attr_cmp(op, "t1", "t2"))
            };
            let plan = engine::compile_indexed(&e, &cat);
            assert!(
                plan.explain().starts_with(if anti {
                    "IndexRangeAntiJoin"
                } else {
                    "IndexRangeSemiJoin"
                }),
                "{}",
                plan.explain()
            );
            let (scan, indexed) = assert_all_modes_identical(&e, &cat);
            assert_eq!(indexed.index_lookups, probe_keys.len() as u64);
            assert!(tuples_examined(&indexed) < tuples_examined(&scan));
        }
    }
    // Numeric regime: integer probes against the @year attribute column
    // (string-valued in the document, numerically coerced by `<`).
    let year_build = doc_scan("d2", "bib.xml")
        .unnest_map("y2", Scalar::attr("d2").path(p("//book/@year")))
        .project(&["y2"]);
    for anti in [false, true] {
        for (op, year) in [
            (CmpOp::Lt, 1994),
            (CmpOp::Le, 1990),
            (CmpOp::Gt, 2100),
            (CmpOp::Ge, 1800),
        ] {
            let l = Expr::Literal(vec![Tuple::singleton(s("y1"), Value::Int(year))])
                .project_syms(vec![s("y1")]);
            let pred = Scalar::attr_cmp(op, "y1", "y2");
            let e = if anti {
                l.antijoin(year_build.clone(), pred)
            } else {
                l.semijoin(year_build.clone(), pred)
            };
            let plan = engine::compile_indexed(&e, &cat);
            assert!(plan.explain().contains("IndexRange"), "{}", plan.explain());
            assert_all_modes_identical(&e, &cat);
        }
    }
    // Two-sided band over one column (string regime) with both bounds
    // tuple-dependent.
    let l = title_probe_rel(&probe_keys);
    let band = l.semijoin(
        title_build("bib.xml"),
        Scalar::attr_cmp(CmpOp::Le, "t1", "t2").and(Scalar::cmp(
            CmpOp::Lt,
            Scalar::attr("t2"),
            Scalar::string("zz"),
        )),
    );
    let plan = engine::compile_indexed(&band, &cat);
    assert!(plan.explain().contains("IndexRange"), "{}", plan.explain());
    assert_all_modes_identical(&band, &cat);
}

#[test]
fn nan_probes_match_nothing_on_scan_and_index_paths() {
    // Regression for the NaN key-semantics decision: NaN behaves like
    // NULL — an equality or inequality probe carrying NaN matches no
    // build row on either access path, on either executor.
    let mut cat = Catalog::new();
    cat.register(
        xmldb::parse_document(
            "nums.xml",
            "<r><v>1</v><v>2</v><v>NaN</v><v>30</v><v>abc</v></r>",
        )
        .expect("well-formed"),
    );
    let build = doc_scan("d2", "nums.xml")
        .unnest_map("v2", Scalar::attr("d2").path(p("//v")))
        .project(&["v2"]);
    let rows = vec![
        Tuple::singleton(s("v1"), Value::Dec(nal::Dec(f64::NAN))),
        Tuple::singleton(s("v1"), Value::Dec(nal::Dec(2.0))),
        Tuple::singleton(s("v1"), Value::Null),
    ];
    for anti in [false, true] {
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let l = Expr::Literal(rows.clone()).project_syms(vec![s("v1")]);
            let pred = Scalar::attr_cmp(op, "v1", "v2");
            let e = if anti {
                l.antijoin(build.clone(), pred)
            } else {
                l.semijoin(build.clone(), pred)
            };
            let m = engine::run_compiled(&engine::compile(&e), &cat).expect("scan");
            assert_all_modes_identical(&e, &cat);
            // Semantic pin, not just differential: the NaN and NULL rows
            // match nothing — semi drops them, anti keeps them.
            let nan_kept = m
                .rows
                .iter()
                .any(|t| matches!(t.get(s("v1")), Some(Value::Dec(d)) if d.0.is_nan()));
            assert_eq!(nan_kept, anti, "NaN row must match nothing ({op:?})");
        }
    }
    // And a NaN *in the document* is unmatchable from the probe side:
    // even `v1 = NaN-valued-node` finds nothing.
    let l = Expr::Literal(vec![Tuple::singleton(
        s("v1"),
        Value::Dec(nal::Dec(f64::NAN)),
    )])
    .project_syms(vec![s("v1")]);
    let e = l.semijoin(build, Scalar::attr_cmp(CmpOp::Eq, "v1", "v2"));
    let m = engine::run_compiled(&engine::compile(&e), &cat).expect("scan");
    assert!(m.rows.is_empty(), "NaN = NaN must not match");
    assert_all_modes_identical(&e, &cat);
}

#[test]
fn negative_zero_probes_hit_positive_zero_keys() {
    // Regression for the -0.0 canonicalization: -0.0 and 0.0 are one key
    // point on every access path.
    let mut cat = Catalog::new();
    cat.register(
        xmldb::parse_document("z.xml", "<r><v>0</v><v>-0</v><v>0.0</v><v>7</v></r>")
            .expect("well-formed"),
    );
    let build = doc_scan("d2", "z.xml")
        .unnest_map("v2", Scalar::attr("d2").path(p("//v")))
        .project(&["v2"]);
    for probe in [-0.0f64, 0.0] {
        for op in [CmpOp::Eq, CmpOp::Le, CmpOp::Ge, CmpOp::Lt, CmpOp::Gt] {
            // Constant-bound predicate: compiles to a loop join on the
            // scan side (numeric coercion semantics) and to a range
            // probe — an `=` bound is a point seek at the canonical
            // zero — on the indexed side.
            let l = Expr::Literal(vec![Tuple::singleton(s("x"), Value::Int(1))])
                .project_syms(vec![s("x")]);
            let pred = Scalar::cmp(
                op,
                Scalar::Const(Value::Dec(nal::Dec(probe))),
                Scalar::attr("v2"),
            );
            let e = l.semijoin(build.clone(), pred);
            let plan = engine::compile_indexed(&e, &cat);
            assert!(plan.explain().contains("IndexRange"), "{}", plan.explain());
            let m = engine::run_compiled(&engine::compile(&e), &cat).expect("scan");
            assert_all_modes_identical(&e, &cat);
            if op == CmpOp::Eq {
                assert_eq!(m.rows.len(), 1, "{probe} = zero keys must match");
            }
        }
    }
}

#[test]
fn range_joins_with_residuals_and_reconstructed_ancestors() {
    let mut cat = Catalog::new();
    cat.register(gen_bib(&BibConfig {
        books: 40,
        authors_per_book: 2,
        seed: 8,
        ..BibConfig::default()
    }));
    // Inequality on the title key PLUS a residual over the book node one
    // fixed child step above it (rebuilt by parent navigation).
    let probe = doc_scan("d1", "bib.xml")
        .unnest_map("t1", Scalar::attr("d1").path(p("//book/title")))
        .project(&["t1"]);
    let build = doc_scan("d2", "bib.xml")
        .unnest_map("b2", Scalar::attr("d2").path(p("//book")))
        .unnest_map("t2", Scalar::attr("b2").path(p("/title")));
    for (anti, year) in [(false, 1993), (true, 1993), (false, 2100), (true, 1800)] {
        let pred = Scalar::attr_cmp(CmpOp::Lt, "t1", "t2").and(Scalar::cmp(
            CmpOp::Gt,
            Scalar::attr("b2").path(p("/@year")),
            Scalar::int(year),
        ));
        let e = if anti {
            probe.clone().antijoin(build.clone(), pred)
        } else {
            probe.clone().semijoin(build.clone(), pred)
        };
        let plan = engine::compile_indexed(&e, &cat);
        assert!(plan.explain().contains("IndexRange"), "{}", plan.explain());
        assert_all_modes_identical(&e, &cat);
    }
}

#[test]
fn vacuous_range_quantifiers_on_empty_documents() {
    let mut cat = Catalog::new();
    cat.register(xmldb::parse_document("bib.xml", "<bib></bib>").expect("well-formed empty doc"));
    // Empty build: `some` is false for every probe (semi emits nothing),
    // `every` is vacuously true (anti emits everything) — on all paths.
    for op in [CmpOp::Lt, CmpOp::Ge] {
        let semi = title_probe_rel(&["a", "b"])
            .semijoin(title_build("bib.xml"), Scalar::attr_cmp(op, "t1", "t2"));
        let anti = title_probe_rel(&["a", "b"])
            .antijoin(title_build("bib.xml"), Scalar::attr_cmp(op, "t1", "t2"));
        let (_, semi_m) = assert_all_modes_identical(&semi, &cat);
        assert_all_modes_identical(&anti, &cat);
        assert_eq!(semi_m.index_hits, 0);
        let anti_rows = engine::run_compiled(&engine::compile_indexed(&anti, &cat), &cat)
            .expect("runs")
            .rows;
        assert_eq!(anti_rows.len(), 2, "vacuous `every` keeps every tuple");
    }
}

#[test]
fn residual_joins_differential() {
    let mut cat = Catalog::new();
    cat.register(gen_bib(&BibConfig {
        books: 40,
        authors_per_book: 2,
        seed: 6,
        ..BibConfig::default()
    }));
    // Build side: whole book nodes; residual filters on @year through
    // the build attribute (reconstructed by the index join).
    let probe = doc_scan("d1", "bib.xml")
        .unnest_map("b1", Scalar::attr("d1").path(p("//book")))
        .map("t1", Scalar::attr("b1").path(p("/title")))
        .project(&["t1"]);
    let build = doc_scan("d2", "bib.xml")
        .unnest_map("b2", Scalar::attr("d2").path(p("//book")))
        .project(&["b2"]);
    for (anti, year) in [(false, 1993), (true, 1993), (false, 2100), (true, 1800)] {
        let pred = Scalar::attr_cmp(CmpOp::Eq, "t1", "b2").and(Scalar::cmp(
            CmpOp::Gt,
            Scalar::attr("b2").path(p("/@year")),
            Scalar::int(year),
        ));
        let e = if anti {
            probe.clone().antijoin(build.clone(), pred)
        } else {
            probe.clone().semijoin(build.clone(), pred)
        };
        let plan = engine::compile_indexed(&e, &cat);
        assert!(
            plan.explain().contains("IndexSemiJoin") || plan.explain().contains("IndexAntiJoin"),
            "{}",
            plan.explain()
        );
        assert_all_modes_identical(&e, &cat);
    }
}

#[test]
fn xi_output_order_is_preserved_through_index_joins() {
    let mut cat = Catalog::new();
    cat.register(gen_bib(&BibConfig {
        books: 15,
        authors_per_book: 2,
        seed: 12,
        ..BibConfig::default()
    }));
    // Ξ on the probe side AND the join result: byte order must match the
    // materializing executor in all four modes.
    let probe = doc_scan("d1", "bib.xml")
        .unnest_map("t1", Scalar::attr("d1").path(p("//book/title")))
        .xi(xi_cmds(&["<probe>", "$t1", "</probe>"]));
    let e = probe
        .semijoin(
            title_build("bib.xml"),
            Scalar::attr_cmp(CmpOp::Eq, "t1", "t2"),
        )
        .xi(xi_cmds(&["<hit>", "$t1", "</hit>"]));
    let (_, indexed) = assert_all_modes_identical(&e, &cat);
    assert!(indexed.index_lookups > 0, "join must be index-backed");
}

#[test]
fn vacuous_and_empty_probes() {
    let mut cat = Catalog::new();
    cat.register(xmldb::parse_document("bib.xml", "<bib></bib>").expect("well-formed empty doc"));
    // Empty document: semi join emits nothing, anti join emits all.
    let l = title_probe_rel(&["a", "b"]);
    let semi = l.clone().semijoin(
        title_build("bib.xml"),
        Scalar::attr_cmp(CmpOp::Eq, "t1", "t2"),
    );
    let anti = l.antijoin(
        title_build("bib.xml"),
        Scalar::attr_cmp(CmpOp::Eq, "t1", "t2"),
    );
    let (_, semi_m) = assert_all_modes_identical(&semi, &cat);
    assert_all_modes_identical(&anti, &cat);
    assert_eq!(semi_m.index_hits, 0);
    // NULL probe keys match nothing (semi) / everything (anti).
    let nullish = Expr::Literal(vec![
        Tuple::singleton(s("t1"), Value::Null),
        Tuple::singleton(s("t1"), Value::str("x")),
    ])
    .project_syms(vec![s("t1")]);
    let e = nullish.semijoin(
        title_build("bib.xml"),
        Scalar::attr_cmp(CmpOp::Eq, "t1", "t2"),
    );
    assert_all_modes_identical(&e, &cat);
}

// ---------------------------------------------------------------------
// Crafted composite-key joins: hit/miss mixes, NaN/-0.0 components,
// residuals over fixed anchors
// ---------------------------------------------------------------------

/// Two-column probe relation `(t1, y1)`.
fn pair_probe_rel(pairs: &[(Value, Value)]) -> Expr {
    Expr::Literal(
        pairs
            .iter()
            .map(|(t, y)| Tuple::from_pairs(vec![(s("t1"), t.clone()), (s("y1"), y.clone())]))
            .collect(),
    )
    .project_syms(vec![s("t1"), s("y1")])
}

/// Build side binding book → title → @year (the composite shape).
fn title_year_build(uri: &str) -> Expr {
    doc_scan("d2", uri)
        .unnest_map("b2", Scalar::attr("d2").path(p("//book")))
        .unnest_map("t2", Scalar::attr("b2").path(p("/title")))
        .unnest_map("y2", Scalar::attr("b2").path(p("/@year")))
}

#[test]
fn crafted_composite_joins_differential() {
    let mut cat = Catalog::new();
    let doc = gen_bib(&BibConfig {
        books: 30,
        authors_per_book: 2,
        seed: 14,
        ..BibConfig::default()
    });
    // Real (title, year) pairs for hits, plus crafted misses: wrong
    // pairing, unknown strings, numeric/NaN/-0.0/NULL components.
    let mut c = xpath::EvalCounters::default();
    let books = xpath::eval_path(&doc, &[NodeId::DOCUMENT], &p("//book"), &mut c);
    let mut pairs: Vec<(Value, Value)> = books
        .iter()
        .map(|&b| {
            let title = xpath::eval_path(&doc, &[b], &p("/title"), &mut c)[0];
            let year = xpath::eval_path(&doc, &[b], &p("/@year"), &mut c)[0];
            (
                Value::str(doc.string_value(title)),
                Value::str(doc.string_value(year)),
            )
        })
        .collect();
    let (t0, _) = pairs[0].clone();
    let (_, y1) = pairs[1].clone();
    pairs.push((t0.clone(), y1)); // cross-pairing: likely miss
    pairs.push((Value::str("no-such-title"), Value::str("1994")));
    pairs.push((t0.clone(), Value::Int(1994))); // numeric vs string key
    pairs.push((t0.clone(), Value::Dec(nal::Dec(f64::NAN)))); // unmatchable
    pairs.push((t0.clone(), Value::Dec(nal::Dec(-0.0)))); // numeric, misses string keys
    pairs.push((t0, Value::Null)); // NULL component matches nothing
    cat.register(doc);
    let pred = Scalar::attr_cmp(CmpOp::Eq, "t1", "t2").and(Scalar::attr_cmp(CmpOp::Eq, "y1", "y2"));
    for anti in [false, true] {
        let l = pair_probe_rel(&pairs);
        let e = if anti {
            l.antijoin(title_year_build("bib.xml"), pred.clone())
        } else {
            l.semijoin(title_year_build("bib.xml"), pred.clone())
        };
        let plan = engine::compile_indexed(&e, &cat);
        assert!(
            plan.explain().starts_with(if anti {
                "IndexCompositeAntiJoin"
            } else {
                "IndexCompositeSemiJoin"
            }),
            "{}",
            plan.explain()
        );
        let (scan, indexed) = assert_all_modes_identical(&e, &cat);
        // NaN and NULL components never reach the index (unmatchable by
        // canonicalization), mirroring the hash key's None.
        assert_eq!(indexed.index_lookups, (pairs.len() - 2) as u64);
        assert!(tuples_examined(&indexed) < tuples_examined(&scan));
    }
    // With a residual over the shared anchor (the book node, one fixed
    // hop above the primary), rows reconstruct before the residual runs.
    let l = pair_probe_rel(&pairs);
    let banded = pred.clone().and(Scalar::cmp(
        CmpOp::Gt,
        Scalar::attr("b2").path(p("/@year")),
        Scalar::int(1993),
    ));
    let e = l.semijoin(title_year_build("bib.xml"), banded);
    let plan = engine::compile_indexed(&e, &cat);
    assert!(
        plan.explain().starts_with("IndexCompositeSemiJoin"),
        "{}",
        plan.explain()
    );
    assert_all_modes_identical(&e, &cat);
    // Doc-rooted member columns (independent fan-out) convert too.
    let l = pair_probe_rel(&pairs);
    let cross_build = doc_scan("d2", "bib.xml")
        .unnest_map("t2", Scalar::attr("d2").path(p("//book/title")))
        .unnest_map("y2", Scalar::attr("d2").path(p("//book/@year")));
    let e = l.semijoin(cross_build, pred);
    let plan = engine::compile_indexed(&e, &cat);
    assert!(
        plan.explain().starts_with("IndexCompositeSemiJoin"),
        "{}",
        plan.explain()
    );
    assert_all_modes_identical(&e, &cat);
}

#[test]
fn variable_depth_ancestor_joins_differential() {
    let mut cat = Catalog::new();
    cat.register(gen_bib(&BibConfig {
        books: 30,
        authors_per_book: 2,
        seed: 15,
        ..BibConfig::default()
    }));
    // l2 sits a descendant step below b2; the residual reads b2 — the
    // formerly-declining shape, now a point index join with matched
    // ancestor reconstruction.
    let probe = doc_scan("d1", "bib.xml")
        .unnest_map("l1", Scalar::attr("d1").path(p("//last")))
        .project(&["l1"]);
    let build = doc_scan("d2", "bib.xml")
        .unnest_map("b2", Scalar::attr("d2").path(p("//book")))
        .unnest_map("l2", Scalar::attr("b2").path(p("//last")));
    for (anti, year) in [(false, 1993), (true, 1993), (false, 2100), (true, 1800)] {
        let pred = Scalar::attr_cmp(CmpOp::Eq, "l1", "l2").and(Scalar::cmp(
            CmpOp::Gt,
            Scalar::attr("b2").path(p("/@year")),
            Scalar::int(year),
        ));
        let e = if anti {
            probe.clone().antijoin(build.clone(), pred)
        } else {
            probe.clone().semijoin(build.clone(), pred)
        };
        let plan = engine::compile_indexed(&e, &cat);
        assert!(
            plan.explain().contains("IndexSemiJoin") || plan.explain().contains("IndexAntiJoin"),
            "{}",
            plan.explain()
        );
        let (scan, indexed) = assert_all_modes_identical(&e, &cat);
        assert!(indexed.index_lookups > 0);
        assert!(tuples_examined(&indexed) < tuples_examined(&scan));
    }
    // Two-level chain: b2 ← //book, a2 ← b2//author (variable), key ←
    // a2/last, residual over BOTH bindings.
    let probe2 = doc_scan("d1", "bib.xml")
        .unnest_map("l1", Scalar::attr("d1").path(p("//last")))
        .project(&["l1"]);
    let build2 = doc_scan("d2", "bib.xml")
        .unnest_map("b2", Scalar::attr("d2").path(p("//book")))
        .unnest_map("a2", Scalar::attr("b2").path(p("//author")))
        .unnest_map("l2", Scalar::attr("a2").path(p("/last")));
    let pred = Scalar::attr_cmp(CmpOp::Eq, "l1", "l2")
        .and(Scalar::cmp(
            CmpOp::Gt,
            Scalar::attr("b2").path(p("/@year")),
            Scalar::int(1990),
        ))
        .and(Scalar::Call(
            nal::Func::Contains,
            vec![Scalar::attr("a2").path(p("/last")), Scalar::string("a")],
        ));
    let e = probe2.semijoin(build2, pred);
    let plan = engine::compile_indexed(&e, &cat);
    assert!(
        plan.explain().starts_with("IndexSemiJoin"),
        "{}",
        plan.explain()
    );
    assert_all_modes_identical(&e, &cat);
}

#[test]
fn variable_depth_reconstruction_with_nested_anchors() {
    // Nested same-name anchors: a <s> inside an <s>. Every (anchor, key)
    // pair is a build row, so the matched reconstruction must enumerate
    // multiple assignments per candidate — and the year-like filter on
    // the anchor decides existence.
    let mut cat = Catalog::new();
    cat.register(
        xmldb::parse_document(
            "nest.xml",
            r#"<r>
                 <s tag="outer"><s tag="inner"><k>v</k></s></s>
                 <s tag="solo"><k>w</k></s>
               </r>"#,
        )
        .expect("well-formed"),
    );
    let probe = Expr::Literal(vec![
        Tuple::singleton(s("k1"), Value::str("v")),
        Tuple::singleton(s("k1"), Value::str("w")),
        Tuple::singleton(s("k1"), Value::str("miss")),
    ])
    .project_syms(vec![s("k1")]);
    let build = doc_scan("d2", "nest.xml")
        .unnest_map("s2", Scalar::attr("d2").path(p("//s")))
        .unnest_map("k2", Scalar::attr("s2").path(p("//k")));
    for tag in ["outer", "inner", "solo", "none"] {
        let pred = Scalar::attr_cmp(CmpOp::Eq, "k1", "k2").and(Scalar::cmp(
            CmpOp::Eq,
            Scalar::attr("s2").path(p("/@tag")),
            Scalar::string(tag),
        ));
        for anti in [false, true] {
            let e = if anti {
                probe.clone().antijoin(build.clone(), pred.clone())
            } else {
                probe.clone().semijoin(build.clone(), pred.clone())
            };
            let plan = engine::compile_indexed(&e, &cat);
            assert!(
                plan.explain().contains("IndexSemiJoin")
                    || plan.explain().contains("IndexAntiJoin"),
                "{}",
                plan.explain()
            );
            assert_all_modes_identical(&e, &cat);
        }
    }
}

// ---------------------------------------------------------------------
// Randomized differential: probe keys with hit/miss/typed mixes
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_probes_stream_identically(
        picks in prop::collection::vec((0usize..40, prop::bool::ANY), 0..24),
        anti in prop::bool::ANY,
        books in 5usize..25,
    ) {
        let mut cat = Catalog::new();
        let doc = gen_bib(&BibConfig {
            books,
            authors_per_book: 2,
            seed: 21,
            ..BibConfig::default()
        });
        let titles: Vec<String> = {
            let mut c = xpath::EvalCounters::default();
            xpath::eval_path(&doc, &[NodeId::DOCUMENT], &p("//title"), &mut c)
                .into_iter()
                .map(|n| doc.string_value(n))
                .collect()
        };
        cat.register(doc);
        // Mix of real titles (hits), synthetic strings (misses), and
        // out-of-range picks folded into misses.
        let rows: Vec<Tuple> = picks
            .iter()
            .map(|&(i, hit)| {
                let v = if hit && i < titles.len() {
                    Value::str(&titles[i])
                } else {
                    Value::str(format!("miss-{i}"))
                };
                Tuple::singleton(s("t1"), v)
            })
            .collect();
        let l = Expr::Literal(rows).project_syms(vec![s("t1")]);
        let pred = Scalar::attr_cmp(CmpOp::Eq, "t1", "t2");
        let e = if anti {
            l.antijoin(title_build("bib.xml"), pred)
        } else {
            l.semijoin(title_build("bib.xml"), pred)
        };
        assert_all_modes_identical(&e, &cat);
    }

    #[test]
    fn random_composite_probes_stream_identically(
        picks in prop::collection::vec((0usize..40, 0usize..6), 0..20),
        anti in prop::bool::ANY,
        books in 5usize..25,
    ) {
        let mut cat = Catalog::new();
        let doc = gen_bib(&BibConfig {
            books,
            authors_per_book: 2,
            seed: 27,
            ..BibConfig::default()
        });
        let mut c = xpath::EvalCounters::default();
        let pairs: Vec<(String, String)> = xpath::eval_path(&doc, &[NodeId::DOCUMENT], &p("//book"), &mut c)
            .into_iter()
            .map(|b| {
                let t = xpath::eval_path(&doc, &[b], &p("/title"), &mut c)[0];
                let y = xpath::eval_path(&doc, &[b], &p("/@year"), &mut c)[0];
                (doc.string_value(t), doc.string_value(y))
            })
            .collect();
        cat.register(doc);
        // Mix of aligned pairs (hits), shuffled pairs (mostly misses),
        // and typed edge components (numeric, NaN, -0.0, NULL).
        let rows: Vec<Tuple> = picks
            .iter()
            .map(|&(i, mode)| {
                let (t, y): (Value, Value) = match mode {
                    0 if i < pairs.len() => {
                        (Value::str(&pairs[i].0), Value::str(&pairs[i].1))
                    }
                    1 if i < pairs.len() => {
                        let j = (i + 1) % pairs.len();
                        (Value::str(&pairs[i].0), Value::str(&pairs[j].1))
                    }
                    2 => (Value::str(format!("miss-{i}")), Value::str("1994")),
                    3 if i < pairs.len() => {
                        let parsed = pairs[i].1.parse::<f64>().unwrap_or(0.0);
                        (Value::str(&pairs[i].0), Value::Dec(nal::Dec(parsed)))
                    }
                    4 => (Value::str("x"), Value::Dec(nal::Dec(f64::NAN))),
                    5 => (Value::Dec(nal::Dec(-0.0)), Value::Null),
                    _ => (Value::str("y"), Value::str("z")),
                };
                Tuple::from_pairs(vec![(s("t1"), t), (s("y1"), y)])
            })
            .collect();
        let l = Expr::Literal(rows).project_syms(vec![s("t1"), s("y1")]);
        let pred = Scalar::attr_cmp(CmpOp::Eq, "t1", "t2")
            .and(Scalar::attr_cmp(CmpOp::Eq, "y1", "y2"));
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("b2", Scalar::attr("d2").path(p("//book")))
            .unnest_map("t2", Scalar::attr("b2").path(p("/title")))
            .unnest_map("y2", Scalar::attr("b2").path(p("/@year")));
        let e = if anti {
            l.antijoin(build, pred)
        } else {
            l.semijoin(build, pred)
        };
        let plan = engine::compile_indexed(&e, &cat);
        prop_assert!(plan.explain().contains("IndexComposite"), "{}", plan.explain());
        assert_all_modes_identical(&e, &cat);
    }

    #[test]
    fn random_deep_ancestor_probes_stream_identically(
        picks in prop::collection::vec((0usize..60, prop::bool::ANY), 0..20),
        year in 1980i64..2010,
        anti in prop::bool::ANY,
        books in 5usize..25,
    ) {
        let mut cat = Catalog::new();
        let doc = gen_bib(&BibConfig {
            books,
            authors_per_book: 2,
            seed: 29,
            ..BibConfig::default()
        });
        let lasts: Vec<String> = {
            let mut c = xpath::EvalCounters::default();
            xpath::eval_path(&doc, &[NodeId::DOCUMENT], &p("//last"), &mut c)
                .into_iter()
                .map(|n| doc.string_value(n))
                .collect()
        };
        cat.register(doc);
        let rows: Vec<Tuple> = picks
            .iter()
            .map(|&(i, hit)| {
                let v = if hit && i < lasts.len() {
                    Value::str(&lasts[i])
                } else {
                    Value::str(format!("miss-{i}"))
                };
                Tuple::singleton(s("l1"), v)
            })
            .collect();
        let l = Expr::Literal(rows).project_syms(vec![s("l1")]);
        // The key sits a descendant step below b2; the residual needs b2.
        let build = doc_scan("d2", "bib.xml")
            .unnest_map("b2", Scalar::attr("d2").path(p("//book")))
            .unnest_map("l2", Scalar::attr("b2").path(p("//last")));
        let pred = Scalar::attr_cmp(CmpOp::Eq, "l1", "l2").and(Scalar::cmp(
            CmpOp::Gt,
            Scalar::attr("b2").path(p("/@year")),
            Scalar::int(year),
        ));
        let e = if anti {
            l.antijoin(build, pred)
        } else {
            l.semijoin(build, pred)
        };
        let plan = engine::compile_indexed(&e, &cat);
        prop_assert!(
            plan.explain().contains("IndexSemiJoin") || plan.explain().contains("IndexAntiJoin"),
            "{}", plan.explain()
        );
        assert_all_modes_identical(&e, &cat);
    }

    #[test]
    fn random_range_probes_stream_identically(
        picks in prop::collection::vec((0usize..40, prop::bool::ANY), 0..16),
        op_pick in 0usize..4,
        anti in prop::bool::ANY,
        books in 5usize..25,
    ) {
        let mut cat = Catalog::new();
        let doc = gen_bib(&BibConfig {
            books,
            authors_per_book: 2,
            seed: 23,
            ..BibConfig::default()
        });
        let titles: Vec<String> = {
            let mut c = xpath::EvalCounters::default();
            xpath::eval_path(&doc, &[NodeId::DOCUMENT], &p("//title"), &mut c)
                .into_iter()
                .map(|n| doc.string_value(n))
                .collect()
        };
        cat.register(doc);
        let op = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][op_pick];
        let rows: Vec<Tuple> = picks
            .iter()
            .map(|&(i, hit)| {
                let v = if hit && i < titles.len() {
                    Value::str(&titles[i])
                } else {
                    Value::str(format!("probe-{i}"))
                };
                Tuple::singleton(s("t1"), v)
            })
            .collect();
        let l = Expr::Literal(rows).project_syms(vec![s("t1")]);
        let pred = Scalar::attr_cmp(op, "t1", "t2");
        let e = if anti {
            l.antijoin(title_build("bib.xml"), pred)
        } else {
            l.semijoin(title_build("bib.xml"), pred)
        };
        let plan = engine::compile_indexed(&e, &cat);
        prop_assert!(plan.explain().contains("IndexRange"), "{}", plan.explain());
        assert_all_modes_identical(&e, &cat);
    }
}

// ---------------------------------------------------------------------
// Incremental index maintenance: updated documents, same guarantees
// ---------------------------------------------------------------------

/// A scripted batch of catalog-level updates against the standard
/// corpus: duplicate one record (before another), delete one, and
/// rewrite one text leaf — on each of the three documents the paper's
/// workloads read. Handles are re-snapshotted between steps so the
/// batch survives an ordering-key rebalance.
fn mutate_corpus(cat: &mut Catalog, seed: usize) {
    for uri in ["bib.xml", "reviews.xml", "prices.xml"] {
        let id = cat.by_uri(uri).unwrap();
        // Duplicate entry `seed % n` in front of entry `(seed + 2) % n`.
        {
            let doc = cat.doc(id).as_ref().clone();
            let root = doc.root_element().unwrap();
            let entries: Vec<NodeId> = doc.children(root).collect();
            let n = entries.len();
            assert!(n >= 3, "{uri}: corpus too small to mutate");
            let (src, before) = (entries[seed % n], entries[(seed + 2) % n]);
            cat.insert_subtree(id, root, Some(before), &doc, src)
                .unwrap();
        }
        // Delete entry `(seed + 1) % n`.
        {
            let doc = cat.doc(id).as_ref().clone();
            let root = doc.root_element().unwrap();
            let entries: Vec<NodeId> = doc.children(root).collect();
            let victim = entries[(seed + 1) % entries.len()];
            cat.delete_subtree(id, victim).unwrap();
        }
        // Rewrite the first text leaf of the first entry.
        {
            let doc = cat.doc(id).as_ref().clone();
            let root = doc.root_element().unwrap();
            let first = doc.children(root).next().unwrap();
            if let Some(text) = doc
                .descendants(first)
                .find(|&t| matches!(doc.kind(t), xmldb::NodeKind::Text))
            {
                cat.replace_text(id, text, "Updated Leaf").unwrap();
            }
        }
    }
}

/// Run every plan alternative of every workload (equality, range, and
/// composite) through all four modes on an *updated* corpus whose
/// indexes were warmed pre-update — so the indexed runs exercise
/// delta-maintained postings, and the scan runs are the ground truth.
#[test]
fn updated_corpus_stays_byte_identical_across_all_workloads() {
    let mut catalog = standard_catalog(30, 2, 7);
    let workloads: Vec<&ordered_unnesting::workloads::Workload> = ordered_unnesting::workloads::ALL
        .iter()
        .chain(ordered_unnesting::workloads::RANGE.iter())
        .chain(ordered_unnesting::workloads::COMPOSITE.iter())
        .collect();
    // Warm: run each workload's plans indexed once so every index the
    // plans probe is built and cached.
    let mut plans: Vec<Expr> = Vec::new();
    for w in &workloads {
        let nested = xquery::compile(w.query, &catalog)
            .unwrap_or_else(|e| panic!("[{}] compile failed: {e}", w.id));
        for plan in unnest::enumerate_plans(&nested, &catalog) {
            engine::run_indexed(&plan.expr, &catalog).expect("warm indexed run");
            plans.push(plan.expr);
        }
    }
    let warmed = catalog.index_maintenance_stats();
    mutate_corpus(&mut catalog, 5);
    for expr in &plans {
        assert_all_modes_identical(expr, &catalog);
    }
    let after = catalog.index_maintenance_stats();
    assert!(
        after.delta_updates >= 9,
        "three updates on three documents must apply as deltas (got {})",
        after.delta_updates
    );
    assert_eq!(
        after.full_builds, warmed.full_builds,
        "post-update indexed runs must reuse the delta-maintained indexes"
    );
}

/// Plans (and their embedded access recipes) compiled *before* an
/// update keep producing scan-identical results when executed after it:
/// the recipe is declarative and the probe runtime resolves the
/// delta-maintained indexes freshly per execution.
#[test]
fn pre_update_compiled_plans_survive_deltas() {
    let mut catalog = standard_catalog(30, 2, 11);
    let workloads = [
        &ordered_unnesting::workloads::Q3_EXISTENTIAL,
        &ordered_unnesting::workloads::Q5_UNIVERSAL,
        &ordered_unnesting::workloads::Q7_RANGE_SOME,
        &ordered_unnesting::workloads::Q9_COMPOSITE,
    ];
    let mut compiled: Vec<(engine::PhysPlan, engine::PhysPlan)> = Vec::new();
    for w in workloads {
        let nested = xquery::compile(w.query, &catalog).expect("compiles");
        for plan in unnest::enumerate_plans(&nested, &catalog) {
            let scan = engine::compile(&plan.expr);
            let indexed = engine::compile_indexed(&plan.expr, &catalog);
            // Pre-update sanity.
            let a = engine::run_compiled(&scan, &catalog).unwrap();
            let b = engine::run_compiled(&indexed, &catalog).unwrap();
            assert_eq!(a.output, b.output);
            compiled.push((scan, indexed));
        }
    }
    mutate_corpus(&mut catalog, 2);
    for (scan, indexed) in &compiled {
        let a = engine::run_compiled(scan, &catalog).expect("scan plan");
        let b = engine::run_compiled(indexed, &catalog).expect("stale-epoch indexed plan");
        let c = engine::run_streaming_compiled(indexed, &catalog).expect("streaming");
        assert_eq!(a.rows, b.rows, "pre-update recipe diverged after deltas");
        assert_eq!(a.output, b.output);
        assert_eq!(a.output, c.output);
        assert_eq!(b.metrics.index_lookups, c.metrics.index_lookups);
        assert_eq!(b.metrics.index_hits, c.metrics.index_hits);
    }
}

/// A stale recipe whose document was re-registered (not delta-updated)
/// still executes correctly: the rebuilt indexes resolve freshly.
#[test]
fn reregistration_rebuilds_and_recipes_recover() {
    let mut catalog = standard_catalog(20, 2, 3);
    let w = &ordered_unnesting::workloads::Q3_EXISTENTIAL;
    let nested = xquery::compile(w.query, &catalog).expect("compiles");
    let plan = unnest::enumerate_plans(&nested, &catalog)
        .into_iter()
        .find(|p| p.label == "semijoin")
        .expect("semijoin plan");
    let indexed = engine::compile_indexed(&plan.expr, &catalog);
    engine::run_compiled(&indexed, &catalog).expect("pre-update run");
    // Replace bib.xml wholesale (twice the books).
    catalog.register(gen_bib(&BibConfig {
        books: 40,
        authors_per_book: 2,
        seed: 3,
        ..BibConfig::default()
    }));
    let scan = engine::run_compiled(&engine::compile(&plan.expr), &catalog).unwrap();
    let idx = engine::run_compiled(&indexed, &catalog).expect("recipe recovers");
    assert_eq!(scan.output, idx.output);
}
