//! Quantifier semantics and short-circuiting in the streaming executor.
//!
//! Two families of regression tests:
//!
//! 1. **Vacuous quantifiers** — `some $x in () satisfies p` is false and
//!    `every $x in () satisfies p` is true, end-to-end (algebra level and
//!    XQuery level, both executors).
//! 2. **Short-circuiting** — the streaming semi/anti join cursors stop
//!    probing a tuple's bucket at the deciding match. Observed through
//!    the new per-operator tuple counters (`Metrics::op_tuples`) and the
//!    probe counter (`Metrics::probe_tuples`): on an all-matching
//!    workload the probe count stays *strictly below the input
//!    cardinality*, where a non-short-circuiting nested loop would do
//!    |left| × |right| work.

use nal::{CmpOp, Expr, Scalar, Sym, Tuple, Value};
use xmldb::gen::{gen_bib, gen_reviews, BibConfig, ReviewsConfig};
use xmldb::Catalog;

fn s(n: &str) -> Sym {
    Sym::new(n)
}

fn int_rel(attr: &str, keys: &[i64]) -> Expr {
    Expr::Literal(
        keys.iter()
            .map(|&k| Tuple::singleton(s(attr), Value::Int(k)))
            .collect(),
    )
    .project_syms(vec![s(attr)])
}

/// The empty single-attribute relation `()` used as a quantifier range.
fn empty_range() -> Expr {
    Expr::Literal(Vec::new()).project_syms(vec![s("x")])
}

// ---------------------------------------------------------------------
// 1. Vacuous quantifiers
// ---------------------------------------------------------------------

#[test]
fn some_over_empty_range_is_false() {
    let cat = Catalog::new();
    let input = int_rel("t", &[1, 2, 3]);
    let expr = input.select(Scalar::Exists {
        var: s("x"),
        range: Box::new(empty_range()),
        pred: Box::new(Scalar::cmp(CmpOp::Gt, Scalar::attr("x"), Scalar::int(0))),
    });
    for (label, result) in [
        ("run", engine::run(&expr, &cat).unwrap()),
        ("run_streaming", engine::run_streaming(&expr, &cat).unwrap()),
    ] {
        assert!(
            result.rows.is_empty(),
            "{label}: `some $x in () …` must hold for no tuple, got {:?}",
            result.rows
        );
    }
}

#[test]
fn every_over_empty_range_is_true() {
    let cat = Catalog::new();
    let input = int_rel("t", &[1, 2, 3]);
    let expr = input.select(Scalar::Forall {
        var: s("x"),
        range: Box::new(empty_range()),
        pred: Box::new(Scalar::cmp(CmpOp::Gt, Scalar::attr("x"), Scalar::int(0))),
    });
    for (label, result) in [
        ("run", engine::run(&expr, &cat).unwrap()),
        ("run_streaming", engine::run_streaming(&expr, &cat).unwrap()),
    ] {
        assert_eq!(
            result.rows.len(),
            3,
            "{label}: `every $x in () …` must hold vacuously for every tuple"
        );
    }
}

/// End-to-end through the XQuery frontend: quantifying over an *empty
/// document sequence* — `reviews.xml` with zero entries.
#[test]
fn vacuous_quantifiers_end_to_end() {
    let mut cat = Catalog::new();
    cat.register(gen_bib(&BibConfig {
        books: 10,
        authors_per_book: 2,
        seed: 5,
        ..BibConfig::default()
    }));
    cat.register(gen_reviews(&ReviewsConfig {
        entries: 0,
        ..ReviewsConfig::default()
    }));

    let some_q = r#"
        let $d1 := doc("bib.xml")
        for $t1 in $d1//book/title
        where some $t2 in document("reviews.xml")//entry/title
              satisfies $t1 = $t2
        return <hit>{ $t1 }</hit>"#;
    let every_q = r#"
        let $d1 := doc("bib.xml")
        for $t1 in $d1//book/title
        where every $t2 in document("reviews.xml")//entry/title
              satisfies $t1 = $t2
        return <hit>{ $t1 }</hit>"#;

    let some_expr = xquery::compile(some_q, &cat).expect("some query compiles");
    let every_expr = xquery::compile(every_q, &cat).expect("every query compiles");

    for run in [engine::run, engine::run_streaming] {
        let some_out = run(&some_expr, &cat).expect("some runs").output;
        assert!(
            some_out.is_empty(),
            "`some` over an empty document must select nothing: {some_out}"
        );
        let every_out = run(&every_expr, &cat).expect("every runs").output;
        assert_eq!(
            every_out.matches("<hit>").count(),
            10,
            "`every` over an empty document must select all 10 books"
        );
    }
}

// ---------------------------------------------------------------------
// 2. Short-circuit probing
// ---------------------------------------------------------------------

/// One probe tuple against 1000 matching build tuples: the hash semi
/// join must examine exactly one candidate — strictly fewer tuples
/// probed than the input cardinality.
#[test]
fn hash_semijoin_short_circuits_on_first_match() {
    let cat = Catalog::new();
    let n = 1000usize;
    let left = int_rel("a", &[7]);
    let right = int_rel("b", &vec![7; n]);
    let expr = left.semijoin(right, Scalar::attr_cmp(CmpOp::Eq, "a", "b"));

    let r = engine::run_streaming(&expr, &cat).unwrap();
    assert_eq!(r.rows.len(), 1, "the probe tuple matches");
    assert_eq!(
        r.metrics.probe_tuples,
        1,
        "first match decides; the remaining {} bucket entries must not be probed",
        n - 1
    );
    assert!(
        (r.metrics.probe_tuples as usize) < n,
        "strictly fewer tuples probed ({}) than input cardinality ({n})",
        r.metrics.probe_tuples
    );
    // The per-operator tuple counters see one tuple leave the semi join.
    assert_eq!(r.metrics.op_count("HashSemiJoin"), 1);
    // And both executors agree on the result.
    let m = engine::run(&expr, &cat).unwrap();
    assert_eq!(m.rows, r.rows);
}

/// The anti join's deciding event is also the *first* match (which
/// condemns the probe tuple) — same single-probe bound.
#[test]
fn hash_antijoin_short_circuits_on_first_match() {
    let cat = Catalog::new();
    let n = 1000usize;
    let left = int_rel("a", &[7]);
    let right = int_rel("b", &vec![7; n]);
    let expr = left.antijoin(right, Scalar::attr_cmp(CmpOp::Eq, "a", "b"));

    let r = engine::run_streaming(&expr, &cat).unwrap();
    assert!(r.rows.is_empty(), "the probe tuple is matched away");
    assert_eq!(
        r.metrics.probe_tuples, 1,
        "first match decides the anti join too"
    );
    assert_eq!(r.metrics.op_count("HashAntiJoin"), 0, "no tuple survives");
}

/// Non-equi predicates take the loop-join path; its semi/anti cursors
/// short-circuit the same way.
#[test]
fn loop_semijoin_short_circuits_on_first_match() {
    let cat = Catalog::new();
    let n = 500usize;
    let left = int_rel("a", &[7]);
    let right = int_rel("b", &vec![9; n]);
    // `a < b` is non-hashable, so this compiles to LoopSemiJoin.
    let expr = left.semijoin(right, Scalar::attr_cmp(CmpOp::Lt, "a", "b"));
    let plan = engine::compile(&expr);
    assert!(
        plan.explain().starts_with("LoopSemiJoin"),
        "{}",
        plan.explain()
    );

    let r = engine::run_streaming_compiled(&plan, &cat).unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.metrics.probe_tuples, 1, "first passing candidate decides");
    assert!((r.metrics.probe_tuples as usize) < n);
}

/// A multi-tuple probe side: every probe stops at its first match, so
/// total probes equal |left| — not |left| × |right|.
#[test]
fn probe_work_is_linear_in_probe_side() {
    let cat = Catalog::new();
    let l: Vec<i64> = (0..100).map(|i| i % 5).collect();
    let r: Vec<i64> = (0..200).map(|i| i % 5).collect();
    let expr = int_rel("a", &l).semijoin(int_rel("b", &r), Scalar::attr_cmp(CmpOp::Eq, "a", "b"));
    let res = engine::run_streaming(&expr, &cat).unwrap();
    assert_eq!(res.rows.len(), 100, "every probe tuple has a match");
    assert_eq!(
        res.metrics.probe_tuples, 100,
        "one probe per left tuple; 100 × 40-entry buckets would be 4000"
    );
}

/// The paper's quantifier workload (§5.3, Q3): the unnested semijoin
/// plan, streamed, probes strictly fewer tuples than the input
/// cardinality — the acceptance criterion for short-circuiting.
#[test]
fn quantifier_workload_probes_fewer_than_input() {
    let mut cat = Catalog::new();
    cat.register(gen_bib(&BibConfig {
        books: 60,
        authors_per_book: 2,
        seed: 42,
        ..BibConfig::default()
    }));
    cat.register(gen_reviews(&ReviewsConfig {
        entries: 60,
        seed: 42,
        ..ReviewsConfig::default()
    }));
    let q3 = r#"
        let $d1 := document("bib.xml")
        for $t1 in $d1//book/title
        where some $t2 in document("reviews.xml")//entry/title
              satisfies $t1 = $t2
        return <book-with-review>{ $t1 }</book-with-review>"#;
    let nested = xquery::compile(q3, &cat).expect("compiles");
    let plans = unnest::enumerate_plans(&nested, &cat);
    let semijoin = plans
        .iter()
        .find(|p| p.label == "semijoin")
        .expect("Eqv. 6 offers the semijoin plan");

    let titles = 60u64; // one title per book
    let reviews = 60u64; // one entry per review

    let r = engine::run_streaming(&semijoin.expr, &cat).expect("streams");
    assert!(r.metrics.probe_tuples > 0, "the plan does probe");
    assert!(
        r.metrics.probe_tuples < titles,
        "probes ({}) must stay strictly below the probe-side cardinality ({titles})",
        r.metrics.probe_tuples
    );
    assert!(
        r.metrics.probe_tuples < titles * reviews,
        "and far below the nested-loop bound"
    );
    // Differential: the streamed plan is still byte-identical to `run`.
    let m = engine::run(&semijoin.expr, &cat).expect("runs");
    assert_eq!(m.output, r.output);
}
