//! Differential testing of the streaming executor: `run_streaming` must
//! produce the same row sequence and byte-identical Ξ output as the
//! materializing `run` — on randomized relations over every operator
//! kind, and on every plan alternative of every §5 workload.

use proptest::prelude::*;

use nal::expr::builder::*;
use nal::{AggKind, CmpOp, Expr, GroupFn, Scalar, Sym, Tuple, Value};
use xmldb::gen::standard_catalog;
use xmldb::Catalog;

fn s(n: &str) -> Sym {
    Sym::new(n)
}

fn rel(attr_a: &str, attr_b: &str, rows: &[(i64, i64)]) -> Expr {
    Expr::Literal(
        rows.iter()
            .map(|&(x, y)| {
                Tuple::from_pairs(vec![(s(attr_a), Value::Int(x)), (s(attr_b), Value::Int(y))])
            })
            .collect(),
    )
    .project_syms(vec![s(attr_a), s(attr_b)])
}

/// Both executors on the same expression: identical rows, identical Ξ
/// output stream.
fn assert_stream_matches(expr: &Expr, cat: &Catalog) {
    let m = engine::run(expr, cat).expect("materializing executor succeeds");
    let p = engine::run_streaming(expr, cat).expect("streaming executor succeeds");
    assert_eq!(m.rows, p.rows, "row mismatch for {expr}");
    assert_eq!(m.output, p.output, "Ξ output mismatch for {expr}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn joins_stream_identically(
        l in prop::collection::vec((0i64..5, 0i64..40), 0..14),
        r in prop::collection::vec((0i64..5, 0i64..40), 0..14),
        kind in 0..4usize,
        with_residual in prop::bool::ANY,
    ) {
        let cat = Catalog::new();
        let left = rel("a", "x", &l);
        let right = rel("b", "y", &r);
        let mut pred = Scalar::attr_cmp(CmpOp::Eq, "a", "b");
        if with_residual {
            pred = pred.and(Scalar::cmp(CmpOp::Lt, Scalar::attr("y"), Scalar::int(25)));
        }
        let expr = match kind {
            0 => left.join(right, pred),
            1 => left.semijoin(right, pred),
            2 => left.antijoin(right, pred),
            _ => left.outerjoin(right, pred, "y", Value::Int(0)),
        };
        assert_stream_matches(&expr, &cat);
    }

    #[test]
    fn non_equi_joins_stream_identically(
        l in prop::collection::vec((0i64..5, 0i64..40), 0..10),
        r in prop::collection::vec((0i64..5, 0i64..40), 0..10),
        kind in 0..4usize,
        op in prop::sample::select(vec![CmpOp::Lt, CmpOp::Ne, CmpOp::Ge]),
    ) {
        let cat = Catalog::new();
        let left = rel("a", "x", &l);
        let right = rel("b", "y", &r);
        let pred = Scalar::attr_cmp(op, "a", "b");
        let expr = match kind {
            0 => left.join(right, pred),
            1 => left.semijoin(right, pred),
            2 => left.antijoin(right, pred),
            _ => left.outerjoin(right, pred, "y", Value::Int(0)),
        };
        assert_stream_matches(&expr, &cat);
    }

    #[test]
    fn cross_and_select_stream_identically(
        l in prop::collection::vec((0i64..4, 0i64..9), 0..8),
        r in prop::collection::vec((0i64..4, 0i64..9), 0..8),
        k in 0i64..9,
    ) {
        let cat = Catalog::new();
        let expr = rel("a", "x", &l)
            .cross(rel("b", "y", &r))
            .select(Scalar::cmp(CmpOp::Le, Scalar::attr("y"), Scalar::int(k)));
        assert_stream_matches(&expr, &cat);
    }

    #[test]
    fn grouping_streams_identically(
        rows in prop::collection::vec((0i64..5, 0i64..40), 0..16),
        theta in prop::sample::select(vec![CmpOp::Eq, CmpOp::Lt, CmpOp::Ge]),
        f in prop::sample::select(vec![
            GroupFn::count(),
            GroupFn::id(),
            GroupFn::project_items("y"),
            GroupFn::agg_of(AggKind::Min, "y"),
            GroupFn::agg_of(AggKind::Sum, "y"),
        ]),
    ) {
        let cat = Catalog::new();
        let expr = rel("b", "y", &rows).group_unary("g", &["b"], theta, f);
        assert_stream_matches(&expr, &cat);
    }

    #[test]
    fn binary_grouping_streams_identically(
        l in prop::collection::vec(0i64..5, 0..10),
        r in prop::collection::vec((0i64..5, 0i64..40), 0..14),
        theta in prop::sample::select(vec![CmpOp::Eq, CmpOp::Le]),
    ) {
        let cat = Catalog::new();
        let left = Expr::Literal(
            l.iter().map(|&k| Tuple::singleton(s("a"), Value::Int(k))).collect(),
        )
        .project_syms(vec![s("a")]);
        let expr = left.group_binary(
            rel("b", "y", &r),
            "g",
            &["a"],
            theta,
            &["b"],
            GroupFn::count(),
        );
        assert_stream_matches(&expr, &cat);
    }

    #[test]
    fn unnest_and_projections_stream_identically(
        rows in prop::collection::vec((0i64..4, 0i64..6), 0..16),
        distinct in prop::bool::ANY,
    ) {
        let cat = Catalog::new();
        let grouped = rel("b", "y", &rows).group_unary("g", &["b"], CmpOp::Eq, GroupFn::id());
        let expr = if distinct { grouped.unnest_distinct("g") } else { grouped.unnest("g") };
        assert_stream_matches(&expr, &cat);

        let base = rel("b", "y", &rows);
        assert_stream_matches(&base.clone().project(&["b"]), &cat);
        assert_stream_matches(&base.clone().drop_attrs(&["y"]), &cat);
        assert_stream_matches(&base.clone().rename(&[("z", "b")]), &cat);
        assert_stream_matches(&base.clone().distinct_cols(&["b"]), &cat);
        assert_stream_matches(&base.distinct_rename(&[("z", "b")]), &cat);
    }

    #[test]
    fn xi_streams_identically(
        rows in prop::collection::vec((0i64..4, 0i64..6), 0..16),
        grouped in prop::bool::ANY,
    ) {
        let cat = Catalog::new();
        let expr = if grouped {
            rel("b", "y", &rows).xi_group(
                &["b"],
                xi_cmds(&["<g k=\"", "$b", "\">"]),
                xi_cmds(&["<i>", "$y", "</i>"]),
                xi_cmds(&["</g>"]),
            )
        } else {
            Expr::XiSimple {
                input: Box::new(rel("b", "y", &rows)),
                cmds: xi_cmds(&["<row>", "$y", "</row>"]),
            }
        };
        assert_stream_matches(&expr, &cat);
    }

    /// Stacked Ξ operators: the streaming executor must reproduce the
    /// materializing executor's strict bottom-up Ξ write order (the
    /// lowering's eager-materialization fallback).
    #[test]
    fn stacked_xi_streams_identically(
        rows in prop::collection::vec((0i64..4, 0i64..6), 0..10),
    ) {
        let cat = Catalog::new();
        let inner = Expr::XiSimple {
            input: Box::new(rel("b", "y", &rows)),
            cmds: xi_cmds(&["<inner>", "$y", "</inner>"]),
        };
        let outer = Expr::XiSimple {
            input: Box::new(inner.clone()),
            cmds: xi_cmds(&["<outer>", "$b", "</outer>"]),
        };
        assert_stream_matches(&outer, &cat);

        // Ξ below a join build side — forces the strict-order path for
        // binary operators.
        let joined = rel("a", "x", &rows).join(
            Expr::XiSimple {
                input: Box::new(rel("b", "y", &rows)),
                cmds: xi_cmds(&["<r>", "$b", "</r>"]),
            },
            Scalar::attr_cmp(CmpOp::Eq, "a", "b"),
        );
        let wrapped = Expr::XiSimple {
            input: Box::new(joined),
            cmds: xi_cmds(&["<j>", "$x", "</j>"]),
        };
        assert_stream_matches(&wrapped, &cat);
    }

    /// Ξ hiding *inside scalars* (quantifier ranges, aggregate inputs):
    /// the lowering's Ξ analysis must see through operator subscripts,
    /// or pipelining would interleave the writes.
    #[test]
    fn xi_inside_scalars_streams_identically(
        rows in prop::collection::vec((0i64..4, 0i64..6), 1..8),
    ) {
        let cat = Catalog::new();
        // An aggregate whose nested input writes Ξ output when evaluated.
        let xi_agg = |tag: &str| Scalar::Agg {
            f: GroupFn::count(),
            input: Box::new(Expr::XiSimple {
                input: Box::new(rel("b", "y", &rows)),
                cmds: xi_cmds(&[tag]),
            }),
        };
        // Cross of two Ξ-emitting Maps: the materializing executor
        // evaluates left fully, then right — the streaming Cross must
        // not build the right side first.
        let one = |a: &str, v: i64| {
            Expr::Literal(vec![Tuple::singleton(s(a), Value::Int(v))])
                .project_syms(vec![s(a)])
        };
        let left = one("l", 1).map("gl", xi_agg("<L/>"));
        let right = one("r", 2).map("gr", xi_agg("<R/>"));
        assert_stream_matches(&left.cross(right), &cat);

        // Stacked unary operators that both write through their scalars:
        // a Select whose quantifier range writes Ξ, above a Map whose
        // aggregate input writes Ξ.
        let mapped = rel("a", "x", &rows).map("g", xi_agg("<A/>"));
        let selected = mapped.select(Scalar::Exists {
            var: s("q"),
            range: Box::new(Expr::XiSimple {
                input: Box::new(
                    Expr::Literal(vec![Tuple::singleton(s("z"), Value::Int(1))])
                        .project_syms(vec![s("z")]),
                ),
                cmds: xi_cmds(&["<B/>"]),
            }),
            pred: Box::new(Scalar::cmp(CmpOp::Gt, Scalar::attr("q"), Scalar::int(0))),
        });
        assert_stream_matches(&selected, &cat);
    }
}

/// Every plan alternative of every §5 workload — the appendix-A rewrite
/// outputs included — must stream byte-identically.
#[test]
fn all_paper_plans_stream_identically() {
    let catalog = standard_catalog(25, 3, 11);
    for (id, query) in workloads() {
        let nested =
            xquery::compile(query, &catalog).unwrap_or_else(|e| panic!("[{id}] compile: {e}"));
        for plan in unnest::enumerate_plans(&nested, &catalog) {
            let m = engine::run(&plan.expr, &catalog)
                .unwrap_or_else(|e| panic!("[{id} / {}] run: {e}", plan.label));
            let p = engine::run_streaming(&plan.expr, &catalog)
                .unwrap_or_else(|e| panic!("[{id} / {}] run_streaming: {e}", plan.label));
            assert_eq!(m.rows, p.rows, "[{id} / {}] rows differ", plan.label);
            assert_eq!(
                m.output, p.output,
                "[{id} / {}] Ξ output differs",
                plan.label
            );
        }
    }
}

/// Same differential across generator scales and seeds, so blocking
/// operators see empty, singleton, and large groups.
#[test]
fn paper_plans_stream_identically_across_seeds() {
    for &(scale, fanout, seed) in &[(10usize, 2usize, 1u64), (30, 5, 7)] {
        let catalog = standard_catalog(scale, fanout, seed);
        for (id, query) in workloads() {
            let nested =
                xquery::compile(query, &catalog).unwrap_or_else(|e| panic!("[{id}] compile: {e}"));
            for plan in unnest::enumerate_plans(&nested, &catalog) {
                let m = engine::run(&plan.expr, &catalog).expect("run");
                let p = engine::run_streaming(&plan.expr, &catalog).expect("run_streaming");
                assert_eq!(
                    m.output, p.output,
                    "[{id} / {} @ scale={scale} seed={seed}] Ξ output differs",
                    plan.label
                );
            }
        }
    }
}

/// Inline copy of the workload queries (kept in sync by the umbrella
/// end-to-end tests) to avoid a dependency cycle on the umbrella crate.
fn workloads() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "q1",
            r#"let $d1 := doc("bib.xml")
               for $a1 in distinct-values($d1//author)
               return <author><name>{ $a1 }</name>{
                 let $d2 := doc("bib.xml")
                 for $b2 in $d2//book[$a1 = author]
                 return $b2/title
               }</author>"#,
        ),
        (
            "q2",
            r#"let $d1 := doc("prices.xml")
               for $t1 in distinct-values($d1//book/title)
               let $m1 := min(let $d2 := doc("prices.xml")
                              for $p2 in $d2//book[title = $t1]/price
                              return decimal($p2))
               return <minprice title="{ $t1 }"><price>{ $m1 }</price></minprice>"#,
        ),
        (
            "q3",
            r#"let $d1 := document("bib.xml")
               for $t1 in $d1//book/title
               where some $t2 in document("reviews.xml")//entry/title
                     satisfies $t1 = $t2
               return <book-with-review>{ $t1 }</book-with-review>"#,
        ),
        (
            "q4",
            r#"let $d1 := doc("bib.xml")
               for $b1 in $d1//book, $a1 in $b1/author
               where exists(let $d2 := doc("bib.xml")
                            for $b2 in $d2//book, $a2 in $b2/author
                            where contains($a2, "an") and $b1 = $b2
                            return $b2)
               return <book>{ $a1 }</book>"#,
        ),
        (
            "q5",
            r#"let $d1 := doc("bib.xml")
               for $a1 in distinct-values($d1//author)
               where every $b2 in doc("bib.xml")//book[author = $a1]
                     satisfies $b2/@year > 1993
               return <new-author>{ $a1 }</new-author>"#,
        ),
        (
            "q6",
            r#"let $d1 := document("bids.xml")
               for $i1 in distinct-values($d1//itemno)
               where count($d1//bidtuple[itemno = $i1]) >= 3
               return <popular-item>{ $i1 }</popular-item>"#,
        ),
    ]
}
