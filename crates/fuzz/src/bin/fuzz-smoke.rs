fn main() {
    let seed = fuzz::env_seed(fuzz::DEFAULT_SEED);
    let cases = fuzz::env_cases(50);
    let t = std::time::Instant::now();
    match fuzz::run_fuzz(seed, cases, &fuzz::GenConfig::default()) {
        Ok(r) => println!(
            "ok: {} cases ({} with updates) in {:?}",
            r.cases,
            r.with_updates,
            t.elapsed()
        ),
        Err(f) => {
            println!("FAILED:\n{f}");
            std::process::exit(1);
        }
    }
}
