//! Random corpus generation: small documents over a fixed element
//! vocabulary (`db`/`e`/`k`/`v`/`n`/`g`), with values drawn from an
//! adversarial pool of edge keys — `NaN`, negative zero spellings,
//! empty strings, numeric-looking strings — so that equality and range
//! predicates constantly cross the Str/Num regime boundary.
//!
//! The shape is deliberately constrained: the query generator
//! ([`crate::gen`]) knows the vocabulary, so every generated path
//! expression has a chance of selecting something, and the update
//! generator ([`crate::update`]) can duplicate/delete whole entries or
//! retarget text nodes without consulting the query.

use rand::rngs::StdRng;
use rand::Rng;
use xmldb::{Catalog, MaintenanceMode};

/// The adversarial value pool. Everything is XML- and snippet-safe
/// (no markup characters, no whitespace), but numerically treacherous:
/// `NaN`, the `-0` spellings, `""` (typed miss), and strings that are
/// equal as numbers but distinct as strings (`"0"` vs `"0.0"`,
/// `"3"` vs `"3.0"`).
pub const VALUE_POOL: &[&str] = &[
    "NaN", "-0", "-0.0", "0", "0.0", "", "abc", "an", "zz9", "1", "2", "3", "3.0", "7", "10",
    "3.5", "A", "B", "edge",
];

/// Pick a random pool value.
pub fn pool_value(rng: &mut StdRng) -> String {
    VALUE_POOL[rng.gen_range(0..VALUE_POOL.len())].to_string()
}

/// One `<e>` entry of a generated document.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// `@id` attribute value.
    pub id: u32,
    /// `<k>` key values (one or two — multi-valued keys exercise the
    /// existential semantics of general comparisons).
    pub keys: Vec<String>,
    /// `<v>` value text.
    pub v: String,
    /// `<n>` numeric-ish text.
    pub n: String,
    /// Nested `<g><k>…</k><n>…</n></g>` groups (deep-ancestor targets).
    pub deep: Vec<(String, String)>,
}

/// One generated document.
#[derive(Clone, Debug, PartialEq)]
pub struct GenDoc {
    /// Registration URI (`fz0.xml`, `fz1.xml`, …).
    pub uri: String,
    /// The entry list, in document order.
    pub entries: Vec<Entry>,
}

/// A generated corpus: the data half of a fuzz case.
#[derive(Clone, Debug, PartialEq)]
pub struct Corpus {
    /// The documents, registered in order.
    pub docs: Vec<GenDoc>,
}

/// The URI of corpus document `i`.
pub fn doc_uri(i: usize) -> String {
    format!("fz{i}.xml")
}

impl Entry {
    /// Serialize to an XML fragment (also used by the update generator
    /// for freshly inserted subtrees).
    pub fn to_xml(&self) -> String {
        let mut s = format!("<e id=\"{}\">", self.id);
        for k in &self.keys {
            s.push_str(&format!("<k>{k}</k>"));
        }
        s.push_str(&format!("<v>{}</v><n>{}</n>", self.v, self.n));
        for (gk, gn) in &self.deep {
            s.push_str(&format!("<g><k>{gk}</k><n>{gn}</n></g>"));
        }
        s.push_str("</e>");
        s
    }

    /// Generate a random entry with the given id.
    pub fn random(rng: &mut StdRng, id: u32) -> Entry {
        let nkeys = if rng.gen_bool(0.25) { 2 } else { 1 };
        let ndeep = rng.gen_range(0usize..=2);
        Entry {
            id,
            keys: (0..nkeys).map(|_| pool_value(rng)).collect(),
            v: pool_value(rng),
            n: pool_value(rng),
            deep: (0..ndeep)
                .map(|_| (pool_value(rng), pool_value(rng)))
                .collect(),
        }
    }
}

impl GenDoc {
    /// Serialize the whole document.
    pub fn to_xml(&self) -> String {
        let mut s = String::from("<db>");
        for e in &self.entries {
            s.push_str(&e.to_xml());
        }
        s.push_str("</db>");
        s
    }
}

impl Corpus {
    /// Generate a random corpus: 1–2 documents of 4–10 entries each.
    /// Sizes are deliberately tiny — every case pays for ~120 query
    /// executions across the matrix, and order bugs need few rows to
    /// show (the shrunk reproducers end up with 2–4 entries anyway).
    pub fn random(rng: &mut StdRng) -> Corpus {
        let ndocs = rng.gen_range(1usize..=2);
        let mut docs = Vec::with_capacity(ndocs);
        let mut next_id = 0u32;
        for i in 0..ndocs {
            let n = rng.gen_range(4usize..=10);
            let entries = (0..n)
                .map(|_| {
                    next_id += 1;
                    Entry::random(rng, next_id)
                })
                .collect();
            docs.push(GenDoc {
                uri: doc_uri(i),
                entries,
            });
        }
        Corpus { docs }
    }

    /// Build a catalog with the given index-maintenance mode from this
    /// corpus. Every document must parse — the generator only emits
    /// markup-free pool values, so a failure here is a generator bug.
    pub fn build_catalog(&self, mode: MaintenanceMode) -> Catalog {
        let mut cat = Catalog::new();
        for d in &self.docs {
            let doc = xmldb::parse_document(&d.uri, &d.to_xml())
                .unwrap_or_else(|e| panic!("generated corpus must parse: {e}"));
            cat.register(doc);
        }
        cat.set_index_maintenance(mode);
        cat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn corpora_parse_and_register() {
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let corpus = Corpus::random(&mut rng);
            let cat = corpus.build_catalog(MaintenanceMode::Delta);
            assert_eq!(cat.len(), corpus.docs.len());
            for d in &corpus.docs {
                assert!(cat.by_uri(&d.uri).is_some());
            }
        }
    }
}
