//! Random query generation over the translatable XQuery subset.
//!
//! The generator builds a small structured model ([`GenQuery`]) and
//! renders it to query *text* that `xquery::compile` accepts — the same
//! front door the service uses — covering the ordered-context corners
//! the paper's rewrites must preserve:
//!
//! * nested Υ chains (`for $b1 in $b0/g`, `$b1 in $b0//k`) to
//!   configurable depth,
//! * `some`/`every` quantifiers with randomized (in)equality conjuncts,
//!   including **vacuous** ranges (`//zz` matches nothing),
//! * `exists(FLWR)` subqueries with composite key lists, band
//!   predicates, and deep-ancestor bindings (the Q9/Q10 shapes),
//! * `count(...)` having-style predicates,
//! * positional subscripts via `item-at` (order-observable by value),
//! * shadowed binder names in nested blocks (alpha-renaming stress).
//!
//! Rendering is deliberately hand-rolled rather than going through
//! [`xquery`]'s AST `Display`: step predicates need bare relative paths
//! (`[k = $b0]`), which the AST prints as context-variable paths that
//! do not re-parse. Every rendered query is validated by the generator
//! test suite: it must parse, normalize, and translate.

use nal::CmpOp;
use rand::rngs::StdRng;
use rand::Rng;

use crate::corpus::{pool_value, Corpus};

/// A document-anchored path over the corpus vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DocPath {
    /// `//e` — the entry nodes.
    Entries,
    /// `//e/k` — entry keys (multi-valued on some entries).
    EntryKeys,
    /// `//e/n` — entry numbers.
    EntryNums,
    /// `//e/v` — entry values.
    EntryVals,
    /// `//k` — *all* keys, including the nested `g/k` ones.
    DeepKeys,
    /// `//g/k` — only the nested group keys.
    GroupKeys,
    /// `//zz` — matches nothing (vacuous quantifier ranges).
    Vacuous,
}

impl DocPath {
    /// Path text, to be appended to a `$dN` variable.
    pub fn render(self) -> &'static str {
        match self {
            DocPath::Entries => "//e",
            DocPath::EntryKeys => "//e/k",
            DocPath::EntryNums => "//e/n",
            DocPath::EntryVals => "//e/v",
            DocPath::DeepKeys => "//k",
            DocPath::GroupKeys => "//g/k",
            DocPath::Vacuous => "//zz",
        }
    }

    fn random(rng: &mut StdRng) -> DocPath {
        match rng.gen_range(0u32..20) {
            0..=5 => DocPath::Entries,
            6..=10 => DocPath::EntryKeys,
            11..=13 => DocPath::EntryNums,
            14..=15 => DocPath::EntryVals,
            16..=17 => DocPath::DeepKeys,
            18 => DocPath::GroupKeys,
            _ => DocPath::Vacuous,
        }
    }

    fn random_leaf(rng: &mut StdRng) -> DocPath {
        match rng.gen_range(0u32..10) {
            0..=3 => DocPath::EntryKeys,
            4..=5 => DocPath::EntryNums,
            6 => DocPath::EntryVals,
            7 => DocPath::DeepKeys,
            8 => DocPath::GroupKeys,
            _ => DocPath::Vacuous,
        }
    }
}

/// A path relative to an entry-like node binder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelPath {
    /// `/k`
    Key,
    /// `/v`
    Val,
    /// `/n`
    Num,
    /// `/@id`
    IdAttr,
    /// `//k` — own and nested keys.
    DeepKey,
    /// `/g/k` — nested group keys only.
    GroupKey,
}

impl RelPath {
    /// Path text, to be appended to a `$bN` variable.
    pub fn render(self) -> &'static str {
        match self {
            RelPath::Key => "/k",
            RelPath::Val => "/v",
            RelPath::Num => "/n",
            RelPath::IdAttr => "/@id",
            RelPath::DeepKey => "//k",
            RelPath::GroupKey => "/g/k",
        }
    }

    fn random(rng: &mut StdRng) -> RelPath {
        match rng.gen_range(0u32..10) {
            0..=3 => RelPath::Key,
            4 => RelPath::Val,
            5..=6 => RelPath::Num,
            7 => RelPath::IdAttr,
            8 => RelPath::DeepKey,
            _ => RelPath::GroupKey,
        }
    }
}

/// Relative range of a chained (nested Υ) binder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelBind {
    /// `$bN in $bBASE/g` — the nested groups.
    Groups,
    /// `$bN in $bBASE//k` — all keys below the base.
    DeepKs,
}

/// Source of one `for` binder.
#[derive(Clone, Debug, PartialEq)]
pub enum BindSrc {
    /// `for $bN in $dDOC<path>`
    Doc {
        /// Corpus document index.
        doc: usize,
        /// Anchored path.
        path: DocPath,
    },
    /// `for $bN in $bBASE<rel>` — a nested Υ chain link.
    Rel {
        /// Index of the base binder (must allow paths).
        base: usize,
        /// Relative range.
        rel: RelBind,
    },
    /// `for $bN in distinct-values($dDOC<path>)` — an *item* binder;
    /// no paths may be taken off it.
    Distinct {
        /// Corpus document index.
        doc: usize,
        /// Anchored path.
        path: DocPath,
    },
}

/// One `for` binder.
#[derive(Clone, Debug, PartialEq)]
pub struct Binder {
    /// Where the binder ranges.
    pub src: BindSrc,
}

impl Binder {
    /// May operands take relative paths off this binder? (`Distinct`
    /// binds string items, not nodes.)
    pub fn allows_paths(&self) -> bool {
        !matches!(self.src, BindSrc::Distinct { .. })
    }
}

/// `let $pK := item-at($dDOC<path>, index)` — a positional subscript
/// binding. `item-at` answers by *sequence order*, so any upstream
/// order violation becomes a visible value difference.
#[derive(Clone, Debug, PartialEq)]
pub struct PosLet {
    /// Corpus document index.
    pub doc: usize,
    /// Anchored path supplying the sequence.
    pub path: DocPath,
    /// 1-based position (may be out of range — then the let is empty).
    pub index: i64,
}

/// A comparison operand.
#[derive(Clone, Debug, PartialEq)]
pub enum Operand {
    /// `$bN` or `$bN<rel>`.
    Field {
        /// Binder index.
        binder: usize,
        /// Optional relative path (only on path-allowing binders).
        path: Option<RelPath>,
    },
    /// `$pK` — a positional let.
    Pos(usize),
    /// String literal from the value pool.
    Str(String),
    /// Numeric literal, rendered bare (the parser has no unary minus,
    /// so these are non-negative; negative/NaN values live in the
    /// *corpus*, not in query text).
    Num(String),
}

/// Field selector inside an `exists` block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExistsField {
    /// `$x<rel>` — path off the inner entry binder.
    Entry(RelPath),
    /// `$y` — the deep `//k` binder itself (requires `deep`).
    DeepVar,
}

/// One generated `where` conjunct.
#[derive(Clone, Debug, PartialEq)]
pub enum Pred {
    /// `L op R`.
    Cmp {
        /// Left operand.
        l: Operand,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        r: Operand,
    },
    /// `some|every $q in $dDOC<path> satisfies ($q op X [and $q op Y])`.
    Quant {
        /// `every` instead of `some`.
        universal: bool,
        /// Corpus document index of the range.
        doc: usize,
        /// Range path (may be [`DocPath::Vacuous`]).
        path: DocPath,
        /// Satisfies conjuncts, each comparing `$q` against an operand.
        cmps: Vec<(CmpOp, Operand)>,
    },
    /// `exists(let $xd := doc(…) for $x in $xd//e [, $y in $x//k]
    /// where keys… [and ineq] return $x)`.
    Exists {
        /// Corpus document index of the subquery.
        doc: usize,
        /// Add the deep `$y in $x//k` binder (the Q10 shape).
        deep: bool,
        /// Equality key conjuncts (2+ ⇒ composite key list).
        keys: Vec<(ExistsField, Operand)>,
        /// Optional band/range conjunct.
        ineq: Option<(ExistsField, CmpOp, Operand)>,
        /// Name the inner entry binder after outer binder `bN`
        /// (shadowing stress for the normalizer's scopes).
        shadow: Option<usize>,
    },
    /// `count($dDOC//e[k = KEY]) op N` — the having shape (Q6).
    CountCmp {
        /// Corpus document index.
        doc: usize,
        /// The key operand inside the step predicate.
        key: Operand,
        /// Comparison against the count.
        op: CmpOp,
        /// The count bound.
        n: i64,
    },
}

/// The return element: `<r [a="{attr}"]>{ part }…</r>`.
#[derive(Clone, Debug, PartialEq)]
pub struct Ret {
    /// Optional attribute content.
    pub attr: Option<Operand>,
    /// Element content parts (at least one).
    pub parts: Vec<Operand>,
}

/// A complete generated query.
#[derive(Clone, Debug, PartialEq)]
pub struct GenQuery {
    /// The `for` binders, in clause order.
    pub binders: Vec<Binder>,
    /// Positional subscript lets.
    pub pos_lets: Vec<PosLet>,
    /// `where` conjuncts (rendered parenthesized, joined by `and`).
    pub preds: Vec<Pred>,
    /// The return constructor.
    pub ret: Ret,
}

/// Generation limits.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Maximum `for` binders (Υ chain depth).
    pub max_binders: usize,
    /// Maximum `where` conjuncts.
    pub max_preds: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_binders: 4,
            max_preds: 3,
        }
    }
}

const CMP_OPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];
const INEQ_OPS: [CmpOp; 4] = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
const NUM_LITS: [&str; 8] = ["0", "1", "2", "3", "5", "10", "3.5", "0.0"];

fn random_op(rng: &mut StdRng) -> CmpOp {
    CMP_OPS[rng.gen_range(0..CMP_OPS.len())]
}

impl GenQuery {
    /// Generate a random query against `corpus`.
    pub fn random(rng: &mut StdRng, corpus: &Corpus, cfg: &GenConfig) -> GenQuery {
        let ndocs = corpus.docs.len();
        let mut binders = Vec::new();
        let nbind = rng.gen_range(1..=cfg.max_binders.max(1));
        // Doc-rooted (and distinct) binders each multiply the tuple
        // stream by a whole posting list; chained (`Rel`) binders only
        // fan out within one entry. Cap the wide ones so a 4-binder
        // query cannot cross-product its way to millions of matrix
        // tuples.
        let mut wide = 0usize;
        const MAX_WIDE: usize = 2;
        for i in 0..nbind {
            let path_bases: Vec<usize> = (0..binders.len())
                .filter(|&b| Binder::allows_paths(&binders[b]))
                .collect();
            let want_rel =
                i > 0 && !path_bases.is_empty() && (wide >= MAX_WIDE || rng.gen_bool(0.4));
            let src = if want_rel {
                let base = path_bases[rng.gen_range(0..path_bases.len())];
                let rel = if rng.gen_bool(0.5) {
                    RelBind::Groups
                } else {
                    RelBind::DeepKs
                };
                BindSrc::Rel { base, rel }
            } else if wide >= MAX_WIDE {
                // No chainable base and the wide budget is spent: stop
                // adding binders.
                break;
            } else if rng.gen_bool(0.2) {
                wide += 1;
                BindSrc::Distinct {
                    doc: rng.gen_range(0..ndocs),
                    path: DocPath::random_leaf(rng),
                }
            } else {
                let path = if i == 0 {
                    // The driving binder ranges over entries so chained
                    // binders and field operands have something to
                    // stand on.
                    DocPath::Entries
                } else {
                    DocPath::random(rng)
                };
                wide += 1;
                BindSrc::Doc {
                    doc: rng.gen_range(0..ndocs),
                    path,
                }
            };
            binders.push(Binder { src });
        }

        let npos = rng.gen_range(0usize..=2);
        let pos_lets = (0..npos)
            .map(|_| PosLet {
                doc: rng.gen_range(0..ndocs),
                path: DocPath::random_leaf(rng),
                index: rng.gen_range(1i64..=5),
            })
            .collect::<Vec<_>>();

        let mut q = GenQuery {
            binders,
            pos_lets,
            preds: Vec::new(),
            ret: Ret {
                attr: None,
                parts: Vec::new(),
            },
        };

        let npred = rng.gen_range(0..=cfg.max_preds);
        for _ in 0..npred {
            let p = q.random_pred(rng, ndocs);
            q.preds.push(p);
        }

        let attr = rng.gen_bool(0.3).then(|| q.random_operand(rng, true));
        let n = rng.gen_range(1usize..=2);
        let parts = (0..n)
            .map(|i| {
                if i == 0 && rng.gen_bool(0.7) {
                    // Prefer returning the last binder — keeps most
                    // results non-degenerate.
                    q.field_of(rng, q.binders.len() - 1)
                } else {
                    q.random_operand(rng, true)
                }
            })
            .collect();
        q.ret = Ret { attr, parts };
        q
    }

    /// `$bN` or `$bN<rel>` for binder `i`.
    fn field_of(&self, rng: &mut StdRng, i: usize) -> Operand {
        let path =
            (self.binders[i].allows_paths() && rng.gen_bool(0.6)).then(|| RelPath::random(rng));
        Operand::Field { binder: i, path }
    }

    fn random_operand(&self, rng: &mut StdRng, allow_pos: bool) -> Operand {
        let roll = rng.gen_range(0u32..100);
        if roll < 50 {
            let i = rng.gen_range(0..self.binders.len());
            self.field_of(rng, i)
        } else if roll < 65 && allow_pos && !self.pos_lets.is_empty() {
            Operand::Pos(rng.gen_range(0..self.pos_lets.len()))
        } else if roll < 85 {
            Operand::Str(pool_value(rng))
        } else {
            Operand::Num(NUM_LITS[rng.gen_range(0..NUM_LITS.len())].to_string())
        }
    }

    fn random_pred(&self, rng: &mut StdRng, ndocs: usize) -> Pred {
        match rng.gen_range(0u32..100) {
            0..=34 => Pred::Cmp {
                l: self.random_operand(rng, true),
                op: random_op(rng),
                r: self.random_operand(rng, true),
            },
            35..=59 => {
                let n = rng.gen_range(1usize..=2);
                Pred::Quant {
                    universal: rng.gen_bool(0.4),
                    doc: rng.gen_range(0..ndocs),
                    path: DocPath::random(rng),
                    cmps: (0..n)
                        .map(|_| (random_op(rng), self.random_operand(rng, true)))
                        .collect(),
                }
            }
            60..=89 => {
                let deep = rng.gen_bool(0.3);
                let nkeys = rng.gen_range(1usize..=2);
                let key_field = |rng: &mut StdRng| {
                    if deep && rng.gen_bool(0.5) {
                        ExistsField::DeepVar
                    } else {
                        ExistsField::Entry(RelPath::random(rng))
                    }
                };
                Pred::Exists {
                    doc: rng.gen_range(0..ndocs),
                    deep,
                    keys: (0..nkeys)
                        .map(|_| (key_field(rng), self.random_operand(rng, true)))
                        .collect(),
                    ineq: rng.gen_bool(0.4).then(|| {
                        (
                            ExistsField::Entry(if rng.gen_bool(0.5) {
                                RelPath::Num
                            } else {
                                RelPath::IdAttr
                            }),
                            INEQ_OPS[rng.gen_range(0..INEQ_OPS.len())],
                            Operand::Num(NUM_LITS[rng.gen_range(0..NUM_LITS.len())].to_string()),
                        )
                    }),
                    shadow: (rng.gen_bool(0.25)).then(|| rng.gen_range(0..self.binders.len())),
                }
            }
            _ => Pred::CountCmp {
                doc: rng.gen_range(0..ndocs),
                key: self.random_operand(rng, false),
                op: [CmpOp::Ge, CmpOp::Gt, CmpOp::Eq, CmpOp::Le][rng.gen_range(0..4)],
                n: rng.gen_range(0i64..=3),
            },
        }
    }

    /// Number of top-level `for` binders (the shrink target the
    /// acceptance criteria bound).
    pub fn binder_count(&self) -> usize {
        self.binders.len()
    }

    /// Corpus documents the rendered query will reference, in index
    /// order.
    pub fn used_docs(&self) -> Vec<usize> {
        let mut used = Vec::new();
        let mut mark = |d: usize| {
            if !used.contains(&d) {
                used.push(d);
            }
        };
        for b in &self.binders {
            match b.src {
                BindSrc::Doc { doc, .. } | BindSrc::Distinct { doc, .. } => mark(doc),
                BindSrc::Rel { .. } => {}
            }
        }
        for p in &self.pos_lets {
            mark(p.doc);
        }
        for p in &self.preds {
            match p {
                Pred::Quant { doc, .. } | Pred::Exists { doc, .. } | Pred::CountCmp { doc, .. } => {
                    mark(*doc)
                }
                Pred::Cmp { .. } => {}
            }
        }
        used.sort_unstable();
        used
    }

    /// Render with the standard naming scheme.
    pub fn render(&self, corpus: &Corpus) -> String {
        self.render_with(corpus, &Names::standard())
    }

    /// Render with every binder alpha-renamed (same structure, fresh
    /// names) — for the fingerprint alpha-equivalence test.
    pub fn render_renamed(&self, corpus: &Corpus) -> String {
        self.render_with(corpus, &Names::renamed())
    }

    fn render_with(&self, corpus: &Corpus, nm: &Names) -> String {
        let mut s = String::new();
        for &d in &self.used_docs() {
            s.push_str(&format!(
                "let {} := doc(\"{}\")\n",
                nm.doc(d),
                corpus.docs[d].uri
            ));
        }
        for (i, p) in self.pos_lets.iter().enumerate() {
            s.push_str(&format!(
                "let {} := item-at({}{}, {})\n",
                nm.pos(i),
                nm.doc(p.doc),
                p.path.render(),
                p.index
            ));
        }
        s.push_str("for ");
        for (i, b) in self.binders.iter().enumerate() {
            if i > 0 {
                s.push_str(",\n    ");
            }
            let range = match &b.src {
                BindSrc::Doc { doc, path } => format!("{}{}", nm.doc(*doc), path.render()),
                BindSrc::Rel { base, rel } => {
                    let tail = match rel {
                        RelBind::Groups => "/g",
                        RelBind::DeepKs => "//k",
                    };
                    format!("{}{}", nm.binder(*base), tail)
                }
                BindSrc::Distinct { doc, path } => {
                    format!("distinct-values({}{})", nm.doc(*doc), path.render())
                }
            };
            s.push_str(&format!("{} in {}", nm.binder(i), range));
        }
        s.push('\n');
        if !self.preds.is_empty() {
            s.push_str("where ");
            for (i, p) in self.preds.iter().enumerate() {
                if i > 0 {
                    s.push_str("\n  and ");
                }
                s.push_str(&self.render_pred(p, i, corpus, nm));
            }
            s.push('\n');
        }
        s.push_str("return <r");
        if let Some(a) = &self.ret.attr {
            s.push_str(&format!(" a=\"{{ {} }}\"", self.render_operand(a, nm)));
        }
        s.push('>');
        for part in &self.ret.parts {
            s.push_str(&format!("{{ {} }}", self.render_operand(part, nm)));
        }
        s.push_str("</r>");
        s
    }

    fn render_operand(&self, o: &Operand, nm: &Names) -> String {
        match o {
            Operand::Field { binder, path } => match path {
                Some(p) => format!("{}{}", nm.binder(*binder), p.render()),
                None => nm.binder(*binder),
            },
            Operand::Pos(i) => nm.pos(*i),
            Operand::Str(v) => format!("\"{v}\""),
            Operand::Num(v) => v.clone(),
        }
    }

    fn render_pred(&self, p: &Pred, idx: usize, corpus: &Corpus, nm: &Names) -> String {
        match p {
            Pred::Cmp { l, op, r } => format!(
                "({} {} {})",
                self.render_operand(l, nm),
                cmp_kw(*op),
                self.render_operand(r, nm)
            ),
            Pred::Quant {
                universal,
                doc,
                path,
                cmps,
            } => {
                let var = nm.quant(idx);
                let body = cmps
                    .iter()
                    .map(|(op, o)| format!("{var} {} {}", cmp_kw(*op), self.render_operand(o, nm)))
                    .collect::<Vec<_>>()
                    .join(" and ");
                format!(
                    "({} {var} in {}{} satisfies ({body}))",
                    if *universal { "every" } else { "some" },
                    nm.doc(*doc),
                    path.render()
                )
            }
            Pred::Exists {
                doc,
                deep,
                keys,
                ineq,
                shadow,
            } => {
                let xd = nm.inner_doc(idx);
                let x = match shadow {
                    Some(b) => nm.binder(*b),
                    None => nm.inner(idx),
                };
                let y = nm.deep(idx);
                let mut fors = format!("for {x} in {xd}//e");
                if *deep {
                    fors.push_str(&format!(", {y} in {x}//k"));
                }
                let field = |f: &ExistsField| match f {
                    ExistsField::Entry(r) => format!("{x}{}", r.render()),
                    ExistsField::DeepVar => y.clone(),
                };
                let mut conj: Vec<String> = keys
                    .iter()
                    .map(|(f, o)| format!("{} = {}", field(f), self.render_operand(o, nm)))
                    .collect();
                if let Some((f, op, o)) = ineq {
                    conj.push(format!(
                        "{} {} {}",
                        field(f),
                        cmp_kw(*op),
                        self.render_operand(o, nm)
                    ));
                }
                format!(
                    "exists(let {xd} := doc(\"{}\") {fors} where {} return {x})",
                    corpus.docs[*doc].uri,
                    conj.join(" and ")
                )
            }
            Pred::CountCmp { doc, key, op, n } => format!(
                "(count({}//e[k = {}]) {} {n})",
                nm.doc(*doc),
                self.render_operand(key, nm),
                cmp_kw(*op)
            ),
        }
    }
}

fn cmp_kw(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

/// Naming scheme for rendering. The renamed scheme maps every binder
/// class to a disjoint prefix, so the two renderings of one model are
/// alpha-equivalent by construction.
struct Names {
    prefix: &'static str,
}

impl Names {
    fn standard() -> Names {
        Names { prefix: "" }
    }

    fn renamed() -> Names {
        Names { prefix: "u" }
    }

    fn doc(&self, i: usize) -> String {
        format!("${}d{i}", self.prefix)
    }

    fn pos(&self, i: usize) -> String {
        format!("${}p{i}", self.prefix)
    }

    fn binder(&self, i: usize) -> String {
        format!("${}b{i}", self.prefix)
    }

    fn quant(&self, i: usize) -> String {
        format!("${}q{i}", self.prefix)
    }

    fn inner(&self, i: usize) -> String {
        format!("${}x{i}", self.prefix)
    }

    fn inner_doc(&self, i: usize) -> String {
        format!("${}w{i}", self.prefix)
    }

    fn deep(&self, i: usize) -> String {
        format!("${}y{i}", self.prefix)
    }
}
