//! `fuzz` — adversarial differential fuzzing oracle over the NAL
//! algebra.
//!
//! Randomized query + corpus + update-script generation paired with a
//! differential execution matrix: scan vs indexed compilation ×
//! materializing vs streaming executor × parallel degrees {1, 2, 8} ×
//! pre/post updates under both index-maintenance modes, plus
//! plan-equivalence (every rewrite vs the nested plan) and
//! cost-model convertibility agreement. See `docs/ARCHITECTURE.md`
//! ("Differential fuzzing") for the full matrix and the reproduction
//! workflow.
//!
//! Entry points:
//!
//! * [`run_fuzz`] — generate-and-check a seeded batch; on failure,
//!   shrink to a minimal reproducer and return a [`FuzzFailure`] whose
//!   `Display` is a copy-pasteable regression snippet.
//! * [`oracle::check_case`] / [`repro::parse`] — replay committed
//!   snippets.
//! * [`env_seed`] / [`env_cases`] — `XQD_FUZZ_SEED` / `XQD_FUZZ_CASES`
//!   overrides used by the test binaries and the bench harness.

#![warn(missing_docs)]

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod repro;
pub mod shrink;
pub mod update;

pub use gen::GenConfig;
pub use oracle::{check_case, Failure, GenCase};

/// The fixed seed used when `XQD_FUZZ_SEED` is unset — also the seed CI
/// pins for the fuzz-smoke step.
pub const DEFAULT_SEED: u64 = 0xD1FF;

/// Shrink budget (oracle invocations) spent minimizing a failing case.
pub const SHRINK_BUDGET: usize = 400;

/// Read the fuzz seed from `XQD_FUZZ_SEED`, or `default`.
pub fn env_seed(default: u64) -> u64 {
    std::env::var("XQD_FUZZ_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Read the case budget from `XQD_FUZZ_CASES`, or `default`.
pub fn env_cases(default: usize) -> usize {
    std::env::var("XQD_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A fuzz run failure: the original and shrunk case, the oracle's
/// verdict, and the serialized repro snippet.
#[derive(Debug)]
pub struct FuzzFailure {
    /// The per-case seed (pass as `XQD_FUZZ_SEED` with
    /// `XQD_FUZZ_CASES=1` to regenerate the unshrunk case).
    pub case_seed: u64,
    /// Index of the case within the batch.
    pub case_index: usize,
    /// Binder count before shrinking.
    pub original_binders: usize,
    /// The minimized case.
    pub shrunk: GenCase,
    /// The oracle's verdict on the minimized case.
    pub failure: Failure,
    /// The copy-pasteable repro snippet (commit under
    /// `tests/fuzz_corpus/` to pin the regression).
    pub snippet: String,
}

impl std::fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "differential fuzz case #{} (seed {}) failed: {}",
            self.case_index, self.case_seed, self.failure
        )?;
        writeln!(
            f,
            "reproduce the unshrunk case with: XQD_FUZZ_SEED={} XQD_FUZZ_CASES=1",
            self.case_seed
        )?;
        writeln!(
            f,
            "shrunk reproducer ({} of {} binders kept) — save as tests/fuzz_corpus/<name>.repro:",
            self.shrunk.query.binder_count(),
            self.original_binders
        )?;
        writeln!(f, "----8<----")?;
        write!(f, "{}", self.snippet)?;
        writeln!(f, "---->8----")
    }
}

/// Statistics from a passing run.
#[derive(Clone, Copy, Debug, Default)]
pub struct FuzzReport {
    /// Cases generated and checked.
    pub cases: usize,
    /// Cases whose update script was non-empty.
    pub with_updates: usize,
}

/// Generate and check `cases` cases starting at `seed` (case `i` uses
/// seed `seed + i`, so any failure is reproducible in isolation). On
/// the first failure, shrink it and return the minimized
/// [`FuzzFailure`].
pub fn run_fuzz(seed: u64, cases: usize, cfg: &GenConfig) -> Result<FuzzReport, Box<FuzzFailure>> {
    let mut report = FuzzReport::default();
    for i in 0..cases {
        let case_seed = seed.wrapping_add(i as u64);
        let case = GenCase::random(case_seed, cfg);
        report.cases += 1;
        report.with_updates += usize::from(!case.updates.is_empty());
        if let Err(first) = oracle::check_case(&case) {
            let original_binders = case.query.binder_count();
            let shrunk =
                shrink::shrink(case, SHRINK_BUDGET, &mut |c| oracle::check_case(c).is_err());
            let failure = oracle::check_case(&shrunk).err().unwrap_or(first);
            let snippet = repro::serialize(&shrunk, case_seed);
            return Err(Box::new(FuzzFailure {
                case_seed,
                case_index: i,
                original_binders,
                shrunk,
                failure,
                snippet,
            }));
        }
    }
    Ok(report)
}
