//! The differential oracle: run one generated case through the full
//! execution matrix and demand agreement everywhere.
//!
//! For every enumerated plan (nested + rewrites, capped) and every
//! catalog state (pre-update and post-update, under both
//! `MaintenanceMode::Delta` and `Rebuild`):
//!
//! * scan vs indexed compilation × materializing vs streaming executor
//!   must be **byte-identical** in Ξ output and equal in rows;
//! * the indexed plan's `index_lookups`/`index_hits` must be
//!   executor-identical;
//! * the parallel streaming executor at degrees {1, 2, 8} must match
//!   the serial streaming run exactly — output, rows, and *full*
//!   [`nal::Metrics`] equality — over both the scan and indexed plans;
//! * every rewritten plan must produce the same reference output as the
//!   nested plan (the paper's equivalences, checked end to end);
//! * Delta and Rebuild maintenance must be observationally identical;
//! * every index join the engine accepted must be priceable by the cost
//!   model (`recipe_probe_cost` — "never price what the engine
//!   declines", checked in the accepting direction).

use rand::rngs::StdRng;
use rand::SeedableRng;
use xmldb::{Catalog, MaintenanceMode};

use crate::corpus::Corpus;
use crate::gen::{GenConfig, GenQuery};
use crate::update::{apply_script, random_script, UpdateOp};

/// Parallel degrees every case is executed at.
pub const WORKERS: [usize; 3] = [1, 2, 8];

/// Cap on enumerated plans checked per case (the first is always the
/// nested reference plan).
pub const MAX_PLANS: usize = 3;

/// One complete generated case.
#[derive(Clone, Debug, PartialEq)]
pub struct GenCase {
    /// The data.
    pub corpus: Corpus,
    /// The query model.
    pub query: GenQuery,
    /// The update script applied between the pre and post phases.
    pub updates: Vec<UpdateOp>,
}

impl GenCase {
    /// Generate the case for one per-case seed (deterministic — the
    /// same seed always yields the same case).
    pub fn random(case_seed: u64, cfg: &GenConfig) -> GenCase {
        let mut rng = StdRng::seed_from_u64(case_seed);
        let corpus = Corpus::random(&mut rng);
        let query = GenQuery::random(&mut rng, &corpus, cfg);
        let updates = random_script(&mut rng, &corpus, 4);
        GenCase {
            corpus,
            query,
            updates,
        }
    }

    /// The rendered query text.
    pub fn query_text(&self) -> String {
        self.query.render(&self.corpus)
    }
}

/// A matrix disagreement (or a compile/execute breakage).
#[derive(Clone, Debug)]
pub struct Failure {
    /// Which phase broke: `compile`, `pre`, `post`, `delta-vs-rebuild`,
    /// `plan-equivalence`, `convertibility`.
    pub phase: String,
    /// Plan label (from `unnest::enumerate_plans`) when applicable.
    pub plan: String,
    /// The matrix cell, e.g. `idx/stream` or `scan/parallel@8`.
    pub cell: String,
    /// Human-readable detail (truncated outputs).
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] plan `{}` cell `{}`: {}",
            self.phase, self.plan, self.cell, self.detail
        )
    }
}

fn clip(s: &str) -> String {
    const LIMIT: usize = 300;
    if s.len() <= LIMIT {
        s.to_string()
    } else {
        format!("{}… ({} bytes)", &s[..LIMIT], s.len())
    }
}

fn fail(phase: &str, plan: &str, cell: &str, detail: String) -> Failure {
    Failure {
        phase: phase.to_string(),
        plan: plan.to_string(),
        cell: cell.to_string(),
        detail,
    }
}

/// Run the full matrix for one plan expression against one catalog
/// state; returns the reference (scan × materializing) Ξ output.
fn check_matrix(
    phase: &str,
    plan_label: &str,
    expr: &nal::Expr,
    cat: &Catalog,
) -> Result<String, Failure> {
    let scan_plan = engine::compile(expr);
    let idx_plan = engine::compile_indexed(expr, cat);
    let reference = engine::run_compiled(&scan_plan, cat).map_err(|e| {
        fail(
            phase,
            plan_label,
            "scan/mat",
            format!("execution failed: {e}"),
        )
    })?;

    let mut cells: Vec<(&str, engine::QueryResult)> = Vec::new();
    let scan_stream = engine::run_streaming_compiled(&scan_plan, cat).map_err(|e| {
        fail(
            phase,
            plan_label,
            "scan/stream",
            format!("execution failed: {e}"),
        )
    })?;
    let idx_mat = engine::run_compiled(&idx_plan, cat).map_err(|e| {
        fail(
            phase,
            plan_label,
            "idx/mat",
            format!("execution failed: {e}"),
        )
    })?;
    let idx_stream = engine::run_streaming_compiled(&idx_plan, cat).map_err(|e| {
        fail(
            phase,
            plan_label,
            "idx/stream",
            format!("execution failed: {e}"),
        )
    })?;

    if idx_mat.metrics.index_lookups != idx_stream.metrics.index_lookups
        || idx_mat.metrics.index_hits != idx_stream.metrics.index_hits
    {
        return Err(fail(
            phase,
            plan_label,
            "idx/mat-vs-stream",
            format!(
                "index metrics diverge across executors: mat {}/{} vs stream {}/{}",
                idx_mat.metrics.index_lookups,
                idx_mat.metrics.index_hits,
                idx_stream.metrics.index_lookups,
                idx_stream.metrics.index_hits
            ),
        ));
    }

    cells.push(("scan/stream", scan_stream));
    cells.push(("idx/mat", idx_mat));
    cells.push(("idx/stream", idx_stream));
    for (cell, res) in &cells {
        if res.output != reference.output || res.rows != reference.rows {
            return Err(fail(
                phase,
                plan_label,
                cell,
                format!(
                    "diverges from scan/mat reference:\n  reference: {}\n  cell:      {}",
                    clip(&reference.output),
                    clip(&res.output)
                ),
            ));
        }
    }

    // Parallel streaming at every degree, over both compilations; the
    // serial streaming run of the same plan is the yardstick, and the
    // comparison is *full* metrics equality (worker-summed counters
    // must be indistinguishable from serial).
    for (mode, plan, serial) in [
        ("scan", &scan_plan, &cells[0].1),
        ("idx", &idx_plan, &cells[2].1),
    ] {
        let par_plan = engine::apply_parallel(plan);
        for workers in WORKERS {
            let cell = format!("{mode}/parallel@{workers}");
            let par = engine::run_streaming_parallel(&par_plan, cat, workers)
                .map_err(|e| fail(phase, plan_label, &cell, format!("execution failed: {e}")))?;
            if par.output != serial.output || par.rows != serial.rows {
                return Err(fail(
                    phase,
                    plan_label,
                    &cell,
                    format!(
                        "parallel output diverges from serial streaming:\n  serial:   {}\n  parallel: {}",
                        clip(&serial.output),
                        clip(&par.output)
                    ),
                ));
            }
            if par.metrics != serial.metrics {
                return Err(fail(
                    phase,
                    plan_label,
                    &cell,
                    format!(
                        "worker-summed metrics diverge from serial streaming:\n  serial:   {:?}\n  parallel: {:?}",
                        serial.metrics, par.metrics
                    ),
                ));
            }
        }
    }

    // Convertibility agreement: every access recipe the engine accepted
    // must be priceable by the cost model.
    let mut unpriced: Vec<String> = Vec::new();
    let mut cm = unnest::CostModel::with_indexes(cat, true);
    engine::for_each_access_path(&idx_plan, &mut |path| {
        if let engine::AccessPathRef::Join(recipe) = path {
            if cm.recipe_probe_cost(recipe).is_none() {
                unpriced.push(format!("{}:{:?}", recipe.uri, recipe.pattern));
            }
        }
    });
    if !unpriced.is_empty() {
        return Err(fail(
            "convertibility",
            plan_label,
            "idx",
            format!(
                "engine accepted index joins the cost model cannot price: {}",
                unpriced.join("; ")
            ),
        ));
    }

    Ok(reference.output)
}

/// Check one case end to end. Usable both on generated cases and on
/// replayed repro snippets (which carry query text instead of a model)
/// via [`check_parts`].
pub fn check_case(case: &GenCase) -> Result<(), Failure> {
    check_parts(&case.corpus, &case.query_text(), &case.updates)
}

/// Check a (corpus, query text, update script) triple end to end.
pub fn check_parts(corpus: &Corpus, query: &str, updates: &[UpdateOp]) -> Result<(), Failure> {
    let mut cat_delta = corpus.build_catalog(MaintenanceMode::Delta);
    let mut cat_rebuild = corpus.build_catalog(MaintenanceMode::Rebuild);

    let expr = xquery::compile(query, &cat_delta)
        .map_err(|e| fail("compile", "-", "-", format!("query does not compile: {e}")))?;
    let mut plans = unnest::enumerate_plans(&expr, &cat_delta);
    plans.truncate(MAX_PLANS);

    for phase in ["pre", "post"] {
        if phase == "post" {
            apply_script(&mut cat_delta, corpus, updates);
            apply_script(&mut cat_rebuild, corpus, updates);
        }
        let mut nested_output: Option<String> = None;
        for plan in &plans {
            let out_delta = check_matrix(phase, &plan.label, &plan.expr, &cat_delta)?;
            let out_rebuild = check_matrix(phase, &plan.label, &plan.expr, &cat_rebuild)?;
            if out_delta != out_rebuild {
                return Err(fail(
                    "delta-vs-rebuild",
                    &plan.label,
                    phase,
                    format!(
                        "maintenance modes disagree:\n  delta:   {}\n  rebuild: {}",
                        clip(&out_delta),
                        clip(&out_rebuild)
                    ),
                ));
            }
            match &nested_output {
                None => nested_output = Some(out_delta),
                Some(first) => {
                    if *first != out_delta {
                        return Err(fail(
                            "plan-equivalence",
                            &plan.label,
                            phase,
                            format!(
                                "rewrite diverges from the nested plan:\n  nested:  {}\n  rewrite: {}",
                                clip(first),
                                clip(&out_delta)
                            ),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}
