//! Copy-pasteable repro snippets.
//!
//! Every oracle failure serializes its (shrunk) case to a small
//! line-oriented text block that can be committed as regression data
//! (`tests/fuzz_corpus/*.repro`) and replayed without the generator:
//! the snippet carries the *rendered* query text, the corpus, and the
//! update script verbatim.
//!
//! ```text
//! # fuzz-repro v1 seed=42
//! doc fz0.xml
//! entry id=1 keys=abc,an v=NaN n=3 deep=-0:10
//! update delete doc=0 entry=2
//! query
//! let $d0 := doc("fz0.xml")
//! for $b0 in $d0//e
//! return <r>{ $b0 }</r>
//! ```
//!
//! Field values come from the corpus pool, which contains no spaces,
//! commas, colons, or `=`, so the flat `key=value` token format is
//! unambiguous. A `keys=`/`deep=` with empty payload after at least one
//! separator still round-trips (`keys=,` is two empty keys); zero keys
//! never occurs — the generator always emits at least one.

use crate::corpus::{Corpus, Entry, GenDoc};
use crate::oracle::{check_parts, Failure, GenCase};
use crate::update::UpdateOp;

/// Serialize a case (with the seed that produced it) to snippet text.
pub fn serialize(case: &GenCase, seed: u64) -> String {
    let mut s = format!("# fuzz-repro v1 seed={seed}\n");
    for d in &case.corpus.docs {
        s.push_str(&format!("doc {}\n", d.uri));
        for e in &d.entries {
            s.push_str(&format!("entry {}\n", entry_fields(e)));
        }
    }
    for op in &case.updates {
        match op {
            UpdateOp::Duplicate { doc, entry } => {
                s.push_str(&format!("update duplicate doc={doc} entry={entry}\n"));
            }
            UpdateOp::InsertFresh { doc, entry, fresh } => {
                s.push_str(&format!(
                    "update insert doc={doc} entry={entry} {}\n",
                    entry_fields(fresh)
                ));
            }
            UpdateOp::Delete { doc, entry } => {
                s.push_str(&format!("update delete doc={doc} entry={entry}\n"));
            }
            UpdateOp::ReplaceText { doc, entry, value } => {
                s.push_str(&format!(
                    "update replace doc={doc} entry={entry} value={value}\n"
                ));
            }
        }
    }
    s.push_str("query\n");
    s.push_str(&case.query_text());
    s.push('\n');
    s
}

fn entry_fields(e: &Entry) -> String {
    format!(
        "id={} keys={} v={} n={} deep={}",
        e.id,
        e.keys.join(","),
        e.v,
        e.n,
        e.deep
            .iter()
            .map(|(k, n)| format!("{k}:{n}"))
            .collect::<Vec<_>>()
            .join(",")
    )
}

/// A parsed repro snippet: corpus + updates + query text (no query
/// model — replay goes straight through `xquery::compile`).
#[derive(Clone, Debug)]
pub struct Repro {
    /// The seed recorded in the header (informational).
    pub seed: u64,
    /// The corpus.
    pub corpus: Corpus,
    /// The update script.
    pub updates: Vec<UpdateOp>,
    /// The query text.
    pub query: String,
}

impl Repro {
    /// Re-run the full differential matrix on this snippet.
    pub fn check(&self) -> Result<(), Failure> {
        check_parts(&self.corpus, &self.query, &self.updates)
    }
}

fn field<'a>(tokens: &'a [&str], key: &str) -> Result<&'a str, String> {
    let prefix = format!("{key}=");
    tokens
        .iter()
        .find_map(|t| t.strip_prefix(&prefix))
        .ok_or_else(|| format!("missing field `{key}`"))
}

fn parse_entry(tokens: &[&str]) -> Result<Entry, String> {
    let keys_raw = field(tokens, "keys")?;
    let deep_raw = field(tokens, "deep")?;
    Ok(Entry {
        id: field(tokens, "id")?
            .parse()
            .map_err(|e| format!("bad id: {e}"))?,
        keys: keys_raw.split(',').map(str::to_string).collect(),
        v: field(tokens, "v")?.to_string(),
        n: field(tokens, "n")?.to_string(),
        deep: if deep_raw.is_empty() {
            Vec::new()
        } else {
            deep_raw
                .split(',')
                .map(|pair| {
                    let (k, n) = pair
                        .split_once(':')
                        .ok_or_else(|| format!("bad deep pair `{pair}`"))?;
                    Ok((k.to_string(), n.to_string()))
                })
                .collect::<Result<Vec<_>, String>>()?
        },
    })
}

fn parse_usize(tokens: &[&str], key: &str) -> Result<usize, String> {
    field(tokens, key)?
        .parse()
        .map_err(|e| format!("bad {key}: {e}"))
}

/// Parse snippet text back into a replayable [`Repro`].
pub fn parse(text: &str) -> Result<Repro, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty snippet")?;
    let seed = header
        .split_whitespace()
        .find_map(|t| t.strip_prefix("seed="))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    if !header.starts_with("# fuzz-repro v1") {
        return Err(format!("unrecognized header: {header}"));
    }
    let mut corpus = Corpus { docs: Vec::new() };
    let mut updates = Vec::new();
    let mut query = String::new();
    let mut in_query = false;
    for line in lines {
        if in_query {
            if !query.is_empty() {
                query.push('\n');
            }
            query.push_str(line);
            continue;
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "doc" => {
                let uri = tokens.get(1).ok_or("doc line without uri")?;
                corpus.docs.push(GenDoc {
                    uri: uri.to_string(),
                    entries: Vec::new(),
                });
            }
            "entry" => {
                let d = corpus.docs.last_mut().ok_or("entry before any doc line")?;
                d.entries.push(parse_entry(&tokens[1..])?);
            }
            "update" => {
                let kind = *tokens.get(1).ok_or("update line without kind")?;
                let rest = &tokens[2..];
                let doc = parse_usize(rest, "doc")?;
                let entry = parse_usize(rest, "entry")?;
                updates.push(match kind {
                    "duplicate" => UpdateOp::Duplicate { doc, entry },
                    "insert" => UpdateOp::InsertFresh {
                        doc,
                        entry,
                        fresh: parse_entry(rest)?,
                    },
                    "delete" => UpdateOp::Delete { doc, entry },
                    "replace" => UpdateOp::ReplaceText {
                        doc,
                        entry,
                        value: field(rest, "value")?.to_string(),
                    },
                    other => return Err(format!("unknown update kind `{other}`")),
                });
            }
            "query" => in_query = true,
            other => return Err(format!("unrecognized line: {other} …")),
        }
    }
    if corpus.docs.is_empty() {
        return Err("snippet has no documents".to_string());
    }
    if query.trim().is_empty() {
        return Err("snippet has no query".to_string());
    }
    Ok(Repro {
        seed,
        corpus,
        updates,
        query,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenConfig;
    use crate::oracle::GenCase;

    #[test]
    fn snippets_round_trip() {
        for seed in 0..30u64 {
            let case = GenCase::random(seed, &GenConfig::default());
            let text = serialize(&case, seed);
            let repro = parse(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
            assert_eq!(repro.seed, seed);
            assert_eq!(repro.corpus, case.corpus, "seed {seed} corpus");
            assert_eq!(repro.updates, case.updates, "seed {seed} updates");
            assert_eq!(repro.query, case.query_text(), "seed {seed} query");
        }
    }
}
