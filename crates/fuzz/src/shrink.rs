//! Greedy case minimization: once the oracle flags a case, strip it
//! down — fewer updates, fewer predicates, fewer binders, smaller
//! corpus — re-running the oracle after every candidate edit and
//! keeping any edit that still fails. The result is the small
//! reproducer the failure message prints.

use crate::corpus::Corpus;
use crate::gen::{BindSrc, ExistsField, GenQuery, Operand, Pred, RelPath};
use crate::oracle::GenCase;

/// Visit every operand of the query mutably.
fn map_operands(q: &mut GenQuery, f: &mut impl FnMut(&mut Operand)) {
    for p in &mut q.preds {
        match p {
            Pred::Cmp { l, r, .. } => {
                f(l);
                f(r);
            }
            Pred::Quant { cmps, .. } => {
                for (_, o) in cmps {
                    f(o);
                }
            }
            Pred::Exists { keys, ineq, .. } => {
                for (_, o) in keys {
                    f(o);
                }
                if let Some((_, _, o)) = ineq {
                    f(o);
                }
            }
            Pred::CountCmp { key, .. } => f(key),
        }
    }
    if let Some(a) = &mut q.ret.attr {
        f(a);
    }
    for o in &mut q.ret.parts {
        f(o);
    }
}

fn uses_pos(q: &GenQuery, i: usize) -> bool {
    let mut used = false;
    let mut probe = q.clone();
    map_operands(&mut probe, &mut |o| {
        if matches!(o, Operand::Pos(j) if *j == i) {
            used = true;
        }
    });
    used
}

/// Remove the last binder, retargeting any reference to it at the new
/// last binder. Returns `None` when only one binder remains.
fn without_last_binder(case: &GenCase) -> Option<GenCase> {
    let n = case.query.binders.len();
    if n < 2 {
        return None;
    }
    let last = n - 1;
    let new_last = n - 2;
    let mut c = case.clone();
    c.query.binders.pop();
    let allows = c.query.binders[new_last].allows_paths();
    map_operands(&mut c.query, &mut |o| {
        if let Operand::Field { binder, path } = o {
            if *binder == last {
                *binder = new_last;
                if !allows {
                    *path = None;
                }
            }
        }
    });
    for p in &mut c.query.preds {
        if let Pred::Exists { shadow, .. } = p {
            if *shadow == Some(last) {
                *shadow = None;
            }
        }
    }
    Some(c)
}

/// Drop corpus document `d`, remapping every higher document index in
/// the query and update script down by one. Only valid when the query
/// does not reference `d`.
fn without_doc(case: &GenCase, d: usize) -> Option<GenCase> {
    if case.corpus.docs.len() < 2 || case.query.used_docs().contains(&d) {
        return None;
    }
    let mut c = case.clone();
    c.corpus.docs.remove(d);
    let remap = |doc: &mut usize| {
        if *doc > d {
            *doc -= 1;
        } else if *doc == d {
            *doc = 0;
        }
    };
    for b in &mut c.query.binders {
        match &mut b.src {
            BindSrc::Doc { doc, .. } | BindSrc::Distinct { doc, .. } => remap(doc),
            BindSrc::Rel { .. } => {}
        }
    }
    for p in &mut c.query.pos_lets {
        remap(&mut p.doc);
    }
    for p in &mut c.query.preds {
        match p {
            Pred::Quant { doc, .. } | Pred::Exists { doc, .. } | Pred::CountCmp { doc, .. } => {
                remap(doc)
            }
            Pred::Cmp { .. } => {}
        }
    }
    for op in &mut c.updates {
        match op {
            crate::update::UpdateOp::Duplicate { doc, .. }
            | crate::update::UpdateOp::InsertFresh { doc, .. }
            | crate::update::UpdateOp::Delete { doc, .. }
            | crate::update::UpdateOp::ReplaceText { doc, .. } => remap(doc),
        }
    }
    Some(c)
}

/// All candidate one-step simplifications of a case, most aggressive
/// first within each class.
fn candidates(case: &GenCase) -> Vec<GenCase> {
    let mut out = Vec::new();

    // 1. Drop update ops.
    for i in 0..case.updates.len() {
        let mut c = case.clone();
        c.updates.remove(i);
        out.push(c);
    }

    // 2. Drop predicates.
    for i in 0..case.query.preds.len() {
        let mut c = case.clone();
        c.query.preds.remove(i);
        out.push(c);
    }

    // 3. Drop binders from the tail (the ≤ 3-binder target).
    if let Some(c) = without_last_binder(case) {
        out.push(c);
    }

    // 4. Simplify the return element.
    if case.query.ret.attr.is_some() || case.query.ret.parts.len() > 1 {
        let mut c = case.clone();
        c.query.ret.attr = None;
        c.query.ret.parts.truncate(1);
        out.push(c);
    }
    {
        let simple = Operand::Field {
            binder: case.query.binders.len() - 1,
            path: None,
        };
        if case.query.ret.parts.first() != Some(&simple) || case.query.ret.attr.is_some() {
            let mut c = case.clone();
            c.query.ret.attr = None;
            c.query.ret.parts = vec![simple];
            out.push(c);
        }
    }

    // 5. Simplify predicates in place.
    for i in 0..case.query.preds.len() {
        match &case.query.preds[i] {
            Pred::Quant { cmps, .. } if cmps.len() > 1 => {
                let mut c = case.clone();
                if let Pred::Quant { cmps, .. } = &mut c.query.preds[i] {
                    cmps.truncate(1);
                }
                out.push(c);
            }
            Pred::Exists {
                keys,
                ineq,
                deep,
                shadow,
                ..
            } => {
                if keys.len() > 1 || ineq.is_some() {
                    let mut c = case.clone();
                    if let Pred::Exists { keys, ineq, .. } = &mut c.query.preds[i] {
                        keys.truncate(1);
                        *ineq = None;
                    }
                    out.push(c);
                }
                if *deep {
                    let mut c = case.clone();
                    if let Pred::Exists { deep, keys, .. } = &mut c.query.preds[i] {
                        *deep = false;
                        for (f, _) in keys {
                            if matches!(f, ExistsField::DeepVar) {
                                *f = ExistsField::Entry(RelPath::Key);
                            }
                        }
                    }
                    out.push(c);
                }
                if shadow.is_some() {
                    let mut c = case.clone();
                    if let Pred::Exists { shadow, .. } = &mut c.query.preds[i] {
                        *shadow = None;
                    }
                    out.push(c);
                }
            }
            _ => {}
        }
    }

    // 6. Drop unreferenced positional lets (remapping higher indices).
    for i in (0..case.query.pos_lets.len()).rev() {
        if uses_pos(&case.query, i) {
            continue;
        }
        let mut c = case.clone();
        c.query.pos_lets.remove(i);
        map_operands(&mut c.query, &mut |o| {
            if let Operand::Pos(j) = o {
                if *j > i {
                    *j -= 1;
                }
            }
        });
        out.push(c);
    }

    // 7. Shrink the corpus: halve each document's entries, then drop
    //    unreferenced documents entirely.
    for d in 0..case.corpus.docs.len() {
        let len = case.corpus.docs[d].entries.len();
        if len > 1 {
            for keep_front in [true, false] {
                let mut c = case.clone();
                let half = len.div_ceil(2);
                let entries = &mut c.corpus.docs[d].entries;
                if keep_front {
                    entries.truncate(half);
                } else {
                    entries.drain(..len - half);
                }
                out.push(c);
            }
        }
    }
    for d in (0..case.corpus.docs.len()).rev() {
        if let Some(c) = without_doc(case, d) {
            out.push(c);
        }
    }

    out
}

/// Greedily minimize `case` under the failing predicate `fails`,
/// spending at most `budget` oracle invocations. Returns the smallest
/// still-failing case found.
pub fn shrink(case: GenCase, budget: usize, fails: &mut dyn FnMut(&GenCase) -> bool) -> GenCase {
    let mut cur = case;
    let mut spent = 0usize;
    loop {
        let mut improved = false;
        for cand in candidates(&cur) {
            if spent >= budget {
                return cur;
            }
            spent += 1;
            if fails(&cand) {
                cur = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return cur;
        }
    }
}

/// Convenience: the number of corpus entries, a rough case size used in
/// tests asserting the shrinker makes progress.
pub fn corpus_size(c: &Corpus) -> usize {
    c.docs.iter().map(|d| d.entries.len()).sum()
}
