//! Random update-script generation and application.
//!
//! Updates are expressed against the *corpus model* (document/entry
//! indices resolved modulo the live entry count at application time,
//! exactly like `tests/update_workloads.rs`), so the same script can be
//! replayed against any catalog built from the same corpus — which is
//! what lets the oracle apply one script under `MaintenanceMode::Delta`
//! and again under `Rebuild` and demand identical answers.

use rand::rngs::StdRng;
use rand::Rng;
use xmldb::{Catalog, NodeId, NodeKind};

use crate::corpus::{pool_value, Corpus, Entry};

/// One update operation.
#[derive(Clone, Debug, PartialEq)]
pub enum UpdateOp {
    /// Duplicate entry `entry` (mod live count) before the entry half a
    /// rotation away — a mid-document order shuffle.
    Duplicate {
        /// Document index.
        doc: usize,
        /// Entry pick (resolved mod the live entry count).
        entry: usize,
    },
    /// Insert a freshly generated entry before `entry` (mod count).
    InsertFresh {
        /// Document index.
        doc: usize,
        /// Insertion point pick.
        entry: usize,
        /// The new entry.
        fresh: Entry,
    },
    /// Delete entry `entry` (mod count).
    Delete {
        /// Document index.
        doc: usize,
        /// Entry pick.
        entry: usize,
    },
    /// Replace the first text descendant of entry `entry` with `value`.
    ReplaceText {
        /// Document index.
        doc: usize,
        /// Entry pick.
        entry: usize,
        /// New text (drawn from the adversarial pool — this is how
        /// `NaN`/`-0.0` arrive *mid-run* in indexed keys).
        value: String,
    },
}

/// Generate a random update script of `0..=max_ops` operations.
pub fn random_script(rng: &mut StdRng, corpus: &Corpus, max_ops: usize) -> Vec<UpdateOp> {
    let nops = rng.gen_range(0..=max_ops);
    let mut next_id = 1000;
    (0..nops)
        .map(|_| {
            let doc = rng.gen_range(0..corpus.docs.len());
            let entry = rng.gen_range(0usize..64);
            match rng.gen_range(0u32..4) {
                0 => UpdateOp::Duplicate { doc, entry },
                1 => {
                    next_id += 1;
                    UpdateOp::InsertFresh {
                        doc,
                        entry,
                        fresh: Entry::random(rng, next_id),
                    }
                }
                2 => UpdateOp::Delete { doc, entry },
                _ => UpdateOp::ReplaceText {
                    doc,
                    entry,
                    value: pool_value(rng),
                },
            }
        })
        .collect()
}

/// Apply one op to a live catalog. Picks resolve against the current
/// entry list; documents shrunk below 3 entries are left alone so a
/// delete-heavy script cannot empty a document out from under the
/// query.
pub fn apply_op(cat: &mut Catalog, corpus: &Corpus, op: &UpdateOp) {
    let (doc_idx, entry_pick) = match op {
        UpdateOp::Duplicate { doc, entry }
        | UpdateOp::InsertFresh { doc, entry, .. }
        | UpdateOp::Delete { doc, entry }
        | UpdateOp::ReplaceText { doc, entry, .. } => (*doc, *entry),
    };
    let uri = &corpus.docs[doc_idx % corpus.docs.len()].uri;
    let id = cat.by_uri(uri).expect("corpus doc registered");
    let doc = cat.doc(id).as_ref().clone();
    let Some(root) = doc.root_element() else {
        return;
    };
    let entries: Vec<NodeId> = doc.children(root).collect();
    if entries.len() < 3 {
        return;
    }
    let n = entries.len();
    match op {
        UpdateOp::Duplicate { .. } => {
            let src = entries[entry_pick % n];
            let before = entries[(entry_pick + n / 2) % n];
            cat.insert_subtree(id, root, Some(before), &doc, src)
                .expect("duplicate entry");
        }
        UpdateOp::InsertFresh { fresh, .. } => {
            let frag = xmldb::parse_document("frag", &fresh.to_xml()).expect("fragment parses");
            let before = entries[entry_pick % n];
            let frag_root = frag.root_element().expect("fragment has a root");
            cat.insert_subtree(id, root, Some(before), &frag, frag_root)
                .expect("insert fresh entry");
        }
        UpdateOp::Delete { .. } => {
            cat.delete_subtree(id, entries[entry_pick % n])
                .expect("delete entry");
        }
        UpdateOp::ReplaceText { value, .. } => {
            let target = entries[entry_pick % n];
            if let Some(text) = doc
                .descendants(target)
                .find(|&t| matches!(doc.kind(t), NodeKind::Text))
            {
                cat.replace_text(id, text, value).expect("replace text");
            }
        }
    }
}

/// Apply a whole script in order.
pub fn apply_script(cat: &mut Catalog, corpus: &Corpus, script: &[UpdateOp]) {
    for op in script {
        apply_op(cat, corpus, op);
    }
}
