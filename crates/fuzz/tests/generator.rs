//! Self-tests for the query generator and shrinker.
//!
//! * Every generated query must make it through the whole front end —
//!   parse, normalize, translate — via `xquery::compile`; the oracle's
//!   coverage is only as good as the generator's hit rate, so a single
//!   unparseable rendering is a bug here, not in the engine.
//! * Alpha-renaming every binder must not change the query's
//!   `xquery::Fingerprint` (the plan-cache key): the two renderings of
//!   one model are alpha-equivalent by construction.
//! * The shrinker must only ever propose *valid* cases: each candidate
//!   it explores still compiles, so minimization can never walk out of
//!   the language.

use proptest::prelude::*;

use fuzz::gen::GenConfig;
use fuzz::oracle::GenCase;
use fuzz::shrink::shrink;
use xmldb::MaintenanceMode;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn generated_queries_compile(seed in 0u64..1_000_000) {
        let case = GenCase::random(seed, &GenConfig::default());
        let cat = case.corpus.build_catalog(MaintenanceMode::Delta);
        let text = case.query_text();
        let compiled = xquery::compile(&text, &cat);
        prop_assert!(
            compiled.is_ok(),
            "seed {} generated an uncompilable query: {:?}\n{}",
            seed,
            compiled.err(),
            text
        );
    }

    #[test]
    fn alpha_renamed_queries_share_a_fingerprint(seed in 0u64..1_000_000) {
        let case = GenCase::random(seed, &GenConfig::default());
        let cat = case.corpus.build_catalog(MaintenanceMode::Delta);
        let text = case.query_text();
        let renamed = case.query.render_renamed(&case.corpus);
        prop_assume!(xquery::compile(&text, &cat).is_ok());
        let f1 = xquery::Fingerprint::of_query(&text, &cat)
            .expect("standard rendering fingerprints");
        let f2 = xquery::Fingerprint::of_query(&renamed, &cat)
            .expect("renamed rendering fingerprints");
        prop_assert_eq!(
            &f1.canonical,
            &f2.canonical,
            "alpha-renaming changed the canonical form (seed {})\n{}\n--- vs ---\n{}",
            seed,
            text,
            renamed
        );
        prop_assert_eq!(f1.hash, f2.hash);
        prop_assert_eq!(&f1.docs, &f2.docs);
    }

    #[test]
    fn shrinker_preserves_compilability(seed in 0u64..1_000_000) {
        // Shrink under a predicate that accepts everything that
        // compiles: the shrinker will then walk all the way down its
        // move lattice, and every stop along the way must compile.
        let case = GenCase::random(seed, &GenConfig::default());
        let mut probes = 0usize;
        let smallest = shrink(case, 60, &mut |c| {
            probes += 1;
            let cat = c.corpus.build_catalog(MaintenanceMode::Delta);
            let text = c.query_text();
            assert!(
                xquery::compile(&text, &cat).is_ok(),
                "shrink candidate stopped compiling (seed {seed}):\n{text}"
            );
            true
        });
        prop_assert!(probes > 0);
        // Fully shrunk under an always-failing oracle: one binder, no
        // updates left.
        prop_assert_eq!(smallest.query.binder_count(), 1);
        prop_assert!(smallest.updates.is_empty());
    }
}
