//! `xqd-server` — the ordered-unnesting query server.
//!
//! ```text
//! xqd-server [--addr HOST:PORT] [--cache N] [--scale N] [--seed N]
//!            [--no-indexes] [--workers N] [--slow-query-log MS] [--smoke]
//! ```
//!
//! `--scale N` preloads the standard six-document paper workload at
//! scale `N` so clients can query without a `load` step. `--smoke`
//! starts the server on an ephemeral port, runs a scripted client
//! session against it over a real socket (load, cold query, warm query
//! that must be a cache hit, update, post-update query, explain,
//! stats, metrics — checked for Prometheus line format and counter
//! agreement with stats — shutdown), prints the transcript, and exits
//! non-zero on any mismatch — this is the CI smoke test.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;

use service::{serve, ExecMode, Json, QueryService, ServerConfig, ServiceConfig};

struct Args {
    addr: String,
    cache: usize,
    scale: Option<usize>,
    seed: u64,
    use_indexes: bool,
    workers: usize,
    slow_query_ms: Option<u64>,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:4555".to_string(),
        cache: 64,
        scale: None,
        seed: 42,
        use_indexes: true,
        workers: 1,
        slow_query_ms: None,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--cache" => {
                args.cache = value("--cache")?
                    .parse()
                    .map_err(|e| format!("--cache: {e}"))?
            }
            "--scale" => {
                args.scale = Some(
                    value("--scale")?
                        .parse()
                        .map_err(|e| format!("--scale: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--no-indexes" => args.use_indexes = false,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if args.workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            "--slow-query-log" => {
                args.slow_query_ms = Some(
                    value("--slow-query-log")?
                        .parse()
                        .map_err(|e| format!("--slow-query-log: {e}"))?,
                )
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!(
                    "usage: xqd-server [--addr HOST:PORT] [--cache N] [--scale N] \
                     [--seed N] [--no-indexes] [--workers N] [--slow-query-log MS] [--smoke]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xqd-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let svc = Arc::new(QueryService::new(ServiceConfig {
        cache_capacity: args.cache,
        use_indexes: args.use_indexes,
        exec: ExecMode::Streaming,
        slow_query_us: args.slow_query_ms.map(|ms| ms * 1000),
        parallel_workers: args.workers,
        ..ServiceConfig::default()
    }));
    if let Some(scale) = args.scale {
        if let Err(e) = svc.load_standard(scale, args.seed) {
            eprintln!("xqd-server: preload failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("xqd-server: preloaded standard catalog at scale {scale}");
    }
    let addr = if args.smoke {
        "127.0.0.1:0".to_string()
    } else {
        args.addr.clone()
    };
    let mut handle = match serve(svc, &ServerConfig { addr }) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("xqd-server: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.smoke {
        let result = run_smoke(handle.addr());
        handle.shutdown();
        return match result {
            Ok(()) => {
                println!("smoke: OK");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("smoke: FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    eprintln!("xqd-server: listening on {}", handle.addr());
    handle.wait();
    eprintln!("xqd-server: shut down");
    ExitCode::SUCCESS
}

/// One scripted session exercising every op over a real socket.
fn run_smoke(addr: std::net::SocketAddr) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    let mut send = |frame: &str| -> Result<(), String> {
        println!("> {frame}");
        writer
            .write_all(frame.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))
    };
    let mut recv = |reader: &mut BufReader<TcpStream>| -> Result<Json, String> {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("recv: {e}"))?;
        let line = line.trim();
        println!("< {line}");
        Json::parse(line).map_err(|e| format!("bad frame `{line}`: {e}"))
    };
    let expect_ok = |v: &Json, what: &str| -> Result<(), String> {
        if v.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(())
        } else {
            Err(format!("{what}: expected ok frame, got {}", v.render()))
        }
    };
    // Collect one full query exchange; returns (rows, cache label).
    let run_query = |send: &mut dyn FnMut(&str) -> Result<(), String>,
                     reader: &mut BufReader<TcpStream>,
                     recv: &mut dyn FnMut(&mut BufReader<TcpStream>) -> Result<Json, String>,
                     q: &str|
     -> Result<(u64, String), String> {
        let frame = Json::Obj(vec![
            ("op".to_string(), Json::str("query")),
            ("q".to_string(), Json::str(q)),
        ])
        .render();
        send(&frame)?;
        let begin = recv(reader)?;
        if begin.get("type").and_then(Json::as_str) != Some("begin") {
            return Err(format!("expected begin frame, got {}", begin.render()));
        }
        loop {
            let f = recv(reader)?;
            match f.get("type").and_then(Json::as_str) {
                Some("item") => continue,
                Some("done") => {
                    let rows = f.get("rows").and_then(Json::as_u64).unwrap_or(0);
                    let cache = f
                        .get("cache")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string();
                    return Ok((rows, cache));
                }
                _ => return Err(format!("unexpected frame {}", f.render())),
            }
        }
    };

    // 1. Load a small standard catalog.
    send(r#"{"op":"load_standard","scale":20,"seed":42}"#)?;
    let v = recv(&mut reader)?;
    expect_ok(&v, "load_standard")?;

    // 2. Cold query, then the same text warm — the warm run must hit.
    let q = r#"let $d := doc("bib.xml") for $b in $d//book where some $a in $b/author satisfies $a/last = "Suciu" return <hit>{ $b/title }</hit>"#;
    let (cold_rows, cold_cache) = run_query(&mut send, &mut reader, &mut recv, q)?;
    if cold_cache != "miss" {
        return Err(format!("cold query should miss, got `{cold_cache}`"));
    }
    let (warm_rows, warm_cache) = run_query(&mut send, &mut reader, &mut recv, q)?;
    if warm_cache != "hit" {
        return Err(format!("warm query should hit, got `{warm_cache}`"));
    }
    if warm_rows != cold_rows {
        return Err(format!("row drift: cold {cold_rows} vs warm {warm_rows}"));
    }

    // 3. Malformed frame: session must answer with an error and live on.
    send("{not json")?;
    let v = recv(&mut reader)?;
    if v.get("ok").and_then(Json::as_bool) != Some(false) {
        return Err(format!("expected error frame, got {}", v.render()));
    }

    // 4. Update, then the same query again — epoch moved, so the cache
    //    may revalidate or recompile, but never falsely hit.
    send(
        r#"{"op":"update","kind":"insert","uri":"bib.xml","parent":"/bib","xml":"<book year=\"2004\"><title>Smoke</title><author><last>Suciu</last><first>D</first></author><publisher>P</publisher><price>9.99</price></book>"}"#,
    )?;
    let v = recv(&mut reader)?;
    expect_ok(&v, "update")?;
    let (post_rows, post_cache) = run_query(&mut send, &mut reader, &mut recv, q)?;
    if post_cache == "hit" {
        return Err("post-update query must not be a plain hit".to_string());
    }
    if post_rows != cold_rows + 1 {
        return Err(format!(
            "inserted book not visible: {post_rows} rows vs {} expected",
            cold_rows + 1
        ));
    }

    // 5. EXPLAIN ANALYZE: one frame, per-operator measured figures
    //    alongside predicted costs.
    let frame = Json::Obj(vec![
        ("op".to_string(), Json::str("explain")),
        ("q".to_string(), Json::str(q)),
    ])
    .render();
    send(&frame)?;
    let v = recv(&mut reader)?;
    expect_ok(&v, "explain")?;
    let operators = match v.get("operators") {
        Some(Json::Arr(ops)) if !ops.is_empty() => ops.clone(),
        other => return Err(format!("explain: missing operators, got {other:?}")),
    };
    for op in &operators {
        if op.get("op").and_then(Json::as_str).is_none()
            || op.get("rows").and_then(Json::as_u64).is_none()
            || op.get("elapsed_us").and_then(Json::as_u64).is_none()
        {
            return Err(format!("explain: malformed operator {}", op.render()));
        }
    }
    if !operators
        .iter()
        .any(|op| op.get("predicted_cost").and_then(Json::as_f64).is_some())
    {
        return Err("explain: no operator carries a predicted cost".to_string());
    }
    if v.get("stages")
        .map(|s| matches!(s, Json::Arr(a) if !a.is_empty()))
        != Some(true)
    {
        return Err("explain: missing stage spans".to_string());
    }

    // 6. Stats must reflect the session.
    send(r#"{"op":"stats"}"#)?;
    let v = recv(&mut reader)?;
    expect_ok(&v, "stats")?;
    // Warm query + explain (same text, traced run) each hit the cache.
    if v.get("cache_hits").and_then(Json::as_u64) != Some(2) {
        return Err(format!("expected exactly 2 cache hits, got {}", v.render()));
    }
    if v.get("updates").and_then(Json::as_u64) != Some(1) {
        return Err(format!("expected exactly 1 update, got {}", v.render()));
    }
    let stats_queries = v.get("queries").and_then(Json::as_u64).unwrap_or(0);
    let stats_errors = v.get("errors").and_then(Json::as_u64).unwrap_or(0);

    // 7. Metrics: Prometheus text exposition whose counters agree with
    //    the stats frame, every line well-formed.
    send(r#"{"op":"metrics"}"#)?;
    let v = recv(&mut reader)?;
    expect_ok(&v, "metrics")?;
    let text = v
        .get("text")
        .and_then(Json::as_str)
        .ok_or("metrics: missing text field")?
        .to_string();
    check_prometheus_format(&text)?;
    let queries =
        prometheus_value(&text, "xqd_queries_total").ok_or("metrics: missing xqd_queries_total")?;
    if queries != stats_queries as f64 {
        return Err(format!(
            "metrics/stats disagree on queries: {queries} vs {stats_queries}"
        ));
    }
    let errors =
        prometheus_value(&text, "xqd_errors_total").ok_or("metrics: missing xqd_errors_total")?;
    if errors != stats_errors as f64 {
        return Err(format!(
            "metrics/stats disagree on errors: {errors} vs {stats_errors}"
        ));
    }
    if prometheus_value(&text, "xqd_updates_total") != Some(1.0) {
        return Err("metrics: expected xqd_updates_total 1".to_string());
    }

    // 8. Graceful shutdown.
    send(r#"{"op":"shutdown"}"#)?;
    let v = recv(&mut reader)?;
    expect_ok(&v, "shutdown")?;
    Ok(())
}

/// Check every non-empty line of a Prometheus text exposition is either
/// a `#` comment or `name[{labels}] value` with a parseable value.
fn check_prometheus_format(text: &str) -> Result<(), String> {
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("metrics: no value in line `{line}`"))?;
        let bare = name_part.split('{').next().unwrap_or("");
        if bare.is_empty()
            || !bare
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("metrics: bad metric name in line `{line}`"));
        }
        if value_part != "+Inf" && value_part.parse::<f64>().is_err() {
            return Err(format!("metrics: bad value in line `{line}`"));
        }
    }
    Ok(())
}

/// The sample value of an unlabelled metric in a Prometheus exposition.
fn prometheus_value(text: &str, name: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
}
