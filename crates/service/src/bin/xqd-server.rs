//! `xqd-server` — the ordered-unnesting query server.
//!
//! ```text
//! xqd-server [--addr HOST:PORT] [--cache N] [--scale N] [--seed N]
//!            [--no-indexes] [--smoke]
//! ```
//!
//! `--scale N` preloads the standard six-document paper workload at
//! scale `N` so clients can query without a `load` step. `--smoke`
//! starts the server on an ephemeral port, runs a scripted client
//! session against it over a real socket (load, cold query, warm query
//! that must be a cache hit, update, post-update query, stats,
//! shutdown), prints the transcript, and exits non-zero on any
//! mismatch — this is the CI smoke test.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;

use service::{serve, ExecMode, Json, QueryService, ServerConfig, ServiceConfig};

struct Args {
    addr: String,
    cache: usize,
    scale: Option<usize>,
    seed: u64,
    use_indexes: bool,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:4555".to_string(),
        cache: 64,
        scale: None,
        seed: 42,
        use_indexes: true,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--cache" => {
                args.cache = value("--cache")?
                    .parse()
                    .map_err(|e| format!("--cache: {e}"))?
            }
            "--scale" => {
                args.scale = Some(
                    value("--scale")?
                        .parse()
                        .map_err(|e| format!("--scale: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--no-indexes" => args.use_indexes = false,
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!(
                    "usage: xqd-server [--addr HOST:PORT] [--cache N] [--scale N] \
                     [--seed N] [--no-indexes] [--smoke]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xqd-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let svc = Arc::new(QueryService::new(ServiceConfig {
        cache_capacity: args.cache,
        use_indexes: args.use_indexes,
        exec: ExecMode::Streaming,
    }));
    if let Some(scale) = args.scale {
        if let Err(e) = svc.load_standard(scale, args.seed) {
            eprintln!("xqd-server: preload failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("xqd-server: preloaded standard catalog at scale {scale}");
    }
    let addr = if args.smoke {
        "127.0.0.1:0".to_string()
    } else {
        args.addr.clone()
    };
    let mut handle = match serve(svc, &ServerConfig { addr }) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("xqd-server: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.smoke {
        let result = run_smoke(handle.addr());
        handle.shutdown();
        return match result {
            Ok(()) => {
                println!("smoke: OK");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("smoke: FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    eprintln!("xqd-server: listening on {}", handle.addr());
    handle.wait();
    eprintln!("xqd-server: shut down");
    ExitCode::SUCCESS
}

/// One scripted session exercising every op over a real socket.
fn run_smoke(addr: std::net::SocketAddr) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    let mut send = |frame: &str| -> Result<(), String> {
        println!("> {frame}");
        writer
            .write_all(frame.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))
    };
    let mut recv = |reader: &mut BufReader<TcpStream>| -> Result<Json, String> {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("recv: {e}"))?;
        let line = line.trim();
        println!("< {line}");
        Json::parse(line).map_err(|e| format!("bad frame `{line}`: {e}"))
    };
    let expect_ok = |v: &Json, what: &str| -> Result<(), String> {
        if v.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(())
        } else {
            Err(format!("{what}: expected ok frame, got {}", v.render()))
        }
    };
    // Collect one full query exchange; returns (rows, cache label).
    let run_query = |send: &mut dyn FnMut(&str) -> Result<(), String>,
                     reader: &mut BufReader<TcpStream>,
                     recv: &mut dyn FnMut(&mut BufReader<TcpStream>) -> Result<Json, String>,
                     q: &str|
     -> Result<(u64, String), String> {
        let frame = Json::Obj(vec![
            ("op".to_string(), Json::str("query")),
            ("q".to_string(), Json::str(q)),
        ])
        .render();
        send(&frame)?;
        let begin = recv(reader)?;
        if begin.get("type").and_then(Json::as_str) != Some("begin") {
            return Err(format!("expected begin frame, got {}", begin.render()));
        }
        loop {
            let f = recv(reader)?;
            match f.get("type").and_then(Json::as_str) {
                Some("item") => continue,
                Some("done") => {
                    let rows = f.get("rows").and_then(Json::as_u64).unwrap_or(0);
                    let cache = f
                        .get("cache")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string();
                    return Ok((rows, cache));
                }
                _ => return Err(format!("unexpected frame {}", f.render())),
            }
        }
    };

    // 1. Load a small standard catalog.
    send(r#"{"op":"load_standard","scale":20,"seed":42}"#)?;
    let v = recv(&mut reader)?;
    expect_ok(&v, "load_standard")?;

    // 2. Cold query, then the same text warm — the warm run must hit.
    let q = r#"let $d := doc("bib.xml") for $b in $d//book where some $a in $b/author satisfies $a/last = "Suciu" return <hit>{ $b/title }</hit>"#;
    let (cold_rows, cold_cache) = run_query(&mut send, &mut reader, &mut recv, q)?;
    if cold_cache != "miss" {
        return Err(format!("cold query should miss, got `{cold_cache}`"));
    }
    let (warm_rows, warm_cache) = run_query(&mut send, &mut reader, &mut recv, q)?;
    if warm_cache != "hit" {
        return Err(format!("warm query should hit, got `{warm_cache}`"));
    }
    if warm_rows != cold_rows {
        return Err(format!("row drift: cold {cold_rows} vs warm {warm_rows}"));
    }

    // 3. Malformed frame: session must answer with an error and live on.
    send("{not json")?;
    let v = recv(&mut reader)?;
    if v.get("ok").and_then(Json::as_bool) != Some(false) {
        return Err(format!("expected error frame, got {}", v.render()));
    }

    // 4. Update, then the same query again — epoch moved, so the cache
    //    may revalidate or recompile, but never falsely hit.
    send(
        r#"{"op":"update","kind":"insert","uri":"bib.xml","parent":"/bib","xml":"<book year=\"2004\"><title>Smoke</title><author><last>Suciu</last><first>D</first></author><publisher>P</publisher><price>9.99</price></book>"}"#,
    )?;
    let v = recv(&mut reader)?;
    expect_ok(&v, "update")?;
    let (post_rows, post_cache) = run_query(&mut send, &mut reader, &mut recv, q)?;
    if post_cache == "hit" {
        return Err("post-update query must not be a plain hit".to_string());
    }
    if post_rows != cold_rows + 1 {
        return Err(format!(
            "inserted book not visible: {post_rows} rows vs {} expected",
            cold_rows + 1
        ));
    }

    // 5. Stats must reflect the session.
    send(r#"{"op":"stats"}"#)?;
    let v = recv(&mut reader)?;
    expect_ok(&v, "stats")?;
    if v.get("cache_hits").and_then(Json::as_u64) != Some(1) {
        return Err(format!("expected exactly 1 cache hit, got {}", v.render()));
    }
    if v.get("updates").and_then(Json::as_u64) != Some(1) {
        return Err(format!("expected exactly 1 update, got {}", v.render()));
    }

    // 6. Graceful shutdown.
    send(r#"{"op":"shutdown"}"#)?;
    let v = recv(&mut reader)?;
    expect_ok(&v, "shutdown")?;
    Ok(())
}
