//! The two-level plan cache behind [`crate::QueryService`].
//!
//! **L0 — text memo.** Raw query text → [`Fingerprint`] (the canonical
//! alpha-renamed rendering of the *normalized* query, its FNV-1a hash,
//! and the referenced document URIs). Normalization consults the catalog
//! (DTD-derived schema facts decide which rewrites are legal), so a memo
//! entry records the `doc_seq` of every referenced document and is
//! dropped when any of them moves — re-normalizing under changed schema
//! facts could produce a different canonical form.
//!
//! **L1 — plan cache.** `(fingerprint hash, index mode)` →
//! [`PhysPlan`], bucketed by hash with the full canonical string compared
//! on lookup so a 64-bit collision can never alias two different plans.
//! Each entry is stamped with the per-document `doc_seq` vector of its
//! document set, read from the pinned [`CatalogSnapshot`] the query runs
//! against (see [`xmldb::snapshot`]):
//!
//! * all stamps current → **hit**: the cached plan is returned with no
//!   parse, normalize, unnest, or compile work at all;
//! * some stamp moved → the entry is *revalidated* with
//!   [`engine::revalidate_plan`], which performs exactly the index and
//!   path-pattern resolutions execution would perform. Success means
//!   every access path still resolves — the plan (whose access recipes
//!   are declarative and re-resolve per execution) stays correct, so
//!   the entry's stamps are refreshed and the plan reused;
//! * revalidation fails → the entry is **invalidated** (an access path
//!   disappeared; the caller re-plans from scratch, which may now pick
//!   a different — still output-equivalent — plan shape).
//!
//! `doc_seq` stamps are **monotone across wholesale reloads** (they
//! derive from the snapshot chain's ever-growing `update_seq`), which is
//! what lets a `load` skip the eager purge older revisions needed:
//! reloading one document moves only that URI's stamp, so entries over
//! unrelated documents stay warm and keep hitting, while entries over
//! the reloaded URI revalidate or recompile lazily at their next lookup.
//!
//! Both levels are bounded LRU: a logical clock is bumped on every
//! touch and the stalest entry is evicted at capacity.

use std::collections::HashMap;
use std::sync::Arc;

use engine::PhysPlan;
use xmldb::CatalogSnapshot;
use xquery::Fingerprint;

/// How the cache participated in answering one query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Fingerprint and plan found, every document stamp current: the
    /// whole frontend (parse → normalize → unnest → compile) was skipped.
    Hit,
    /// Plan found with stale stamps, but every access path still
    /// resolves; reused after a stamp refresh.
    Revalidated,
    /// Plan found but an access path no longer resolves; the entry was
    /// dropped and the query re-planned.
    Recompiled,
    /// No cached plan for this fingerprint.
    Miss,
}

impl CacheOutcome {
    /// Stable lower-case label (wire protocol and bench output).
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Revalidated => "revalidated",
            CacheOutcome::Recompiled => "recompiled",
            CacheOutcome::Miss => "miss",
        }
    }
}

/// Result of a plan lookup (the caller compiles on the last two).
pub enum Lookup {
    /// Fresh entry: plan plus its label.
    Hit(Arc<PhysPlan>, String),
    /// Stale entry that passed revalidation: plan plus its label.
    Revalidated(Arc<PhysPlan>, String),
    /// Stale entry that failed revalidation and was removed.
    Invalidated,
    /// Nothing cached under this fingerprint.
    Miss,
}

/// Monotonic counters, all cumulative since service start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// L1 hits (fresh stamps).
    pub hits: u64,
    /// L1 reuses after successful revalidation.
    pub revalidations: u64,
    /// L1 lookups that found nothing.
    pub misses: u64,
    /// Entries dropped because revalidation failed.
    pub invalidations: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
    /// L0 text-memo hits (raw text resolved to a fingerprint without
    /// parsing).
    pub memo_hits: u64,
}

struct MemoEntry {
    fp: Fingerprint,
    /// `(uri, doc_seq-at-normalize-time)`;
    /// [`xmldb::snapshot::DOC_SEQ_ABSENT`] marks a document that was
    /// absent (still-absent compares equal, so the entry stays valid
    /// until the document actually appears).
    seqs: Vec<(String, u64)>,
    last_used: u64,
}

struct PlanEntry {
    canonical: String,
    use_indexes: bool,
    seqs: Vec<(String, u64)>,
    plan: Arc<PhysPlan>,
    label: String,
    last_used: u64,
}

/// The bounded two-level cache. Not internally synchronized — the
/// service wraps it in a `Mutex` (lookups are sub-microsecond; compiles
/// happen outside the lock).
pub struct PlanCache {
    cap: usize,
    clock: u64,
    memo: HashMap<String, MemoEntry>,
    plans: HashMap<u64, Vec<PlanEntry>>,
    counters: CacheCounters,
}

fn current_seqs(docs: &[String], snapshot: &CatalogSnapshot) -> Vec<(String, u64)> {
    docs.iter()
        .map(|uri| (uri.clone(), snapshot.doc_seq(uri)))
        .collect()
}

fn seqs_current(stamped: &[(String, u64)], snapshot: &CatalogSnapshot) -> bool {
    stamped
        .iter()
        .all(|(uri, seq)| snapshot.doc_seq(uri) == *seq)
}

impl PlanCache {
    /// A cache holding at most `cap` plans (and `4 * cap` memo entries).
    pub fn new(cap: usize) -> PlanCache {
        PlanCache {
            cap: cap.max(1),
            clock: 0,
            memo: HashMap::new(),
            plans: HashMap::new(),
            counters: CacheCounters::default(),
        }
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.values().map(Vec::len).sum()
    }

    /// Whether the plan cache is empty.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Number of live text-memo entries.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// L0: resolve raw query text to its fingerprint without parsing, if
    /// memoized under current stamps. A stale memo entry is dropped (its
    /// canonical form may no longer be what normalization would produce).
    pub fn memo_get(&mut self, text: &str, snapshot: &CatalogSnapshot) -> Option<Fingerprint> {
        let stale = match self.memo.get(text) {
            None => return None,
            Some(e) => !seqs_current(&e.seqs, snapshot),
        };
        if stale {
            self.memo.remove(text);
            return None;
        }
        let now = self.tick();
        let e = self.memo.get_mut(text).expect("checked above");
        e.last_used = now;
        self.counters.memo_hits += 1;
        Some(e.fp.clone())
    }

    /// L0: memoize `text → fp` under the current stamps of `fp.docs`.
    pub fn memo_put(&mut self, text: &str, fp: &Fingerprint, snapshot: &CatalogSnapshot) {
        let memo_cap = self.cap * 4;
        if self.memo.len() >= memo_cap && !self.memo.contains_key(text) {
            if let Some(victim) = self
                .memo
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.memo.remove(&victim);
            }
        }
        let now = self.tick();
        self.memo.insert(
            text.to_string(),
            MemoEntry {
                fp: fp.clone(),
                seqs: current_seqs(&fp.docs, snapshot),
                last_used: now,
            },
        );
    }

    /// L1 lookup, with stamp validation and stale-entry revalidation
    /// (see module docs for the three-way outcome).
    pub fn lookup(
        &mut self,
        fp: &Fingerprint,
        use_indexes: bool,
        snapshot: &CatalogSnapshot,
    ) -> Lookup {
        let now = self.tick();
        let bucket = match self.plans.get_mut(&fp.hash) {
            Some(b) => b,
            None => {
                self.counters.misses += 1;
                return Lookup::Miss;
            }
        };
        let idx = bucket
            .iter()
            .position(|e| e.use_indexes == use_indexes && e.canonical == fp.canonical);
        let idx = match idx {
            Some(i) => i,
            None => {
                self.counters.misses += 1;
                return Lookup::Miss;
            }
        };
        if seqs_current(&bucket[idx].seqs, snapshot) {
            let e = &mut bucket[idx];
            e.last_used = now;
            self.counters.hits += 1;
            return Lookup::Hit(Arc::clone(&e.plan), e.label.clone());
        }
        match engine::revalidate_plan(&bucket[idx].plan, snapshot) {
            Ok(_checked) => {
                let fresh = current_seqs(&fp.docs, snapshot);
                let e = &mut bucket[idx];
                e.seqs = fresh;
                e.last_used = now;
                self.counters.revalidations += 1;
                Lookup::Revalidated(Arc::clone(&e.plan), e.label.clone())
            }
            Err(_) => {
                bucket.remove(idx);
                if bucket.is_empty() {
                    self.plans.remove(&fp.hash);
                }
                self.counters.invalidations += 1;
                Lookup::Invalidated
            }
        }
    }

    /// L1 insert, evicting the least-recently-used plan at capacity.
    pub fn insert(
        &mut self,
        fp: &Fingerprint,
        use_indexes: bool,
        plan: Arc<PhysPlan>,
        label: String,
        snapshot: &CatalogSnapshot,
    ) {
        // Replace an existing entry for the same key in place.
        if let Some(bucket) = self.plans.get_mut(&fp.hash) {
            bucket.retain(|e| !(e.use_indexes == use_indexes && e.canonical == fp.canonical));
            if bucket.is_empty() {
                self.plans.remove(&fp.hash);
            }
        }
        while self.len() >= self.cap {
            self.evict_lru();
        }
        let now = self.tick();
        self.plans.entry(fp.hash).or_default().push(PlanEntry {
            canonical: fp.canonical.clone(),
            use_indexes,
            seqs: current_seqs(&fp.docs, snapshot),
            plan,
            label,
            last_used: now,
        });
    }

    fn evict_lru(&mut self) {
        let victim = self
            .plans
            .iter()
            .flat_map(|(h, b)| {
                b.iter()
                    .map(move |e| (*h, e.canonical.clone(), e.last_used))
            })
            .min_by_key(|(_, _, used)| *used);
        if let Some((hash, canonical, _)) = victim {
            if let Some(bucket) = self.plans.get_mut(&hash) {
                bucket.retain(|e| e.canonical != canonical);
                if bucket.is_empty() {
                    self.plans.remove(&hash);
                }
            }
            self.counters.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb::Catalog;

    fn fp_for(canonical: &str) -> Fingerprint {
        Fingerprint {
            canonical: canonical.to_string(),
            hash: xquery::fingerprint::hash64(canonical),
            docs: vec![],
        }
    }

    #[test]
    fn lru_evicts_stalest_plan() {
        let snapshot = CatalogSnapshot::from_catalog(Catalog::new());
        let mut c = PlanCache::new(2);
        let plan = Arc::new(PhysPlan::Singleton);
        let (a, b, d) = (fp_for("a"), fp_for("b"), fp_for("d"));
        c.insert(&a, false, Arc::clone(&plan), "p".into(), &snapshot);
        c.insert(&b, false, Arc::clone(&plan), "p".into(), &snapshot);
        // Touch `a` so `b` is the LRU victim.
        assert!(matches!(c.lookup(&a, false, &snapshot), Lookup::Hit(..)));
        c.insert(&d, false, plan, "p".into(), &snapshot);
        assert_eq!(c.len(), 2);
        assert!(matches!(c.lookup(&a, false, &snapshot), Lookup::Hit(..)));
        assert!(matches!(c.lookup(&b, false, &snapshot), Lookup::Miss));
        assert!(matches!(c.lookup(&d, false, &snapshot), Lookup::Hit(..)));
        assert_eq!(c.counters().evictions, 1);
    }

    #[test]
    fn index_mode_is_part_of_the_key() {
        let snapshot = CatalogSnapshot::from_catalog(Catalog::new());
        let mut c = PlanCache::new(4);
        let a = fp_for("a");
        c.insert(
            &a,
            false,
            Arc::new(PhysPlan::Singleton),
            "p".into(),
            &snapshot,
        );
        assert!(matches!(c.lookup(&a, true, &snapshot), Lookup::Miss));
        assert!(matches!(c.lookup(&a, false, &snapshot), Lookup::Hit(..)));
    }
}
