//! A minimal JSON value model, parser, and printer.
//!
//! The wire protocol ([`crate::proto`]) is newline-delimited JSON and the
//! container is offline, so this is hand-rolled rather than pulled from
//! crates.io. It covers exactly what the protocol needs: objects, arrays,
//! strings (with `\uXXXX` escapes), numbers, booleans, and `null`.
//! Rendering is single-line — no frame ever contains a raw newline, which
//! is what makes "one frame per line" framing sound.
//!
//! ```
//! use service::json::Json;
//! let v = Json::parse(r#"{"op":"query","q":"for $t in …","n":3}"#).unwrap();
//! assert_eq!(v.get("op").and_then(Json::as_str), Some("query"));
//! assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
//! assert!(!v.render().contains('\n'));
//! ```

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order (the protocol's frames
/// are small; a sorted map buys nothing and scrambles transcripts).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one JSON value from `input` (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            s: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.s.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Render single-line JSON (no raw newlines, ever — see module docs).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                // Integers print without the `.0` so transcripts read
                // naturally; non-finite values have no JSON form.
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (`None` on non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for numeric values.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.s.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!(
                "unexpected byte `{}` at {}",
                char::from(b),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.s[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uDC00..` to form one char.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.s[self.pos + 1..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xd800) << 10)
                                        + (lo.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(
                                c.ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?,
                            );
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 character (input is &str, so
                    // boundaries are valid by construction).
                    let rest = &self.s[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.s.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.s[start..end]).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
        self.pos = end - 1;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b) if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let cases = [
            r#"{"op":"query","q":"for $t in x","n":3,"f":1.5,"b":true,"z":null,"a":[1,2]}"#,
            r#"[]"#,
            r#"{}"#,
            r#""plain""#,
            r#"-42"#,
        ];
        for c in cases {
            let v = Json::parse(c).unwrap();
            assert_eq!(v, Json::parse(&v.render()).unwrap(), "case {c}");
        }
    }

    #[test]
    fn escapes_survive() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}f — π".to_string());
        let r = v.render();
        assert!(!r.contains('\n'));
        assert_eq!(Json::parse(&r).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1f600}"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a":}"#).is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
    }
}
