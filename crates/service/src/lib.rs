//! `service` — the long-running query service over the
//! ordered-unnesting pipeline, in two layers:
//!
//! 1. [`QueryService`] ([`service`]): an embeddable facade owning the
//!    catalog through a lock-free [`xmldb::CatalogHandle`] (immutable
//!    `Arc`-swapped snapshot versions; every query pins one version for
//!    its whole lifetime) plus a bounded, `doc_seq`-stamped plan cache
//!    ([`cache`]). Repeated queries skip the whole frontend
//!    (parse → normalize → unnest → compile) on a cache hit; updates
//!    clone-on-write through the catalog's delta-maintenance wrappers
//!    and publish the next version, whose moved stamps invalidate
//!    exactly the stale entries. Readers never take a lock and never
//!    stall behind the single serialized writer.
//! 2. `xqd-server` ([`server`] + [`proto`]): a TCP server speaking
//!    newline-delimited JSON ([`json`]) that streams query results
//!    item-by-item from the pull-based streaming executor.
//!
//! ```
//! use service::{QueryService, ServiceConfig};
//! let svc = QueryService::new(ServiceConfig::default());
//! svc.load_xml("bib.xml", "<bib><book><title>a</title></book></bib>").unwrap();
//! let q = r#"let $d := doc("bib.xml") for $t in $d//book/title return <t>{ $t }</t>"#;
//! let cold = svc.query(q).unwrap();
//! let warm = svc.query(q).unwrap();
//! assert_eq!(cold.output, warm.output);
//! assert_eq!(warm.cache.label(), "hit");
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod json;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod service;

pub use cache::{CacheCounters, CacheOutcome, PlanCache};
pub use json::Json;
pub use metrics::{render_prometheus, HistogramSnapshot, LatencyHistogram, MetricsRegistry};
pub use server::{serve, ServerConfig, ServerHandle};
pub use service::{
    ExecMode, ExplainOutcome, QueryOutcome, QueryService, ServiceConfig, ServiceError,
    ServiceStats, UpdateOp, UpdateReport,
};

// Compile-time `Send + Sync` audit (complementing the one in `xmldb`):
// the server shares one `QueryService` across connection threads via
// `Arc`, and cached plans (with their access recipes) cross the cache
// mutex between threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryService>();
    assert_send_sync::<PlanCache>();
    assert_send_sync::<xmldb::CatalogSnapshot>();
    assert_send_sync::<xmldb::CatalogHandle>();
    assert_send_sync::<engine::PhysPlan>();
    assert_send_sync::<engine::AccessRecipe>();
    assert_send_sync::<xquery::Fingerprint>();
};
