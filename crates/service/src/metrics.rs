//! The service metrics registry: lock-free atomic counters and fixed
//! log-bucket latency histograms, with a Prometheus text exposition.
//!
//! One [`MetricsRegistry`] lives on the [`crate::QueryService`] and is
//! the **single source** for the service-level counters — the `stats`
//! op, the `metrics` op, and [`crate::service::ServiceStats`] all read
//! the same atomics, so the two wire surfaces can never disagree.
//! Everything is plain `std::sync::atomic`; recording a sample is a
//! handful of relaxed fetch-adds, cheap enough to run on every query.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::cache::CacheOutcome;
use crate::service::ServiceStats;

/// Upper bounds (inclusive, microseconds) of the finite histogram
/// buckets: powers of two from 1 µs to ~1 s. Samples above the last
/// bound land in the implicit `+Inf` bucket.
pub const BUCKET_BOUNDS_US: [u64; 21] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1_024, 2_048, 4_096, 8_192, 16_384, 32_768, 65_536,
    131_072, 262_144, 524_288, 1_048_576,
];

/// Total bucket count including the `+Inf` overflow bucket.
const BUCKETS: usize = BUCKET_BOUNDS_US.len() + 1;

/// A fixed log₂-bucket latency histogram over atomic counters.
/// Observation is one relaxed fetch-add per sample (plus the running
/// sum); snapshots are consistent enough for monitoring (buckets are
/// read one by one, not under a lock).
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Record one sample (microseconds).
    pub fn observe_us(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum_us: self.sum_us.load(Ordering::Relaxed),
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

/// A point-in-time copy of a [`LatencyHistogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts, parallel to [`BUCKET_BOUNDS_US`] with
    /// one trailing `+Inf` bucket.
    pub counts: Vec<u64>,
    /// Sum of all recorded samples (µs).
    pub sum_us: u64,
}

impl HistogramSnapshot {
    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `q`-quantile (0 < q ≤ 1) as a bucket upper bound: the
    /// smallest bound whose cumulative count reaches `ceil(q·count)`.
    /// Samples in the `+Inf` bucket report the last finite bound (the
    /// histogram cannot resolve beyond it). Returns 0 on an empty
    /// histogram. Monotonic in `q` by construction.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return BUCKET_BOUNDS_US
                    .get(i)
                    .copied()
                    .unwrap_or(BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1]);
            }
        }
        BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1]
    }

    /// Merge another snapshot into this one (bucketwise sum) — shards
    /// of the same bucket layout combine exactly.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum_us += other.sum_us;
    }
}

/// The service-wide metrics registry (see module docs).
pub struct MetricsRegistry {
    queries: AtomicU64,
    rows_streamed: AtomicU64,
    updates: AtomicU64,
    errors: AtomicU64,
    active_sessions: AtomicU64,
    plan_hits: AtomicU64,
    plan_revalidations: AtomicU64,
    plan_recompiles: AtomicU64,
    plan_misses: AtomicU64,
    query_latency: LatencyHistogram,
    update_latency: LatencyHistogram,
    publish_latency: LatencyHistogram,
}

impl MetricsRegistry {
    /// A zeroed registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            queries: AtomicU64::new(0),
            rows_streamed: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            active_sessions: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            plan_revalidations: AtomicU64::new(0),
            plan_recompiles: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            query_latency: LatencyHistogram::new(),
            update_latency: LatencyHistogram::new(),
            publish_latency: LatencyHistogram::new(),
        }
    }

    /// Record one served query: total count, streamed rows, the
    /// plan-cache outcome it resolved through, and its whole-query
    /// latency.
    pub fn record_query(&self, outcome: CacheOutcome, rows: u64, total_us: u64) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.rows_streamed.fetch_add(rows, Ordering::Relaxed);
        let counter = match outcome {
            CacheOutcome::Hit => &self.plan_hits,
            CacheOutcome::Revalidated => &self.plan_revalidations,
            CacheOutcome::Recompiled => &self.plan_recompiles,
            CacheOutcome::Miss => &self.plan_misses,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.query_latency.observe_us(total_us);
    }

    /// Record one applied update and its latency.
    pub fn record_update(&self, us: u64) {
        self.updates.fetch_add(1, Ordering::Relaxed);
        self.update_latency.observe_us(us);
    }

    /// Record one writer publish (clone-on-write + mutation + atomic
    /// snapshot swap) and its latency — updates and loads both count.
    pub fn record_publish(&self, us: u64) {
        self.publish_latency.observe_us(us);
    }

    /// Record one failed request (query, update, or load).
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection opened.
    pub fn session_started(&self) {
        self.active_sessions.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection closed.
    pub fn session_ended(&self) {
        // Saturating: a stray double-close must not wrap the gauge.
        let _ = self
            .active_sessions
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Queries served.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Rows streamed or materialized across all queries.
    pub fn rows_streamed(&self) -> u64 {
        self.rows_streamed.load(Ordering::Relaxed)
    }

    /// Updates applied.
    pub fn updates(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    /// Failed requests.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Currently open connections.
    pub fn active_sessions(&self) -> u64 {
        self.active_sessions.load(Ordering::Relaxed)
    }

    /// Per-outcome query counts: `(hit, revalidated, recompiled, miss)`.
    pub fn plan_outcomes(&self) -> (u64, u64, u64, u64) {
        (
            self.plan_hits.load(Ordering::Relaxed),
            self.plan_revalidations.load(Ordering::Relaxed),
            self.plan_recompiles.load(Ordering::Relaxed),
            self.plan_misses.load(Ordering::Relaxed),
        )
    }

    /// Snapshot of the whole-query latency histogram.
    pub fn query_latency(&self) -> HistogramSnapshot {
        self.query_latency.snapshot()
    }

    /// Snapshot of the update latency histogram.
    pub fn update_latency(&self) -> HistogramSnapshot {
        self.update_latency.snapshot()
    }

    /// Snapshot of the writer publish latency histogram.
    pub fn publish_latency(&self) -> HistogramSnapshot {
        self.publish_latency.snapshot()
    }
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

/// Render the Prometheus text exposition (version 0.0.4) of a stats
/// snapshot: counters, gauges, and the query/update/publish latency
/// histograms. Counter values come from the same [`ServiceStats`] the
/// `stats` op ships, so the two surfaces agree by construction.
pub fn render_prometheus(
    s: &ServiceStats,
    query: &HistogramSnapshot,
    update: &HistogramSnapshot,
    publish: &HistogramSnapshot,
) -> String {
    let mut out = String::new();
    let mut counter = |name: &str, help: &str, v: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
        ));
    };
    counter("xqd_queries_total", "Queries served.", s.queries);
    counter(
        "xqd_rows_streamed_total",
        "Result rows streamed or materialized.",
        s.rows_streamed,
    );
    counter("xqd_updates_total", "Updates applied.", s.updates);
    counter("xqd_errors_total", "Failed requests.", s.errors);
    out.push_str(
        "# HELP xqd_plan_cache_outcome_total Queries by plan-cache outcome.\n\
         # TYPE xqd_plan_cache_outcome_total counter\n",
    );
    for (label, v) in [
        ("hit", s.plan_hits),
        ("revalidated", s.plan_revalidations),
        ("recompiled", s.plan_recompiles),
        ("miss", s.plan_misses),
    ] {
        out.push_str(&format!(
            "xqd_plan_cache_outcome_total{{outcome=\"{label}\"}} {v}\n"
        ));
    }
    let mut counter = |name: &str, help: &str, v: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
        ));
    };
    counter(
        "xqd_cache_evictions_total",
        "Plan-cache evictions.",
        s.cache.evictions,
    );
    counter(
        "xqd_cache_invalidations_total",
        "Plan-cache invalidations.",
        s.cache.invalidations,
    );
    counter(
        "xqd_index_postings_built_total",
        "Postings written by full index builds.",
        s.maintenance.postings_built,
    );
    counter(
        "xqd_index_postings_maintained_total",
        "Postings written or removed by update deltas.",
        s.maintenance.postings_maintained,
    );
    counter(
        "xqd_index_full_builds_total",
        "Full index builds performed.",
        s.maintenance.full_builds,
    );
    counter(
        "xqd_index_delta_updates_total",
        "Updates applied as index deltas.",
        s.maintenance.delta_updates,
    );
    let mut gauge = |name: &str, help: &str, v: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
        ));
    };
    gauge(
        "xqd_active_sessions",
        "Currently open connections.",
        s.active_sessions,
    );
    gauge("xqd_documents", "Documents registered.", s.documents as u64);
    gauge(
        "xqd_cached_plans",
        "Plans currently cached.",
        s.cached_plans as u64,
    );
    gauge(
        "xqd_snapshot_version",
        "update_seq of the currently published catalog snapshot.",
        s.snapshot_version,
    );
    gauge(
        "xqd_live_snapshots",
        "Catalog versions still referenced (current + reader-pinned).",
        s.live_snapshots,
    );
    gauge(
        "xqd_parallel_workers",
        "Configured degree of intra-query parallelism.",
        s.parallel_workers,
    );
    render_histogram(
        &mut out,
        "xqd_query_latency_us",
        "Whole-query latency (µs).",
        query,
    );
    render_histogram(
        &mut out,
        "xqd_update_latency_us",
        "Update latency (µs).",
        update,
    );
    render_histogram(
        &mut out,
        "xqd_publish_latency_us",
        "Writer snapshot publish latency (µs): clone-on-write + swap.",
        publish,
    );
    out
}

fn render_histogram(out: &mut String, name: &str, help: &str, h: &HistogramSnapshot) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (i, &c) in h.counts.iter().enumerate() {
        cumulative += c;
        let le = match BUCKET_BOUNDS_US.get(i) {
            Some(b) => b.to_string(),
            None => "+Inf".to_string(),
        };
        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
    }
    out.push_str(&format!("{name}_sum {}\n", h.sum_us));
    out.push_str(&format!("{name}_count {}\n", h.count()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_strictly_increasing() {
        for w in BUCKET_BOUNDS_US.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn observations_land_in_the_right_bucket() {
        let h = LatencyHistogram::new();
        h.observe_us(0); // ≤ 1
        h.observe_us(1); // ≤ 1
        h.observe_us(2); // ≤ 2
        h.observe_us(3); // ≤ 4
        h.observe_us(1_048_576); // last finite
        h.observe_us(u64::MAX); // +Inf
        let s = h.snapshot();
        assert_eq!(s.counts[0], 2);
        assert_eq!(s.counts[1], 1);
        assert_eq!(s.counts[2], 1);
        assert_eq!(s.counts[BUCKET_BOUNDS_US.len() - 1], 1);
        assert_eq!(s.counts[BUCKET_BOUNDS_US.len()], 1);
        assert_eq!(s.count(), 6);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let h = LatencyHistogram::new();
        for us in [3, 9, 40, 900, 5_000, 70_000] {
            h.observe_us(us);
        }
        let s = h.snapshot();
        let (p50, p90, p99) = (s.quantile_us(0.5), s.quantile_us(0.9), s.quantile_us(0.99));
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        // Each quantile is a bucket bound at or above the true sample.
        assert!((40..=64).contains(&p50), "{p50}");
        assert!(p99 >= 70_000, "{p99}");
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(LatencyHistogram::new().snapshot().quantile_us(0.99), 0);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.observe_us(3);
        b.observe_us(3);
        b.observe_us(1_000);
        let mut sa = a.snapshot();
        let sb = b.snapshot();
        sa.merge(&sb);
        assert_eq!(sa.count(), 3);
        assert_eq!(sa.sum_us, 1_006);
        assert_eq!(sa.counts[2], 2); // both 3 µs samples
    }

    #[test]
    fn registry_counts_by_outcome() {
        let r = MetricsRegistry::new();
        r.record_query(CacheOutcome::Miss, 5, 100);
        r.record_query(CacheOutcome::Hit, 5, 10);
        r.record_query(CacheOutcome::Hit, 0, 12);
        r.record_update(50);
        r.record_error();
        r.session_started();
        assert_eq!(r.queries(), 3);
        assert_eq!(r.rows_streamed(), 10);
        assert_eq!(r.updates(), 1);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.active_sessions(), 1);
        assert_eq!(r.plan_outcomes(), (2, 0, 0, 1));
        r.session_ended();
        r.session_ended(); // stray double-close must not wrap
        assert_eq!(r.active_sessions(), 0);
        assert_eq!(r.query_latency().count(), 3);
        assert_eq!(r.update_latency().count(), 1);
    }
}
