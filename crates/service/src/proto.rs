//! The `xqd-server` wire protocol: one JSON object per line, in both
//! directions (frames never contain raw newlines — [`crate::json`]
//! escapes them).
//!
//! # Requests
//!
//! ```text
//! {"op":"load","uri":"bib.xml","xml":"<bib>…</bib>"}
//! {"op":"load_standard","scale":100,"seed":42}
//! {"op":"query","q":"for $t in doc(\"bib.xml\")//title return $t"}
//! {"op":"update","kind":"insert","uri":"bib.xml","parent":"/bib","xml":"<book>…</book>"}
//! {"op":"update","kind":"delete","uri":"bib.xml","path":"/bib/book"}
//! {"op":"update","kind":"retext","uri":"bib.xml","path":"/bib/book/title","text":"New"}
//! {"op":"explain","q":"for $t in doc(\"bib.xml\")//title return $t"}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"close"}
//! {"op":"shutdown"}
//! ```
//!
//! # Responses
//!
//! Every request draws exactly one response frame — except `query`,
//! which draws a `begin` frame, zero or more `item` frames (one per
//! result item, streamed as the executor produces them), and a `done`
//! frame. Failures of any kind are `{"ok":false,"error":"…"}`; a
//! malformed line is answered with an error frame and the session
//! continues.
//!
//! ```text
//! {"ok":true,"op":"query","type":"begin"}
//! {"type":"item","xml":"<t>Data on the Web</t>"}
//! {"type":"done","rows":2,"plan":"semijoin","cache":"hit","elapsed_us":184,"updates_seen":0}
//! ```
//!
//! `explain` runs the query with per-operator tracing and answers with
//! one frame carrying the stage spans, the annotated operator list
//! (measured rows/calls/time/probes next to the predicted cost), and
//! the rendered tree. `metrics` answers with one frame whose `text`
//! field is the Prometheus text exposition of the service registry —
//! the same counters the `stats` frame reports as JSON.

use crate::json::Json;
use crate::metrics::render_prometheus;
use crate::service::{ExplainOutcome, QueryService, ServiceStats, UpdateOp};

/// A parsed request frame.
#[derive(Clone, Debug)]
pub enum Request {
    /// Register a document from inline XML.
    Load {
        /// Document URI to register under.
        uri: String,
        /// Document text.
        xml: String,
    },
    /// Replace the catalog with the standard generated workload.
    LoadStandard {
        /// Generator scale (element count knob).
        scale: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Run a query, streaming items.
    Query(
        /// The XQuery text.
        String,
    ),
    /// Apply one mutation.
    Update(UpdateOp),
    /// Run a query with per-operator tracing (EXPLAIN ANALYZE).
    Explain(
        /// The XQuery text.
        String,
    ),
    /// Report service counters.
    Stats,
    /// Report the Prometheus text exposition of the metrics registry.
    Metrics,
    /// End this session (the connection closes after the reply).
    Close,
    /// Stop the whole server gracefully.
    Shutdown,
}

/// What the session loop should do after a handled frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// Keep reading frames.
    Continue,
    /// Close this connection.
    Close,
    /// Close this connection and stop the server.
    Shutdown,
}

fn need_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line).map_err(|e| format!("malformed frame: {e}"))?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing string field `op`")?;
    match op {
        "load" => Ok(Request::Load {
            uri: need_str(&v, "uri")?,
            xml: need_str(&v, "xml")?,
        }),
        "load_standard" => {
            let scale = v
                .get("scale")
                .and_then(Json::as_u64)
                .ok_or("missing numeric field `scale`")? as usize;
            let seed = v.get("seed").and_then(Json::as_u64).unwrap_or(42);
            Ok(Request::LoadStandard { scale, seed })
        }
        "query" => Ok(Request::Query(need_str(&v, "q")?)),
        "explain" => Ok(Request::Explain(need_str(&v, "q")?)),
        "metrics" => Ok(Request::Metrics),
        "update" => {
            let kind = need_str(&v, "kind")?;
            let uri = need_str(&v, "uri")?;
            let op = match kind.as_str() {
                "insert" => UpdateOp::InsertXml {
                    uri,
                    parent: need_str(&v, "parent")?,
                    xml: need_str(&v, "xml")?,
                },
                "delete" => UpdateOp::DeleteFirst {
                    uri,
                    path: need_str(&v, "path")?,
                },
                "retext" => UpdateOp::ReplaceText {
                    uri,
                    path: need_str(&v, "path")?,
                    text: need_str(&v, "text")?,
                },
                other => return Err(format!("unknown update kind `{other}`")),
            };
            Ok(Request::Update(op))
        }
        "stats" => Ok(Request::Stats),
        "close" => Ok(Request::Close),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Render an error frame.
pub fn error_frame(msg: &str) -> String {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::str(msg)),
    ])
    .render()
}

fn ok_frame(op: &str, extra: Vec<(String, Json)>) -> String {
    let mut fields = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("op".to_string(), Json::str(op)),
    ];
    fields.extend(extra);
    Json::Obj(fields).render()
}

/// Render the `stats` response payload.
pub fn stats_frame(s: &ServiceStats) -> String {
    ok_frame(
        "stats",
        vec![
            ("queries".to_string(), Json::num(s.queries as f64)),
            (
                "rows_streamed".to_string(),
                Json::num(s.rows_streamed as f64),
            ),
            ("updates".to_string(), Json::num(s.updates as f64)),
            ("cache_hits".to_string(), Json::num(s.cache.hits as f64)),
            (
                "cache_revalidations".to_string(),
                Json::num(s.cache.revalidations as f64),
            ),
            ("cache_misses".to_string(), Json::num(s.cache.misses as f64)),
            (
                "cache_invalidations".to_string(),
                Json::num(s.cache.invalidations as f64),
            ),
            (
                "cache_evictions".to_string(),
                Json::num(s.cache.evictions as f64),
            ),
            ("memo_hits".to_string(), Json::num(s.cache.memo_hits as f64)),
            ("cached_plans".to_string(), Json::num(s.cached_plans as f64)),
            ("memo_entries".to_string(), Json::num(s.memo_entries as f64)),
            ("documents".to_string(), Json::num(s.documents as f64)),
            ("update_seq".to_string(), Json::num(s.update_seq as f64)),
            ("errors".to_string(), Json::num(s.errors as f64)),
            (
                "active_sessions".to_string(),
                Json::num(s.active_sessions as f64),
            ),
            ("plan_hits".to_string(), Json::num(s.plan_hits as f64)),
            (
                "plan_revalidations".to_string(),
                Json::num(s.plan_revalidations as f64),
            ),
            (
                "plan_recompiles".to_string(),
                Json::num(s.plan_recompiles as f64),
            ),
            ("plan_misses".to_string(), Json::num(s.plan_misses as f64)),
            (
                "postings_built".to_string(),
                Json::num(s.maintenance.postings_built as f64),
            ),
            (
                "postings_maintained".to_string(),
                Json::num(s.maintenance.postings_maintained as f64),
            ),
            (
                "full_builds".to_string(),
                Json::num(s.maintenance.full_builds as f64),
            ),
            (
                "delta_updates".to_string(),
                Json::num(s.maintenance.delta_updates as f64),
            ),
            ("query_p50_us".to_string(), Json::num(s.query_p50_us as f64)),
            ("query_p90_us".to_string(), Json::num(s.query_p90_us as f64)),
            ("query_p99_us".to_string(), Json::num(s.query_p99_us as f64)),
            (
                "snapshot_version".to_string(),
                Json::num(s.snapshot_version as f64),
            ),
            (
                "live_snapshots".to_string(),
                Json::num(s.live_snapshots as f64),
            ),
            (
                "publish_p50_us".to_string(),
                Json::num(s.publish_p50_us as f64),
            ),
            (
                "publish_p99_us".to_string(),
                Json::num(s.publish_p99_us as f64),
            ),
            (
                "parallel_workers".to_string(),
                Json::num(s.parallel_workers as f64),
            ),
        ],
    )
}

/// Render the `explain` response payload: run metadata, stage spans,
/// the annotated operator list, and the rendered tree.
pub fn explain_frame(o: &ExplainOutcome) -> String {
    let stages: Vec<Json> = o
        .trace
        .stages
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("stage".to_string(), Json::str(s.stage.label())),
                ("us".to_string(), Json::num(s.duration_us() as f64)),
            ])
        })
        .collect();
    let operators: Vec<Json> = o
        .report
        .nodes
        .iter()
        .map(|n| {
            Json::Obj(vec![
                ("op".to_string(), Json::str(n.op.clone())),
                ("depth".to_string(), Json::num(n.depth as f64)),
                ("rows".to_string(), Json::num(n.rows as f64)),
                ("calls".to_string(), Json::num(n.calls as f64)),
                ("elapsed_us".to_string(), Json::num(n.elapsed_us as f64)),
                (
                    "index_lookups".to_string(),
                    Json::num(n.index_lookups as f64),
                ),
                ("index_hits".to_string(), Json::num(n.index_hits as f64)),
                (
                    "predicted_cost".to_string(),
                    match n.predicted_cost {
                        Some(c) => Json::num(c),
                        None => Json::Null,
                    },
                ),
            ])
        })
        .collect();
    ok_frame(
        "explain",
        vec![
            ("plan".to_string(), Json::str(o.plan.clone())),
            ("cache".to_string(), Json::str(o.cache.label())),
            ("rows".to_string(), Json::num(o.rows as f64)),
            ("total_us".to_string(), Json::num(o.trace.total_us as f64)),
            (
                "fingerprint".to_string(),
                Json::str(format!("{:016x}", o.fingerprint)),
            ),
            ("stages".to_string(), Json::Arr(stages)),
            ("operators".to_string(), Json::Arr(operators)),
            ("text".to_string(), Json::str(o.report.render())),
        ],
    )
}

/// Handle one request line against `svc`, emitting response frames via
/// `emit` (which returns `false` when the peer is gone — mid-stream,
/// that cancels the running query). Returns what the session loop
/// should do next.
pub fn handle_line(svc: &QueryService, line: &str, emit: &mut dyn FnMut(&str) -> bool) -> Control {
    let req = match parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            emit(&error_frame(&e));
            return Control::Continue;
        }
    };
    match req {
        Request::Load { uri, xml } => {
            let frame = match svc.load_xml(&uri, &xml) {
                Ok(()) => ok_frame("load", vec![("uri".to_string(), Json::str(uri))]),
                Err(e) => error_frame(&e.to_string()),
            };
            emit(&frame);
            Control::Continue
        }
        Request::LoadStandard { scale, seed } => {
            let frame = match svc.load_standard(scale, seed) {
                Ok(()) => {
                    let docs = svc.stats().documents;
                    ok_frame(
                        "load_standard",
                        vec![("documents".to_string(), Json::num(docs as f64))],
                    )
                }
                Err(e) => error_frame(&e.to_string()),
            };
            emit(&frame);
            Control::Continue
        }
        Request::Query(q) => {
            handle_query(svc, &q, emit);
            Control::Continue
        }
        Request::Update(op) => {
            let frame = match svc.update(&op) {
                Ok(r) => ok_frame(
                    "update",
                    vec![
                        ("uri".to_string(), Json::str(r.uri)),
                        ("epoch".to_string(), Json::num(r.epoch as f64)),
                        ("nodes".to_string(), Json::num(r.nodes as f64)),
                        ("update_seq".to_string(), Json::num(r.update_seq as f64)),
                    ],
                ),
                Err(e) => error_frame(&e.to_string()),
            };
            emit(&frame);
            Control::Continue
        }
        Request::Explain(q) => {
            let frame = match svc.explain(&q) {
                Ok(o) => explain_frame(&o),
                Err(e) => error_frame(&e.to_string()),
            };
            emit(&frame);
            Control::Continue
        }
        Request::Stats => {
            emit(&stats_frame(&svc.stats()));
            Control::Continue
        }
        Request::Metrics => {
            let text = render_prometheus(
                &svc.stats(),
                &svc.metrics().query_latency(),
                &svc.metrics().update_latency(),
                &svc.metrics().publish_latency(),
            );
            emit(&ok_frame(
                "metrics",
                vec![("text".to_string(), Json::str(text))],
            ));
            Control::Continue
        }
        Request::Close => {
            emit(&ok_frame("close", vec![]));
            Control::Close
        }
        Request::Shutdown => {
            emit(&ok_frame("shutdown", vec![]));
            Control::Shutdown
        }
    }
}

/// The three-part query exchange: `begin`, streamed `item`s, `done`.
/// Compile errors surface as a single error frame instead of `begin`;
/// runtime errors surface as an error frame in place of `done`, so the
/// client can always tell how the exchange ended.
fn handle_query(svc: &QueryService, q: &str, emit: &mut dyn FnMut(&str) -> bool) {
    let mut begun = false;
    // The plan label and cache outcome only come back with the final
    // outcome struct, so `begin` (emitted lazily before the first item,
    // or before `done` for empty results) just opens the exchange and
    // `done` carries the metadata. Items still flow incrementally.
    let mut on_item = |item: &str| -> bool {
        if !begun {
            begun = true;
            if !emit(
                &Json::Obj(vec![
                    ("ok".to_string(), Json::Bool(true)),
                    ("op".to_string(), Json::str("query")),
                    ("type".to_string(), Json::str("begin")),
                ])
                .render(),
            ) {
                return false;
            }
        }
        emit(
            &Json::Obj(vec![
                ("type".to_string(), Json::str("item")),
                ("xml".to_string(), Json::str(item)),
            ])
            .render(),
        )
    };
    match svc.query_streamed(q, &mut on_item) {
        Ok(outcome) => {
            if !begun {
                // Empty result: still open the exchange.
                if !emit(
                    &Json::Obj(vec![
                        ("ok".to_string(), Json::Bool(true)),
                        ("op".to_string(), Json::str("query")),
                        ("type".to_string(), Json::str("begin")),
                    ])
                    .render(),
                ) {
                    return;
                }
            }
            if outcome.cancelled {
                return; // Peer is gone; nothing left to tell it.
            }
            emit(
                &Json::Obj(vec![
                    ("type".to_string(), Json::str("done")),
                    ("rows".to_string(), Json::num(outcome.rows as f64)),
                    ("plan".to_string(), Json::str(outcome.plan)),
                    ("cache".to_string(), Json::str(outcome.cache.label())),
                    (
                        "elapsed_us".to_string(),
                        Json::num(outcome.elapsed.as_micros() as f64),
                    ),
                    (
                        "updates_seen".to_string(),
                        Json::num(outcome.updates_seen as f64),
                    ),
                ])
                .render(),
            );
        }
        Err(e) => {
            emit(&error_frame(&e.to_string()));
        }
    }
}
