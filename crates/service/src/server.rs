//! The TCP layer of `xqd-server`: thread-per-connection over one shared
//! [`QueryService`], newline-delimited JSON frames ([`crate::proto`]),
//! graceful shutdown.
//!
//! Connection reads run with a short socket timeout so every thread
//! periodically rechecks the shutdown flag; partial lines survive
//! timeout ticks in the connection's own buffer. Shutdown (from
//! [`ServerHandle::shutdown`] or a client `shutdown` frame) sets the
//! flag and wakes the blocking `accept` with a throwaway self-connect,
//! then joins every thread — no connection is torn down mid-frame.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::proto::{self, Control};
use crate::service::QueryService;

/// How long a connection read blocks before rechecking the shutdown
/// flag (and how long `accept` can take to notice it, worst case).
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// A line longer than this is a protocol violation and closes the
/// connection (bounds per-connection memory against garbage input).
const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Server knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:4555` (port `0` picks a free
    /// port; read the real one from [`ServerHandle::addr`]).
    pub addr: String,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:4555".to_string(),
        }
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] leaves the threads running for the
/// process lifetime (the binary's main thread parks on
/// [`ServerHandle::wait`] instead).
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<QueryService>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Bind `config.addr` and serve `service` until shutdown.
pub fn serve(service: Arc<QueryService>, config: &ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let service = Arc::clone(&service);
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("xqd-accept".to_string())
            .spawn(move || accept_loop(listener, addr, service, shutdown))?
    };
    Ok(ServerHandle {
        addr,
        service,
        shutdown,
        accept_thread: Some(accept_thread),
    })
}

impl ServerHandle {
    /// The bound address (resolves port `0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service (counters, direct embedding access).
    pub fn service(&self) -> &Arc<QueryService> {
        &self.service
    }

    /// Whether shutdown has been requested (by a client frame or
    /// [`ServerHandle::shutdown`]).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Block until the accept loop exits (i.e. until some client sends
    /// `shutdown` or another thread calls [`ServerHandle::shutdown`]).
    pub fn wait(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Request graceful shutdown and wait for every thread to finish.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept.
        let _ = TcpStream::connect(self.addr);
        self.wait();
    }
}

fn accept_loop(
    listener: TcpListener,
    addr: SocketAddr,
    service: Arc<QueryService>,
    shutdown: Arc<AtomicBool>,
) {
    let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let service = Arc::clone(&service);
        let shutdown_flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("xqd-conn".to_string())
            .spawn(move || {
                let stop = serve_connection(stream, &service, &shutdown_flag);
                if stop {
                    shutdown_flag.store(true, Ordering::SeqCst);
                    // Wake the acceptor so it observes the flag.
                    let _ = TcpStream::connect(addr);
                }
            });
        if let Ok(h) = handle {
            let mut threads = conn_threads.lock().expect("thread list lock");
            // Reap finished threads opportunistically so the list does
            // not grow with connection count.
            threads.retain(|t| !t.is_finished());
            threads.push(h);
        }
    }
    let threads = std::mem::take(&mut *conn_threads.lock().expect("thread list lock"));
    for t in threads {
        let _ = t.join();
    }
}

/// Decrements the active-session gauge when a connection thread exits,
/// whichever return path it takes.
struct SessionGuard<'a>(&'a QueryService);

impl Drop for SessionGuard<'_> {
    fn drop(&mut self) {
        self.0.metrics().session_ended();
    }
}

/// Serve one connection to completion. Returns `true` when the client
/// requested server shutdown.
fn serve_connection(stream: TcpStream, service: &QueryService, shutdown: &AtomicBool) -> bool {
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return false,
    };
    // Active-session gauge: decremented on every exit path by the guard.
    service.metrics().session_started();
    let _session = SessionGuard(service);
    let _ = reader.set_read_timeout(Some(POLL_INTERVAL));
    let mut writer = stream;
    let mut emit = |frame: &str| -> bool {
        writer
            .write_all(frame.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_ok()
    };

    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Drain complete lines already buffered before reading more.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes[..line_bytes.len() - 1]);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match proto::handle_line(service, line, &mut emit) {
                Control::Continue => {}
                Control::Close => return false,
                Control::Shutdown => return true,
            }
        }
        if shutdown.load(Ordering::SeqCst) {
            return false;
        }
        if buf.len() > MAX_FRAME_BYTES {
            emit(&proto::error_frame("frame too large"));
            return false;
        }
        match reader.read(&mut chunk) {
            Ok(0) => return false, // EOF — client hung up.
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                continue; // Poll tick: recheck the shutdown flag.
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
}
