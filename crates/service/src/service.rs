//! [`QueryService`] — the embeddable query facade.
//!
//! Owns the catalog through a [`CatalogHandle`] (see
//! [`xmldb::snapshot`]): immutable, `Arc`-swapped [`CatalogSnapshot`]
//! versions with one serialized clone-on-write writer. **The read path
//! takes no lock.** A query pins the current snapshot (a few atomic
//! operations) and executes against it from `begin` to `done` — plan
//! resolution and execution see one consistent, immutable catalog
//! version, and a writer publishing mid-stream neither stalls the
//! reader nor is stalled by it. The only mutex a query touches is the
//! [`PlanCache`]'s, for sub-microsecond lookups and inserts;
//! parse/normalize/unnest/compile all run outside it, so a slow compile
//! never blocks cache hits on other connections.
//!
//! Updates go through [`CatalogHandle::try_write`]: the writer clones
//! the current catalog (cheap — everything shares by `Arc` until
//! touched), applies the existing [`xmldb::Catalog`] delta-maintenance
//! wrappers (`insert_subtree` & friends, which keep indexes and
//! statistics consistent), and publishes the next version with one
//! atomic swap. The plan cache notices moved per-document `doc_seq`
//! stamps lazily at the next lookup (revalidate-or-recompile, see
//! [`crate::cache`]); whole-catalog loads move only the reloaded URIs'
//! stamps, so unrelated hot entries stay warm.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use engine::{ExplainReport, PhysPlan};
use nal::obs::{Clock, QueryTrace, Stage};
use nal::{EvalCtx, Metrics, Tuple};
use xmldb::{parse_document, Catalog, CatalogHandle, CatalogSnapshot, MaintenanceStats, NodeId};
use xquery::{normalize, parse_query, Fingerprint};

use crate::cache::{CacheCounters, CacheOutcome, Lookup, PlanCache};
use crate::metrics::MetricsRegistry;

/// Which executor runs the (cached or fresh) physical plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// [`engine::run_compiled`] — materializing operators.
    Materialized,
    /// [`engine::run_streaming_compiled`] — the pull-based pipeline
    /// (also what [`QueryService::query_streamed`] uses to ship items
    /// incrementally).
    Streaming,
}

/// Service construction knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Maximum number of cached plans (L0 text memo holds `4×` this).
    pub cache_capacity: usize,
    /// Compile index-backed access paths ([`engine::compile_indexed`])
    /// rather than pure scans.
    pub use_indexes: bool,
    /// Executor for [`QueryService::query`].
    pub exec: ExecMode,
    /// Log queries whose whole-query latency reaches this many
    /// microseconds to stderr, with fingerprint and stage breakdown
    /// (`None` disables the slow-query log).
    pub slow_query_us: Option<u64>,
    /// Degree of intra-query parallelism. Above 1, compiled plans get
    /// the [`engine::apply_parallel`] morsel rewrite and the streaming
    /// executor fans eligible segments out over this many workers (all
    /// sharing the query's pinned snapshot). `1` (the default) keeps
    /// plans and execution strictly serial. Plans are cached in their
    /// rewritten form but stay degree-independent — the worker count is
    /// an execution knob, so no recompile ever depends on it.
    pub parallel_workers: usize,
    /// Fitted cost-model constants for plan ranking. When set, plan
    /// selection runs [`unnest::rank_plans_calibrated`] with these
    /// constants (e.g. read off the bench harness's `calibration`
    /// experiment) instead of the uncalibrated priors.
    pub calibration: Option<unnest::Calibration>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            cache_capacity: 64,
            use_indexes: true,
            exec: ExecMode::Streaming,
            slow_query_us: None,
            parallel_workers: 1,
            calibration: None,
        }
    }
}

/// Anything the service can fail with. Everything renders to one line —
/// the wire protocol ships these verbatim.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// Parse or translate failure.
    Compile(String),
    /// Runtime failure from the executor.
    Exec(String),
    /// Update failure (storage layer or target resolution).
    Update(String),
    /// A referenced document URI is not registered.
    UnknownDocument(String),
    /// Malformed request (bad path syntax, empty target set, …).
    BadRequest(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Compile(m) => write!(f, "compile error: {m}"),
            ServiceError::Exec(m) => write!(f, "execution error: {m}"),
            ServiceError::Update(m) => write!(f, "update error: {m}"),
            ServiceError::UnknownDocument(uri) => write!(f, "unknown document `{uri}`"),
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Everything one query run reports back.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The serialized Ξ output stream.
    pub output: String,
    /// Result rows produced (root-tuple count).
    pub rows: usize,
    /// Label of the plan that ran (`nested`, `semijoin`, …).
    pub plan: String,
    /// How the plan cache participated.
    pub cache: CacheOutcome,
    /// Executor counters for this run.
    pub metrics: Metrics,
    /// Execution wall-clock (excludes planning/cache time).
    pub elapsed: Duration,
    /// `update_seq` of the catalog snapshot this query pinned —
    /// replaying the first `updates_seen` updates on a fresh store must
    /// reproduce `output` byte-for-byte.
    pub updates_seen: u64,
    /// True when a streaming consumer cancelled mid-stream (`output`
    /// then holds only what was produced before the cut).
    pub cancelled: bool,
    /// Stage-level timing of this run (parse/normalize/cache/unnest/
    /// plan/execute spans plus the whole-query total), all read off one
    /// monotonic clock — [`QueryOutcome::elapsed`] equals the execute
    /// span of this trace.
    pub trace: QueryTrace,
    /// FNV-1a fingerprint hash of the normalized query (the plan-cache
    /// identity; what the slow-query log prints).
    pub fingerprint: u64,
}

/// One mutation, addressed by document URI and a structural path
/// (evaluated with the [`xpath`] crate from the document node; the
/// *first* match in document order is the target).
#[derive(Clone, Debug)]
pub enum UpdateOp {
    /// Parse `xml` and insert its root element as the last child of the
    /// first node matching `parent`.
    InsertXml {
        /// Target document URI.
        uri: String,
        /// Path selecting the parent node.
        parent: String,
        /// Well-formed fragment to insert.
        xml: String,
    },
    /// Delete the subtree rooted at the first node matching `path`.
    DeleteFirst {
        /// Target document URI.
        uri: String,
        /// Path selecting the doomed node.
        path: String,
    },
    /// Replace the text content of the first node matching `path`
    /// (a text or attribute node, or an element with a single text
    /// child — resolved by the storage layer's rules).
    ReplaceText {
        /// Target document URI.
        uri: String,
        /// Path selecting the node.
        path: String,
        /// Replacement text.
        text: String,
    },
}

/// What an applied update reports back.
#[derive(Clone, Debug)]
pub struct UpdateReport {
    /// Document that was touched.
    pub uri: String,
    /// The document's index epoch *after* the update.
    pub epoch: u64,
    /// Nodes inserted or removed (1 for text replacement).
    pub nodes: usize,
    /// `update_seq` of the snapshot this update published (1-based).
    pub update_seq: u64,
}

/// Point-in-time counter snapshot ([`QueryService::stats`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Queries served (successful runs).
    pub queries: u64,
    /// Result rows streamed or materialized across all queries.
    pub rows_streamed: u64,
    /// Updates applied.
    pub updates: u64,
    /// Cache counters (hits, revalidations, misses, invalidations,
    /// evictions, memo hits).
    pub cache: CacheCounters,
    /// Plans currently cached.
    pub cached_plans: usize,
    /// Text-memo entries currently cached.
    pub memo_entries: usize,
    /// Documents registered.
    pub documents: usize,
    /// Current update sequence number (the published snapshot's stamp).
    pub update_seq: u64,
    /// `update_seq` of the currently published catalog snapshot — the
    /// version a query pinning right now would see. Alias of
    /// `update_seq`, named for the snapshot-chain surface.
    pub snapshot_version: u64,
    /// Catalog versions still referenced: the current one plus every
    /// older snapshot an in-flight query still pins. Steady state with
    /// no running query is 1; a persistently higher value means readers
    /// lag versions (long streams over a churning writer).
    pub live_snapshots: u64,
    /// Failed requests (compile, execution, update, or load errors).
    pub errors: u64,
    /// Currently open server connections.
    pub active_sessions: u64,
    /// Queries resolved as plain plan-cache hits.
    pub plan_hits: u64,
    /// Queries resolved by revalidating a stale cached plan.
    pub plan_revalidations: u64,
    /// Queries that recompiled after an invalidated cache entry.
    pub plan_recompiles: u64,
    /// Queries compiled from scratch (no cached plan).
    pub plan_misses: u64,
    /// Cumulative index maintenance counters (posting writes, full
    /// builds, delta updates) from the catalog's index layer.
    pub maintenance: MaintenanceStats,
    /// Median whole-query latency (µs, histogram bucket bound).
    pub query_p50_us: u64,
    /// 90th-percentile whole-query latency (µs).
    pub query_p90_us: u64,
    /// 99th-percentile whole-query latency (µs).
    pub query_p99_us: u64,
    /// Median writer publish latency (µs): clone-on-write + mutation +
    /// atomic swap, for updates and loads.
    pub publish_p50_us: u64,
    /// 99th-percentile writer publish latency (µs).
    pub publish_p99_us: u64,
    /// Configured degree of intra-query parallelism
    /// ([`ServiceConfig::parallel_workers`]) — a gauge, mirrored on the
    /// Prometheus surface as `xqd_parallel_workers`.
    pub parallel_workers: u64,
}

/// What [`QueryService::explain`] reports: the per-operator annotated
/// plan plus the same run metadata a normal query returns.
#[derive(Debug)]
pub struct ExplainOutcome {
    /// The annotated plan tree — measured rows/calls/time/probes and
    /// predicted cost per operator.
    pub report: ExplainReport,
    /// Label of the plan that ran (`nested`, `semijoin`, …).
    pub plan: String,
    /// How the plan cache participated.
    pub cache: CacheOutcome,
    /// Result rows produced.
    pub rows: usize,
    /// Stage-level timing of this run.
    pub trace: QueryTrace,
    /// Fingerprint hash of the normalized query.
    pub fingerprint: u64,
}

/// The embeddable query service (see module docs).
pub struct QueryService {
    config: ServiceConfig,
    catalog: CatalogHandle,
    cache: Mutex<PlanCache>,
    metrics: MetricsRegistry,
}

impl QueryService {
    /// An empty service (no documents registered yet).
    pub fn new(config: ServiceConfig) -> QueryService {
        QueryService::with_catalog(Catalog::new(), config)
    }

    /// Wrap an existing catalog (published as snapshot version 0).
    pub fn with_catalog(catalog: Catalog, config: ServiceConfig) -> QueryService {
        QueryService {
            config,
            catalog: CatalogHandle::new(catalog),
            cache: Mutex::new(PlanCache::new(config.cache_capacity)),
            metrics: MetricsRegistry::new(),
        }
    }

    /// The configuration this service was built with.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Parse `xml` and register it under `uri` (replacing any previous
    /// document with that URI), publishing the next snapshot version.
    /// Only this URI's `doc_seq` stamp moves, so cached plans over other
    /// documents keep hitting; entries referencing `uri` revalidate or
    /// recompile lazily at their next lookup.
    pub fn load_xml(&self, uri: &str, xml: &str) -> Result<(), ServiceError> {
        let doc = parse_document(uri, xml).map_err(|e| {
            self.metrics.record_error();
            ServiceError::BadRequest(format!("{e}"))
        })?;
        let clock = Clock::start();
        self.catalog.write(|catalog| {
            catalog.register(doc);
        });
        self.metrics.record_publish(clock.now_us());
        Ok(())
    }

    /// Replace the whole catalog with the standard six-document paper
    /// workload at `scale` ([`xmldb::gen::standard_catalog`]), published
    /// as the next snapshot version. The version stamp advances
    /// monotonically, so stale cache entries can never alias the fresh
    /// documents — they revalidate or recompile lazily, no eager purge.
    pub fn load_standard(&self, scale: usize, seed: u64) -> Result<(), ServiceError> {
        let fresh = xmldb::gen::standard_catalog(scale, 2, seed);
        let clock = Clock::start();
        self.catalog.publish_replace(fresh);
        self.metrics.record_publish(clock.now_us());
        Ok(())
    }

    /// Run `text` to completion and return the materialized outcome.
    pub fn query(&self, text: &str) -> Result<QueryOutcome, ServiceError> {
        let r = self.query_inner(text);
        if r.is_err() {
            self.metrics.record_error();
        }
        r
    }

    fn query_inner(&self, text: &str) -> Result<QueryOutcome, ServiceError> {
        let clock = Clock::start();
        let mut trace = QueryTrace::default();
        let snapshot = self.catalog.pin();
        let updates_seen = snapshot.update_seq();
        let (plan, label, outcome, fingerprint) =
            self.prepare(text, &snapshot, &clock, &mut trace)?;
        let exec_start = clock.now_us();
        let result = match self.config.exec {
            ExecMode::Materialized => engine::run_compiled(&plan, &snapshot),
            ExecMode::Streaming => {
                engine::run_streaming_parallel(&plan, &snapshot, self.config.parallel_workers)
            }
        }
        .map_err(|e| ServiceError::Exec(format!("{e}")))?;
        let exec_end = clock.now_us();
        trace.record_stage(Stage::Execute, exec_start, exec_end);
        trace.total_us = clock.now_us();
        // One clock for everything: the reported execution time IS the
        // execute span, so `elapsed_us` and the stage breakdown agree.
        let elapsed = Duration::from_micros(exec_end - exec_start);
        self.metrics
            .record_query(outcome, result.rows.len() as u64, trace.total_us);
        self.maybe_log_slow(fingerprint, &trace);
        Ok(QueryOutcome {
            output: result.output,
            rows: result.rows.len(),
            plan: label,
            cache: outcome,
            metrics: result.metrics,
            elapsed,
            updates_seen,
            cancelled: false,
            trace,
            fingerprint,
        })
    }

    /// Run `text` with the streaming executor, invoking `on_item` with
    /// each Ξ output increment as the root cursor produces it (one call
    /// per root tuple that extended the output; the concatenation of all
    /// increments is byte-identical to [`QueryOutcome::output`] of a
    /// materialized run). `on_item` returning `false` cancels the run —
    /// this is how a dropped client connection stops a long stream.
    ///
    /// The whole stream executes against the snapshot pinned at entry:
    /// no lock is held, a writer publishing versions mid-stream never
    /// stalls `begin`→`done` (and is never stalled by it), and the
    /// pinned version is released when the stream ends.
    pub fn query_streamed(
        &self,
        text: &str,
        on_item: &mut dyn FnMut(&str) -> bool,
    ) -> Result<QueryOutcome, ServiceError> {
        let r = self.query_streamed_inner(text, on_item);
        if r.is_err() {
            self.metrics.record_error();
        }
        r
    }

    fn query_streamed_inner(
        &self,
        text: &str,
        on_item: &mut dyn FnMut(&str) -> bool,
    ) -> Result<QueryOutcome, ServiceError> {
        let clock = Clock::start();
        let mut trace = QueryTrace::default();
        let snapshot = self.catalog.pin();
        let updates_seen = snapshot.update_seq();
        let (plan, label, outcome, fingerprint) =
            self.prepare(text, &snapshot, &clock, &mut trace)?;
        let exec_start = clock.now_us();
        let mut ctx = EvalCtx::new(&snapshot);
        ctx.parallel = self.config.parallel_workers.max(1);
        let env = Tuple::empty();
        let mut root = engine::pipeline::lower(&plan, &env);
        let mut rows = 0usize;
        let mut flushed = 0usize;
        let mut cancelled = false;
        loop {
            match root.next(&mut ctx) {
                Ok(Some(_tuple)) => {
                    rows += 1;
                    if ctx.out.len() > flushed && !on_item(&ctx.out[flushed..]) {
                        cancelled = true;
                        break;
                    }
                    flushed = ctx.out.len();
                }
                Ok(None) => break,
                Err(e) => {
                    drop(root);
                    return Err(ServiceError::Exec(format!("{e}")));
                }
            }
        }
        if !cancelled && ctx.out.len() > flushed {
            on_item(&ctx.out[flushed..]);
        }
        let exec_end = clock.now_us();
        drop(root);
        trace.record_stage(Stage::Execute, exec_start, exec_end);
        trace.total_us = clock.now_us();
        let elapsed = Duration::from_micros(exec_end - exec_start);
        self.metrics
            .record_query(outcome, rows as u64, trace.total_us);
        self.maybe_log_slow(fingerprint, &trace);
        Ok(QueryOutcome {
            output: ctx.take_output(),
            rows,
            plan: label,
            cache: outcome,
            metrics: ctx.metrics,
            elapsed,
            updates_seen,
            cancelled,
            trace,
            fingerprint,
        })
    }

    /// Apply one mutation through the catalog's delta-maintenance
    /// wrappers and publish the next snapshot version. Writers
    /// serialize among themselves; readers are never blocked (in-flight
    /// queries keep their pinned versions, new queries pin the new one).
    /// A failed update publishes nothing.
    pub fn update(&self, op: &UpdateOp) -> Result<UpdateReport, ServiceError> {
        let clock = Clock::start();
        let r = self.update_inner(op);
        match &r {
            Ok(_) => self.metrics.record_update(clock.now_us()),
            Err(_) => self.metrics.record_error(),
        }
        r
    }

    fn update_inner(&self, op: &UpdateOp) -> Result<UpdateReport, ServiceError> {
        let clock = Clock::start();
        let ((uri, nodes, epoch), update_seq) = self.catalog.try_write(|catalog| {
            let (uri, nodes) = match op {
                UpdateOp::InsertXml { uri, parent, xml } => {
                    let id = catalog
                        .by_uri(uri)
                        .ok_or_else(|| ServiceError::UnknownDocument(uri.clone()))?;
                    let target = first_match(catalog, id, parent)?;
                    let frag = parse_document("fragment", xml)
                        .map_err(|e| ServiceError::BadRequest(format!("bad fragment: {e}")))?;
                    let frag_root = frag
                        .root_element()
                        .ok_or_else(|| ServiceError::BadRequest("empty fragment".to_string()))?;
                    catalog
                        .insert_subtree(id, target, None, &frag, frag_root)
                        .map_err(|e| ServiceError::Update(format!("{e}")))?;
                    (uri.clone(), 1)
                }
                UpdateOp::DeleteFirst { uri, path } => {
                    let id = catalog
                        .by_uri(uri)
                        .ok_or_else(|| ServiceError::UnknownDocument(uri.clone()))?;
                    let target = first_match(catalog, id, path)?;
                    let removed = catalog
                        .delete_subtree(id, target)
                        .map_err(|e| ServiceError::Update(format!("{e}")))?;
                    (uri.clone(), removed)
                }
                UpdateOp::ReplaceText { uri, path, text } => {
                    let id = catalog
                        .by_uri(uri)
                        .ok_or_else(|| ServiceError::UnknownDocument(uri.clone()))?;
                    let mut target = first_match(catalog, id, path)?;
                    // Structural paths address elements; the storage layer
                    // wants the text node itself. Resolve an element target
                    // to its first text child.
                    {
                        let doc = catalog.doc(id);
                        if doc.kind(target).is_element() {
                            target = doc
                                .children(target)
                                .find(|&c| matches!(doc.kind(c), xmldb::NodeKind::Text))
                                .ok_or_else(|| {
                                    ServiceError::BadRequest(format!(
                                        "path `{path}` selects an element with no text child"
                                    ))
                                })?;
                        }
                    }
                    catalog
                        .replace_text(id, target, text)
                        .map_err(|e| ServiceError::Update(format!("{e}")))?;
                    (uri.clone(), 1)
                }
            };
            let id = catalog.by_uri(&uri).expect("checked above");
            let epoch = catalog.epoch(id);
            Ok((uri, nodes, epoch))
        })?;
        self.metrics.record_publish(clock.now_us());
        Ok(UpdateReport {
            uri,
            epoch,
            nodes,
            update_seq,
        })
    }

    /// Counter snapshot. Every counter is read from the same
    /// [`MetricsRegistry`] the `metrics` op renders, so the `stats` and
    /// `metrics` wire surfaces agree by construction.
    pub fn stats(&self) -> ServiceStats {
        let (cache, cached_plans, memo_entries) = {
            let c = self.cache.lock().expect("cache lock");
            (c.counters(), c.len(), c.memo_len())
        };
        let snapshot = self.catalog.pin();
        let (plan_hits, plan_revalidations, plan_recompiles, plan_misses) =
            self.metrics.plan_outcomes();
        let latency = self.metrics.query_latency();
        let publish = self.metrics.publish_latency();
        ServiceStats {
            queries: self.metrics.queries(),
            rows_streamed: self.metrics.rows_streamed(),
            updates: self.metrics.updates(),
            cache,
            cached_plans,
            memo_entries,
            documents: snapshot.len(),
            update_seq: snapshot.update_seq(),
            snapshot_version: snapshot.update_seq(),
            live_snapshots: self.catalog.live_snapshots() as u64,
            errors: self.metrics.errors(),
            active_sessions: self.metrics.active_sessions(),
            plan_hits,
            plan_revalidations,
            plan_recompiles,
            plan_misses,
            maintenance: snapshot.index_maintenance_stats(),
            query_p50_us: latency.quantile_us(0.5),
            query_p90_us: latency.quantile_us(0.9),
            query_p99_us: latency.quantile_us(0.99),
            publish_p50_us: publish.quantile_us(0.5),
            publish_p99_us: publish.quantile_us(0.99),
            parallel_workers: self.config.parallel_workers.max(1) as u64,
        }
    }

    /// The service's metrics registry (histogram snapshots, gauges).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// EXPLAIN ANALYZE: resolve `text` exactly as [`QueryService::query`]
    /// would (same cache path, same executor choice), run it with
    /// per-operator tracing, and pair every operator's measured
    /// rows/calls/time/probes with the cost model's predicted cost for
    /// that node. Counts toward the query counters like any other run.
    pub fn explain(&self, text: &str) -> Result<ExplainOutcome, ServiceError> {
        let r = self.explain_inner(text);
        if r.is_err() {
            self.metrics.record_error();
        }
        r
    }

    fn explain_inner(&self, text: &str) -> Result<ExplainOutcome, ServiceError> {
        let clock = Clock::start();
        let mut trace = QueryTrace::default();
        let snapshot = self.catalog.pin();
        let (plan, label, outcome, fingerprint) =
            self.prepare(text, &snapshot, &clock, &mut trace)?;
        let exec_start = clock.now_us();
        let workers = self.config.parallel_workers.max(1);
        let (result, exec_trace) = match self.config.exec {
            ExecMode::Materialized => engine::run_traced(&plan, &snapshot),
            ExecMode::Streaming => engine::run_streaming_traced_parallel(&plan, &snapshot, workers),
        }
        .map_err(|e| ServiceError::Exec(format!("{e}")))?;
        let exec_end = clock.now_us();
        trace.record_stage(Stage::Execute, exec_start, exec_end);
        trace.total_us = clock.now_us();
        let mut report = ExplainReport::from_trace(&plan, &exec_trace);
        report.annotate_parallel(workers);
        report.annotate_costs(&unnest::plan_cost_map(
            &plan,
            &snapshot,
            self.config.use_indexes,
        ));
        self.metrics
            .record_query(outcome, result.rows.len() as u64, trace.total_us);
        self.maybe_log_slow(fingerprint, &trace);
        Ok(ExplainOutcome {
            report,
            plan: label,
            cache: outcome,
            rows: result.rows.len(),
            trace,
            fingerprint,
        })
    }

    fn maybe_log_slow(&self, fingerprint: u64, trace: &QueryTrace) {
        if let Some(threshold) = self.config.slow_query_us {
            if trace.total_us >= threshold {
                eprintln!(
                    "[xqd] slow query fp={fingerprint:016x} total={}us {}",
                    trace.total_us,
                    trace.breakdown()
                );
            }
        }
    }

    /// Run `f` against the current snapshot (test and bench hook).
    pub fn with_catalog_read<R>(&self, f: impl FnOnce(&Catalog) -> R) -> R {
        f(&self.catalog.pin())
    }

    /// Pin the current catalog snapshot — the same version a query
    /// starting now would execute against. Test and bench hook for
    /// observing snapshot lifetimes (`Arc::strong_count`) and stamps.
    pub fn snapshot(&self) -> Arc<CatalogSnapshot> {
        self.catalog.pin()
    }

    /// Resolve `text` to an executable plan: L0 text memo → L1 plan
    /// cache → full frontend. See [`crate::cache`] for the outcome
    /// taxonomy. Compilation runs *outside* the cache mutex. Records
    /// parse/normalize/cache-lookup/unnest/plan stage spans on `trace`
    /// (all read off `clock`) and returns the fingerprint hash along
    /// with the plan.
    fn prepare(
        &self,
        text: &str,
        snapshot: &CatalogSnapshot,
        clock: &Clock,
        trace: &mut QueryTrace,
    ) -> Result<(Arc<PhysPlan>, String, CacheOutcome, u64), ServiceError> {
        let use_indexes = self.config.use_indexes;
        let mut invalidated = false;
        let t0 = clock.now_us();
        let looked_up = {
            let mut cache = self.cache.lock().expect("cache lock");
            cache.memo_get(text, snapshot).map(|fp| {
                let lookup = cache.lookup(&fp, use_indexes, snapshot);
                (fp, lookup)
            })
        };
        trace.record_stage(Stage::CacheLookup, t0, clock.now_us());
        let memo_fp = match looked_up {
            Some((fp, Lookup::Hit(plan, label))) => {
                return Ok((plan, label, CacheOutcome::Hit, fp.hash));
            }
            Some((fp, Lookup::Revalidated(plan, label))) => {
                return Ok((plan, label, CacheOutcome::Revalidated, fp.hash));
            }
            Some((fp, Lookup::Invalidated)) => {
                invalidated = true;
                Some(fp)
            }
            Some((fp, Lookup::Miss)) => Some(fp),
            None => None,
        };

        // Slow path. Parsing + normalization are needed for translation
        // even when the fingerprint was memoized.
        let t = clock.now_us();
        let parsed = parse_query(text).map_err(|e| ServiceError::Compile(format!("{e}")))?;
        trace.record_stage(Stage::Parse, t, clock.now_us());
        let t = clock.now_us();
        let normalized = normalize(&parsed, snapshot);
        trace.record_stage(Stage::Normalize, t, clock.now_us());
        let fp = match memo_fp {
            Some(fp) => fp,
            None => {
                let fp = Fingerprint::of_normalized(&normalized);
                let t = clock.now_us();
                let lookup = {
                    let mut cache = self.cache.lock().expect("cache lock");
                    cache.memo_put(text, &fp, snapshot);
                    // Another query text may have compiled this same
                    // canonical form already.
                    cache.lookup(&fp, use_indexes, snapshot)
                };
                trace.record_stage(Stage::CacheLookup, t, clock.now_us());
                match lookup {
                    Lookup::Hit(plan, label) => {
                        return Ok((plan, label, CacheOutcome::Hit, fp.hash));
                    }
                    Lookup::Revalidated(plan, label) => {
                        return Ok((plan, label, CacheOutcome::Revalidated, fp.hash));
                    }
                    Lookup::Invalidated => {
                        invalidated = true;
                        fp
                    }
                    Lookup::Miss => fp,
                }
            }
        };

        let t = clock.now_us();
        let expr = xquery::translate(&normalized, snapshot)
            .map_err(|e| ServiceError::Compile(format!("{e}")))?;
        let candidates = unnest::enumerate_plans(&expr, snapshot);
        let ranked = match self.config.calibration {
            Some(cal) => unnest::rank_plans_calibrated(candidates, snapshot, use_indexes, cal),
            None => unnest::rank_plans_with(candidates, snapshot, use_indexes),
        };
        trace.record_stage(Stage::Unnest, t, clock.now_us());
        let (choice, _estimate) = ranked
            .into_iter()
            .next()
            .expect("enumerate_plans yields at least the nested plan");
        let label = choice.label;
        let t = clock.now_us();
        let mut compiled = if use_indexes {
            engine::compile_indexed(&choice.expr, snapshot)
        } else {
            engine::compile(&choice.expr)
        };
        if self.config.parallel_workers > 1 {
            // Cache the plan in rewritten form: the segments are
            // degree-independent (worker count is an EvalCtx knob), so
            // one cached plan serves every later degree including 1.
            compiled = engine::apply_parallel(&compiled);
        }
        let plan = Arc::new(compiled);
        self.cache.lock().expect("cache lock").insert(
            &fp,
            use_indexes,
            Arc::clone(&plan),
            label.clone(),
            snapshot,
        );
        trace.record_stage(Stage::Plan, t, clock.now_us());
        let outcome = if invalidated {
            CacheOutcome::Recompiled
        } else {
            CacheOutcome::Miss
        };
        Ok((plan, label, outcome, fp.hash))
    }
}

/// First node (document order) matching `path` in document `id`,
/// evaluated from the document node.
fn first_match(catalog: &Catalog, id: xmldb::DocId, path: &str) -> Result<NodeId, ServiceError> {
    let parsed = xpath::parse_path(path)
        .map_err(|e| ServiceError::BadRequest(format!("bad path `{path}`: {e}")))?;
    let mut counters = xpath::EvalCounters::default();
    let doc = catalog.doc(id);
    let hits = xpath::eval_path(doc, &[NodeId::DOCUMENT], &parsed, &mut counters);
    hits.into_iter().next().ok_or_else(|| {
        ServiceError::BadRequest(format!("path `{path}` matches nothing in `{}`", doc.uri))
    })
}
