//! Concurrent serving: N reader threads running the full Q1–Q10
//! workload against one shared [`QueryService`] while an updater thread
//! interleaves deterministic mutations. Every result a reader observed
//! is replayed afterwards on a fresh single-threaded service with the
//! same update prefix applied — outputs must be byte-identical, which
//! pins down both cache coherence (no stale plan ever produced stale
//! *data*) and snapshot isolation (a query sees exactly the catalog
//! state its `updates_seen` stamp claims).

use ordered_unnesting::workloads;
use ordered_unnesting::xmldb;
use service::{ExecMode, QueryService, ServiceConfig, UpdateOp};
use std::collections::BTreeMap;
use std::sync::Arc;

const SCALE: usize = 25;
const SEED: u64 = 11;
const READERS: usize = 4;
const ROUNDS: usize = 3;
const UPDATES: usize = 6;

fn standard_service() -> QueryService {
    QueryService::with_catalog(
        xmldb::gen::standard_catalog(SCALE, 2, SEED),
        ServiceConfig {
            cache_capacity: 64,
            use_indexes: true,
            exec: ExecMode::Streaming,
            slow_query_us: None,
            ..ServiceConfig::default()
        },
    )
}

fn queries() -> Vec<&'static str> {
    workloads::ALL
        .iter()
        .chain(workloads::RANGE.iter())
        .chain(workloads::COMPOSITE.iter())
        .map(|w| w.query)
        .collect()
}

/// The k-th update (0-based), a pure function of `k` so any prefix can
/// be replayed deterministically.
fn update_op(k: usize) -> UpdateOp {
    match k % 3 {
        0 => UpdateOp::InsertXml {
            uri: "bib.xml".to_string(),
            parent: "/bib".to_string(),
            xml: format!(
                "<book year=\"19{:02}\"><title>Concurrent Volume {k}</title>\
                 <author><last>Writer</last><first>W{k}</first></author>\
                 <publisher>pub{k}</publisher><price>{k}.50</price></book>",
                60 + k
            ),
        },
        1 => UpdateOp::DeleteFirst {
            uri: "bib.xml".to_string(),
            path: "/bib/book".to_string(),
        },
        _ => UpdateOp::ReplaceText {
            uri: "reviews.xml".to_string(),
            path: "/reviews/entry/title".to_string(),
            text: format!("Rewritten Review {k}"),
        },
    }
}

#[test]
fn concurrent_readers_with_interleaved_updates_match_serial_replay() {
    let svc = Arc::new(standard_service());
    let qs = queries();

    // Readers record (query index, updates_seen, output) triples.
    let mut reader_threads = Vec::new();
    for r in 0..READERS {
        let svc = Arc::clone(&svc);
        let qs = qs.clone();
        reader_threads.push(std::thread::spawn(move || {
            let mut observed: Vec<(usize, u64, String)> = Vec::new();
            for round in 0..ROUNDS {
                for qi in 0..qs.len() {
                    // Stagger the schedules so threads hit different
                    // queries at the same time.
                    let qi = (qi + r + round) % qs.len();
                    let out = svc.query(qs[qi]).expect("concurrent query");
                    observed.push((qi, out.updates_seen, out.output));
                }
            }
            observed
        }));
    }

    // One serialized writer applying the deterministic update sequence,
    // yielding between mutations so readers interleave.
    let updater = {
        let svc = Arc::clone(&svc);
        std::thread::spawn(move || {
            for k in 0..UPDATES {
                svc.update(&update_op(k)).expect("update applies");
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        })
    };

    let mut observed: Vec<(usize, u64, String)> = Vec::new();
    for t in reader_threads {
        observed.extend(t.join().expect("reader thread"));
    }
    updater.join().expect("updater thread");

    // Replay: for each distinct (query, update-prefix) pair, a fresh
    // service with the first `seen` updates applied must reproduce the
    // concurrent output byte-for-byte.
    let mut expected: BTreeMap<(usize, u64), String> = BTreeMap::new();
    let mut replay_services: BTreeMap<u64, QueryService> = BTreeMap::new();
    let mut mismatches = 0usize;
    for (qi, seen, output) in &observed {
        let reference = expected.entry((*qi, *seen)).or_insert_with(|| {
            let fresh = replay_services.entry(*seen).or_insert_with(|| {
                let s = standard_service();
                for k in 0..*seen as usize {
                    s.update(&update_op(k)).expect("replay update");
                }
                s
            });
            fresh.query(qs[*qi]).expect("replay query").output
        });
        if output != reference {
            mismatches += 1;
        }
    }
    assert_eq!(
        mismatches,
        0,
        "{mismatches} of {} concurrent results diverged from serial replay",
        observed.len()
    );

    // Sanity: the cache actually served concurrent traffic.
    let stats = svc.stats();
    assert_eq!(
        stats.queries,
        (READERS * ROUNDS * qs.len()) as u64,
        "every reader query must be counted"
    );
    assert!(
        stats.cache.hits > 0,
        "with {READERS} readers × {ROUNDS} rounds some queries must hit"
    );
    assert_eq!(stats.updates, UPDATES as u64);
    assert_eq!(stats.update_seq, UPDATES as u64);
}

/// Hammer one hot query from many threads with no updates at all: all
/// but the first run must be cache hits, and every output identical.
#[test]
fn hot_query_is_hit_for_every_thread_after_warmup() {
    let svc = Arc::new(standard_service());
    let q = workloads::Q3_EXISTENTIAL.query;
    let baseline = svc.query(q).expect("warmup").output;
    let threads: Vec<_> = (0..READERS)
        .map(|_| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                (0..5)
                    .map(|_| svc.query(workloads::Q3_EXISTENTIAL.query).unwrap())
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for t in threads {
        for out in t.join().expect("thread") {
            assert_eq!(out.output, baseline);
            assert_eq!(out.cache.label(), "hit");
        }
    }
    let stats = svc.stats();
    assert_eq!(stats.cache.hits, (READERS * 5) as u64);
    assert_eq!(stats.cache.misses, 1);
}
