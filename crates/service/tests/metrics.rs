//! Observability invariants: latency-histogram algebra (unit +
//! property tests), stage-span accounting on real queries, agreement
//! between the `stats` view and the Prometheus exposition after a
//! scripted mixed session, and the EXPLAIN report round-trip through
//! the service.

use proptest::prelude::*;
use service::{
    render_prometheus, CacheOutcome, ExecMode, HistogramSnapshot, LatencyHistogram, QueryService,
    ServiceConfig, UpdateOp,
};

fn service() -> QueryService {
    QueryService::new(ServiceConfig {
        cache_capacity: 16,
        use_indexes: true,
        exec: ExecMode::Streaming,
        slow_query_us: None,
        ..ServiceConfig::default()
    })
}

const BIB: &str = "<bib>\
    <book year=\"1994\"><title>TCP/IP Illustrated</title>\
      <author><last>Stevens</last><first>W.</first></author>\
      <publisher>Addison-Wesley</publisher><price>65.95</price></book>\
    <book year=\"2000\"><title>Data on the Web</title>\
      <author><last>Abiteboul</last><first>Serge</first></author>\
      <publisher>Morgan Kaufmann</publisher><price>39.95</price></book>\
    </bib>";

const TITLES: &str = r#"let $d := doc("bib.xml") for $t in $d//book/title return <t>{ $t }</t>"#;

// ---------------------------------------------------------------------
// Histogram: bucket boundaries, quantiles, merge
// ---------------------------------------------------------------------

#[test]
fn boundary_observations_are_inclusive() {
    // An observation exactly on a bucket bound must land in that
    // bucket (Prometheus `le` semantics), so its quantile reads back
    // as the same bound.
    for &b in &service::metrics::BUCKET_BOUNDS_US {
        let h = LatencyHistogram::new();
        h.observe_us(b);
        let snap = h.snapshot();
        assert_eq!(snap.quantile_us(0.5), b, "bound {b}");
        assert_eq!(snap.quantile_us(1.0), b, "bound {b}");
    }
}

#[test]
fn overflow_observations_report_the_last_finite_bound() {
    let h = LatencyHistogram::new();
    let top = *service::metrics::BUCKET_BOUNDS_US.last().unwrap();
    h.observe_us(top + 1);
    let snap = h.snapshot();
    assert_eq!(snap.count(), 1);
    assert_eq!(snap.quantile_us(0.99), top);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Quantiles are monotone in q and bounded by the extreme buckets.
    #[test]
    fn quantiles_are_monotone(samples in prop::collection::vec(0u64..2_000_000, 1..64)) {
        let h = LatencyHistogram::new();
        for &s in &samples {
            h.observe_us(s);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), samples.len() as u64);
        let qs = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0];
        let vals: Vec<u64> = qs.iter().map(|&q| snap.quantile_us(q)).collect();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles must be monotone: {:?}", vals);
        }
        // Every quantile is at least the bucket of the smallest sample
        // and at most the bucket of the largest (or the last finite
        // bound for overflow samples).
        let lo = snap.quantile_us(0.0);
        let hi = snap.quantile_us(1.0);
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        let top = *service::metrics::BUCKET_BOUNDS_US.last().unwrap();
        prop_assert!(min.min(top) <= lo, "p0 bucket bound {lo} below smallest sample {min}");
        prop_assert!(hi <= top.max(max), "p100 {hi} beyond both top bound and max {max}");
        prop_assert!(snap.sum_us == samples.iter().sum::<u64>());
    }

    // Merging two histograms equals observing the concatenation.
    #[test]
    fn merge_is_concatenation(
        a in prop::collection::vec(0u64..2_000_000, 0..32),
        b in prop::collection::vec(0u64..2_000_000, 0..32),
    ) {
        let ha = LatencyHistogram::new();
        let hb = LatencyHistogram::new();
        let hall = LatencyHistogram::new();
        for &s in &a {
            ha.observe_us(s);
            hall.observe_us(s);
        }
        for &s in &b {
            hb.observe_us(s);
            hall.observe_us(s);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        prop_assert_eq!(merged, hall.snapshot());
    }
}

#[test]
fn empty_snapshot_is_all_zero() {
    let snap = HistogramSnapshot::default();
    assert_eq!(snap.count(), 0);
    assert_eq!(snap.quantile_us(0.99), 0);
}

// ---------------------------------------------------------------------
// Stage spans on real queries
// ---------------------------------------------------------------------

#[test]
fn stage_spans_partition_the_query_time() {
    let svc = service();
    svc.load_xml("bib.xml", BIB).expect("load");
    for round in 0..2 {
        let out = svc.query(TITLES).expect("query");
        let trace = &out.trace;
        assert!(
            !trace.stages.is_empty(),
            "round {round}: no stage spans recorded"
        );
        // Stages are disjoint phases of one query, so their durations
        // sum to at most the whole-query time.
        assert!(
            trace.stages_total_us() <= trace.total_us,
            "round {round}: stage sum {} exceeds total {}",
            trace.stages_total_us(),
            trace.total_us
        );
        // Every span is well-formed and the execute stage is present.
        for s in &trace.stages {
            assert!(s.start_us <= s.end_us, "round {round}: span runs backwards");
        }
        assert!(
            trace
                .stages
                .iter()
                .any(|s| s.stage == nal::obs::Stage::Execute),
            "round {round}: execute span missing"
        );
    }
    // Warm run skips the frontend: no parse span after a cache hit.
    let warm = svc.query(TITLES).expect("warm");
    assert_eq!(warm.cache, CacheOutcome::Hit);
    assert!(warm
        .trace
        .stages
        .iter()
        .all(|s| s.stage != nal::obs::Stage::Parse));
}

// ---------------------------------------------------------------------
// stats vs Prometheus exposition after a mixed session
// ---------------------------------------------------------------------

#[test]
fn prometheus_exposition_agrees_with_stats() {
    let svc = service();
    svc.load_xml("bib.xml", BIB).expect("load");
    // Scripted mixed session: miss, hit, update, revalidation/recompile,
    // one failing query, one explain.
    svc.query(TITLES).expect("cold");
    svc.query(TITLES).expect("warm");
    svc.update(&UpdateOp::InsertXml {
        uri: "bib.xml".to_string(),
        parent: "/bib".to_string(),
        xml: "<book year=\"2004\"><title>M</title><author><last>L</last>\
              <first>F</first></author><publisher>P</publisher>\
              <price>1.00</price></book>"
            .to_string(),
    })
    .expect("update");
    svc.query(TITLES).expect("post-update");
    assert!(svc.query("for $x in (").is_err(), "parse error expected");
    svc.explain(TITLES).expect("explain");

    let stats = svc.stats();
    let text = render_prometheus(
        &stats,
        &svc.metrics().query_latency(),
        &svc.metrics().update_latency(),
        &svc.metrics().publish_latency(),
    );
    let value = |name: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
            .and_then(|l| l.rsplit_once(' '))
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing from:\n{text}"))
    };
    let labelled = |name: &str, label: &str| -> f64 {
        let prefix = format!("{name}{{outcome=\"{label}\"}}");
        text.lines()
            .find(|l| l.starts_with(&prefix))
            .and_then(|l| l.rsplit_once(' '))
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {prefix} missing from:\n{text}"))
    };
    assert_eq!(value("xqd_queries_total"), stats.queries as f64);
    assert_eq!(value("xqd_updates_total"), stats.updates as f64);
    assert_eq!(value("xqd_errors_total"), stats.errors as f64);
    assert!(stats.errors >= 1, "the failing query must be counted");
    assert_eq!(value("xqd_rows_streamed_total"), stats.rows_streamed as f64);
    assert_eq!(
        labelled("xqd_plan_cache_outcome_total", "hit"),
        stats.plan_hits as f64
    );
    assert_eq!(
        labelled("xqd_plan_cache_outcome_total", "miss"),
        stats.plan_misses as f64
    );
    assert_eq!(
        labelled("xqd_plan_cache_outcome_total", "revalidated"),
        stats.plan_revalidations as f64
    );
    assert_eq!(
        labelled("xqd_plan_cache_outcome_total", "recompiled"),
        stats.plan_recompiles as f64
    );
    // Per-outcome counts partition the successful queries.
    assert_eq!(
        stats.plan_hits + stats.plan_misses + stats.plan_revalidations + stats.plan_recompiles,
        stats.queries
    );
    assert_eq!(value("xqd_query_latency_us_count"), stats.queries as f64);
    assert_eq!(value("xqd_update_latency_us_count"), stats.updates as f64);
    // The index maintenance counters ride along.
    assert_eq!(
        value("xqd_index_postings_built_total"),
        stats.maintenance.postings_built as f64
    );
    assert_eq!(
        value("xqd_index_delta_updates_total"),
        stats.maintenance.delta_updates as f64
    );
    // The snapshot-chain surface rides along: the version gauge equals
    // the stats' update_seq, exactly one version is live at rest, and
    // every publish (one load + one update) landed in the histogram.
    assert_eq!(value("xqd_snapshot_version"), stats.snapshot_version as f64);
    assert_eq!(stats.snapshot_version, stats.update_seq);
    assert_eq!(value("xqd_live_snapshots"), 1.0);
    assert_eq!(value("xqd_publish_latency_us_count"), 2.0);
}

// ---------------------------------------------------------------------
// EXPLAIN through the service: annotated report, text round-trip
// ---------------------------------------------------------------------

#[test]
fn explain_reports_priced_measured_operators() {
    let svc = service();
    svc.load_xml("bib.xml", BIB).expect("load");
    let out = svc.explain(TITLES).expect("explain");
    assert!(!out.report.nodes.is_empty());
    assert!(out.rows > 0);
    // Every operator is measured and priced; timing is inclusive.
    let root = out.report.nodes[0].elapsed_us;
    for n in &out.report.nodes {
        assert!(n.calls > 0, "{} never entered", n.op);
        assert!(n.predicted_cost.is_some(), "{} unpriced", n.op);
        assert!(n.elapsed_us <= root, "{} exceeds the root's time", n.op);
    }
    // The rendered tree parses back to the same figures.
    let text = out.report.render();
    let parsed = engine::ExplainReport::parse(&text).expect("round trip");
    assert_eq!(parsed.nodes.len(), out.report.nodes.len());
    for (a, b) in parsed.nodes.iter().zip(&out.report.nodes) {
        assert_eq!(a.op, b.op);
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.elapsed_us, b.elapsed_us);
        assert_eq!(a.predicted_cost, b.predicted_cost);
    }
    // Explain runs count as queries and keep executor counters intact:
    // a plain run of the same text returns identical row counts.
    let plain = svc.query(TITLES).expect("plain");
    assert_eq!(plain.rows, out.rows);
}

#[test]
fn both_executors_trace_identical_counters() {
    // Counter parity: the materializing and streaming executors must
    // agree on rows per operator even under tracing (timing differs).
    for exec in [ExecMode::Materialized, ExecMode::Streaming] {
        let svc = QueryService::new(ServiceConfig {
            cache_capacity: 16,
            use_indexes: true,
            exec,
            slow_query_us: None,
            ..ServiceConfig::default()
        });
        svc.load_xml("bib.xml", BIB).expect("load");
        let out = svc.explain(TITLES).expect("explain");
        let rows: Vec<(String, u64)> = out
            .report
            .nodes
            .iter()
            .map(|n| (n.op.clone(), n.rows))
            .collect();
        assert!(rows.iter().any(|(_, r)| *r > 0), "{exec:?}: all-zero rows");
        assert_eq!(out.rows, 2, "{exec:?}");
    }
}
