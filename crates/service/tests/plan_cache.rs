//! Plan-cache behaviour through the public [`QueryService`] API: the
//! warm path must *demonstrably* skip the frontend (asserted via the
//! hit counters), equivalent query texts must share one entry, epochs
//! must invalidate staleness, and results must stay byte-identical to
//! freshly planned runs throughout.

use ordered_unnesting::workloads;
use ordered_unnesting::{engine, xmldb, xquery};
use service::cache::Lookup;
use service::{CacheOutcome, ExecMode, PlanCache, QueryService, ServiceConfig, UpdateOp};
use std::sync::Arc;

const SCALE: usize = 30;
const SEED: u64 = 7;

fn standard_service(cache_capacity: usize) -> QueryService {
    QueryService::with_catalog(
        xmldb::gen::standard_catalog(SCALE, 2, SEED),
        ServiceConfig {
            cache_capacity,
            use_indexes: true,
            exec: ExecMode::Streaming,
            slow_query_us: None,
            ..ServiceConfig::default()
        },
    )
}

fn all_queries() -> Vec<&'static str> {
    workloads::ALL
        .iter()
        .chain(workloads::RANGE.iter())
        .chain(workloads::COMPOSITE.iter())
        .map(|w| w.query)
        .collect()
}

const NEW_BOOK: &str = "<book year=\"2004\"><title>Cache Test Volume</title>\
     <author><last>Moerkotte</last><first>G</first></author>\
     <publisher>ICDE</publisher><price>49.99</price></book>";

#[test]
fn every_workload_misses_cold_and_hits_warm() {
    let svc = standard_service(64);
    let queries = all_queries();
    for (i, q) in queries.iter().enumerate() {
        let cold = svc.query(q).expect("cold run");
        assert_eq!(cold.cache, CacheOutcome::Miss, "query #{i} cold");
        let warm = svc.query(q).expect("warm run");
        assert_eq!(warm.cache, CacheOutcome::Hit, "query #{i} warm");
        assert_eq!(cold.output, warm.output, "query #{i} output drift");
        assert_eq!(cold.rows, warm.rows, "query #{i} row drift");
        assert_eq!(cold.plan, warm.plan, "query #{i} plan drift");
    }
    let stats = svc.stats();
    // The hit counter is the skip evidence: one hit per query, each
    // resolved through the L0 text memo without any parsing.
    assert_eq!(stats.cache.hits, queries.len() as u64);
    assert_eq!(stats.cache.misses, queries.len() as u64);
    assert_eq!(stats.cache.memo_hits, queries.len() as u64);
    assert_eq!(stats.cached_plans, queries.len());
    assert_eq!(stats.cache.evictions, 0);
    assert_eq!(stats.queries, 2 * queries.len() as u64);
}

#[test]
fn whitespace_and_bound_variable_renaming_share_one_entry() {
    let svc = standard_service(16);
    let original = r#"
        let $d1 := document("bib.xml")
        for $t1 in $d1//book/title
        where some $t2 in document("reviews.xml")//entry/title
              satisfies $t2 = $t1
        return <dup>{ $t1 }</dup>
    "#;
    // Same query modulo layout and every binder renamed.
    let renamed = r#"let $bib := document("bib.xml") for $title in $bib//book/title
        where some $entry in document("reviews.xml")//entry/title satisfies $entry = $title
        return <dup>{ $title }</dup>"#;
    let cold = svc.query(original).expect("cold");
    assert_eq!(cold.cache, CacheOutcome::Miss);
    let warm = svc.query(renamed).expect("warm");
    assert_eq!(
        warm.cache,
        CacheOutcome::Hit,
        "alpha-equivalent text must reuse the cached plan"
    );
    assert_eq!(cold.output, warm.output);
    // Distinct raw texts: the plan cache holds one entry, the text memo
    // two (the second lookup parsed once to discover the fingerprint).
    let stats = svc.stats();
    assert_eq!(stats.cached_plans, 1);
    assert_eq!(stats.memo_entries, 2);
    assert_eq!(stats.cache.memo_hits, 0);
    // …and now both texts resolve without parsing.
    assert_eq!(svc.query(original).unwrap().cache, CacheOutcome::Hit);
    assert_eq!(svc.query(renamed).unwrap().cache, CacheOutcome::Hit);
    assert_eq!(svc.stats().cache.memo_hits, 2);
}

#[test]
fn different_queries_do_not_alias() {
    let svc = standard_service(16);
    let a = r#"let $d := doc("bib.xml") for $t in $d//book/title return $t"#;
    let b = r#"let $d := doc("bib.xml") for $t in $d//book/author return $t"#;
    assert_eq!(svc.query(a).unwrap().cache, CacheOutcome::Miss);
    assert_eq!(svc.query(b).unwrap().cache, CacheOutcome::Miss);
    assert_eq!(svc.stats().cached_plans, 2);
}

#[test]
fn lru_eviction_at_capacity() {
    let svc = standard_service(2);
    let queries = all_queries();
    let (q1, q2, q3) = (queries[0], queries[1], queries[2]);
    assert_eq!(svc.query(q1).unwrap().cache, CacheOutcome::Miss);
    assert_eq!(svc.query(q2).unwrap().cache, CacheOutcome::Miss);
    // Touch q1 so q2 is the LRU victim when q3 arrives.
    assert_eq!(svc.query(q1).unwrap().cache, CacheOutcome::Hit);
    assert_eq!(svc.query(q3).unwrap().cache, CacheOutcome::Miss);
    assert_eq!(svc.stats().cache.evictions, 1);
    assert_eq!(svc.stats().cached_plans, 2);
    assert_eq!(svc.query(q1).unwrap().cache, CacheOutcome::Hit);
    // q2 was evicted; its text memo survives, so this is a pure plan
    // miss resolved without parsing.
    assert_eq!(svc.query(q2).unwrap().cache, CacheOutcome::Miss);
}

#[test]
fn update_moves_epoch_and_results_match_a_fresh_service() {
    let q = workloads::Q3_EXISTENTIAL.query;
    let insert = UpdateOp::InsertXml {
        uri: "bib.xml".to_string(),
        parent: "/bib".to_string(),
        xml: NEW_BOOK.to_string(),
    };

    let svc = standard_service(16);
    let cold = svc.query(q).expect("cold");
    assert_eq!(cold.cache, CacheOutcome::Miss);
    assert_eq!(svc.query(q).unwrap().cache, CacheOutcome::Hit);

    let report = svc.update(&insert).expect("insert applies");
    assert_eq!(report.uri, "bib.xml");
    assert_eq!(report.update_seq, 1);

    // The epoch moved, so this must NOT be a plain hit: either the
    // cached plan revalidates (every access path still resolves) or it
    // is recompiled. Both re-stamp the entry, so the run after is a hit
    // again.
    let post = svc.query(q).expect("post-update");
    assert!(
        matches!(
            post.cache,
            CacheOutcome::Revalidated | CacheOutcome::Recompiled
        ),
        "expected revalidation or recompile after the epoch bump, got {:?}",
        post.cache
    );
    assert_eq!(svc.query(q).unwrap().cache, CacheOutcome::Hit);

    // The insert itself must be visible through the (re-stamped) cache:
    // a plain title listing gains exactly the inserted row.
    let titles = r#"let $d := doc("bib.xml") for $t in $d//book/title return <t>{ $t }</t>"#;
    let before_rows = {
        let fresh = standard_service(16);
        fresh.query(titles).expect("baseline").rows
    };
    let after = svc.query(titles).expect("titles post-insert");
    assert_eq!(after.rows, before_rows + 1, "inserted book must be visible");
    assert!(after.output.contains("Cache Test Volume"));

    // Byte-identical to a service that never cached anything: fresh
    // store, same deterministic update, first (freshly planned) run.
    let fresh = standard_service(16);
    fresh.update(&insert).expect("insert applies");
    let reference = fresh.query(q).expect("fresh run");
    assert_eq!(reference.cache, CacheOutcome::Miss);
    assert_eq!(post.output, reference.output);
    assert_eq!(post.rows, reference.rows);
}

#[test]
fn all_three_update_kinds_invalidate() {
    let q = r#"let $d := doc("bib.xml") for $t in $d//book/title return <t>{ $t }</t>"#;
    let ops = [
        UpdateOp::InsertXml {
            uri: "bib.xml".to_string(),
            parent: "/bib".to_string(),
            xml: NEW_BOOK.to_string(),
        },
        UpdateOp::DeleteFirst {
            uri: "bib.xml".to_string(),
            path: "/bib/book".to_string(),
        },
        UpdateOp::ReplaceText {
            uri: "bib.xml".to_string(),
            path: "/bib/book/title".to_string(),
            text: "Retitled".to_string(),
        },
    ];
    let svc = standard_service(16);
    svc.query(q).expect("prime the cache");
    for op in &ops {
        svc.update(op).expect("update applies");
        let out = svc.query(q).expect("post-update query");
        assert!(
            out.cache != CacheOutcome::Hit && out.cache != CacheOutcome::Miss,
            "{op:?}: expected a revalidation/recompile, got {:?}",
            out.cache
        );
    }
    // Replay the same ops on a fresh service: outputs must agree.
    let fresh = standard_service(16);
    for op in &ops {
        fresh.update(op).expect("update applies");
    }
    assert_eq!(svc.query(q).unwrap().output, fresh.query(q).unwrap().output);
}

/// Loads no longer purge the cache: `doc_seq` stamps are monotone
/// across wholesale reloads, so only entries referencing a *reloaded*
/// URI go stale — unrelated hot entries keep hitting.
#[test]
fn loads_invalidate_only_reloaded_documents() {
    let svc = standard_service(16);
    let q = r#"let $d := doc("bib.xml") for $t in $d//book/title return $t"#;
    svc.query(q).expect("prime");
    assert_eq!(svc.stats().cached_plans, 1);

    // Loading a document the entry never references leaves it fully
    // warm: still cached, and the next run is a plain hit.
    svc.load_xml("unrelated.xml", "<r><x>1</x></r>")
        .expect("load");
    assert_eq!(svc.stats().cached_plans, 1);
    assert_eq!(svc.query(q).unwrap().cache, CacheOutcome::Hit);

    // Reloading the whole catalog moves bib.xml's stamp. The entry is
    // not purged, but it must not be served as a plain hit either: the
    // moved stamp forces revalidation (or recompile) against the new
    // snapshot …
    svc.load_standard(SCALE, SEED + 1).expect("reload");
    assert_eq!(svc.stats().cached_plans, 1, "no eager purge");
    let post = svc.query(q).expect("post-reload");
    assert!(
        matches!(
            post.cache,
            CacheOutcome::Revalidated | CacheOutcome::Recompiled
        ),
        "expected revalidation or recompile after the reload, got {:?}",
        post.cache
    );
    // … and the served result reflects the reloaded data, byte-identical
    // to a service that never cached anything.
    let fresh = standard_service(16);
    fresh.load_standard(SCALE, SEED + 1).expect("reload");
    assert_eq!(post.output, fresh.query(q).unwrap().output);
}

/// A cached plan whose document vanished from the catalog fails
/// revalidation and is dropped (the `Invalidated` → recompile branch).
/// This drives the cache directly with two snapshots to pin the
/// defensive branch down: the vanished URI reads as the absent-sentinel
/// stamp, which can never equal a real `doc_seq`.
#[test]
fn vanished_document_invalidates_the_entry() {
    let mut with_doc = xmldb::Catalog::new();
    with_doc.register(
        xmldb::parse_document("ghost.xml", "<g><item>1</item><item>2</item></g>").unwrap(),
    );
    let q = r#"let $d := doc("ghost.xml") for $i in $d//item return $i"#;
    let expr = xquery::compile(q, &with_doc).expect("compiles");
    let plan = Arc::new(engine::compile_indexed(&expr, &with_doc));
    let fp = xquery::Fingerprint::of_query(q, &with_doc).expect("fingerprints");
    let with_doc = xmldb::CatalogSnapshot::from_catalog(with_doc);

    let mut cache = PlanCache::new(4);
    cache.insert(&fp, true, plan, "nested".to_string(), &with_doc);
    assert!(matches!(
        cache.lookup(&fp, true, &with_doc),
        Lookup::Hit(..)
    ));

    // Same fingerprint against a snapshot where ghost.xml never existed:
    // stale stamps, and revalidation cannot resolve the scan.
    let without_doc = xmldb::CatalogSnapshot::from_catalog(xmldb::Catalog::new());
    assert!(matches!(
        cache.lookup(&fp, true, &without_doc),
        Lookup::Invalidated
    ));
    assert_eq!(cache.counters().invalidations, 1);
    assert!(matches!(
        cache.lookup(&fp, true, &without_doc),
        Lookup::Miss
    ));
}

/// Plans cached by a parallel-workers service are stored in their
/// `Parallel`-rewritten form. After an update moves the epoch, those
/// entries must revalidate (or recompile) exactly like serial plans —
/// the access-path walk has to see *inside* the parallel segment — and
/// keep producing results byte-identical to a service that never
/// cached anything.
#[test]
fn cached_parallel_plans_revalidate_after_updates() {
    let parallel_service = || {
        QueryService::with_catalog(
            xmldb::gen::standard_catalog(SCALE, 2, SEED),
            ServiceConfig {
                cache_capacity: 32,
                use_indexes: true,
                exec: ExecMode::Streaming,
                slow_query_us: None,
                parallel_workers: 2,
                ..ServiceConfig::default()
            },
        )
    };
    let svc = parallel_service();

    // Keep the workloads whose cached plan actually holds a parallel
    // segment (EXPLAIN renders the operator) and that read `bib.xml` —
    // the document the update below touches; entries over other
    // documents keep current stamps and stay plain hits. explain()
    // itself warms the cache, so each kept query is now a cached
    // parallel plan.
    let queries: Vec<&str> = workloads::ALL
        .iter()
        .chain(workloads::RANGE.iter())
        .chain(workloads::COMPOSITE.iter())
        .filter(|w| w.documents.contains(&"bib.xml"))
        .map(|w| w.query)
        .filter(|q| {
            svc.explain(q)
                .expect("explain")
                .report
                .render()
                .contains("Parallel")
        })
        .collect();
    assert!(
        !queries.is_empty(),
        "no workload produced a cached parallel plan at 2 workers"
    );
    for q in &queries {
        assert_eq!(svc.query(q).unwrap().cache, CacheOutcome::Hit);
    }

    let insert = UpdateOp::InsertXml {
        uri: "bib.xml".to_string(),
        parent: "/bib".to_string(),
        xml: NEW_BOOK.to_string(),
    };
    svc.update(&insert).expect("insert applies");

    let fresh = parallel_service();
    fresh.update(&insert).expect("insert applies");
    for q in &queries {
        let post = svc.query(q).expect("post-update");
        assert!(
            matches!(
                post.cache,
                CacheOutcome::Revalidated | CacheOutcome::Recompiled
            ),
            "parallel entry must re-stamp after the epoch bump, got {:?}: {q}",
            post.cache
        );
        let reference = fresh.query(q).expect("fresh post-update");
        assert_eq!(post.output, reference.output, "output drift: {q}");
        assert_eq!(post.rows, reference.rows, "row drift: {q}");
        // Re-stamped entries are plain hits again.
        assert_eq!(svc.query(q).unwrap().cache, CacheOutcome::Hit);
    }
}
