//! Wire-protocol round trips against a real TCP socket: the full frame
//! grammar, malformed input, concurrent sessions, a client that
//! disconnects mid-stream, and graceful shutdown.

use service::{serve, ExecMode, Json, QueryService, ServerConfig, ServerHandle, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

const BIB: &str = "<bib>\
    <book year=\"1994\"><title>TCP/IP Illustrated</title>\
      <author><last>Stevens</last><first>W.</first></author>\
      <publisher>Addison-Wesley</publisher><price>65.95</price></book>\
    <book year=\"2000\"><title>Data on the Web</title>\
      <author><last>Abiteboul</last><first>Serge</first></author>\
      <publisher>Morgan Kaufmann</publisher><price>39.95</price></book>\
    </bib>";

const TITLES: &str = r#"let $d := doc("bib.xml") for $t in $d//book/title return <t>{ $t }</t>"#;

fn start_server() -> ServerHandle {
    let svc = Arc::new(QueryService::new(ServiceConfig {
        cache_capacity: 16,
        use_indexes: true,
        exec: ExecMode::Streaming,
    }));
    serve(
        svc,
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
        },
    )
    .expect("bind")
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn send(&mut self, frame: &str) {
        self.writer.write_all(frame.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        Json::parse(line.trim()).unwrap_or_else(|e| panic!("bad frame `{line}`: {e}"))
    }

    /// Read until EOF (used after `close`); true when the server closed.
    fn at_eof(&mut self) -> bool {
        let mut line = String::new();
        self.reader
            .read_line(&mut line)
            .map(|n| n == 0)
            .unwrap_or(true)
    }

    fn load_bib(&mut self) {
        self.send(
            &Json::Obj(vec![
                ("op".to_string(), Json::str("load")),
                ("uri".to_string(), Json::str("bib.xml")),
                ("xml".to_string(), Json::str(BIB)),
            ])
            .render(),
        );
        let v = self.recv();
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "{}",
            v.render()
        );
    }

    /// Run one query exchange; returns (items, done frame).
    fn query(&mut self, q: &str) -> (Vec<String>, Json) {
        self.send(
            &Json::Obj(vec![
                ("op".to_string(), Json::str("query")),
                ("q".to_string(), Json::str(q)),
            ])
            .render(),
        );
        let begin = self.recv();
        assert_eq!(
            begin.get("type").and_then(Json::as_str),
            Some("begin"),
            "expected begin, got {}",
            begin.render()
        );
        let mut items = Vec::new();
        loop {
            let f = self.recv();
            match f.get("type").and_then(Json::as_str) {
                Some("item") => items.push(
                    f.get("xml")
                        .and_then(Json::as_str)
                        .expect("item frame carries xml")
                        .to_string(),
                ),
                Some("done") => return (items, f),
                _ => panic!("unexpected frame {}", f.render()),
            }
        }
    }
}

#[test]
fn full_session_round_trip() {
    let mut handle = start_server();
    let mut c = Client::connect(&handle);
    c.load_bib();

    // Query: streamed items concatenate to the service's own output.
    let (items, done) = c.query(TITLES);
    assert_eq!(done.get("rows").and_then(Json::as_u64), Some(2));
    assert_eq!(done.get("cache").and_then(Json::as_str), Some("miss"));
    let streamed: String = items.concat();
    let direct = handle.service().query(TITLES).expect("direct query");
    assert_eq!(streamed, direct.output, "wire items must equal Ξ output");

    // Same text again: served from the cache.
    let (_, done) = c.query(TITLES);
    assert_eq!(done.get("cache").and_then(Json::as_str), Some("hit"));

    // Update through the wire, then verify visibility.
    c.send(
        r#"{"op":"update","kind":"retext","uri":"bib.xml","path":"/bib/book/title","text":"Renamed Book"}"#,
    );
    let v = c.recv();
    assert_eq!(
        v.get("ok").and_then(Json::as_bool),
        Some(true),
        "{}",
        v.render()
    );
    // Sequence 2: the `load` counted too (any catalog mutation does).
    assert_eq!(v.get("update_seq").and_then(Json::as_u64), Some(2));
    let (items, done) = c.query(TITLES);
    assert!(items.concat().contains("Renamed Book"));
    assert_ne!(done.get("cache").and_then(Json::as_str), Some("hit"));

    // Stats reflect the session.
    c.send(r#"{"op":"stats"}"#);
    let v = c.recv();
    assert_eq!(v.get("queries").and_then(Json::as_u64), Some(4));
    // Two hits: the warm wire query and this test's own direct
    // `service().query` call above.
    assert_eq!(v.get("cache_hits").and_then(Json::as_u64), Some(2));
    assert_eq!(v.get("updates").and_then(Json::as_u64), Some(1));
    assert_eq!(v.get("documents").and_then(Json::as_u64), Some(1));

    // Close ends only this session.
    c.send(r#"{"op":"close"}"#);
    let v = c.recv();
    assert_eq!(v.get("op").and_then(Json::as_str), Some("close"));
    assert!(c.at_eof(), "server must close after `close`");

    handle.shutdown();
}

#[test]
fn malformed_frames_do_not_kill_the_session() {
    let mut handle = start_server();
    let mut c = Client::connect(&handle);
    c.load_bib();
    for bad in [
        "{not json",
        r#"{"no_op":1}"#,
        r#"{"op":"frobnicate"}"#,
        r#"{"op":"query"}"#,
        r#"{"op":"update","kind":"insert","uri":"bib.xml"}"#,
        r#"{"op":"update","kind":"warp","uri":"bib.xml"}"#,
        r#"{"op":"load","uri":"x.xml","xml":"<unclosed>"}"#,
        r#"{"op":"query","q":"let $$ nonsense"}"#,
        r#"{"op":"update","kind":"delete","uri":"ghost.xml","path":"/x"}"#,
    ] {
        c.send(bad);
        let v = c.recv();
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(false),
            "`{bad}` must draw an error frame, got {}",
            v.render()
        );
    }
    // The session survived all of it.
    let (items, _) = c.query(TITLES);
    assert_eq!(items.len(), 2);
    handle.shutdown();
}

#[test]
fn concurrent_sessions_share_the_cache() {
    let mut handle = start_server();
    let mut a = Client::connect(&handle);
    let mut b = Client::connect(&handle);
    a.load_bib();
    let (_, done) = a.query(TITLES);
    assert_eq!(done.get("cache").and_then(Json::as_str), Some("miss"));
    // The other session sees the plan the first one compiled.
    let (_, done) = b.query(TITLES);
    assert_eq!(done.get("cache").and_then(Json::as_str), Some("hit"));
    handle.shutdown();
}

#[test]
fn mid_stream_disconnect_leaves_the_server_healthy() {
    let mut handle = start_server();
    let mut c = Client::connect(&handle);
    c.load_bib();
    // Start a query exchange and vanish after the first frame.
    c.send(
        &Json::Obj(vec![
            ("op".to_string(), Json::str("query")),
            ("q".to_string(), Json::str(TITLES)),
        ])
        .render(),
    );
    let begin = c.recv();
    assert_eq!(begin.get("type").and_then(Json::as_str), Some("begin"));
    drop(c);

    // A fresh session on the same server still works end to end.
    let mut c2 = Client::connect(&handle);
    let (items, _) = c2.query(TITLES);
    assert_eq!(items.len(), 2);
    handle.shutdown();
}

#[test]
fn shutdown_frame_stops_the_server() {
    let mut handle = start_server();
    let mut c = Client::connect(&handle);
    c.send(r#"{"op":"shutdown"}"#);
    let v = c.recv();
    assert_eq!(v.get("op").and_then(Json::as_str), Some("shutdown"));
    // The accept loop exits; wait() returning proves the graceful path.
    handle.wait();
    assert!(handle.is_shutting_down());
    // New connections are refused (or immediately closed by a racing
    // accept that observed the flag).
    match TcpStream::connect(handle.addr()) {
        Err(_) => {}
        Ok(s) => {
            let mut line = String::new();
            let n = BufReader::new(s).read_line(&mut line).unwrap_or(0);
            assert_eq!(n, 0, "post-shutdown connection must get EOF");
        }
    }
}
